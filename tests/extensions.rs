//! Integration tests for the beyond-the-paper extensions, exercised
//! through the facade crate.

use dnn_life::core::energy::{energy_overhead, inference_energy_nj};
use dnn_life::sram::lifetime::{lifetime_improvement, lifetime_to_threshold, ReadFailureModel};
use dnn_life::sram::snm::CalibratedSnmModel;
use dnn_life::sram::NbtiModel;
use dnn_life::synth::library::TechLibrary;
use dnn_life::synth::verilog::to_verilog;
use dnn_life::synth::{characterize, modules};

/// The title claim, end to end: mitigation energy is a sub-percent tax
/// on memory traffic, and buys an order-of-magnitude lifetime gain.
#[test]
fn energy_efficiency_and_lifetime_story() {
    let lib = TechLibrary::tsmc65_like();
    let wde = characterize(&modules::dnnlife_wde(64, 4), &lib);
    let overhead = energy_overhead(&wde, lib.clock_ghz, 64, 5.0);
    assert!(
        overhead.overhead_percent < 1.0,
        "energy tax {}%",
        overhead.overhead_percent
    );

    // AlexNet inference: encode+decode all weights for under a microjoule.
    let nj = inference_energy_nj(&wde, lib.clock_ghz, 60_954_656 / 8);
    assert!(nj < 1000.0, "{nj} nJ");

    let snm = CalibratedSnmModel::paper();
    let gain = lifetime_improvement(&snm, 1.0, 0.5, 15.0);
    // t^(1/6) law: halving ΔVth buys 2^6 = 64x time at a fixed budget.
    assert!((gain - 64.0).abs() < 2.0, "gain {gain}");
}

/// Lifetime figures react correctly to a different aging model.
#[test]
fn lifetime_respects_custom_nbti_exponent() {
    // With a steeper time exponent the lifetime gain shrinks.
    let steep = CalibratedSnmModel::with_anchors(NbtiModel::new(50.0, 1.0, 0.5, 7.0), 10.82, 26.12);
    let gain = lifetime_improvement(&steep, 1.0, 0.5, 15.0);
    // Halving ΔVth at n = 1/2 buys 2^2 = 4x.
    assert!((gain - 4.0).abs() < 0.5, "gain {gain}");
}

/// Read-failure model composes with the experiment pipeline outputs.
#[test]
fn failure_model_orders_policies() {
    let snm = CalibratedSnmModel::paper();
    let failures = ReadFailureModel::default_65nm();
    let p_balanced = failures.failure_probability(10.82);
    let p_worst = failures.failure_probability(26.12);
    assert!(p_worst > 1000.0 * p_balanced);

    // A cell driven to duty 0.5 by DNN-Life at 10 years still fails less
    // often than an unmitigated duty-1.0 cell at 7 years.
    use dnn_life::sram::snm::SnmModel;
    let mitigated_10y = snm.degradation_percent(0.5, 10.0);
    assert!(failures.failure_probability(mitigated_10y) < p_worst);
}

/// Verilog export is available for every Table II design and scales.
#[test]
fn verilog_export_for_all_designs() {
    for width in [8usize, 64] {
        for netlist in [
            modules::inversion_wde(width),
            modules::dnnlife_wde(width, 4),
            modules::barrel_wde_full_mux(width),
            modules::barrel_wde_log_stage(width),
        ] {
            let v = to_verilog(&netlist);
            assert!(v.contains("module "), "{}", netlist.name());
            assert!(v.contains("endmodule"));
            let instances = v.lines().filter(|l| l.contains(" u")).count();
            assert_eq!(instances, netlist.cell_count(), "{}", netlist.name());
        }
    }

    // Lifetime of the export: the same netlist measured by STA is the
    // one exported (cell counts in the header comment line up).
    let n = modules::dnnlife_wde(64, 4);
    let lib = TechLibrary::tsmc65_like();
    let row = characterize(&n, &lib);
    assert_eq!(row.cell_count, n.cell_count());
}

/// The bisection lifetime solver agrees with the closed form of the
/// calibrated model: degradation(d, t) = threshold can be inverted
/// analytically for the linear-duty NBTI law.
#[test]
fn lifetime_matches_closed_form() {
    let snm = CalibratedSnmModel::paper();
    // From the affine calibration: deg = a + b·50·d·(t/7)^(1/6).
    // Solve for t at deg = 20%, d = 1.0:
    // (t/7)^(1/6) = (20 - a)/(b·50)  with  a, b from the anchors.
    // anchors: a + b·25·1 = 10.82 (d=.5, t=7), a + b·50 = 26.12.
    let b: f64 = (26.12 - 10.82) / 25.0;
    let a = 26.12 - b * 50.0;
    let x = (20.0 - a) / (b * 50.0);
    let expect = 7.0 * x.powi(6);
    let got = lifetime_to_threshold(&snm, 1.0, 20.0, 100.0);
    assert!(
        (got - expect).abs() < 0.01,
        "bisection {got} vs closed form {expect}"
    );
}
