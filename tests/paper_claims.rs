//! Tests pinned to specific quantitative claims of the paper's text.

use dnn_life::accel::{AcceleratorConfig, BlockSource, FifoSlotMemory, FlatWeightMemory};
use dnn_life::core::experiment::{run_experiment, ExperimentSpec, NetworkKind, PolicySpec};
use dnn_life::core::DutyCycleModel;
use dnn_life::quant::NumberFormat;
use dnn_life::sram::snm::{CalibratedSnmModel, SnmModel};
use dnn_life::synth::library::TechLibrary;

/// §V-A: "the best SNM degradation for 6T-SRAM cell after 7 years is
/// 10.82% (at 50% duty-cycle), and the worst is 26.12% (at 0% and 100%
/// duty-cycle)."
#[test]
fn snm_anchor_values() {
    let m = CalibratedSnmModel::paper();
    assert!((m.degradation_percent(0.5, 7.0) - 10.82).abs() < 1e-9);
    assert!((m.degradation_percent(0.0, 7.0) - 26.12).abs() < 1e-9);
    assert!((m.degradation_percent(1.0, 7.0) - 26.12).abs() < 1e-9);
}

/// §III-B: "even for b/K = 0.3, the probability is over 0.1" (K = 20)
/// and the K = 160 collapse of Fig. 7b.
#[test]
fn fig7_quantitative_claims() {
    let p = DutyCycleModel::new(20, 0.5).tail_probability(6);
    assert!(p > 0.1, "P = {p}");
    let p160 = DutyCycleModel::new(160, 0.5).tail_probability(48);
    assert!(p160 < 1e-6);
}

/// Table I: the weight FIFO is "four tiles deep, where one tile is
/// equivalent to weights for 256×256 PEs".
#[test]
fn npu_fifo_geometry() {
    let cfg = AcceleratorConfig::tpu_like();
    assert_eq!(
        cfg.weight_memory_bytes,
        FifoSlotMemory::DEPTH * FifoSlotMemory::TILE_SIDE * FifoSlotMemory::TILE_SIDE
    );
    let slot = FifoSlotMemory::new(
        0,
        &NetworkKind::Alexnet.spec(),
        NumberFormat::Int8Symmetric,
        1,
    );
    assert_eq!(slot.geometry().words, 256 * 256);
}

/// §V-A: networks are "the AlexNet and the VGG-16 ... and a custom
/// network ... CONV(16,1,5,5), CONV(50,16,5,5), FC(256,800) and
/// FC(10,256)."
#[test]
fn workload_parameter_counts() {
    assert_eq!(NetworkKind::Alexnet.spec().param_count(), 60_965_224);
    assert_eq!(NetworkKind::Vgg16.spec().param_count(), 138_357_544);
    let custom = NetworkKind::CustomMnist.spec();
    let shapes: Vec<u64> = custom.layers().iter().map(|l| l.weight_count()).collect();
    assert_eq!(shapes, vec![400, 20_000, 204_800, 2_560]);
}

/// Table II orderings: "The barrel shifter-based WDE consumes the most
/// amount of area and power. The proposed design consumes slightly more
/// power and area as compared to the inversion-based WDE."
#[test]
fn table2_orderings() {
    let lib = TechLibrary::tsmc65_like();
    let rows = dnn_life::synth::report::table2(&lib);
    let (barrel, inversion, proposed) = (&rows[0], &rows[1], &rows[2]);
    assert!(barrel.area_cells > proposed.area_cells && barrel.power_nw > proposed.power_nw);
    assert!(proposed.area_cells > inversion.area_cells);
    assert!(proposed.power_nw > inversion.power_nw);
    // "slightly more": within ~2x, not the order of magnitude of the
    // barrel shifter.
    assert!(proposed.area_cells < 2.0 * inversion.area_cells);
    assert!(barrel.area_cells > 10.0 * inversion.area_cells);
}

/// §V-B / Fig. 11 panel 3: "when used for the custom DNN, almost all
/// the memory cells experience significant SNM degradation" under the
/// inversion baseline, while DNN-Life stays near-optimal (panels 7-9).
#[test]
fn fig11_custom_network_panels() {
    let mut inversion = ExperimentSpec::fig11(NetworkKind::CustomMnist, PolicySpec::Inversion, 42);
    inversion.sample_stride = 32;
    let inversion = run_experiment(&inversion);
    // "significant" — well above the 10.82% optimum on average, with
    // cells at the worst bin.
    assert!(inversion.snm.mean() > 14.0, "mean {}", inversion.snm.mean());
    assert!(inversion.snm.max() > 25.0, "max {}", inversion.snm.max());

    let mut dnn = ExperimentSpec::fig11(
        NetworkKind::CustomMnist,
        PolicySpec::DnnLife {
            bias: 0.7,
            bias_balancing: true,
            m_bits: 4,
        },
        42,
    );
    dnn.sample_stride = 32;
    let dnn = run_experiment(&dnn);
    assert!(dnn.snm.mean() < inversion.snm.mean() - 3.0);
}

/// The paper's "K = DNN size / memory size" block counts for the
/// baseline accelerator.
#[test]
fn baseline_block_counts() {
    let int8 = FlatWeightMemory::new(
        &AcceleratorConfig::baseline(),
        &NetworkKind::Alexnet.spec(),
        NumberFormat::Int8Symmetric,
        1,
    );
    assert_eq!(int8.block_count(), 117);
    let fp32 = FlatWeightMemory::new(
        &AcceleratorConfig::baseline(),
        &NetworkKind::Alexnet.spec(),
        NumberFormat::Fp32,
        1,
    );
    assert_eq!(fp32.block_count(), 466);
}
