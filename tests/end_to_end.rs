//! Cross-crate integration tests on the facade API.

use dnn_life::accel::{
    simulate_analytic, AcceleratorConfig, AnalyticPolicy, AnalyticSimConfig, BlockSource,
    FlatWeightMemory,
};
use dnn_life::core::experiment::{
    cross_validate, fig9_policies, run_experiment, DwellModel, ExperimentSpec, NetworkKind,
    Platform, PolicySpec, SimulatorBackend,
};
use dnn_life::mitigation::transducer::WriteTransducer;
use dnn_life::mitigation::{AgingController, DnnLife, PseudoTrbg};
use dnn_life::nn::weights::WeightRange;
use dnn_life::nn::zoo::build_custom_mnist;
use dnn_life::nn::Tensor;
use dnn_life::numerics::duty_cycle_tail_probability;
use dnn_life::quant::{NumberFormat, Quantizer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The headline correctness property: routing quantized weights through
/// the DNN-Life WDE/RDD changes *nothing* about inference.
#[test]
fn mitigation_is_bit_transparent_to_inference() {
    let data_seed = 99u64;
    let mut plain = build_custom_mnist(7);
    let mut mitigated = build_custom_mnist(7);

    // Quantize both networks identically; route only the second through
    // the encoder/decoder pair.
    let quantize = |net: &mut dnn_life::nn::Sequential, with_wde: bool| {
        let controller = AgingController::new(PseudoTrbg::new(5, 0.7), 4);
        let mut wde = DnnLife::new(8, controller);
        net.visit_params(&mut |p| {
            if !p.name.ends_with(".weight") {
                return;
            }
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &w in p.value.iter() {
                lo = lo.min(w);
                hi = hi.max(w);
            }
            let q = Quantizer::calibrate(
                NumberFormat::Int8Symmetric,
                &WeightRange {
                    min: lo,
                    max: hi,
                    sampled: p.value.len() as u64,
                },
            );
            for (addr, w) in p.value.iter_mut().enumerate() {
                let bits = u64::from(q.encode(*w));
                let bits = if with_wde {
                    let (stored, meta) = wde.encode(addr as u64, bits);
                    wde.decode(stored, meta)
                } else {
                    bits
                };
                *w = q.decode(bits as u32);
            }
            wde.new_block();
        });
    };
    quantize(&mut plain, false);
    quantize(&mut mitigated, true);

    let mut rng = StdRng::seed_from_u64(data_seed);
    let images = Tensor::from_fn(&[4, 1, 28, 28], |_| rng.random::<f32>());
    let a = plain.forward(&images);
    let b = mitigated.forward(&images);
    assert_eq!(a.data(), b.data(), "logits must match bit-exactly");
}

/// Eq. 1 must agree with a Monte-Carlo simulation of cells receiving K
/// independent Bernoulli bits.
#[test]
fn eq1_matches_monte_carlo() {
    let (k, rho, b) = (20u64, 0.5f64, 6u64);
    let analytic = duty_cycle_tail_probability(k, b, rho);
    let mut rng = StdRng::seed_from_u64(31);
    let cells = 60_000u32;
    let mut hits = 0u32;
    for _ in 0..cells {
        let ones: u64 = (0..k).filter(|_| rng.random::<f64>() < rho).count() as u64;
        if ones <= b || ones >= k - b {
            hits += 1;
        }
    }
    let empirical = f64::from(hits) / f64::from(cells);
    // 4-sigma Monte-Carlo band.
    let sigma = (analytic * (1.0 - analytic) / f64::from(cells)).sqrt();
    assert!(
        (empirical - analytic).abs() < 4.0 * sigma + 1e-9,
        "analytic {analytic}, empirical {empirical}"
    );
}

/// The DNN-Life duty distribution produced by the full simulator stack
/// matches its binomial theory: variance ≈ 1/(4T) around 0.5.
#[test]
fn simulator_duty_variance_matches_theory() {
    let mut cfg = AcceleratorConfig::baseline();
    cfg.weight_memory_bytes = 4096;
    let mem = FlatWeightMemory::new(
        &cfg,
        &NetworkKind::CustomMnist.spec(),
        NumberFormat::Int8Symmetric,
        3,
    );
    let inferences = 50u64;
    let duties = simulate_analytic(
        &mem,
        &AnalyticPolicy::DnnLife {
            bias: 0.5,
            bias_balancing: Some(4),
            seed: 11,
        },
        &AnalyticSimConfig {
            inferences,
            sample_stride: 1,
            threads: 2,
            shards: 0,
        },
    );
    let t = inferences as f64 * mem.block_count() as f64;
    let mean = duties.iter().sum::<f64>() / duties.len() as f64;
    let var = duties.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / duties.len() as f64;
    assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    let theory = 1.0 / (4.0 * t);
    assert!(
        (var / theory - 1.0).abs() < 0.15,
        "variance {var} vs theory {theory}"
    );
}

/// A scaled-down Fig. 9 pipeline: orderings the paper reports must hold.
#[test]
fn fig9_policy_ordering_smoke() {
    let mut results = Vec::new();
    for policy in fig9_policies() {
        let spec = ExperimentSpec {
            platform: Platform::TpuLike,
            network: NetworkKind::CustomMnist,
            format: NumberFormat::Int8Symmetric,
            policy,
            inferences: 100,
            years: 7.0,
            seed: 42,
            sample_stride: 64,
            backend: SimulatorBackend::Analytic,
            dwell: DwellModel::Uniform,
            repair: dnnlife_core::RepairPolicy::None,
            tech: dnnlife_core::MemoryTech::SramNbti,
        };
        results.push((policy, run_experiment(&spec)));
    }
    let mean = |p: &PolicySpec| {
        results
            .iter()
            .find(|(q, _)| q == p)
            .map(|(_, r)| r.snm.mean())
            .expect("policy present")
    };
    let none = mean(&PolicySpec::None);
    let balanced = mean(&PolicySpec::DnnLife {
        bias: 0.5,
        bias_balancing: true,
        m_bits: 4,
    });
    let biased_unbalanced = mean(&PolicySpec::DnnLife {
        bias: 0.7,
        bias_balancing: false,
        m_bits: 4,
    });
    let biased_balanced = mean(&PolicySpec::DnnLife {
        bias: 0.7,
        bias_balancing: true,
        m_bits: 4,
    });
    // DNN-Life (both balanced variants) beats no mitigation.
    assert!(balanced < none);
    assert!(biased_balanced < none);
    // Bias balancing recovers what the biased TRBG loses.
    assert!(biased_balanced < biased_unbalanced);
    // Balanced-bias and corrected-bias land in the same place.
    assert!((balanced - biased_balanced).abs() < 0.3);
}

/// The experiment runner is deterministic for a fixed seed and invariant
/// to the sampling stride only in distribution (mean within noise).
#[test]
fn experiments_are_reproducible() {
    let spec = ExperimentSpec::fig11(
        NetworkKind::CustomMnist,
        PolicySpec::DnnLife {
            bias: 0.7,
            bias_balancing: true,
            m_bits: 4,
        },
        123,
    );
    let mut spec = spec;
    spec.sample_stride = 32;
    let a = run_experiment(&spec);
    let b = run_experiment(&spec);
    assert_eq!(a.histogram.counts(), b.histogram.counts());
    assert_eq!(a.snm.mean(), b.snm.mean());
}

/// The exact backend is reachable through the facade and its uniform-
/// dwell duties agree with the analytic closed forms per cell for a
/// deterministic policy — the cross-validation contract end to end.
#[test]
fn exact_backend_cross_validates_through_facade() {
    let mut spec = ExperimentSpec::fig11(NetworkKind::CustomMnist, PolicySpec::BarrelShifter, 7);
    spec.sample_stride = 512;
    spec.inferences = 8;
    let cv = cross_validate(&spec);
    assert!(
        cv.within_tolerance(),
        "max |Δduty| = {} over {} cells",
        cv.max_abs_duty,
        cv.cells
    );

    // The exact backend also honours a non-uniform residency model the
    // analytic simulator cannot express: relaxing assumption (b) moves
    // the unmitigated duty distribution.
    spec.policy = PolicySpec::None;
    spec.backend = SimulatorBackend::Exact;
    spec.dwell = DwellModel::LayerProportional;
    let weighted = run_experiment(&spec);
    spec.dwell = DwellModel::Uniform;
    let uniform = run_experiment(&spec);
    assert_eq!(weighted.cells, uniform.cells);
    assert!(
        (weighted.duty.mean() - uniform.duty.mean()).abs() > 1e-4,
        "residency weighting changed nothing: {} vs {}",
        weighted.duty.mean(),
        uniform.duty.mean()
    );
}
