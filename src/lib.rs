#![warn(missing_docs)]

//! DNN-Life — an energy-efficient NBTI aging-mitigation framework for
//! on-chip DNN weight memories.
//!
//! This crate is the facade of the workspace reproducing *Hanif &
//! Shafique, DATE 2021*. It re-exports the subsystem crates:
//!
//! | module | contents |
//! |--------|----------|
//! | [`core`] | experiment runner, probabilistic model, reports |
//! | [`campaign`] | parallel scenario sweeps, resumable result store, `dnnlife` CLI |
//! | [`faultsim`] | fault injection: duty cycles → read failures → bit flips → accuracy |
//! | [`nn`] | tensors, layers, training, network zoo, synthetic weights |
//! | [`quant`] | number formats, quantizers, bit-distribution analysis |
//! | [`sram`] | 6T-cell duty cycles, NBTI and SNM models |
//! | [`mitigation`] | WDE/RDD transducers, TRBGs, aging controller |
//! | [`accel`] | accelerator configs, dataflow plans, memory simulators |
//! | [`synth`] | gate-level netlists, STA, power — the Table II pipeline |
//! | [`numerics`] | special functions, binomial tails, samplers |
//!
//! See `examples/quickstart.rs` for a guided tour and the `repro`
//! binary (`cargo run --release -p dnnlife-bench --bin repro -- all`)
//! for the paper's tables and figures.
//!
//! # Example
//!
//! ```
//! use dnn_life::core::experiment::{run_experiment, ExperimentSpec, NetworkKind, PolicySpec};
//!
//! let mut spec = ExperimentSpec::fig11(
//!     NetworkKind::CustomMnist,
//!     PolicySpec::DnnLife { bias: 0.7, bias_balancing: true, m_bits: 4 },
//!     42,
//! );
//! spec.sample_stride = 64;
//! let result = run_experiment(&spec);
//! assert!(result.snm.mean() < 14.0);
//! ```

pub use dnnlife_accel as accel;
pub use dnnlife_campaign as campaign;
pub use dnnlife_core as core;
pub use dnnlife_faultsim as faultsim;
pub use dnnlife_mitigation as mitigation;
pub use dnnlife_nn as nn;
pub use dnnlife_numerics as numerics;
pub use dnnlife_quant as quant;
pub use dnnlife_sram as sram;
pub use dnnlife_synth as synth;
