//! Property tests for the SECDED core, at both supported word widths:
//!
//! * encode → flip any single bit (data *or* parity) → decode recovers
//!   the original data word, for every bit position;
//! * any 2-bit flip is detected, never miscorrected (the delivered
//!   data is the raw corrupted data — the decoder touches nothing);
//! * the syndrome of a clean codeword is zero (and its overall parity
//!   even), so fault-free reads never trigger the corrector.
//!
//! Interleaved layouts are covered too: a physical single-bit flip
//! gathered back through any coprime column stride still corrects.

use dnnlife_quant::ecc::{EccLayout, EccOutcome, SecdedCode};
use proptest::prelude::*;

/// The two stored word widths of `NumberFormat` (8-bit integers, fp32).
const WIDTHS: [u32; 2] = [8, 32];

fn data_word(gen_bits: u64, width: u32) -> u64 {
    gen_bits & ((1u64 << width) - 1)
}

proptest! {
    #[test]
    fn clean_codeword_syndrome_is_zero(raw: u64) {
        for width in WIDTHS {
            let code = SecdedCode::for_data_bits(width);
            let cw = code.encode(data_word(raw, width));
            prop_assert_eq!(code.syndrome(cw), 0);
            prop_assert_eq!(cw.count_ones() % 2, 0, "overall parity must be even");
            let (decoded, outcome) = code.correct(cw);
            prop_assert_eq!(decoded, data_word(raw, width));
            prop_assert!(outcome == EccOutcome::Clean);
        }
    }

    #[test]
    fn any_single_bit_flip_corrects_at_every_position(raw: u64) {
        // Exhaustive over bit positions, random over data words: every
        // (width, position) cell is exercised in every case.
        for width in WIDTHS {
            let code = SecdedCode::for_data_bits(width);
            let data = data_word(raw, width);
            let cw = code.encode(data);
            for bit in 0..code.codeword_bits() {
                let (decoded, outcome) = code.correct(cw ^ (1u64 << bit));
                prop_assert_eq!(decoded, data, "width {} bit {}", width, bit);
                prop_assert!(
                    outcome == EccOutcome::Corrected,
                    "width {} bit {}: {:?}",
                    width,
                    bit,
                    outcome
                );
            }
        }
    }

    #[test]
    fn any_double_bit_flip_is_detected_not_miscorrected(raw: u64, a: u32, b: u32) {
        for width in WIDTHS {
            let code = SecdedCode::for_data_bits(width);
            let n = code.codeword_bits();
            let (a, b) = (a % n, b % n);
            prop_assume!(a != b);
            let data = data_word(raw, width);
            let mask = 1u64 << a | 1u64 << b;
            let (decoded, outcome) = code.correct(code.encode(data) ^ mask);
            prop_assert!(
                outcome == EccOutcome::Detected,
                "width {} bits {},{}: {:?}",
                width,
                a,
                b,
                outcome
            );
            // Detected = delivered uncorrected: the data differs from
            // the original exactly by the data-bit part of the mask.
            let data_flips = mask & ((1u64 << width) - 1);
            prop_assert_eq!(decoded, data ^ data_flips);
            // And the mask-space decoder agrees.
            let d = code.decode_mask(mask);
            prop_assert!(d.outcome == EccOutcome::Detected);
            prop_assert_eq!(d.residual, mask);
        }
    }

    #[test]
    fn batch_decode_masks_matches_scalar_lane_for_lane(seed: u64, len: u16, density: u8) {
        // Pseudo-random mask arrays at both widths (length crossing
        // chunk boundaries, thinned toward the realistic sparse case):
        // the bit-sliced batch decoder must reproduce the scalar
        // decoder's residual and verdict for every lane.
        let len = usize::from(len) % 200;
        for width in WIDTHS {
            let code = SecdedCode::for_data_bits(width);
            let field = (1u64 << code.codeword_bits()) - 1;
            let mut state = seed;
            let masks: Vec<u64> = (0..len)
                .map(|_| {
                    let raw = splitmix(&mut state);
                    let mask = raw & field;
                    match density % 4 {
                        0 => mask,
                        1 => mask & (raw >> 13) & field,
                        2 => mask & (raw >> 13) & (raw >> 26) & field,
                        _ => 0,
                    }
                })
                .collect();
            let batch = code.decode_masks(&masks);
            prop_assert_eq!(batch.len(), masks.len());
            for (i, (&mask, decode)) in masks.iter().zip(&batch).enumerate() {
                prop_assert_eq!(*decode, code.decode_mask(mask), "width {} lane {}", width, i);
            }
        }
    }

    #[test]
    fn interleaved_single_bit_flip_still_corrects(raw: u64, stride_pick: u32, bit_pick: u32) {
        for width in WIDTHS {
            let code = SecdedCode::for_data_bits(width);
            let n = code.codeword_bits();
            // Coprime strides only (13 is prime; 39 = 3·13).
            let strides: Vec<u32> = (1..n).filter(|s| gcd(*s, n) == 1).collect();
            let stride = strides[stride_pick as usize % strides.len()];
            let layout = EccLayout::new(code.clone(), stride);
            let data = data_word(raw, width);
            let phys_mask = 1u64 << (bit_pick % n);
            let d = code.decode_mask(layout.gather_mask(phys_mask));
            prop_assert!(
                d.outcome == EccOutcome::Corrected,
                "width {} stride {}: {:?}",
                width,
                stride,
                d.outcome
            );
            prop_assert_eq!(d.residual, 0);
            // The stored word round-trips through the layout.
            prop_assert_eq!(layout.gather_mask(layout.store(data)), code.encode(data));
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}
