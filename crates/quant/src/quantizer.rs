//! Range-linear quantizers for the paper's three weight formats.

use dnnlife_nn::weights::WeightRange;
use serde::{Deserialize, Serialize};

/// The data representation formats studied in Fig. 6 / Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NumberFormat {
    /// IEEE-754 single precision (stored as its raw 32-bit pattern).
    Fp32,
    /// 8-bit signed integer, symmetric range-linear quantization:
    /// `q = round(w / s)` with `s = max|w| / 127`.
    Int8Symmetric,
    /// 8-bit unsigned integer, asymmetric range-linear quantization:
    /// `q = round(w / s) + z` with `s = (max - min) / 255`.
    Int8Asymmetric,
}

impl NumberFormat {
    /// Stored word width in bits.
    pub fn bits(self) -> usize {
        match self {
            NumberFormat::Fp32 => 32,
            NumberFormat::Int8Symmetric | NumberFormat::Int8Asymmetric => 8,
        }
    }

    /// All formats, in the order the paper's figures present them.
    pub fn all() -> [NumberFormat; 3] {
        [
            NumberFormat::Fp32,
            NumberFormat::Int8Symmetric,
            NumberFormat::Int8Asymmetric,
        ]
    }
}

impl std::fmt::Display for NumberFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumberFormat::Fp32 => write!(f, "32-bit floating point"),
            NumberFormat::Int8Symmetric => write!(f, "8-bit integer (symmetric)"),
            NumberFormat::Int8Asymmetric => write!(f, "8-bit integer (asymmetric)"),
        }
    }
}

/// A calibrated weight encoder/decoder for one layer.
///
/// `encode` produces the *stored bit pattern* (the low
/// [`NumberFormat::bits`] bits of the returned `u32`) — exactly what the
/// weight memory cells hold and what the aging analysis consumes.
///
/// # Example
///
/// ```
/// use dnnlife_quant::{NumberFormat, Quantizer};
/// use dnnlife_nn::weights::WeightRange;
///
/// let range = WeightRange { min: -1.0, max: 1.0, sampled: 100 };
/// let q = Quantizer::calibrate(NumberFormat::Int8Asymmetric, &range);
/// // Asymmetric zero-point of a symmetric range sits at mid-scale.
/// let zero_code = q.encode(0.0);
/// assert!(zero_code == 127 || zero_code == 128);
/// // Zero decodes back to (near) zero.
/// assert!(q.decode(zero_code).abs() <= q.max_roundtrip_error());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Quantizer {
    /// Pass-through to the IEEE-754 bit pattern.
    Fp32,
    /// Symmetric: `q = clamp(round(w / scale), -127, 127)` stored as two's
    /// complement `i8`.
    Int8Symmetric {
        /// Quantization step.
        scale: f32,
    },
    /// Asymmetric: `q = clamp(round(w / scale) + zero_point, 0, 255)`.
    Int8Asymmetric {
        /// Quantization step.
        scale: f32,
        /// The stored code representing the real value 0.
        zero_point: u8,
    },
}

impl Quantizer {
    /// Calibrates a quantizer of the given format from an observed weight
    /// range (range-linear post-training quantization, the paper's ref. 24).
    ///
    /// Degenerate ranges (all-zero layers) fall back to a unit scale so
    /// `encode` stays total.
    pub fn calibrate(format: NumberFormat, range: &WeightRange) -> Self {
        match format {
            NumberFormat::Fp32 => Quantizer::Fp32,
            NumberFormat::Int8Symmetric => {
                let abs_max = range.abs_max();
                let scale = if abs_max > 0.0 { abs_max / 127.0 } else { 1.0 };
                Quantizer::Int8Symmetric { scale }
            }
            NumberFormat::Int8Asymmetric => {
                // The representable range must include 0 so that zero
                // weights are exact (standard asymmetric convention).
                let lo = range.min.min(0.0);
                let hi = range.max.max(0.0);
                let span = hi - lo;
                let scale = if span > 0.0 { span / 255.0 } else { 1.0 };
                let zero_point = (-lo / scale).round().clamp(0.0, 255.0) as u8;
                Quantizer::Int8Asymmetric { scale, zero_point }
            }
        }
    }

    /// The format this quantizer produces.
    pub fn format(&self) -> NumberFormat {
        match self {
            Quantizer::Fp32 => NumberFormat::Fp32,
            Quantizer::Int8Symmetric { .. } => NumberFormat::Int8Symmetric,
            Quantizer::Int8Asymmetric { .. } => NumberFormat::Int8Asymmetric,
        }
    }

    /// Stored word width in bits.
    pub fn bits(&self) -> usize {
        self.format().bits()
    }

    /// Encodes a weight into its stored bit pattern (low `bits()` bits).
    pub fn encode(&self, w: f32) -> u32 {
        match *self {
            Quantizer::Fp32 => w.to_bits(),
            Quantizer::Int8Symmetric { scale } => {
                let q = (w / scale).round().clamp(-127.0, 127.0) as i8;
                u32::from(q as u8)
            }
            Quantizer::Int8Asymmetric { scale, zero_point } => {
                let q = (w / scale).round() + f32::from(zero_point);
                q.clamp(0.0, 255.0) as u32
            }
        }
    }

    /// Decodes a stored bit pattern back to a real value.
    ///
    /// For the integer formats this is the usual dequantization
    /// `(q - z) * scale`; for fp32 it reinterprets the bits.
    pub fn decode(&self, bits: u32) -> f32 {
        match *self {
            Quantizer::Fp32 => f32::from_bits(bits),
            Quantizer::Int8Symmetric { scale } => {
                let q = (bits & 0xFF) as u8 as i8;
                f32::from(q) * scale
            }
            Quantizer::Int8Asymmetric { scale, zero_point } => {
                let q = (bits & 0xFF) as u8;
                (f32::from(q) - f32::from(zero_point)) * scale
            }
        }
    }

    /// Decodes a stored bit pattern that may have been corrupted by
    /// memory faults (the fault-injection path).
    ///
    /// For the integer formats this is exactly [`Quantizer::decode`] —
    /// every 8-bit pattern decodes to a finite value. For fp32 a bit
    /// flip can land on a NaN/infinity encoding or a ~1e38 magnitude;
    /// executing a network on those poisons every downstream
    /// activation (and NaN logits make argmax ill-defined), so this
    /// decoder saturates: non-finite decodes become 0.0 and finite
    /// magnitudes clamp to ±[`Quantizer::FP32_FAULT_CLAMP`] — still
    /// catastrophically wrong values, but ones inference arithmetic
    /// stays total on.
    pub fn decode_corrupted(&self, bits: u32) -> f32 {
        let w = self.decode(bits);
        match self {
            Quantizer::Fp32 => {
                if !w.is_finite() {
                    0.0
                } else {
                    w.clamp(-Self::FP32_FAULT_CLAMP, Self::FP32_FAULT_CLAMP)
                }
            }
            _ => w,
        }
    }

    /// Magnitude ceiling applied by [`Quantizer::decode_corrupted`] to
    /// fault-corrupted fp32 weights.
    pub const FP32_FAULT_CLAMP: f32 = 1e30;

    /// Worst-case absolute round-trip error for in-range inputs
    /// (half a quantization step; 0 for fp32).
    pub fn max_roundtrip_error(&self) -> f32 {
        match *self {
            Quantizer::Fp32 => 0.0,
            Quantizer::Int8Symmetric { scale } | Quantizer::Int8Asymmetric { scale, .. } => {
                scale / 2.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(min: f32, max: f32) -> WeightRange {
        WeightRange {
            min,
            max,
            sampled: 1,
        }
    }

    #[test]
    fn fp32_roundtrip_is_exact() {
        let q = Quantizer::calibrate(NumberFormat::Fp32, &range(-1.0, 1.0));
        for w in [-0.123f32, 0.0, 1e-20, 3.5e7, -0.0] {
            assert_eq!(q.decode(q.encode(w)).to_bits(), w.to_bits());
        }
    }

    #[test]
    fn symmetric_scale_from_abs_max() {
        let q = Quantizer::calibrate(NumberFormat::Int8Symmetric, &range(-0.5, 0.25));
        match q {
            Quantizer::Int8Symmetric { scale } => {
                assert!((scale - 0.5 / 127.0).abs() < 1e-9);
            }
            _ => panic!("wrong variant"),
        }
        // Extremes map to ±127 (so the code is symmetric).
        assert_eq!(q.encode(-0.5) as u8 as i8, -127);
        assert_eq!(q.encode(0.5) as u8 as i8, 127);
        assert_eq!(q.encode(0.0), 0);
    }

    #[test]
    fn symmetric_roundtrip_error_bounded() {
        let q = Quantizer::calibrate(NumberFormat::Int8Symmetric, &range(-0.3, 0.3));
        let bound = q.max_roundtrip_error();
        let mut w = -0.3f32;
        while w <= 0.3 {
            let err = (q.decode(q.encode(w)) - w).abs();
            assert!(err <= bound + 1e-7, "w={w} err={err}");
            w += 0.001;
        }
    }

    #[test]
    fn asymmetric_zero_point_and_range() {
        let q = Quantizer::calibrate(NumberFormat::Int8Asymmetric, &range(-0.4, 1.2));
        match q {
            Quantizer::Int8Asymmetric { scale, zero_point } => {
                assert!((scale - 1.6 / 255.0).abs() < 1e-8);
                assert_eq!(zero_point, 64); // -(-0.4)/scale = 63.75 → 64
            }
            _ => panic!("wrong variant"),
        }
        // Zero encodes near the zero point and decodes back to ~0.
        let z = q.encode(0.0);
        assert!((q.decode(z)).abs() <= q.max_roundtrip_error());
        // Range extremes stay in [0, 255].
        assert_eq!(q.encode(-0.4), 0);
        assert_eq!(q.encode(1.2), 255);
    }

    #[test]
    fn asymmetric_positive_only_range_includes_zero() {
        // All-positive weights: the code range must still represent 0.
        let q = Quantizer::calibrate(NumberFormat::Int8Asymmetric, &range(0.1, 0.9));
        match q {
            Quantizer::Int8Asymmetric { zero_point, .. } => assert_eq!(zero_point, 0),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn asymmetric_roundtrip_error_bounded() {
        let q = Quantizer::calibrate(NumberFormat::Int8Asymmetric, &range(-0.2, 0.7));
        let bound = q.max_roundtrip_error();
        let mut w = -0.2f32;
        while w <= 0.7 {
            let err = (q.decode(q.encode(w)) - w).abs();
            assert!(err <= bound + 1e-6, "w={w} err={err}");
            w += 0.001;
        }
    }

    #[test]
    fn clamping_out_of_range() {
        let q = Quantizer::calibrate(NumberFormat::Int8Symmetric, &range(-0.1, 0.1));
        assert_eq!(q.encode(5.0) as u8 as i8, 127);
        assert_eq!(q.encode(-5.0) as u8 as i8, -127);
    }

    #[test]
    fn degenerate_range_fallback() {
        let q = Quantizer::calibrate(NumberFormat::Int8Symmetric, &range(0.0, 0.0));
        assert_eq!(q.encode(0.0), 0);
        let q = Quantizer::calibrate(NumberFormat::Int8Asymmetric, &range(0.0, 0.0));
        let bits = q.encode(0.0);
        assert!((q.decode(bits)).abs() < 1e-6);
    }

    #[test]
    fn encoded_words_fit_width() {
        for fmt in [NumberFormat::Int8Symmetric, NumberFormat::Int8Asymmetric] {
            let q = Quantizer::calibrate(fmt, &range(-1.0, 0.5));
            for i in -100..=100 {
                let bits = q.encode(i as f32 * 0.01);
                assert!(bits < 256, "format {fmt:?} produced wide word {bits}");
            }
        }
    }

    #[test]
    fn corrupted_decode_matches_decode_for_integer_formats() {
        for fmt in [NumberFormat::Int8Symmetric, NumberFormat::Int8Asymmetric] {
            let q = Quantizer::calibrate(fmt, &range(-0.7, 0.4));
            for bits in 0u32..=255 {
                assert_eq!(q.decode_corrupted(bits), q.decode(bits));
            }
        }
    }

    #[test]
    fn corrupted_decode_sanitizes_fp32() {
        let q = Quantizer::Fp32;
        // NaN and infinities saturate to zero.
        assert_eq!(q.decode_corrupted(f32::NAN.to_bits()), 0.0);
        assert_eq!(q.decode_corrupted(f32::INFINITY.to_bits()), 0.0);
        assert_eq!(q.decode_corrupted(f32::NEG_INFINITY.to_bits()), 0.0);
        // Huge finite magnitudes clamp (sign preserved).
        assert_eq!(
            q.decode_corrupted(f32::MAX.to_bits()),
            Quantizer::FP32_FAULT_CLAMP
        );
        assert_eq!(
            q.decode_corrupted((-f32::MAX).to_bits()),
            -Quantizer::FP32_FAULT_CLAMP
        );
        // Ordinary values pass through bit-exactly.
        for w in [-0.123f32, 0.0, 1e-20, 3.5e7] {
            assert_eq!(q.decode_corrupted(w.to_bits()), w);
        }
    }

    #[test]
    fn format_metadata() {
        assert_eq!(NumberFormat::Fp32.bits(), 32);
        assert_eq!(NumberFormat::Int8Symmetric.bits(), 8);
        assert_eq!(NumberFormat::all().len(), 3);
        assert_eq!(
            NumberFormat::Int8Asymmetric.to_string(),
            "8-bit integer (asymmetric)"
        );
    }
}
