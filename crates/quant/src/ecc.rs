//! SECDED error-correcting codes over stored weight words.
//!
//! Aging-induced read failures flip stored bits; duty-balancing
//! policies only slow the aging down. This module adds the *repair*
//! axis: a Hamming-plus-overall-parity SECDED code over each stored
//! weight word, in the two geometries the workspace's formats need —
//! (13,8) for the 8-bit integer formats and (39,32) for fp32 (the
//! classic (72,64)/(39,32) construction at this word size). Every
//! single-bit error in a codeword (data *or* parity) is corrected,
//! every double-bit error is detected-not-miscorrected, and triple and
//! heavier errors may escape or miscorrect — exactly the envelope the
//! fault-injection pipeline counts.
//!
//! The codeword layout is `[data 0..k | check k..k+r | overall parity]`
//! with H-matrix columns assigned the textbook way: check bit `j`
//! carries column `2^j`, data bits take the non-power-of-two columns in
//! ascending order, and the overall parity bit covers the whole word so
//! double errors (even parity, nonzero syndrome) are distinguishable
//! from single errors (odd parity).
//!
//! # Example
//!
//! ```
//! use dnnlife_quant::ecc::{EccOutcome, SecdedCode};
//!
//! let code = SecdedCode::for_data_bits(8);
//! assert_eq!(code.codeword_bits(), 13);
//! let cw = code.encode(0xA7);
//! assert_eq!(code.syndrome(cw), 0);
//! let (data, outcome) = code.correct(cw ^ (1 << 11)); // flip a check bit
//! assert_eq!(data, 0xA7);
//! assert_eq!(outcome, EccOutcome::Corrected);
//! ```

use serde::{Deserialize, Serialize};

/// What the SECDED decoder concluded about one word read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// Zero syndrome, even parity: the word is (or decodes as) error
    /// free.
    Clean,
    /// A single-bit error was located and removed; the delivered data
    /// is exact.
    Corrected,
    /// An uncorrectable error was flagged (double-bit, or a heavier
    /// pattern whose syndrome matches no column); the data is delivered
    /// with its raw errors.
    Detected,
    /// The decoder believed it corrected a single-bit error but errors
    /// remain (a ≥3-bit pattern aliasing a valid column) — the worst
    /// case: wrong data delivered as good.
    Escaped,
}

/// Residual error mask and decoder verdict for one word read
/// ([`SecdedCode::decode_mask`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskDecode {
    /// Error bits still present after the decoder's action, in codeword
    /// bit positions (data bits are the low `data_bits`).
    pub residual: u64,
    /// The decoder's verdict.
    pub outcome: EccOutcome,
}

/// A SECDED code for one of the workspace's stored word widths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecdedCode {
    data_bits: u32,
    check_bits: u32,
    /// H-matrix column of data bit `i` (ascending non-powers-of-two).
    data_cols: Vec<u32>,
    /// Codeword bit position for each syndrome value (`-1` = no bit
    /// carries that column: an uncorrectable multi-bit pattern).
    col_to_pos: Vec<i8>,
}

impl SecdedCode {
    /// Builds the code for `data_bits` ∈ {8, 32} — the stored word
    /// widths of [`crate::NumberFormat`].
    ///
    /// # Panics
    ///
    /// Panics on any other width.
    pub fn for_data_bits(data_bits: u32) -> Self {
        let check_bits = match data_bits {
            8 => 4,
            32 => 6,
            other => panic!("SecdedCode: unsupported data width {other}"),
        };
        // Data columns: ascending positive non-powers-of-two.
        let mut data_cols = Vec::with_capacity(data_bits as usize);
        let mut col = 3u32;
        while data_cols.len() < data_bits as usize {
            if !col.is_power_of_two() {
                data_cols.push(col);
            }
            col += 1;
        }
        debug_assert!(*data_cols.last().unwrap() < 1 << check_bits);
        let mut col_to_pos = vec![-1i8; 1 << check_bits];
        // Syndrome 0 with odd overall parity = the parity bit itself.
        col_to_pos[0] = (data_bits + check_bits) as i8;
        for j in 0..check_bits {
            col_to_pos[1 << j] = (data_bits + j) as i8;
        }
        for (i, &c) in data_cols.iter().enumerate() {
            col_to_pos[c as usize] = i as i8;
        }
        Self {
            data_bits,
            check_bits,
            data_cols,
            col_to_pos,
        }
    }

    /// Data width in bits (8 or 32).
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Stored overhead: Hamming check bits plus the overall parity bit
    /// (5 for 8-bit words, 7 for 32-bit).
    pub fn parity_bits(&self) -> u32 {
        self.check_bits + 1
    }

    /// Total codeword width (13 or 39).
    pub fn codeword_bits(&self) -> u32 {
        self.data_bits + self.parity_bits()
    }

    /// Encodes a data word into its codeword (data in the low bits,
    /// check bits above, overall parity on top).
    ///
    /// # Panics
    ///
    /// Panics if `data` has bits above `data_bits`.
    pub fn encode(&self, data: u64) -> u64 {
        assert_eq!(
            data >> self.data_bits,
            0,
            "SecdedCode::encode: data wider than {} bits",
            self.data_bits
        );
        let mut cw = data;
        for j in 0..self.check_bits {
            let mut p = 0u64;
            for (i, &c) in self.data_cols.iter().enumerate() {
                p ^= (data >> i) & u64::from(c >> j & 1);
            }
            cw |= p << (self.data_bits + j);
        }
        let overall = u64::from(cw.count_ones() & 1);
        cw | overall << (self.data_bits + self.check_bits)
    }

    /// The Hamming syndrome of a received word (0 for every valid
    /// codeword; the overall parity bit carries column 0).
    pub fn syndrome(&self, word: u64) -> u32 {
        let mut s = 0u32;
        for (i, &c) in self.data_cols.iter().enumerate() {
            if word >> i & 1 == 1 {
                s ^= c;
            }
        }
        for j in 0..self.check_bits {
            if word >> (self.data_bits + j) & 1 == 1 {
                s ^= 1 << j;
            }
        }
        s
    }

    /// Runs the decoder on an *error mask* (which bits flipped). Codes
    /// are linear, so the syndrome of `codeword ^ mask` equals the
    /// syndrome of `mask` — the decoder's action depends only on the
    /// error pattern, never on the stored data. Returns the error bits
    /// remaining after the decoder's correction attempt and its
    /// verdict.
    pub fn decode_mask(&self, mask: u64) -> MaskDecode {
        if mask == 0 {
            return MaskDecode {
                residual: 0,
                outcome: EccOutcome::Clean,
            };
        }
        let s = self.syndrome(mask) as usize;
        if mask.count_ones() & 1 == 1 {
            // Odd parity: the decoder attempts a single-bit correction
            // at the position carrying column `s`.
            let pos = self.col_to_pos[s];
            if pos < 0 {
                // ≥3 errors whose syndrome matches no column: flagged.
                return MaskDecode {
                    residual: mask,
                    outcome: EccOutcome::Detected,
                };
            }
            let residual = mask ^ (1u64 << pos);
            return MaskDecode {
                residual,
                outcome: if residual == 0 {
                    EccOutcome::Corrected
                } else {
                    EccOutcome::Escaped
                },
            };
        }
        // Even parity with a nonzero pattern: double-error detection
        // (or a heavier even pattern) — flagged, delivered uncorrected.
        MaskDecode {
            residual: mask,
            outcome: EccOutcome::Detected,
        }
    }

    /// Bit-sliced batch decoder: [`SecdedCode::decode_mask`] over a
    /// whole array of error masks, 64 codewords per syndrome
    /// operation. The masks are transposed into codeword-bit planes
    /// (sparse — only set bits are visited, and fault-free words cost
    /// nothing), each syndrome bit is one XOR reduction over the
    /// planes its H-matrix row covers, and only lanes with a nonzero
    /// mask fall back to the per-word correction lookup. Verdicts and
    /// residuals are identical to the scalar decoder lane for lane.
    pub fn decode_masks(&self, masks: &[u64]) -> Vec<MaskDecode> {
        let width = self.codeword_bits() as usize;
        let data_bits = self.data_bits as usize;
        let check_bits = self.check_bits as usize;
        let mut out = Vec::with_capacity(masks.len());
        let mut planes = vec![0u64; width];
        for chunk in masks.chunks(64) {
            let mut nonzero = 0u64;
            for (t, &mask) in chunk.iter().enumerate() {
                if mask == 0 {
                    continue;
                }
                nonzero |= 1u64 << t;
                let mut m = mask;
                while m != 0 {
                    planes[m.trailing_zeros() as usize] |= 1u64 << t;
                    m &= m - 1;
                }
            }
            if nonzero == 0 {
                out.extend(chunk.iter().map(|_| MaskDecode {
                    residual: 0,
                    outcome: EccOutcome::Clean,
                }));
                continue;
            }
            // Syndrome bit-planes: bit `t` of `s_planes[j]` is bit `j`
            // of lane `t`'s syndrome. Check bit `j` carries column
            // `2^j`; the overall parity bit carries column 0.
            let mut s_planes = [0u64; 8];
            for (j, s_plane) in s_planes.iter_mut().take(check_bits).enumerate() {
                let mut acc = planes[data_bits + j];
                for (i, &c) in self.data_cols.iter().enumerate() {
                    if c >> j & 1 == 1 {
                        acc ^= planes[i];
                    }
                }
                *s_plane = acc;
            }
            let parity = planes.iter().fold(0u64, |acc, &p| acc ^ p);
            for (t, &mask) in chunk.iter().enumerate() {
                if nonzero >> t & 1 == 0 {
                    out.push(MaskDecode {
                        residual: 0,
                        outcome: EccOutcome::Clean,
                    });
                    continue;
                }
                let mut s = 0usize;
                for (j, &sp) in s_planes.iter().take(check_bits).enumerate() {
                    s |= ((sp >> t & 1) as usize) << j;
                }
                out.push(if parity >> t & 1 == 1 {
                    let pos = self.col_to_pos[s];
                    if pos < 0 {
                        MaskDecode {
                            residual: mask,
                            outcome: EccOutcome::Detected,
                        }
                    } else {
                        let residual = mask ^ (1u64 << pos);
                        MaskDecode {
                            residual,
                            outcome: if residual == 0 {
                                EccOutcome::Corrected
                            } else {
                                EccOutcome::Escaped
                            },
                        }
                    }
                } else {
                    MaskDecode {
                        residual: mask,
                        outcome: EccOutcome::Detected,
                    }
                });
            }
            planes.iter_mut().for_each(|p| *p = 0);
        }
        out
    }

    /// Decodes a received word: corrects a located single-bit error and
    /// returns the data bits plus the verdict (the data still carries
    /// errors under `Detected`/`Escaped`).
    pub fn correct(&self, word: u64) -> (u64, EccOutcome) {
        // The received word's syndrome and parity equal its error
        // mask's (valid codewords have zero syndrome and even parity),
        // so re-derive the decoder action through `decode_mask`'s exact
        // logic on the word itself.
        let s = self.syndrome(word) as usize;
        let odd = word.count_ones() & 1 == 1;
        let data_mask = (1u64 << self.data_bits) - 1;
        if s == 0 && !odd {
            return (word & data_mask, EccOutcome::Clean);
        }
        if odd {
            let pos = self.col_to_pos[s];
            if pos < 0 {
                return (word & data_mask, EccOutcome::Detected);
            }
            let fixed = word ^ (1u64 << pos);
            // A single-bit error is indistinguishable from an aliasing
            // ≥3-bit pattern at the receiver; report the optimistic
            // verdict (the injection path, which knows the true mask,
            // uses `decode_mask` and can tell `Escaped` apart).
            return (fixed & data_mask, EccOutcome::Corrected);
        }
        (word & data_mask, EccOutcome::Detected)
    }
}

/// Physical storage layout of a SECDED codeword: which memory column
/// holds each logical codeword bit. `interleave` is the column stride —
/// logical bit `i` lands in physical column `(i * interleave) mod
/// width` — and must be coprime with the codeword width so the map is a
/// bijection. Stride 1 is the identity layout; larger strides scatter
/// the parity bits among the data columns (so, e.g., a barrel-rotated
/// aging schedule wears logically-adjacent bits at non-adjacent
/// columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EccLayout {
    code: SecdedCode,
    interleave: u32,
}

impl EccLayout {
    /// Builds a layout over `code` with the given column stride.
    ///
    /// # Panics
    ///
    /// Panics if `interleave` is 0 or shares a factor with the codeword
    /// width.
    pub fn new(code: SecdedCode, interleave: u32) -> Self {
        let width = code.codeword_bits();
        assert!(
            interleave >= 1 && gcd(interleave, width) == 1,
            "EccLayout: interleave {interleave} is not coprime with codeword width {width}"
        );
        Self { code, interleave }
    }

    /// The underlying code.
    pub fn code(&self) -> &SecdedCode {
        &self.code
    }

    /// Physical word width (= codeword width).
    pub fn width(&self) -> u32 {
        self.code.codeword_bits()
    }

    /// Physical column of logical codeword bit `i`.
    fn column(&self, i: u32) -> u32 {
        (i * self.interleave) % self.width()
    }

    /// Encodes a data word and scatters the codeword into physical
    /// column order — what the memory plan stores.
    pub fn store(&self, data: u64) -> u64 {
        let cw = self.code.encode(data);
        if self.interleave == 1 {
            return cw;
        }
        let mut phys = 0u64;
        for i in 0..self.width() {
            phys |= (cw >> i & 1) << self.column(i);
        }
        phys
    }

    /// Maps a physical-column bit mask (which cells flipped) back to
    /// logical codeword positions for the decoder.
    pub fn gather_mask(&self, phys: u64) -> u64 {
        if self.interleave == 1 {
            return phys;
        }
        let mut logical = 0u64;
        for i in 0..self.width() {
            logical |= (phys >> self.column(i) & 1) << i;
        }
        logical
    }
}

/// The repair axis of an experiment: what error correction, if any,
/// wraps the stored weight words. The SECDED engine sits at the SRAM
/// array port, *below* the mitigation logic: every raw word read is
/// syndrome-checked and corrected first, and the policy's read-decode
/// permutation then reconstructs the logical weight from the corrected
/// data bits. Parity cells are real SRAM columns — they are written on
/// every weight write and age under the same duty model as data cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RepairPolicy {
    /// No error correction (the workspace's historical behaviour).
    #[default]
    None,
    /// Hamming SECDED over each stored word — (13,8) for the 8-bit
    /// formats, (39,32) for fp32.
    Secded {
        /// Physical column stride of the codeword layout (see
        /// [`EccLayout`]); 1 = identity. Must be coprime with the
        /// codeword width.
        interleave: u8,
    },
}

impl RepairPolicy {
    /// Whether this is the no-repair axis value.
    pub fn is_none(&self) -> bool {
        matches!(self, RepairPolicy::None)
    }

    /// Parity overhead per stored word of `data_bits` (0 without ECC).
    pub fn parity_bits(&self, data_bits: u32) -> u32 {
        match self {
            RepairPolicy::None => 0,
            RepairPolicy::Secded { .. } => SecdedCode::for_data_bits(data_bits).parity_bits(),
        }
    }

    /// Stored word width for `data_bits` under this policy.
    pub fn stored_bits(&self, data_bits: u32) -> u32 {
        data_bits + self.parity_bits(data_bits)
    }

    /// The physical layout for words of `data_bits`, or `None` without
    /// ECC.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid for this width (see
    /// [`RepairPolicy::is_valid_for`]).
    pub fn layout(&self, data_bits: u32) -> Option<EccLayout> {
        match *self {
            RepairPolicy::None => None,
            RepairPolicy::Secded { interleave } => Some(EccLayout::new(
                SecdedCode::for_data_bits(data_bits),
                u32::from(interleave),
            )),
        }
    }

    /// Whether the policy can wrap words of `data_bits`: the interleave
    /// stride must be ≥ 1 and coprime with the codeword width (13 for
    /// 8-bit words, 39 for 32-bit).
    pub fn is_valid_for(&self, data_bits: u32) -> bool {
        match *self {
            RepairPolicy::None => true,
            RepairPolicy::Secded { interleave } => {
                let width = SecdedCode::for_data_bits(data_bits).codeword_bits();
                interleave >= 1 && gcd(u32::from(interleave), width) == 1
            }
        }
    }

    /// CLI / report name (`none`, `secded`, `secded:5`).
    pub fn display_name(&self) -> String {
        match *self {
            RepairPolicy::None => "none".to_string(),
            RepairPolicy::Secded { interleave: 1 } => "secded".to_string(),
            RepairPolicy::Secded { interleave } => format!("secded:{interleave}"),
        }
    }

    /// Parses a CLI name: `none`, `secded`, or `secded:STRIDE`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "none" => return Some(RepairPolicy::None),
            "secded" => return Some(RepairPolicy::Secded { interleave: 1 }),
            _ => {}
        }
        name.strip_prefix("secded:")?
            .parse()
            .ok()
            .filter(|&i: &u8| i >= 1)
            .map(|interleave| RepairPolicy::Secded { interleave })
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometries_match_the_classic_construction() {
        let c8 = SecdedCode::for_data_bits(8);
        assert_eq!(c8.codeword_bits(), 13);
        assert_eq!(c8.parity_bits(), 5);
        let c32 = SecdedCode::for_data_bits(32);
        assert_eq!(c32.codeword_bits(), 39);
        assert_eq!(c32.parity_bits(), 7);
    }

    #[test]
    #[should_panic(expected = "unsupported data width")]
    fn rejects_unsupported_widths() {
        let _ = SecdedCode::for_data_bits(16);
    }

    #[test]
    fn clean_codewords_have_zero_syndrome_and_even_parity() {
        let code = SecdedCode::for_data_bits(8);
        for data in 0u64..256 {
            let cw = code.encode(data);
            assert_eq!(code.syndrome(cw), 0, "data {data:#x}");
            assert_eq!(cw.count_ones() % 2, 0, "data {data:#x}");
            assert_eq!(cw & 0xFF, data, "data bits live in the low bits");
        }
    }

    #[test]
    fn every_single_bit_flip_corrects_exhaustively() {
        for width in [8u32, 32] {
            let code = SecdedCode::for_data_bits(width);
            let data = if width == 8 { 0xB6 } else { 0xDEAD_BEEF };
            let cw = code.encode(data);
            for bit in 0..code.codeword_bits() {
                let (decoded, outcome) = code.correct(cw ^ (1u64 << bit));
                assert_eq!(decoded, data, "width {width} bit {bit}");
                assert_eq!(outcome, EccOutcome::Corrected, "width {width} bit {bit}");
                let d = code.decode_mask(1u64 << bit);
                assert_eq!(d.outcome, EccOutcome::Corrected);
                assert_eq!(d.residual, 0);
            }
        }
    }

    #[test]
    fn double_flips_are_detected_exhaustively_at_8_bits() {
        let code = SecdedCode::for_data_bits(8);
        for a in 0..13u32 {
            for b in (a + 1)..13 {
                let d = code.decode_mask(1u64 << a | 1u64 << b);
                assert_eq!(d.outcome, EccOutcome::Detected, "bits {a},{b}");
                assert_eq!(d.residual, 1u64 << a | 1u64 << b);
            }
        }
    }

    #[test]
    fn triple_flips_escape_or_flag_but_never_report_corrected_falsely() {
        let code = SecdedCode::for_data_bits(8);
        let mut escaped = 0usize;
        for a in 0..13u32 {
            for b in (a + 1)..13 {
                for c in (b + 1)..13 {
                    let mask = 1u64 << a | 1u64 << b | 1u64 << c;
                    let d = code.decode_mask(mask);
                    match d.outcome {
                        EccOutcome::Escaped => {
                            escaped += 1;
                            assert_ne!(d.residual, 0);
                        }
                        EccOutcome::Detected => assert_eq!(d.residual, mask),
                        other => panic!("triple flip decoded as {other:?}"),
                    }
                }
            }
        }
        assert!(escaped > 0, "some 3-bit patterns alias a single-bit column");
    }

    #[test]
    fn batch_decoder_matches_scalar_exhaustively_at_8_bits() {
        // Every 13-bit mask (8192 of them) in one batch: the bit-sliced
        // decoder must agree with the scalar decoder lane for lane,
        // across chunk boundaries and for the all-zero tail.
        let code = SecdedCode::for_data_bits(8);
        let mut masks: Vec<u64> = (0u64..1 << 13).collect();
        masks.extend([0u64; 70]);
        let batch = code.decode_masks(&masks);
        assert_eq!(batch.len(), masks.len());
        for (&mask, decode) in masks.iter().zip(&batch) {
            assert_eq!(*decode, code.decode_mask(mask), "mask {mask:#06x}");
        }
    }

    #[test]
    fn layout_interleave_is_a_bijection_and_round_trips() {
        let code = SecdedCode::for_data_bits(8);
        for stride in [1u32, 2, 5, 12] {
            let layout = EccLayout::new(code.clone(), stride);
            for data in [0u64, 0xFF, 0xA5] {
                let phys = layout.store(data);
                assert_eq!(
                    layout.gather_mask(phys),
                    code.encode(data),
                    "stride {stride} data {data:#x}"
                );
            }
            // Columns are a permutation.
            let cols: std::collections::BTreeSet<u32> = (0..13).map(|i| layout.column(i)).collect();
            assert_eq!(cols.len(), 13);
        }
    }

    #[test]
    #[should_panic(expected = "not coprime")]
    fn layout_rejects_non_coprime_stride() {
        let _ = EccLayout::new(SecdedCode::for_data_bits(32), 3); // 39 = 3 · 13
    }

    #[test]
    fn repair_policy_metadata_and_parsing() {
        assert!(RepairPolicy::None.is_none());
        assert_eq!(RepairPolicy::None.parity_bits(8), 0);
        assert_eq!(RepairPolicy::Secded { interleave: 1 }.stored_bits(8), 13);
        assert_eq!(RepairPolicy::Secded { interleave: 1 }.stored_bits(32), 39);
        assert_eq!(RepairPolicy::parse("none"), Some(RepairPolicy::None));
        assert_eq!(
            RepairPolicy::parse("secded"),
            Some(RepairPolicy::Secded { interleave: 1 })
        );
        assert_eq!(
            RepairPolicy::parse("secded:5"),
            Some(RepairPolicy::Secded { interleave: 5 })
        );
        assert_eq!(RepairPolicy::parse("secded:0"), None);
        assert_eq!(RepairPolicy::parse("hamming"), None);
        assert_eq!(
            RepairPolicy::Secded { interleave: 1 }.display_name(),
            "secded"
        );
        assert_eq!(
            RepairPolicy::Secded { interleave: 5 }.display_name(),
            "secded:5"
        );
        // 39 = 3 · 13: stride 3 fits 8-bit words (13 is prime) but not
        // fp32 codewords.
        let p = RepairPolicy::Secded { interleave: 3 };
        assert!(p.is_valid_for(8));
        assert!(!p.is_valid_for(32));
    }

    #[test]
    fn repair_policy_serde_round_trips() {
        for p in [
            RepairPolicy::None,
            RepairPolicy::Secded { interleave: 1 },
            RepairPolicy::Secded { interleave: 5 },
        ] {
            let v = p.to_value();
            assert_eq!(RepairPolicy::from_value(&v).unwrap(), p);
        }
    }
}
