//! Per-bit-position `1`-probability analysis (the paper's Fig. 6).

use crate::quantizer::{NumberFormat, Quantizer};
use dnnlife_nn::weights::LayerWeightGen;
use dnnlife_nn::zoo::NetworkSpec;

/// Default per-layer sample cap for network-level analysis. A million
/// samples bounds the per-bit probability standard error below 0.0005 —
/// invisible at Fig. 6 scale — while keeping VGG-16 analysis fast.
pub const DEFAULT_SAMPLE_CAP: u64 = 1_000_000;

/// Counts of observed `1`s per bit position (bit 0 = LSB).
///
/// # Example
///
/// ```
/// use dnnlife_quant::BitDistribution;
///
/// let mut d = BitDistribution::new(8);
/// d.record(0b1000_0001);
/// d.record(0b0000_0001);
/// assert_eq!(d.probability(0), 1.0);
/// assert_eq!(d.probability(7), 0.5);
/// assert_eq!(d.probability(3), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BitDistribution {
    ones: Vec<f64>,
    total: f64,
}

impl BitDistribution {
    /// Creates an empty distribution over `bits` positions.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 32`.
    pub fn new(bits: usize) -> Self {
        assert!(
            bits > 0 && bits <= 32,
            "BitDistribution: bits must be 1..=32"
        );
        Self {
            ones: vec![0.0; bits],
            total: 0.0,
        }
    }

    /// Word width.
    pub fn bits(&self) -> usize {
        self.ones.len()
    }

    /// Number of recorded words (fractional after weighted merging).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Records one stored word.
    pub fn record(&mut self, word: u32) {
        for (pos, count) in self.ones.iter_mut().enumerate() {
            if word >> pos & 1 == 1 {
                *count += 1.0;
            }
        }
        self.total += 1.0;
    }

    /// Probability of a `1` at bit `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.bits()`. Returns 0.5 (the uninformative
    /// prior) when no words have been recorded.
    pub fn probability(&self, pos: usize) -> f64 {
        assert!(
            pos < self.ones.len(),
            "BitDistribution: bit {pos} out of range"
        );
        if self.total == 0.0 {
            0.5
        } else {
            self.ones[pos] / self.total
        }
    }

    /// Probabilities for all positions, LSB first.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.bits()).map(|p| self.probability(p)).collect()
    }

    /// Mean probability of `1` across positions — the quantity that
    /// decides whether barrel-shifter-style balancing can reach a 0.5
    /// duty cycle (paper observation 3 in §III-A).
    pub fn mean_probability(&self) -> f64 {
        self.probabilities().iter().sum::<f64>() / self.bits() as f64
    }

    /// Merges another distribution, weighting its contribution by
    /// `weight` recorded words (used to combine per-layer sampled
    /// statistics into a network-level distribution).
    ///
    /// # Panics
    ///
    /// Panics if widths differ or `weight` is not finite/positive.
    pub fn merge_weighted(&mut self, other: &BitDistribution, weight: f64) {
        assert_eq!(
            self.bits(),
            other.bits(),
            "BitDistribution::merge_weighted: width mismatch"
        );
        assert!(
            weight.is_finite() && weight >= 0.0,
            "BitDistribution::merge_weighted: bad weight {weight}"
        );
        if other.total == 0.0 || weight == 0.0 {
            return;
        }
        for (pos, count) in self.ones.iter_mut().enumerate() {
            *count += other.probability(pos) * weight;
        }
        self.total += weight;
    }
}

/// Analyses the stored-bit distribution of one layer under `quantizer`,
/// sampling at most `cap` weights.
///
/// # Example
///
/// ```
/// use dnnlife_nn::weights::LayerWeightGen;
/// use dnnlife_nn::NetworkSpec;
/// use dnnlife_quant::{analyze_layer, NumberFormat, Quantizer};
///
/// let spec = NetworkSpec::custom_mnist();
/// let gen = LayerWeightGen::new(&spec, 0, 42);
/// let q = Quantizer::calibrate(NumberFormat::Int8Symmetric, &gen.range(u64::MAX));
/// let dist = analyze_layer(&gen, &q, u64::MAX);
/// // Zero-mean weights under symmetric quantization: every bit ≈ 0.5.
/// assert!((dist.probability(7) - 0.5).abs() < 0.1);
/// ```
pub fn analyze_layer(gen: &LayerWeightGen, quantizer: &Quantizer, cap: u64) -> BitDistribution {
    let mut dist = BitDistribution::new(quantizer.bits());
    let n = gen.len().min(cap.max(1));
    for i in 0..n {
        dist.record(quantizer.encode(gen.weight(i)));
    }
    dist
}

/// Network-level bit distribution for `spec` under `format`
/// (regenerates one panel of Fig. 6).
///
/// Each layer is calibrated independently (per-tensor quantization, as
/// in the paper), analysed on up to `cap_per_layer` samples, and merged
/// weighted by its true weight count.
pub fn analyze_network(
    spec: &NetworkSpec,
    format: NumberFormat,
    seed: u64,
    cap_per_layer: u64,
) -> BitDistribution {
    let mut network_dist = BitDistribution::new(format.bits());
    for (li, layer) in spec.layers().iter().enumerate() {
        let gen = LayerWeightGen::new(spec, li, seed);
        let quantizer = Quantizer::calibrate(format, &gen.range(cap_per_layer));
        let layer_dist = analyze_layer(&gen, &quantizer, cap_per_layer);
        network_dist.merge_weighted(&layer_dist, layer.weight_count() as f64);
    }
    network_dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_counts_bits() {
        let mut d = BitDistribution::new(4);
        d.record(0b1010);
        d.record(0b1100);
        assert_eq!(d.probability(0), 0.0);
        assert_eq!(d.probability(1), 0.5);
        assert_eq!(d.probability(2), 0.5);
        assert_eq!(d.probability(3), 1.0);
        assert!((d.mean_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_uses_prior() {
        let d = BitDistribution::new(8);
        assert_eq!(d.probability(3), 0.5);
    }

    #[test]
    fn weighted_merge_weighs_layers() {
        let mut a = BitDistribution::new(2);
        a.record(0b11); // p = 1.0 for both bits
        let mut b = BitDistribution::new(2);
        b.record(0b00); // p = 0.0
        let mut net = BitDistribution::new(2);
        net.merge_weighted(&a, 3.0);
        net.merge_weighted(&b, 1.0);
        assert!((net.probability(0) - 0.75).abs() < 1e-12);
        assert!((net.probability(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn symmetric_int8_of_zero_mean_weights_is_balanced() {
        // The paper's key Fig. 6 observation for AlexNet int8-symmetric:
        // all bit positions sit near 0.5.
        let spec = NetworkSpec::custom_mnist();
        let dist = analyze_network(&spec, NumberFormat::Int8Symmetric, 42, u64::MAX);
        for pos in 0..8 {
            let p = dist.probability(pos);
            assert!(
                (p - 0.5).abs() < 0.12,
                "bit {pos}: probability {p} too far from 0.5"
            );
        }
    }

    #[test]
    fn fp32_exponent_bits_are_biased() {
        // Weights are far below 1.0 in magnitude, so the fp32 exponent MSB
        // (bit 30) is almost never set while mid-exponent bits are almost
        // always set — the strong skew visible in Fig. 6.
        let spec = NetworkSpec::custom_mnist();
        let dist = analyze_network(&spec, NumberFormat::Fp32, 42, u64::MAX);
        assert!(dist.probability(30) < 0.05, "exponent MSB should be ~0");
        assert!(
            dist.probability(29) > 0.9,
            "high exponent bits of sub-unit weights are ~1"
        );
        // Low mantissa bits are effectively random.
        for pos in 0..16 {
            let p = dist.probability(pos);
            assert!((p - 0.5).abs() < 0.05, "mantissa bit {pos}: {p}");
        }
        // Sign bit tracks the (near-symmetric) weight sign distribution.
        let sign = dist.probability(31);
        assert!((sign - 0.5).abs() < 0.1, "sign bit: {sign}");
    }

    #[test]
    fn asymmetric_int8_bits_are_skewed() {
        // Fig. 6's asymmetric panels: individual bit positions deviate
        // strongly from 0.5 (the zero-point sits away from mid-scale), and
        // the cross-bit average is off 0.5 too — which is what defeats
        // barrel-shifter balancing (paper observation 3).
        let spec = NetworkSpec::custom_mnist();
        let dist = analyze_network(&spec, NumberFormat::Int8Asymmetric, 42, u64::MAX);
        let max_dev = dist
            .probabilities()
            .iter()
            .map(|p| (p - 0.5).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_dev > 0.1,
            "asymmetric bits unexpectedly balanced: max deviation {max_dev}"
        );
        let mean = dist.mean_probability();
        assert!(
            (mean - 0.5).abs() > 0.005,
            "asymmetric mean probability unexpectedly balanced: {mean}"
        );
        // ...while the same weights under *symmetric* quantization stay
        // near 0.5 at every position (contrast within one test).
        let sym = analyze_network(&spec, NumberFormat::Int8Symmetric, 42, u64::MAX);
        let sym_dev = sym
            .probabilities()
            .iter()
            .map(|p| (p - 0.5).abs())
            .fold(0.0f64, f64::max);
        assert!(sym_dev < 0.05, "symmetric bits skewed: {sym_dev}");
    }

    #[test]
    fn sampling_cap_is_respected_but_statistically_stable() {
        let spec = NetworkSpec::custom_mnist();
        let full = analyze_network(&spec, NumberFormat::Int8Symmetric, 7, u64::MAX);
        let capped = analyze_network(&spec, NumberFormat::Int8Symmetric, 7, 20_000);
        for pos in 0..8 {
            assert!(
                (full.probability(pos) - capped.probability(pos)).abs() < 0.02,
                "bit {pos} diverged under sampling"
            );
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_width_mismatch() {
        let mut a = BitDistribution::new(8);
        let b = BitDistribution::new(32);
        a.merge_weighted(&b, 1.0);
    }
}
