#![warn(missing_docs)]

//! Number formats, post-training quantization and weight-bit statistics.
//!
//! Section III-A of the paper analyses how the choice of data
//! representation shapes the probability of storing a `1` at each bit
//! position of the weight memory — the quantity that ultimately drives
//! NBTI duty-cycle imbalance. This crate implements the three formats
//! the paper studies:
//!
//! * IEEE-754 32-bit floating point (raw bit view),
//! * 8-bit integers via **symmetric** range-linear quantization,
//! * 8-bit integers via **asymmetric** range-linear quantization,
//!
//! following the range-linear scheme of Lin et al. (ICML 2016) that the
//! paper cites as reference 24, plus the bit-distribution analysis
//! that regenerates Fig. 6.
//!
//! # Example
//!
//! ```
//! use dnnlife_quant::{NumberFormat, Quantizer};
//! use dnnlife_nn::weights::WeightRange;
//!
//! let range = WeightRange { min: -0.4, max: 0.2, sampled: 1000 };
//! let q = Quantizer::calibrate(NumberFormat::Int8Symmetric, &range);
//! let bits = q.encode(0.1);
//! let back = q.decode(bits);
//! assert!((back - 0.1).abs() < 0.005);
//! ```

pub mod distribution;
pub mod ecc;
pub mod quantizer;

pub use distribution::{analyze_layer, analyze_network, BitDistribution};
pub use ecc::{EccLayout, EccOutcome, RepairPolicy, SecdedCode};
pub use quantizer::{NumberFormat, Quantizer};
