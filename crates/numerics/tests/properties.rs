//! Property-based tests for the numerics substrate.

use dnnlife_numerics::binomial::{duty_cycle_tail_probability, Binomial};
use dnnlife_numerics::sampling::{sample_binomial, LaplaceSampler, NormalSampler};
use dnnlife_numerics::special::{inc_beta, ln_choose, ln_gamma, normal_cdf};
use dnnlife_numerics::{Histogram, Summary};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn ln_gamma_recurrence(x in 0.5f64..50.0) {
        // Γ(x+1) = x·Γ(x)  ⇒  lnΓ(x+1) = ln x + lnΓ(x)
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn ln_choose_pascal_rule(n in 1u64..300, k in 0u64..300) {
        prop_assume!(k < n);
        // C(n, k) + C(n, k+1) = C(n+1, k+1), compared in linear space
        // through the larger term to avoid overflow.
        let a = ln_choose(n, k);
        let b = ln_choose(n, k + 1);
        let c = ln_choose(n + 1, k + 1);
        let m = a.max(b);
        let sum = m + ((a - m).exp() + (b - m).exp()).ln();
        prop_assert!((sum - c).abs() < 1e-9 * (1.0 + c.abs()));
    }

    #[test]
    fn inc_beta_bounds_and_symmetry(x in 0.0f64..=1.0, a in 0.1f64..50.0, b in 0.1f64..50.0) {
        let v = inc_beta(x, a, b);
        prop_assert!((0.0..=1.0).contains(&v));
        let sym = 1.0 - inc_beta(1.0 - x, b, a);
        prop_assert!((v - sym).abs() < 1e-8);
    }

    #[test]
    fn binomial_cdf_monotone_in_k(n in 1u64..500, p in 0.0f64..=1.0) {
        let d = Binomial::new(n, p);
        let step = (n / 17).max(1);
        let mut prev = -1.0;
        let mut k = 0;
        while k <= n {
            let c = d.cdf(k);
            prop_assert!(c >= prev - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
            k += step;
        }
    }

    #[test]
    fn binomial_cdf_sf_consistency(n in 1u64..400, p in 0.01f64..0.99, k in 1u64..400) {
        prop_assume!(k <= n);
        let d = Binomial::new(n, p);
        let total = d.cdf(k - 1) + d.sf(k);
        prop_assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn eq1_monotone_in_b(k_writes in 2u64..200, rho in 0.01f64..0.99) {
        let mut prev = 0.0;
        for b in 0..=(k_writes / 2) {
            let p = duty_cycle_tail_probability(k_writes, b, rho);
            prop_assert!(p >= prev - 1e-9, "b={b} p={p} prev={prev}");
            prop_assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn eq1_symmetric_in_rho_when_balanced(k_writes in 2u64..150, b in 0u64..75) {
        prop_assume!(b <= k_writes / 2);
        // For a symmetric two-sided tail, rho and 1-rho are equivalent.
        let lhs = duty_cycle_tail_probability(k_writes, b, 0.3);
        let rhs = duty_cycle_tail_probability(k_writes, b, 0.7);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn binomial_sample_within_support(n in 0u64..100_000, p in 0.0f64..=1.0, seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = sample_binomial(&mut rng, n, p);
        prop_assert!(k <= n);
    }

    #[test]
    fn laplace_median_sign(seed in 0u64..u64::MAX, loc in -5.0f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = LaplaceSampler::new(loc, 1.0);
        let n = 2000;
        let above = (0..n).filter(|_| s.sample(&mut rng) > loc).count();
        // Median at `loc`: the above-count is Binomial(2000, 0.5); 6 sigma
        // ≈ 134 keeps the flake rate negligible.
        prop_assert!((above as i64 - 1000).abs() < 140, "above={above}");
    }

    #[test]
    fn histogram_total_preserved(values in prop::collection::vec(-10.0f64..10.0, 0..200)) {
        let mut h = Histogram::new(-1.0, 1.0, 8);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    #[test]
    fn summary_merge_associative(xs in prop::collection::vec(-1e3f64..1e3, 1..100),
                                 split in 0usize..100) {
        let split = split.min(xs.len());
        let mut whole = Summary::new();
        for &x in &xs { whole.record(x); }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..split] { a.record(x); }
        for &x in &xs[split..] { b.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-5 * (1.0 + whole.variance()));
    }

    #[test]
    fn normal_cdf_complement(x in -5.0f64..5.0) {
        let lhs = normal_cdf(x) + normal_cdf(-x);
        prop_assert!((lhs - 1.0).abs() < 1e-6);
    }
}

#[test]
fn normal_sampler_ks_against_cdf() {
    // One-sample Kolmogorov–Smirnov-style check of the Box–Muller sampler
    // against the analytic normal CDF.
    let mut rng = StdRng::seed_from_u64(99);
    let mut s = NormalSampler::new();
    let n = 20_000;
    let mut xs: Vec<f64> = (0..n).map(|_| s.sample_standard(&mut rng)).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut d_max = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let emp = (i + 1) as f64 / n as f64;
        let d = (emp - normal_cdf(x)).abs();
        d_max = d_max.max(d);
    }
    // KS critical value at alpha = 1e-6 for n = 20k is about 0.0136 (the
    // erf approximation adds ~1e-7).
    assert!(d_max < 0.02, "KS statistic too large: {d_max}");
}
