#![warn(missing_docs)]

//! Scientific-numerics substrate for the DNN-Life reproduction.
//!
//! This crate provides the numerical machinery that the probabilistic
//! duty-cycle model of the paper (Eq. 1 and Eq. 2) and the large-scale
//! memory simulator rely on:
//!
//! * [`special`] — log-gamma, regularised incomplete beta, and error
//!   functions implemented from standard Lanczos / continued-fraction
//!   formulations (no external math crates are permitted in this build).
//! * [`binomial`] — exact binomial PMF/CDF/SF in log space plus the
//!   paper's two-sided duty-cycle tail probability (Eq. 1) and the
//!   cell-population tail (Eq. 2).
//! * [`sampling`] — deterministic, seedable samplers for the normal,
//!   Laplace, Bernoulli and binomial distributions used by the synthetic
//!   weight generator and the analytic memory simulator.
//! * [`histogram`] — fixed-bin-edge histograms used for the SNM
//!   degradation distributions of Fig. 9 / Fig. 11.
//! * [`stats`] — summary statistics and empirical-distribution helpers
//!   used by the randomness tests and by EXPERIMENTS.md reporting.
//!
//! # Example
//!
//! Computing the paper's Eq. 1 for the Fig. 7a case study (`K = 20`,
//! `rho = 0.5`, `b/K = 0.3`):
//!
//! ```
//! use dnnlife_numerics::binomial::duty_cycle_tail_probability;
//!
//! let p = duty_cycle_tail_probability(20, 6, 0.5);
//! assert!(p > 0.1, "the paper observes P > 0.1 at b/K = 0.3");
//! ```

pub mod binomial;
pub mod histogram;
pub mod sampling;
pub mod special;
pub mod stats;

pub use binomial::{duty_cycle_tail_probability, population_tail_probability, Binomial};
pub use histogram::Histogram;
pub use sampling::{sample_binomial, LaplaceSampler, NormalSampler};
pub use stats::Summary;
