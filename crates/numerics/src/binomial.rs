//! Binomial distribution and the paper's duty-cycle tail probabilities.
//!
//! Section III-B of the paper models the bits written to one SRAM cell as
//! `K` independent Bernoulli(ρ) draws and asks for the probability that
//! the resulting duty cycle deviates from the ideal 0.5 (Eq. 1), and for
//! the probability that at least `n` out of `I × J` cells deviate
//! (Eq. 2). Both reduce to binomial tails, which this module evaluates
//! exactly: direct log-space summation for small `n`, the regularised
//! incomplete beta identity for large `n`.

use crate::special::{inc_beta, ln_choose};

/// A binomial distribution `B(n, p)` with exact tail evaluation.
///
/// # Example
///
/// ```
/// use dnnlife_numerics::Binomial;
///
/// let b = Binomial::new(20, 0.5);
/// // A fair 20-trial binomial is symmetric around 10.
/// assert!((b.cdf(9) - b.sf(11)).abs() < 1e-12);
/// assert!((b.pmf(10) - 0.1761970520019531).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates `B(n, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or not finite.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "Binomial: p must be in [0,1], got {p}"
        );
        Self { n, p }
    }

    /// Number of trials `n`.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1-p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Natural log of the probability mass function at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (-self.p).ln_1p()
    }

    /// Probability mass function `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Cumulative distribution function `P(X <= k)`.
    ///
    /// Uses the identity `P(X <= k) = I_{1-p}(n-k, k+1)` for large
    /// supports and direct log-space summation when `k` is small.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0;
        }
        if k <= 64 {
            let mut acc = 0.0f64;
            for i in 0..=k {
                acc += self.pmf(i);
            }
            acc.min(1.0)
        } else {
            inc_beta(1.0 - self.p, (self.n - k) as f64, k as f64 + 1.0)
        }
    }

    /// Survival function `P(X >= k)` (note: inclusive lower bound, matching
    /// the second summation of the paper's Eq. 1).
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return 0.0;
        }
        if self.p == 1.0 {
            return 1.0;
        }
        if self.n - k <= 64 {
            let mut acc = 0.0f64;
            for i in k..=self.n {
                acc += self.pmf(i);
            }
            acc.min(1.0)
        } else {
            inc_beta(self.p, k as f64, (self.n - k) as f64 + 1.0)
        }
    }
}

/// Eq. 1 of the paper: probability that a cell written with `K`
/// independent Bernoulli(ρ) bits ends up with a duty cycle `<= b/K` or
/// `>= 1 - b/K`.
///
/// Both tails are combined because either extreme stresses one of the two
/// PMOS transistors of a 6T-SRAM cell equally. Following the paper, the
/// value is defined to be exactly `1` when `b/K = 0.5` (every duty cycle
/// trivially satisfies the bound).
///
/// # Panics
///
/// Panics if `b > K/2` (the paper restricts `b` to `0 ..= floor(K/2)`),
/// or if `rho` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use dnnlife_numerics::duty_cycle_tail_probability;
///
/// // Fig. 7a: K = 20, rho = 0.5 — at b/K = 0.3 the probability is > 0.1.
/// let p20 = duty_cycle_tail_probability(20, 6, 0.5);
/// // Fig. 7b: K = 160 — the same relative deviation is far less likely.
/// let p160 = duty_cycle_tail_probability(160, 48, 0.5);
/// assert!(p20 > 0.1 && p160 < 1e-6);
/// ```
pub fn duty_cycle_tail_probability(k_writes: u64, b: u64, rho: f64) -> f64 {
    assert!(k_writes > 0, "duty_cycle_tail_probability: K must be > 0");
    assert!(
        b <= k_writes / 2,
        "duty_cycle_tail_probability: b must be <= floor(K/2), got b={b} K={k_writes}"
    );
    if 2 * b == k_writes {
        // b/K = 0.5: the paper defines the probability as 1.
        return 1.0;
    }
    let dist = Binomial::new(k_writes, rho);
    (dist.cdf(b) + dist.sf(k_writes - b)).min(1.0)
}

/// Eq. 2 of the paper: probability that at least `n` out of `cells`
/// memory cells experience the duty-cycle deviation whose per-cell
/// probability is `p_b` (as computed by [`duty_cycle_tail_probability`]).
///
/// # Example
///
/// ```
/// use dnnlife_numerics::{duty_cycle_tail_probability, population_tail_probability};
///
/// let p_b = duty_cycle_tail_probability(20, 6, 0.5);
/// // With I*J = 8192 cells and a >10% per-cell probability, observing at
/// // least 500 deviating cells is essentially certain.
/// let p = population_tail_probability(8192, 500, p_b);
/// assert!(p > 0.999);
/// ```
pub fn population_tail_probability(cells: u64, n: u64, p_b: f64) -> f64 {
    Binomial::new(cells, p_b).sf(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_cdf(n: u64, p: f64, k: u64) -> f64 {
        let d = Binomial::new(n, p);
        (0..=k.min(n)).map(|i| d.pmf(i)).sum()
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(1u64, 0.5f64), (10, 0.3), (100, 0.7), (500, 0.01)] {
            let d = Binomial::new(n, p);
            let total: f64 = (0..=n).map(|k| d.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn cdf_matches_brute_force_across_split() {
        // k <= 64 uses summation; k > 64 uses the incomplete beta. Check
        // both sides of the split agree with brute force.
        let n = 200u64;
        for &p in &[0.2, 0.5, 0.9] {
            let d = Binomial::new(n, p);
            for &k in &[0u64, 10, 63, 64, 65, 100, 150, 199] {
                let want = brute_force_cdf(n, p, k);
                let got = d.cdf(k);
                assert!(
                    (got - want).abs() < 1e-9,
                    "n={n} p={p} k={k}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn sf_complements_cdf() {
        let d = Binomial::new(300, 0.42);
        for k in [1u64, 5, 77, 150, 299, 300] {
            let total = d.cdf(k - 1) + d.sf(k);
            assert!((total - 1.0).abs() < 1e-9, "k={k} total={total}");
        }
    }

    #[test]
    fn degenerate_probabilities() {
        let zero = Binomial::new(10, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.cdf(0), 1.0);
        assert_eq!(zero.sf(1), 0.0);
        let one = Binomial::new(10, 1.0);
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.sf(10), 1.0);
        assert_eq!(one.cdf(9), 0.0);
    }

    #[test]
    fn eq1_matches_paper_fig7a_shape() {
        // K = 20, rho = 0.5. At b/K = 0.3 (b = 6) the paper reports > 0.1;
        // at b/K = 0.5 the probability is defined as 1; probabilities are
        // monotonically increasing in b.
        let mut prev = 0.0;
        for b in 0..=10u64 {
            let p = duty_cycle_tail_probability(20, b, 0.5);
            assert!(p >= prev - 1e-12, "monotone failure at b={b}");
            prev = p;
        }
        assert!(duty_cycle_tail_probability(20, 6, 0.5) > 0.1);
        assert_eq!(duty_cycle_tail_probability(20, 10, 0.5), 1.0);
    }

    #[test]
    fn eq1_k160_shrinks_tails() {
        // Same relative deviation b/K = 0.3: with K = 160 the probability
        // collapses (the paper's Fig. 7b observation).
        let p20 = duty_cycle_tail_probability(20, 6, 0.5);
        let p160 = duty_cycle_tail_probability(160, 48, 0.5);
        assert!(p160 < p20 / 1000.0, "p20={p20} p160={p160}");
    }

    #[test]
    fn eq1_biased_rho_is_asymmetric_but_valid() {
        // With rho = 0.7 the distribution is biased; tails must still be a
        // valid probability and larger than the balanced case at the same b
        // for small b (biased cells deviate more often).
        let biased = duty_cycle_tail_probability(20, 2, 0.7);
        let fair = duty_cycle_tail_probability(20, 2, 0.5);
        assert!((0.0..=1.0).contains(&biased));
        assert!(biased > fair);
    }

    #[test]
    fn eq2_is_binomial_sf() {
        let p_b = 0.1;
        let got = population_tail_probability(8192, 800, p_b);
        let want = Binomial::new(8192, p_b).sf(800);
        assert_eq!(got, want);
        assert!(got > 0.5 && got < 1.0);
    }

    #[test]
    #[should_panic(expected = "b must be <= floor(K/2)")]
    fn eq1_rejects_b_beyond_half() {
        duty_cycle_tail_probability(20, 11, 0.5);
    }
}
