//! Fixed-edge histograms for SNM-degradation distributions.
//!
//! Fig. 9 and Fig. 11 of the paper report, for each mitigation policy,
//! the *percentage of memory cells* experiencing each level of SNM
//! degradation. [`Histogram`] is the container those experiments
//! accumulate into; it supports merging partial histograms produced by
//! parallel simulation shards.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with uniformly spaced bins plus explicit
/// underflow/overflow counters.
///
/// # Example
///
/// ```
/// use dnnlife_numerics::Histogram;
///
/// let mut h = Histogram::new(10.0, 27.0, 17);
/// h.record(10.82);
/// h.record(26.12);
/// assert_eq!(h.total(), 2);
/// assert!((h.percentages().iter().sum::<f64>() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if `lo >= hi`, or if either bound is not
    /// finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: bins must be > 0");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "Histogram: need finite lo < hi, got [{lo}, {hi})"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Lower edge of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of bins (excluding under/overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Records one value.
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value` (used by the analytic simulator
    /// when many cells share one duty cycle).
    pub fn record_n(&mut self, value: f64, n: u64) {
        if value < self.lo {
            self.underflow += n;
        } else if value >= self.hi {
            self.overflow += n;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            // Floating point can land exactly on the upper edge of the
            // last bin; clamp defensively.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += n;
        }
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of values below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded values, including under/overflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// Per-bin percentages of the total (under/overflow excluded from the
    /// numerators but included in the denominator). Returns zeros when
    /// empty.
    pub fn percentages(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| 100.0 * c as f64 / total as f64)
            .collect()
    }

    /// The `(lower, upper)` edges of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.bins()`.
    pub fn bin_edges(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.counts.len(), "Histogram: bin {idx} out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (
            self.lo + idx as f64 * width,
            self.lo + (idx + 1) as f64 * width,
        )
    }

    /// Merges another histogram with identical binning into this one.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "Histogram::merge: incompatible binning"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Weighted mean of recorded in-range values, approximated by bin
    /// centres. Returns `None` when no in-range values were recorded.
    pub fn mean(&self) -> Option<f64> {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return None;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width) * c as f64)
            .sum();
        Some(weighted / in_range as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.99);
        h.record(5.5);
        h.record(9.999);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi edge counts as overflow (half-open range)
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn percentages_sum_to_in_range_share() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.25);
        h.record(0.75);
        h.record(5.0); // overflow
        let pct = h.percentages();
        assert!((pct.iter().sum::<f64>() - 66.6666).abs() < 0.01);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.record(0.1);
        b.record(0.1);
        b.record(0.9);
        a.merge(&b);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.counts()[3], 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "incompatible binning")]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 1.0, 5);
        a.merge(&b);
    }

    #[test]
    fn record_n_bulk() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record_n(0.1, 1000);
        assert_eq!(h.counts()[0], 1000);
        assert!((h.percentages()[0] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn mean_uses_bin_centres() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record_n(1.2, 5); // bin centre 1.5
        h.record_n(8.7, 5); // bin centre 8.5
        assert!((h.mean().unwrap() - 5.0).abs() < 1e-12);
        let empty = Histogram::new(0.0, 1.0, 2);
        assert_eq!(empty.mean(), None);
    }
}
