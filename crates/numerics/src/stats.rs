//! Summary statistics used across the experiment reports.

use serde::{Deserialize, Serialize};

/// Streaming summary (count / mean / variance / min / max) using
/// Welford's online algorithm, so multi-gigabit duty-cycle streams can be
/// summarised without buffering.
///
/// # Example
///
/// ```
/// use dnnlife_numerics::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 1.6666666).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.6} std={:.6} min={:.6} max={:.6}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..200] {
            left.record(x);
        }
        for &x in &xs[200..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-8);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn empty_and_single() {
        let mut s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.variance(), 0.0);
        s.record(2.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 2.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.record(1.0);
        a.record(3.0);
        let before = a;
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
