//! Seedable samplers for the distributions the reproduction needs.
//!
//! The offline dependency policy of this workspace does not include
//! `rand_distr`, so the normal, Laplace and binomial samplers are
//! implemented here:
//!
//! * normal — polar Box–Muller (exact),
//! * Laplace — inverse CDF (exact),
//! * binomial — inverse-CDF search from the mode for small variance and a
//!   continuity-corrected normal approximation for large variance. The
//!   approximation branch is what makes the analytic weight-memory
//!   simulator (the dnnlife-accel crate) tractable at 512 KB × `K`-block scale;
//!   its accuracy is validated against exact tails in the tests.
//!
//! All samplers are deterministic given a seeded [`rand::Rng`].

use rand::{Rng, RngExt};

/// Standard-normal sampler using the polar Box–Muller transform with a
/// one-sample cache.
///
/// # Example
///
/// ```
/// use dnnlife_numerics::NormalSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut normal = NormalSampler::new();
/// let x = normal.sample(&mut rng, 0.0, 1.0);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    cached: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one sample from `N(mean, std^2)`.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std: f64) -> f64 {
        assert!(
            std.is_finite() && std >= 0.0,
            "NormalSampler: std must be >= 0"
        );
        mean + std * self.sample_standard(rng)
    }

    /// Draws one standard-normal sample.
    pub fn sample_standard<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        loop {
            let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.cached = Some(v * factor);
                return u * factor;
            }
        }
    }
}

/// Laplace (double-exponential) sampler, used by the synthetic trained
/// weight generator: trained CNN layers are empirically closer to Laplace
/// than to Gaussian (heavier tails).
///
/// # Example
///
/// ```
/// use dnnlife_numerics::LaplaceSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let x = LaplaceSampler::new(0.0, 0.02).sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceSampler {
    location: f64,
    scale: f64,
}

impl LaplaceSampler {
    /// Creates a Laplace sampler with the given location and scale `b`
    /// (standard deviation is `b * sqrt(2)`).
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0` or either parameter is not finite.
    pub fn new(location: f64, scale: f64) -> Self {
        assert!(location.is_finite(), "LaplaceSampler: location not finite");
        assert!(
            scale.is_finite() && scale > 0.0,
            "LaplaceSampler: scale must be > 0"
        );
        Self { location, scale }
    }

    /// Location parameter (median).
    pub fn location(&self) -> f64 {
        self.location
    }

    /// Scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws one sample via the inverse CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u uniform on (-1/2, 1/2]; inverse CDF is -b * sgn(u) * ln(1-2|u|).
        let u: f64 = rng.random::<f64>() - 0.5;
        let magnitude = (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE);
        self.location - self.scale * u.signum() * magnitude.ln()
    }
}

/// Threshold on `n·p·(1-p)` above which [`sample_binomial`] switches from
/// the exact inverse-CDF walk to the normal approximation.
const BINOMIAL_NORMAL_THRESHOLD: f64 = 100.0;

/// Draws one sample from `Binomial(n, p)`.
///
/// For `n·p·(1-p) <= 100` the sample is exact (inverse-CDF walk starting
/// at zero, O(n·p) expected work). Beyond that a continuity-corrected
/// normal approximation `round(np + z·sqrt(np(1-p)))` clamped to `[0, n]`
/// is used; with variance above 100 the approximation error on any tail
/// probability is far below the Monte-Carlo noise of the simulations that
/// consume it (see the Kolmogorov–Smirnov test in this module).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use dnnlife_numerics::sample_binomial;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let k = sample_binomial(&mut rng, 100, 0.5);
/// assert!(k <= 100);
/// ```
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "sample_binomial: p must be in [0,1], got {p}"
    );
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Exploit symmetry to keep p <= 0.5 for the exact walk.
    if p > 0.5 {
        return n - sample_binomial(rng, n, 1.0 - p);
    }
    let variance = n as f64 * p * (1.0 - p);
    if variance <= BINOMIAL_NORMAL_THRESHOLD {
        sample_binomial_inverse(rng, n, p)
    } else {
        let mean = n as f64 * p;
        let z = NormalSampler::new().sample_standard(rng);
        let k = (mean + z * variance.sqrt()).round();
        k.clamp(0.0, n as f64) as u64
    }
}

/// Exact inverse-CDF walk (bottom-up). Expected iterations ≈ `n·p + 1`.
fn sample_binomial_inverse<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    // P(X = 0) = q^n; computed in log space to survive large n.
    let mut pmf = (n as f64 * q.ln()).exp();
    if pmf <= 0.0 {
        // Extremely unlikely underflow guard for huge n with the variance
        // threshold already keeping n·p·q small: fall back to the mean.
        return (n as f64 * p).round() as u64;
    }
    let mut cdf = pmf;
    let u: f64 = rng.random();
    let mut k = 0u64;
    while u > cdf && k < n {
        // Recurrence: P(k+1) = P(k) * (n-k)/(k+1) * p/q.
        pmf *= (n - k) as f64 / (k + 1) as f64 * (p / q);
        k += 1;
        cdf += pmf;
    }
    k
}

/// Draws one biased coin flip with exact probability `p` of returning
/// `true`. This is the behavioural model of an ideal (possibly biased)
/// TRBG output bit.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn sample_bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "sample_bernoulli: p must be in [0,1], got {p}"
    );
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::Binomial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = NormalSampler::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| s.sample(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean={mean}");
        assert!((var - 4.0).abs() < 0.08, "var={var}");
    }

    #[test]
    fn laplace_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(43);
        let s = LaplaceSampler::new(-1.0, 0.5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| s.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean + 1.0).abs() < 0.02, "mean={mean}");
        // Laplace variance = 2 b^2 = 0.5.
        assert!((var - 0.5).abs() < 0.03, "var={var}");
    }

    #[test]
    fn binomial_sampler_exact_branch_distribution() {
        // n·p·q = 50·0.2·0.8 = 8 → exact branch. Chi-square-lite check
        // against the true pmf on the bulk of the support.
        let mut rng = StdRng::seed_from_u64(44);
        let (n, p, draws) = (50u64, 0.2f64, 100_000usize);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            counts[sample_binomial(&mut rng, n, p) as usize] += 1;
        }
        let dist = Binomial::new(n, p);
        for k in 4..=16u64 {
            let expect = dist.pmf(k) * draws as f64;
            let got = counts[k as usize] as f64;
            assert!(
                (got - expect).abs() < 5.0 * expect.sqrt() + 5.0,
                "k={k}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn binomial_sampler_normal_branch_moments() {
        // n·p·q = 40000·0.5·0.5 = 10000 → normal branch.
        let mut rng = StdRng::seed_from_u64(45);
        let (n, p, draws) = (40_000u64, 0.5f64, 50_000usize);
        let samples: Vec<f64> = (0..draws)
            .map(|_| sample_binomial(&mut rng, n, p) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / draws as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws as f64;
        assert!((mean - 20_000.0).abs() < 3.0, "mean={mean}");
        assert!((var / 10_000.0 - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn binomial_sampler_symmetry_reduction() {
        let mut rng = StdRng::seed_from_u64(46);
        // p close to 1: must route through the symmetric branch and stay
        // within the support.
        for _ in 0..1000 {
            let k = sample_binomial(&mut rng, 30, 0.95);
            assert!(k <= 30);
        }
        let mean: f64 = (0..20_000)
            .map(|_| sample_binomial(&mut rng, 30, 0.95) as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 28.5).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn binomial_sampler_edge_cases() {
        let mut rng = StdRng::seed_from_u64(47);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
    }

    #[test]
    fn bernoulli_bias() {
        let mut rng = StdRng::seed_from_u64(48);
        let n = 100_000;
        let ones = (0..n).filter(|_| sample_bernoulli(&mut rng, 0.7)).count();
        let ratio = ones as f64 / n as f64;
        assert!((ratio - 0.7).abs() < 0.01, "ratio={ratio}");
    }
}
