//! Special functions: log-gamma, regularised incomplete beta, error function.
//!
//! These are textbook implementations (Lanczos approximation for `ln Γ`,
//! Lentz continued fraction for the incomplete beta, Abramowitz–Stegun
//! rational approximation for `erf`) chosen for double-precision accuracy
//! over the argument ranges the DNN-Life probabilistic model exercises
//! (binomial parameters up to `n = I × J = 8192` cells and beyond).

/// Lanczos coefficients for `g = 7`, `n = 9` (Boost/NR parameterisation).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
/// Absolute error is below `1e-13` for the ranges used in this crate.
///
/// # Panics
///
/// Panics if `x` is not finite or if `x <= 0` and `x` is an integer
/// (where `Γ` has poles).
///
/// # Example
///
/// ```
/// use dnnlife_numerics::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma: argument must be finite, got {x}");
    if x < 0.5 {
        assert!(
            x.fract() != 0.0,
            "ln_gamma: pole at non-positive integer {x}"
        );
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin().abs()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` with a small lookup table for `n < 64` and [`ln_gamma`] beyond.
///
/// # Example
///
/// ```
/// use dnnlife_numerics::special::ln_factorial;
/// assert!((ln_factorial(4) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    // Exact factorials fit in f64 up to 170!; a small table covers the
    // common small-n fast path exactly.
    const TABLE_LEN: usize = 64;
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0f64; TABLE_LEN];
        let mut acc = 0.0f64;
        for (i, slot) in t.iter_mut().enumerate() {
            if i > 0 {
                acc += (i as f64).ln();
            }
            *slot = acc;
        }
        t
    });
    if (n as usize) < TABLE_LEN {
        table[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)` — natural log of the binomial coefficient.
///
/// Returns negative infinity when `k > n` (the coefficient is zero).
///
/// # Example
///
/// ```
/// use dnnlife_numerics::special::ln_choose;
/// assert!((ln_choose(160, 80).exp() - 9.25e46) .abs() / 9.25e46 < 1e-2);
/// ```
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Regularised incomplete beta function `I_x(a, b)`.
///
/// Evaluated with the Lentz modified continued fraction; the symmetry
/// relation `I_x(a,b) = 1 - I_{1-x}(b,a)` is used to keep the fraction in
/// its rapidly-converging region.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0` or `x` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use dnnlife_numerics::special::inc_beta;
/// // I_x(1, 1) is the identity on [0, 1].
/// assert!((inc_beta(0.42, 1.0, 1.0) - 0.42).abs() < 1e-12);
/// ```
pub fn inc_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inc_beta: a and b must be positive");
    assert!((0.0..=1.0).contains(&x), "inc_beta: x must be in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_cf(x, a, b) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - inc_beta_complement(x, a, b)).clamp(0.0, 1.0)
    }
}

/// `1 - I_x(a, b)` computed through the symmetric continued fraction.
fn inc_beta_complement(x: f64, a: f64, b: f64) -> f64 {
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    ln_front.exp() * beta_cf(1.0 - x, b, a) / b
}

/// Lentz continued fraction for the incomplete beta (NR §6.4 `betacf`).
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 400;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)` (maximum absolute error ≈ 1.2e-7, sufficient for
/// the sampler-quality assertions that use it).
///
/// # Example
///
/// ```
/// use dnnlife_numerics::special::erf;
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26 with the sign folded in.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Complementary error function `erfc(x)` with ~1.2e-7 *relative*
/// accuracy everywhere (Numerical Recipes `erfcc` Chebyshev fit), so
/// deep tails keep meaningful ratios (unlike `1 - erf(x)`).
///
/// # Example
///
/// ```
/// use dnnlife_numerics::special::erfc;
/// assert!((erfc(1.0) - 0.15729920705028513).abs() < 1e-7);
/// // Deep tail stays resolvable.
/// assert!(erfc(8.0) > 0.0 && erfc(8.0) < 1e-28);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal survival function `Q(x) = P(Z > x)`, tail-accurate
/// via [`erfc`].
///
/// # Example
///
/// ```
/// use dnnlife_numerics::special::normal_sf;
/// assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
/// // 10-sigma events are tiny but non-zero and correctly ordered.
/// assert!(normal_sf(10.0) > 0.0 && normal_sf(10.0) < normal_sf(9.0));
/// ```
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// # Example
///
/// ```
/// use dnnlife_numerics::special::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..20 {
            let exact: f64 = (1..n).map(|i| (i as f64).ln()).sum();
            assert!(
                (ln_gamma(n as f64) - exact).abs() < 1e-10,
                "ln_gamma({n}) mismatch"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π).
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-12);
        // Γ(3/2) = sqrt(π)/2.
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) ≈ 3.625609908.
        assert!((ln_gamma(0.25) - 3.625_609_908_221_908f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_table_and_gamma_agree() {
        for n in [0u64, 1, 5, 63, 64, 100, 1000] {
            let via_gamma = ln_gamma(n as f64 + 1.0);
            assert!(
                (ln_factorial(n) - via_gamma).abs() < 1e-9 * (1.0 + via_gamma.abs()),
                "n = {n}"
            );
        }
    }

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(10, 5).exp() - 252.0).abs() < 1e-8);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn inc_beta_uniform_case() {
        for x in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert!((inc_beta(x, 1.0, 1.0) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn inc_beta_symmetry() {
        for &(x, a, b) in &[(0.3, 2.0, 5.0), (0.7, 10.0, 3.0), (0.5, 100.0, 100.0)] {
            let lhs = inc_beta(x, a, b);
            let rhs = 1.0 - inc_beta(1.0 - x, b, a);
            assert!((lhs - rhs).abs() < 1e-10, "x={x} a={a} b={b}");
        }
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.25}(2,2) = 0.15625 analytically
        // (CDF of Beta(2,2) is 3x^2 - 2x^3).
        let x = 0.25f64;
        let expect = 3.0 * x * x - 2.0 * x * x * x;
        assert!((inc_beta(x, 2.0, 2.0) - expect).abs() < 1e-12);
        assert!((inc_beta(0.5, 2.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn erf_reference_points() {
        let refs = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in refs {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
        }
    }

    #[test]
    fn erfc_matches_one_minus_erf_in_bulk() {
        for x in [-2.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.0] {
            assert!((erfc(x) - (1.0 - erf(x))).abs() < 3e-7, "x={x}");
        }
    }

    #[test]
    fn erfc_tail_ratios_are_sane() {
        // Q(x) ≈ φ(x)/x for large x; check the ratio of neighbouring
        // tails against that asymptotic.
        let q8 = normal_sf(8.0);
        let q9 = normal_sf(9.0);
        let expect = (-0.5f64 * (81.0 - 64.0)).exp() * 8.0 / 9.0;
        assert!(q9 / q8 > 0.1 * expect && q9 / q8 < 10.0 * expect);
    }

    #[test]
    fn normal_cdf_monotone() {
        let mut prev = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let v = normal_cdf(x);
            assert!(v >= prev - 1e-12);
            prev = v;
            x += 0.05;
        }
    }
}
