//! Property tests: every transducer's encode/decode must be the
//! identity, for any word, any address pattern, any policy state.

use dnnlife_mitigation::transducer::{
    BarrelShifter, DnnLife, Passthrough, PeriodicInversion, WriteTransducer,
};
use dnnlife_mitigation::{AgingController, PseudoTrbg, RingOscillatorTrbg};
use proptest::prelude::*;

fn mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

proptest! {
    #[test]
    fn passthrough_roundtrip(width in 1u32..=64, word: u64) {
        let mut t = Passthrough::new(width);
        let word = word & mask(width);
        let (stored, meta) = t.encode(0, word);
        prop_assert_eq!(t.decode(stored, meta), word);
    }

    #[test]
    fn inversion_roundtrip_under_write_sequences(
        width in 1u32..=64,
        writes in prop::collection::vec((0u64..16, any::<u64>()), 1..60)
    ) {
        let mut t = PeriodicInversion::new(width, 16);
        for (addr, word) in writes {
            let word = word & mask(width);
            let (stored, meta) = t.encode(addr, word);
            prop_assert_eq!(t.decode(stored, meta), word);
        }
    }

    #[test]
    fn barrel_roundtrip_under_write_sequences(
        width in 1u32..=64,
        writes in prop::collection::vec((0u64..16, any::<u64>()), 1..60)
    ) {
        let mut t = BarrelShifter::new(width, 16);
        for (addr, word) in writes {
            let word = word & mask(width);
            let (stored, meta) = t.encode(addr, word);
            prop_assert_eq!(t.decode(stored, meta), word);
        }
    }

    #[test]
    fn dnn_life_roundtrip_any_bias(
        width in 1u32..=64,
        bias in 0.0f64..=1.0,
        seed: u64,
        words in prop::collection::vec(any::<u64>(), 1..60)
    ) {
        let controller = AgingController::new(PseudoTrbg::new(seed, bias), 4);
        let mut t = DnnLife::new(width, controller);
        for (i, word) in words.into_iter().enumerate() {
            if i % 5 == 0 {
                t.new_block();
            }
            let word = word & mask(width);
            let (stored, meta) = t.encode(0, word);
            prop_assert_eq!(t.decode(stored, meta), word);
        }
    }

    #[test]
    fn dnn_life_roundtrip_with_ring_oscillator(
        seed: u64,
        words in prop::collection::vec(any::<u64>(), 1..40)
    ) {
        let controller = AgingController::new(RingOscillatorTrbg::biased(seed, 0.7), 4);
        let mut t = DnnLife::new(32, controller);
        for word in words {
            let word = word & mask(32);
            let (stored, meta) = t.encode(0, word);
            prop_assert_eq!(t.decode(stored, meta), word);
        }
    }

    #[test]
    fn stored_words_respect_width(width in 1u32..=63, word: u64, seed: u64) {
        let word = word & mask(width);
        let controller = AgingController::new(PseudoTrbg::new(seed, 0.5), 4);
        let mut policies: Vec<Box<dyn WriteTransducer>> = vec![
            Box::new(Passthrough::new(width)),
            Box::new(PeriodicInversion::new(width, 4)),
            Box::new(BarrelShifter::new(width, 4)),
            Box::new(DnnLife::new(width, controller)),
        ];
        for p in &mut policies {
            let (stored, _) = p.encode(0, word);
            prop_assert_eq!(stored & !mask(width), 0, "policy {} leaked bits", p.name());
        }
    }
}
