//! Property tests: every transducer's encode/decode must be the
//! identity, for any word, any address pattern, any policy state.

use dnnlife_mitigation::transducer::{
    BarrelShifter, DnnLife, Passthrough, PeriodicInversion, WriteTransducer,
};
use dnnlife_mitigation::{AgingController, PseudoTrbg, RingOscillatorTrbg, Trbg};
use proptest::prelude::*;

fn mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

proptest! {
    #[test]
    fn passthrough_roundtrip(width in 1u32..=64, word: u64) {
        let mut t = Passthrough::new(width);
        let word = word & mask(width);
        let (stored, meta) = t.encode(0, word);
        prop_assert_eq!(t.decode(stored, meta), word);
    }

    #[test]
    fn inversion_roundtrip_under_write_sequences(
        width in 1u32..=64,
        writes in prop::collection::vec((0u64..16, any::<u64>()), 1..60)
    ) {
        let mut t = PeriodicInversion::new(width, 16);
        for (addr, word) in writes {
            let word = word & mask(width);
            let (stored, meta) = t.encode(addr, word);
            prop_assert_eq!(t.decode(stored, meta), word);
        }
    }

    #[test]
    fn barrel_roundtrip_under_write_sequences(
        width in 1u32..=64,
        writes in prop::collection::vec((0u64..16, any::<u64>()), 1..60)
    ) {
        let mut t = BarrelShifter::new(width, 16);
        for (addr, word) in writes {
            let word = word & mask(width);
            let (stored, meta) = t.encode(addr, word);
            prop_assert_eq!(t.decode(stored, meta), word);
        }
    }

    #[test]
    fn dnn_life_roundtrip_any_bias(
        width in 1u32..=64,
        bias in 0.0f64..=1.0,
        seed: u64,
        words in prop::collection::vec(any::<u64>(), 1..60)
    ) {
        let controller = AgingController::new(PseudoTrbg::new(seed, bias), 4);
        let mut t = DnnLife::new(width, controller);
        for (i, word) in words.into_iter().enumerate() {
            if i % 5 == 0 {
                t.new_block();
            }
            let word = word & mask(width);
            let (stored, meta) = t.encode(0, word);
            prop_assert_eq!(t.decode(stored, meta), word);
        }
    }

    #[test]
    fn dnn_life_roundtrip_with_ring_oscillator(
        seed: u64,
        words in prop::collection::vec(any::<u64>(), 1..40)
    ) {
        let controller = AgingController::new(RingOscillatorTrbg::biased(seed, 0.7), 4);
        let mut t = DnnLife::new(32, controller);
        for word in words {
            let word = word & mask(32);
            let (stored, meta) = t.encode(0, word);
            prop_assert_eq!(t.decode(stored, meta), word);
        }
    }

    #[test]
    fn stored_words_respect_width(width in 1u32..=63, word: u64, seed: u64) {
        let word = word & mask(width);
        let controller = AgingController::new(PseudoTrbg::new(seed, 0.5), 4);
        let mut policies: Vec<Box<dyn WriteTransducer>> = vec![
            Box::new(Passthrough::new(width)),
            Box::new(PeriodicInversion::new(width, 4)),
            Box::new(BarrelShifter::new(width, 4)),
            Box::new(DnnLife::new(width, controller)),
        ];
        for p in &mut policies {
            let (stored, _) = p.encode(0, word);
            prop_assert_eq!(stored & !mask(width), 0, "policy {} leaked bits", p.name());
        }
    }

    /// Forked TRBG streams never overlap draws: for any deterministic
    /// seed, no 64-bit window of one shard's stream reappears anywhere
    /// in another shard's stream (a shifted match would mean two
    /// shards consuming the same underlying draw sequence). A fair
    /// stream makes an accidental 64-bit window collision ~2⁻⁶⁴, so a
    /// match can only be a seed-derivation bug.
    #[test]
    fn forked_trbg_streams_never_overlap_draws(
        seed: u64,
        bias_pick in 0usize..3,
    ) {
        let bias = [0.3f64, 0.5, 0.7][bias_pick];
        let parent = PseudoTrbg::new(seed, bias);
        let take = |mut t: PseudoTrbg, n: usize| -> Vec<bool> {
            (0..n).map(|_| t.next_bit()).collect()
        };
        let window = |bits: &[bool], at: usize| -> u64 {
            bits[at..at + 64]
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
        };
        let streams: Vec<Vec<bool>> = (0..4).map(|s| take(parent.fork(s), 256)).collect();
        // Every 64-bit window of every stream, tagged with its stream:
        // a window seen from two different streams is a shifted match,
        // i.e. two shards walking the same underlying draw sequence.
        let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (stream, bits) in streams.iter().enumerate() {
            for at in 0..=bits.len() - 64 {
                if let Some(&owner) = seen.get(&window(bits, at)) {
                    prop_assert_eq!(
                        owner,
                        stream,
                        "a window of stream {} reappears in stream {} (offset {})",
                        owner,
                        stream,
                        at
                    );
                } else {
                    seen.insert(window(bits, at), stream);
                }
            }
        }
    }

    /// Every fork of every policy still satisfies the encode/decode
    /// identity — sharding must never alter inference results either.
    #[test]
    fn forked_transducers_roundtrip(
        width in 1u32..=64,
        shard in 0u64..16,
        seed: u64,
        writes in prop::collection::vec((0u64..16, any::<u64>()), 1..40)
    ) {
        let controller = AgingController::new(PseudoTrbg::new(seed, 0.5), 4);
        let prototypes: Vec<Box<dyn WriteTransducer>> = vec![
            Box::new(Passthrough::new(width)),
            Box::new(PeriodicInversion::new(width, 16)),
            Box::new(BarrelShifter::new(width, 16)),
            Box::new(DnnLife::new(width, controller)),
        ];
        for prototype in &prototypes {
            let mut fork = prototype.fork(shard);
            for &(addr, word) in &writes {
                let word = word & mask(width);
                let (stored, meta) = fork.encode(addr, word);
                prop_assert_eq!(
                    fork.decode(stored, meta),
                    word,
                    "fork {} of policy {} broke the identity",
                    shard,
                    prototype.name()
                );
            }
        }
    }
}
