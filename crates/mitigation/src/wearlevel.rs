//! Hamun-style wear-leveling remap: periodic hot-row rotation.
//!
//! ReRAM endurance wear concentrates on the rows whose data keeps them
//! in the high-stress state; rotating the logical→physical row mapping
//! on a fixed schedule spreads every logical row's stress over many
//! physical rows, pulling the worst physical duty toward the array
//! mean. The schedule here is fully deterministic — a remap *table*
//! derived from the array shape, no RNG — so campaign stores stay
//! byte-identical at any thread/shard count.
//!
//! The device lifetime is split into `epochs` equal segments; in epoch
//! `e` logical row `l` lives at physical row `(l + e·stride) mod rows`
//! (columns are preserved — rotation is row-granular, matching how
//! crossbar wordline drivers are re-pointed). The stride is forced odd
//! so the epoch offsets stay distinct for power-of-two row counts.
//!
//! Two consumers share this module:
//!
//! * `dnnlife-accel`'s remapped block source presents the *physical*
//!   view of the rotation to both simulators (aging follows physical
//!   cells),
//! * [`WearLevelRemap`] carries the schedule through the
//!   [`WriteTransducer`] contract so remap composes with the policy
//!   machinery like every other mitigation — its data path is the
//!   identity (remap moves words, it never rewrites them).

use crate::transducer::{Metadata, WriteTransducer};

/// Deterministic logical↔physical row rotation schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemapSchedule {
    rows: u64,
    row_words: u64,
    epochs: u32,
    stride: u64,
}

impl RemapSchedule {
    /// Builds the schedule for a memory of `words` words arranged in
    /// rows of `row_words` words, rotated `epochs` times over the
    /// lifetime.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `words` is not a whole number
    /// of rows.
    pub fn new(words: usize, row_words: usize, epochs: u32) -> Self {
        assert!(words > 0, "RemapSchedule: empty memory");
        assert!(row_words > 0, "RemapSchedule: empty rows");
        assert!(epochs > 0, "RemapSchedule: need at least one epoch");
        assert!(
            words.is_multiple_of(row_words),
            "RemapSchedule: {words} words is not a whole number of {row_words}-word rows"
        );
        let rows = (words / row_words) as u64;
        // Spread the epoch offsets across the array; odd ⇒ distinct
        // offsets for power-of-two row counts.
        let stride = (rows / u64::from(epochs)).max(1) | 1;
        Self {
            rows,
            row_words: row_words as u64,
            epochs,
            stride,
        }
    }

    /// Number of lifetime epochs.
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Rows in the array.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Row offset applied per epoch.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Physical word holding `logical` during `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch >= epochs` or the word is out of range.
    pub fn physical_word(&self, logical: u64, epoch: u32) -> u64 {
        assert!(epoch < self.epochs, "epoch {epoch} out of range");
        let row = logical / self.row_words;
        assert!(row < self.rows, "word {logical} out of range");
        let col = logical % self.row_words;
        ((row + u64::from(epoch) * self.stride) % self.rows) * self.row_words + col
    }

    /// Logical word stored at `physical` during `epoch` — the inverse
    /// of [`RemapSchedule::physical_word`].
    ///
    /// # Panics
    ///
    /// Panics if `epoch >= epochs` or the word is out of range.
    pub fn logical_word(&self, physical: u64, epoch: u32) -> u64 {
        assert!(epoch < self.epochs, "epoch {epoch} out of range");
        let row = physical / self.row_words;
        assert!(row < self.rows, "word {physical} out of range");
        let col = physical % self.row_words;
        let shift = (u64::from(epoch) * self.stride) % self.rows;
        ((row + self.rows - shift) % self.rows) * self.row_words + col
    }

    /// Physical word holding `logical` in the *final* epoch — where an
    /// end-of-life read finds the data.
    pub fn final_physical_word(&self, logical: u64) -> u64 {
        self.physical_word(logical, self.epochs - 1)
    }
}

/// The wear-leveling policy as a [`WriteTransducer`]: the data path is
/// the identity (words are moved, never transformed), and the remap
/// schedule rides along so the plan layer can install the row
/// rotation. Deterministic, stateless, trivially fork-safe.
#[derive(Debug, Clone)]
pub struct WearLevelRemap {
    width: u32,
    schedule: RemapSchedule,
}

impl WearLevelRemap {
    /// Creates the transducer for `width`-bit words under `schedule`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 64.
    pub fn new(width: u32, schedule: RemapSchedule) -> Self {
        assert!(
            (1..=64).contains(&width),
            "WearLevelRemap: bad width {width}"
        );
        Self { width, schedule }
    }

    /// The rotation schedule this policy applies.
    pub fn schedule(&self) -> &RemapSchedule {
        &self.schedule
    }
}

impl WriteTransducer for WearLevelRemap {
    fn name(&self) -> &'static str {
        "wear-level"
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn metadata_bits(&self) -> u32 {
        // The remap table is schedule-derived (one epoch counter per
        // array, not per-word sideband state).
        0
    }

    fn encode(&mut self, _addr: u64, word: u64) -> (u64, Metadata) {
        assert!(
            self.width == 64 || word >> self.width == 0,
            "word {word:#x} has bits beyond width {}",
            self.width
        );
        (word, Metadata::None)
    }

    fn decode(&self, stored: u64, _meta: Metadata) -> u64 {
        stored
    }

    fn write_period(&self) -> Option<u64> {
        Some(1)
    }

    fn fork(&self, _shard: u64) -> Box<dyn WriteTransducer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remap_is_a_bijection_per_epoch() {
        let schedule = RemapSchedule::new(64, 8, 4);
        for epoch in 0..4 {
            let mut seen = [false; 64];
            for logical in 0..64u64 {
                let p = schedule.physical_word(logical, epoch);
                assert!(!seen[p as usize], "epoch {epoch}: collision at {p}");
                seen[p as usize] = true;
                assert_eq!(
                    schedule.logical_word(p, epoch),
                    logical,
                    "epoch {epoch} word {logical}"
                );
            }
        }
    }

    #[test]
    fn epoch_zero_is_the_identity_and_columns_are_preserved() {
        let schedule = RemapSchedule::new(256, 16, 4);
        for logical in [0u64, 1, 15, 16, 255] {
            assert_eq!(schedule.physical_word(logical, 0), logical);
        }
        for epoch in 1..4 {
            for logical in [3u64, 19, 250] {
                let p = schedule.physical_word(logical, epoch);
                assert_eq!(p % 16, logical % 16, "columns must be preserved");
                assert_ne!(p, logical, "later epochs must move row-sized data");
            }
        }
    }

    #[test]
    fn epoch_offsets_are_distinct_for_power_of_two_rows() {
        // 65536 words / 8-word rows = 8192 rows, 4 epochs: the odd
        // stride keeps every epoch's row offset distinct.
        let schedule = RemapSchedule::new(65_536, 8, 4);
        let offsets: Vec<u64> = (0..4).map(|e| schedule.physical_word(0, e) / 8).collect();
        for (i, a) in offsets.iter().enumerate() {
            for b in &offsets[i + 1..] {
                assert_ne!(a, b, "offsets {offsets:?}");
            }
        }
    }

    #[test]
    fn final_epoch_matches_physical_word() {
        let schedule = RemapSchedule::new(128, 8, 3);
        for logical in 0..128u64 {
            assert_eq!(
                schedule.final_physical_word(logical),
                schedule.physical_word(logical, 2)
            );
        }
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_rows_rejected() {
        let _ = RemapSchedule::new(100, 8, 4);
    }

    #[test]
    fn transducer_is_the_identity_and_round_trips() {
        let schedule = RemapSchedule::new(64, 8, 4);
        let mut t = WearLevelRemap::new(8, schedule);
        assert_eq!(t.name(), "wear-level");
        assert_eq!(t.metadata_bits(), 0);
        assert_eq!(t.write_period(), Some(1));
        for word in [0u64, 0xFF, 0xA5] {
            let (stored, meta) = t.encode(3, word);
            assert_eq!(stored, word);
            assert_eq!(t.decode(stored, meta), word);
        }
        let mut fork = t.fork(5);
        assert_eq!(fork.encode(0, 0x42).0, 0x42);
    }

    #[test]
    #[should_panic(expected = "has bits beyond width")]
    fn transducer_rejects_wide_words() {
        let schedule = RemapSchedule::new(64, 8, 2);
        let _ = WearLevelRemap::new(8, schedule).encode(0, 0x100);
    }
}
