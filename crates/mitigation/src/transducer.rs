//! Write Data Encoders / Read Data Decoders for all evaluated policies.
//!
//! A transducer pair sits around the weight memory: `encode` transforms
//! each word on its way in (and yields the metadata the decoder needs),
//! `decode` restores it bit-exactly on its way out. The four policies
//! are the ones compared in Fig. 9 / Fig. 11 of the paper.

use crate::controller::AgingController;
use crate::trbg::Trbg;

/// Per-write metadata produced by `encode` and consumed by `decode`.
///
/// In hardware this is the sideband state stored next to the data (an
/// enable flip-flop, a shift-amount register, …); its width is what
/// [`WriteTransducer::metadata_bits`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metadata {
    /// No transformation applied.
    None,
    /// Whether the word was inverted.
    Inverted(bool),
    /// Left-rotation amount applied to the word.
    Rotated(u8),
}

/// A write transducer (WDE) and its matching read decoder (RDD).
///
/// Implementations must satisfy `decode(encode(w)) == w` for every word
/// that fits the transducer width — verified by property tests; the
/// mitigation scheme must never alter inference results.
///
/// # Fork contract
///
/// [`WriteTransducer::fork`] splits one transducer into per-shard
/// clones for the word-sharded exact simulator. The contract all
/// implementations and callers uphold:
///
/// * **Fork before the first `encode`.** Forks snapshot the
///   transducer's current per-address state; the simulator forks a
///   freshly constructed prototype, so every shard starts from reset
///   state. Forking mid-stream is well-defined (a state snapshot) but
///   not what the shard semantics below are stated for.
/// * **Shards write disjoint address sets.** Per-address state
///   (inversion parity, rotation counters) is never shared between
///   forks, so two forks writing the same address would diverge from a
///   serial run.
/// * **Every fork sees every block boundary.** Callers signal
///   [`WriteTransducer::new_block`] to each fork at each boundary, so
///   schedule-driven state (the DNN-Life bias-balancing register)
///   advances in lockstep across shards.
/// * **Deterministic policies are partition-invariant:** their state is
///   per-address, so any shard partition reproduces the serial run's
///   stored stream bit-for-bit.
/// * **DNN-Life is reproducible per shard:** `fork(s)` derives TRBG
///   stream `s` from the construction seed ([`crate::Trbg::fork`]);
///   shard 0 reproduces the unforked stream, so a one-shard run matches
///   the serial simulator exactly, and any fixed shard count is a
///   deterministic function of the scenario seed.
///
/// The `Send + Sync` supertraits let the sharded simulator share a
/// prototype across its scoped worker threads (each fork itself stays
/// thread-local) — hardware transducer models are plain state, so this
/// costs implementations nothing.
pub trait WriteTransducer: Send + Sync {
    /// Short policy name for reports (e.g. `"dnn-life"`).
    fn name(&self) -> &'static str;

    /// Word width in bits (1..=64).
    fn width(&self) -> u32;

    /// Metadata bits stored per word write.
    fn metadata_bits(&self) -> u32;

    /// Encodes `word` being written to `addr`, returning the stored bit
    /// pattern and the metadata for later decoding.
    ///
    /// # Panics
    ///
    /// Implementations panic if `addr` is outside the address space they
    /// were sized for, or if `word` has bits beyond [`Self::width`].
    fn encode(&mut self, addr: u64, word: u64) -> (u64, Metadata);

    /// Decodes a stored pattern using its metadata.
    fn decode(&self, stored: u64, meta: Metadata) -> u64;

    /// Encodes a run of words (`raw[i]` written to `addrs[i]`) into
    /// `out`, exactly as the same sequence of [`Self::encode`] calls
    /// would, discarding the metadata. Implementations override this
    /// with a monomorphic loop so the exact simulator pays one virtual
    /// dispatch per run instead of one per word — the override must be
    /// observationally identical to the default (same stored bits,
    /// same state advance, same panics).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ, or as [`Self::encode`] does
    /// for any element.
    fn encode_run(&mut self, addrs: &[u64], raw: &[u64], out: &mut [u64]) {
        assert_eq!(addrs.len(), raw.len(), "encode_run: length mismatch");
        assert_eq!(addrs.len(), out.len(), "encode_run: length mismatch");
        for ((&addr, &word), slot) in addrs.iter().zip(raw).zip(out) {
            *slot = self.encode(addr, word).0;
        }
    }

    /// Period of the complete encoder state in *writes per address*,
    /// for policies whose state (per-address and block-schedule alike)
    /// provably returns to its initial value after that many writes to
    /// each address — `None` for aperiodic or randomized policies.
    /// The exact simulator uses this to simulate one period of a
    /// repeated write schedule and replay the rest arithmetically.
    fn write_period(&self) -> Option<u64> {
        None
    }

    /// Signals a block boundary (drives the controller's bias-balancing
    /// register in the DNN-Life policy; a no-op for the baselines).
    fn new_block(&mut self) {}

    /// A transducer for word-shard `shard` of a sharded exact
    /// simulation — see the trait-level *Fork contract*. Deterministic
    /// policies return a state snapshot; DNN-Life additionally forks
    /// its TRBG into independent stream `shard`.
    fn fork(&self, shard: u64) -> Box<dyn WriteTransducer>;
}

fn mask(width: u32) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn check_word(width: u32, word: u64) {
    assert!(
        word & !mask(width) == 0,
        "word {word:#x} has bits beyond width {width}"
    );
}

/// No mitigation: words are stored as-is.
///
/// # Example
///
/// ```
/// use dnnlife_mitigation::transducer::{Passthrough, WriteTransducer};
///
/// let mut t = Passthrough::new(8);
/// let (stored, meta) = t.encode(3, 0xAB);
/// assert_eq!(stored, 0xAB);
/// assert_eq!(t.decode(stored, meta), 0xAB);
/// ```
#[derive(Debug, Clone)]
pub struct Passthrough {
    width: u32,
}

impl Passthrough {
    /// Creates a pass-through transducer for `width`-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "Passthrough: bad width {width}");
        Self { width }
    }
}

impl WriteTransducer for Passthrough {
    fn name(&self) -> &'static str {
        "none"
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn metadata_bits(&self) -> u32 {
        0
    }

    fn encode(&mut self, _addr: u64, word: u64) -> (u64, Metadata) {
        check_word(self.width, word);
        (word, Metadata::None)
    }

    fn decode(&self, stored: u64, _meta: Metadata) -> u64 {
        stored
    }

    fn encode_run(&mut self, addrs: &[u64], raw: &[u64], out: &mut [u64]) {
        assert_eq!(addrs.len(), raw.len(), "encode_run: length mismatch");
        assert_eq!(addrs.len(), out.len(), "encode_run: length mismatch");
        for (&word, slot) in raw.iter().zip(out) {
            check_word(self.width, word);
            *slot = word;
        }
    }

    fn write_period(&self) -> Option<u64> {
        Some(1)
    }

    fn fork(&self, _shard: u64) -> Box<dyn WriteTransducer> {
        Box::new(self.clone())
    }
}

/// Inversion-based duty-cycle balancing: every other write to the same
/// location is stored inverted (Jin et al., the paper's ref. 19).
///
/// The paper's probabilistic analysis (§III-B) shows why this is
/// sub-optimal for DNN workloads: when the number of blocks cycling
/// through the memory is even, each location always receives the same
/// inversion phase for the same data, so the duty cycle is *not*
/// balanced.
#[derive(Debug, Clone)]
pub struct PeriodicInversion {
    width: u32,
    parity: Vec<bool>,
}

impl PeriodicInversion {
    /// Creates the transducer for a memory of `num_words` words of
    /// `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is invalid or `num_words == 0`.
    pub fn new(width: u32, num_words: usize) -> Self {
        assert!(
            (1..=64).contains(&width),
            "PeriodicInversion: bad width {width}"
        );
        assert!(num_words > 0, "PeriodicInversion: num_words must be > 0");
        Self {
            width,
            parity: vec![false; num_words],
        }
    }
}

impl WriteTransducer for PeriodicInversion {
    fn name(&self) -> &'static str {
        "inversion"
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn metadata_bits(&self) -> u32 {
        1
    }

    fn encode(&mut self, addr: u64, word: u64) -> (u64, Metadata) {
        check_word(self.width, word);
        let slot = &mut self.parity[usize::try_from(addr).expect("address fits usize")];
        let invert = *slot;
        *slot = !*slot;
        let stored = if invert {
            word ^ mask(self.width)
        } else {
            word
        };
        (stored, Metadata::Inverted(invert))
    }

    fn decode(&self, stored: u64, meta: Metadata) -> u64 {
        match meta {
            Metadata::Inverted(true) => stored ^ mask(self.width),
            Metadata::Inverted(false) => stored,
            other => panic!("PeriodicInversion: wrong metadata {other:?}"),
        }
    }

    fn encode_run(&mut self, addrs: &[u64], raw: &[u64], out: &mut [u64]) {
        assert_eq!(addrs.len(), raw.len(), "encode_run: length mismatch");
        assert_eq!(addrs.len(), out.len(), "encode_run: length mismatch");
        let m = mask(self.width);
        for ((&addr, &word), slot) in addrs.iter().zip(raw).zip(out) {
            check_word(self.width, word);
            let parity = &mut self.parity[usize::try_from(addr).expect("address fits usize")];
            let invert = *parity;
            *parity = !*parity;
            *slot = if invert { word ^ m } else { word };
        }
    }

    fn write_period(&self) -> Option<u64> {
        Some(2)
    }

    fn fork(&self, _shard: u64) -> Box<dyn WriteTransducer> {
        Box::new(self.clone())
    }
}

/// Barrel-shifter-based balancing: each write to a location is rotated
/// by one more bit position than the previous one (Kothawade et al.
/// ref. 15). Works only when the word's own bit distribution is balanced —
/// rotation spreads each bit over all positions but cannot fix an
/// overall `0`/`1` imbalance (paper observation 3).
#[derive(Debug, Clone)]
pub struct BarrelShifter {
    width: u32,
    counters: Vec<u8>,
}

impl BarrelShifter {
    /// Creates the transducer for a memory of `num_words` words of
    /// `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is invalid or `num_words == 0`.
    pub fn new(width: u32, num_words: usize) -> Self {
        assert!(
            (1..=64).contains(&width),
            "BarrelShifter: bad width {width}"
        );
        assert!(num_words > 0, "BarrelShifter: num_words must be > 0");
        Self {
            width,
            counters: vec![0; num_words],
        }
    }

    fn rotate_left(&self, word: u64, by: u32) -> u64 {
        let w = self.width;
        let by = by % w;
        if by == 0 {
            return word;
        }
        ((word << by) | (word >> (w - by))) & mask(w)
    }

    fn rotate_right(&self, word: u64, by: u32) -> u64 {
        let w = self.width;
        let by = by % w;
        if by == 0 {
            return word;
        }
        ((word >> by) | (word << (w - by))) & mask(w)
    }
}

impl WriteTransducer for BarrelShifter {
    fn name(&self) -> &'static str {
        "barrel-shifter"
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn metadata_bits(&self) -> u32 {
        // ceil(log2(width)) bits of shift amount.
        32 - (self.width - 1).leading_zeros()
    }

    fn encode(&mut self, addr: u64, word: u64) -> (u64, Metadata) {
        check_word(self.width, word);
        let slot = &mut self.counters[usize::try_from(addr).expect("address fits usize")];
        let shift = u32::from(*slot) % self.width;
        *slot = ((u32::from(*slot) + 1) % self.width) as u8;
        (
            self.rotate_left(word, shift),
            Metadata::Rotated(shift as u8),
        )
    }

    fn decode(&self, stored: u64, meta: Metadata) -> u64 {
        match meta {
            Metadata::Rotated(shift) => self.rotate_right(stored, u32::from(shift)),
            other => panic!("BarrelShifter: wrong metadata {other:?}"),
        }
    }

    fn encode_run(&mut self, addrs: &[u64], raw: &[u64], out: &mut [u64]) {
        assert_eq!(addrs.len(), raw.len(), "encode_run: length mismatch");
        assert_eq!(addrs.len(), out.len(), "encode_run: length mismatch");
        for ((&addr, &word), slot) in addrs.iter().zip(raw).zip(out) {
            check_word(self.width, word);
            let counter = &mut self.counters[usize::try_from(addr).expect("address fits usize")];
            let shift = u32::from(*counter) % self.width;
            *counter = ((u32::from(*counter) + 1) % self.width) as u8;
            *slot = self.rotate_left(word, shift);
        }
    }

    fn write_period(&self) -> Option<u64> {
        Some(u64::from(self.width))
    }

    fn fork(&self, _shard: u64) -> Box<dyn WriteTransducer> {
        Box::new(self.clone())
    }
}

/// The paper's DNN-Life WDE/RDD: each word write is inverted or not
/// according to the enable bit from the [`AgingController`].
#[derive(Debug)]
pub struct DnnLife<T> {
    width: u32,
    controller: AgingController<T>,
}

impl<T: Trbg> DnnLife<T> {
    /// Creates the transducer around an aging controller.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 64.
    pub fn new(width: u32, controller: AgingController<T>) -> Self {
        assert!((1..=64).contains(&width), "DnnLife: bad width {width}");
        Self { width, controller }
    }

    /// Access to the controller (for bias reporting).
    pub fn controller(&self) -> &AgingController<T> {
        &self.controller
    }
}

impl<T: Trbg + Send + Sync + 'static> WriteTransducer for DnnLife<T> {
    fn name(&self) -> &'static str {
        "dnn-life"
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn metadata_bits(&self) -> u32 {
        1
    }

    fn encode(&mut self, _addr: u64, word: u64) -> (u64, Metadata) {
        check_word(self.width, word);
        let enable = self.controller.next_enable();
        let stored = if enable {
            word ^ mask(self.width)
        } else {
            word
        };
        (stored, Metadata::Inverted(enable))
    }

    fn decode(&self, stored: u64, meta: Metadata) -> u64 {
        match meta {
            Metadata::Inverted(true) => stored ^ mask(self.width),
            Metadata::Inverted(false) => stored,
            other => panic!("DnnLife: wrong metadata {other:?}"),
        }
    }

    fn encode_run(&mut self, addrs: &[u64], raw: &[u64], out: &mut [u64]) {
        assert_eq!(addrs.len(), raw.len(), "encode_run: length mismatch");
        assert_eq!(addrs.len(), out.len(), "encode_run: length mismatch");
        let m = mask(self.width);
        // Monomorphic over the TRBG, so `next_enable` inlines; the
        // draw order is exactly the per-word `encode` order.
        for (&word, slot) in raw.iter().zip(out) {
            check_word(self.width, word);
            let enable = self.controller.next_enable();
            *slot = if enable { word ^ m } else { word };
        }
    }

    fn new_block(&mut self) {
        self.controller.new_block();
    }

    fn fork(&self, shard: u64) -> Box<dyn WriteTransducer> {
        Box::new(Self {
            width: self.width,
            controller: self.controller.fork(shard),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trbg::PseudoTrbg;

    fn duty_of_repeated_writes(t: &mut dyn WriteTransducer, word: u64, writes: u32) -> Vec<f64> {
        let width = t.width();
        let mut ones = vec![0u32; width as usize];
        for i in 0..writes {
            if i > 0 && i % 4 == 0 {
                t.new_block();
            }
            let (stored, _) = t.encode(0, word);
            for (pos, count) in ones.iter_mut().enumerate() {
                *count += (stored >> pos & 1) as u32;
            }
        }
        ones.iter()
            .map(|&c| f64::from(c) / f64::from(writes))
            .collect()
    }

    #[test]
    fn passthrough_identity() {
        let mut t = Passthrough::new(8);
        for w in [0u64, 0xFF, 0xA5] {
            let (stored, meta) = t.encode(0, w);
            assert_eq!(stored, w);
            assert_eq!(t.decode(stored, meta), w);
        }
        assert_eq!(t.metadata_bits(), 0);
    }

    #[test]
    fn inversion_alternates_per_location() {
        let mut t = PeriodicInversion::new(8, 4);
        let (s1, _) = t.encode(2, 0x0F);
        let (s2, _) = t.encode(2, 0x0F);
        let (s3, _) = t.encode(2, 0x0F);
        assert_eq!(s1, 0x0F);
        assert_eq!(s2, 0xF0); // inverted
        assert_eq!(s3, 0x0F);
        // Other locations have independent parity.
        let (o1, _) = t.encode(3, 0x0F);
        assert_eq!(o1, 0x0F);
    }

    #[test]
    fn inversion_balances_constant_word() {
        let mut t = PeriodicInversion::new(8, 1);
        let duties = duty_of_repeated_writes(&mut t, 0xFF, 100);
        for d in duties {
            assert!((d - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn barrel_shifter_cycles_through_all_rotations() {
        let mut t = BarrelShifter::new(8, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let (stored, _) = t.encode(0, 0b0000_0001);
            seen.insert(stored);
        }
        // A single 1-bit rotated through all 8 positions.
        assert_eq!(seen.len(), 8);
        let expected: std::collections::HashSet<u64> = (0..8).map(|i| 1u64 << i).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn barrel_shifter_spreads_but_preserves_mean() {
        // 0b00000111 has mean bit value 3/8; rotation equalises positions
        // at 3/8 but cannot reach 0.5 (paper observation 3).
        let mut t = BarrelShifter::new(8, 1);
        let duties = duty_of_repeated_writes(&mut t, 0b0000_0111, 80);
        for d in duties {
            assert!((d - 0.375).abs() < 1e-9);
        }
    }

    #[test]
    fn barrel_metadata_width() {
        assert_eq!(BarrelShifter::new(8, 1).metadata_bits(), 3);
        assert_eq!(BarrelShifter::new(32, 1).metadata_bits(), 5);
        assert_eq!(BarrelShifter::new(64, 1).metadata_bits(), 6);
    }

    #[test]
    fn dnn_life_balances_even_constant_biased_words() {
        // An all-ones word (duty 1.0 without mitigation) is driven to
        // ~0.5 by randomised inversion — the case where the barrel
        // shifter fails entirely.
        let controller = AgingController::new(PseudoTrbg::new(7, 0.5), 4);
        let mut t = DnnLife::new(8, controller);
        let duties = duty_of_repeated_writes(&mut t, 0xFF, 4000);
        for d in duties {
            assert!((d - 0.5).abs() < 0.03, "duty {d}");
        }
    }

    #[test]
    fn dnn_life_biased_trbg_without_balancing_misses_half() {
        let controller = AgingController::without_balancing(PseudoTrbg::new(7, 0.7));
        let mut t = DnnLife::new(8, controller);
        let duties = duty_of_repeated_writes(&mut t, 0xFF, 4000);
        // Stored bit = 1 XOR e, e ~ Bern(0.7) → duty ≈ 0.3.
        for d in duties {
            assert!((d - 0.3).abs() < 0.03, "duty {d}");
        }
    }

    #[test]
    fn dnn_life_biased_trbg_with_balancing_recovers() {
        let controller = AgingController::new(PseudoTrbg::new(7, 0.7), 4);
        let mut t = DnnLife::new(8, controller);
        let duties = duty_of_repeated_writes(&mut t, 0xFF, 4000);
        for d in duties {
            assert!((d - 0.5).abs() < 0.03, "duty {d}");
        }
    }

    #[test]
    fn all_policies_roundtrip() {
        let controller = AgingController::new(PseudoTrbg::new(3, 0.6), 4);
        let mut policies: Vec<Box<dyn WriteTransducer>> = vec![
            Box::new(Passthrough::new(16)),
            Box::new(PeriodicInversion::new(16, 8)),
            Box::new(BarrelShifter::new(16, 8)),
            Box::new(DnnLife::new(16, controller)),
        ];
        for p in &mut policies {
            for addr in 0..8u64 {
                for word in [0u64, 0xFFFF, 0x1234, 0x8001] {
                    let (stored, meta) = p.encode(addr, word);
                    assert_eq!(
                        p.decode(stored, meta),
                        word,
                        "policy {} failed roundtrip",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "has bits beyond width")]
    fn rejects_wide_words() {
        let mut t = Passthrough::new(8);
        let _ = t.encode(0, 0x100);
    }

    fn all_policies() -> Vec<Box<dyn WriteTransducer>> {
        vec![
            Box::new(Passthrough::new(8)),
            Box::new(PeriodicInversion::new(8, 16)),
            Box::new(BarrelShifter::new(8, 16)),
            Box::new(DnnLife::new(
                8,
                AgingController::new(PseudoTrbg::new(11, 0.7), 4),
            )),
        ]
    }

    #[test]
    fn encode_run_matches_sequential_encode() {
        // The batched override must be observationally identical to
        // per-word `encode`: same stored bits and same state advance,
        // across block boundaries.
        for proto in all_policies() {
            let mut batched = proto.fork(0);
            let mut sequential = proto.fork(0);
            for round in 0..40u64 {
                let addrs: Vec<u64> = (0..16).collect();
                let raw: Vec<u64> = addrs.iter().map(|a| (a * 37 + round * 11) & 0xFF).collect();
                let mut out = vec![0u64; raw.len()];
                batched.encode_run(&addrs, &raw, &mut out);
                let expect: Vec<u64> = addrs
                    .iter()
                    .zip(&raw)
                    .map(|(&a, &w)| sequential.encode(a, w).0)
                    .collect();
                assert_eq!(out, expect, "policy {} round {round}", proto.name());
                batched.new_block();
                sequential.new_block();
            }
        }
    }

    #[test]
    fn write_period_cycles_back_to_reset_state() {
        // After `write_period()` writes to every address (with block
        // boundaries interleaved), a periodic policy must store the
        // same bits a fresh instance would.
        for proto in all_policies() {
            let Some(period) = proto.write_period() else {
                assert_eq!(proto.name(), "dnn-life", "only DNN-Life is aperiodic");
                continue;
            };
            let mut cycled = proto.fork(0);
            for i in 0..period {
                for addr in 0..16u64 {
                    let _ = cycled.encode(addr, (addr + i) & 0xFF);
                }
                cycled.new_block();
            }
            let mut fresh = proto.fork(0);
            for addr in 0..16u64 {
                let word = (addr * 13) & 0xFF;
                assert_eq!(
                    cycled.encode(addr, word).0,
                    fresh.encode(addr, word).0,
                    "policy {} did not cycle after {period} writes",
                    proto.name()
                );
            }
        }
    }

    #[test]
    fn deterministic_forks_match_parent_stream_per_address() {
        // Fresh forks of the deterministic policies replay exactly what
        // the parent would have stored at each address, regardless of
        // shard index — the partition-invariance leg of the contract.
        let parents: Vec<Box<dyn WriteTransducer>> = vec![
            Box::new(Passthrough::new(8)),
            Box::new(PeriodicInversion::new(8, 16)),
            Box::new(BarrelShifter::new(8, 16)),
        ];
        for parent in parents {
            let mut serial = parent.fork(0);
            let mut sharded = parent.fork(7);
            for round in 0..5u64 {
                for addr in 0..16u64 {
                    let word = (addr * 31 + round) & 0xFF;
                    assert_eq!(
                        serial.encode(addr, word).0,
                        sharded.encode(addr, word).0,
                        "policy {} addr {addr} round {round}",
                        parent.name()
                    );
                }
                serial.new_block();
                sharded.new_block();
            }
        }
    }

    #[test]
    fn dnn_life_fork_zero_reproduces_parent_stream() {
        let make = || DnnLife::new(8, AgingController::new(PseudoTrbg::new(42, 0.7), 4));
        let prototype = make();
        let mut forked = prototype.fork(0);
        let mut fresh = make();
        for i in 0..200u64 {
            assert_eq!(forked.encode(i % 8, 0xA5).0, fresh.encode(i % 8, 0xA5).0);
            if i % 4 == 3 {
                forked.new_block();
                fresh.new_block();
            }
        }
    }

    #[test]
    fn dnn_life_forks_decorrelate_but_stay_balanced() {
        let prototype = DnnLife::new(8, AgingController::new(PseudoTrbg::new(42, 0.7), 4));
        let mut a = prototype.fork(1);
        let mut b = prototype.fork(2);
        let stream = |t: &mut Box<dyn WriteTransducer>| -> Vec<u64> {
            (0..4000u64)
                .map(|i| {
                    if i % 4 == 0 {
                        t.new_block();
                    }
                    t.encode(0, 0xFF).0
                })
                .collect()
        };
        let sa = stream(&mut a);
        let sb = stream(&mut b);
        assert_ne!(sa, sb, "distinct shards must draw distinct streams");
        // Each forked stream still balances the duty cycle.
        for s in [sa, sb] {
            let duty = s.iter().map(|w| (w & 1) as f64).sum::<f64>() / s.len() as f64;
            assert!((duty - 0.5).abs() < 0.03, "duty {duty}");
        }
    }
}
