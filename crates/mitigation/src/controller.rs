//! The aging-mitigation controller (Fig. 8 of the paper).
//!
//! The controller produces the enable signal `E` that drives the XOR
//! arrays of the WDE and RDD. `E` is the TRBG output XORed with the MSB
//! of an M-bit register incremented by the *new data block* signal:
//! over any window of `2^M` blocks the MSB is high for exactly half the
//! blocks, so even a biased TRBG (probability `p ≠ 0.5` of emitting 1)
//! yields a long-run enable probability of exactly
//! `p · ½ + (1 − p) · ½ = ½`.

use crate::trbg::Trbg;

/// Aging-mitigation controller: TRBG + M-bit bias-balancing register.
///
/// # Example
///
/// ```
/// use dnnlife_mitigation::{AgingController, PseudoTrbg};
///
/// // A heavily biased TRBG...
/// let mut c = AgingController::new(PseudoTrbg::new(1, 0.9), 4);
/// let mut ones = 0u32;
/// for block in 0..512 {
///     for _ in 0..4 {
///         ones += u32::from(c.next_enable());
///     }
///     c.new_block();
/// }
/// // ...still produces a balanced enable stream.
/// let ratio = f64::from(ones) / 2048.0;
/// assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
/// ```
#[derive(Debug)]
pub struct AgingController<T> {
    trbg: T,
    m_bits: u32,
    block_counter: u64,
    balancing: bool,
}

impl<T: Trbg> AgingController<T> {
    /// Creates a controller with bias balancing enabled, using an
    /// `m_bits`-wide block counter (the paper evaluates `M = 4`).
    ///
    /// # Panics
    ///
    /// Panics if `m_bits` is 0 or greater than 63.
    pub fn new(trbg: T, m_bits: u32) -> Self {
        assert!(
            (1..=63).contains(&m_bits),
            "AgingController: m_bits must be in 1..=63, got {m_bits}"
        );
        Self {
            trbg,
            m_bits,
            block_counter: 0,
            balancing: true,
        }
    }

    /// Creates a controller with the bias-balancing register *disabled*
    /// (the paper's "without bias balancing" ablation): `E` is the raw
    /// TRBG output.
    pub fn without_balancing(trbg: T) -> Self {
        Self {
            trbg,
            m_bits: 1,
            block_counter: 0,
            balancing: false,
        }
    }

    /// A controller for TRBG stream `stream` of a word-sharded
    /// simulation: the TRBG forks into an independent per-stream
    /// generator ([`Trbg::fork`]) while the deterministic
    /// bias-balancing register — width, enablement and current count —
    /// is copied, because every shard observes the same *new data
    /// block* schedule and the MSB correction must stay in lockstep
    /// across shards.
    pub fn fork(&self, stream: u64) -> Self {
        Self {
            trbg: self.trbg.fork(stream),
            m_bits: self.m_bits,
            block_counter: self.block_counter,
            balancing: self.balancing,
        }
    }

    /// Whether bias balancing is active.
    pub fn balancing(&self) -> bool {
        self.balancing
    }

    /// Width of the bias-balancing register.
    pub fn m_bits(&self) -> u32 {
        self.m_bits
    }

    /// The enable signal for the next word write.
    pub fn next_enable(&mut self) -> bool {
        let raw = self.trbg.next_bit();
        if self.balancing {
            raw ^ self.msb()
        } else {
            raw
        }
    }

    /// Signals that a new data block is being written (increments the
    /// M-bit register; it wraps naturally at `2^M`).
    pub fn new_block(&mut self) {
        self.block_counter = (self.block_counter + 1) & ((1 << self.m_bits) - 1);
    }

    /// Current MSB of the M-bit register.
    fn msb(&self) -> bool {
        self.block_counter >> (self.m_bits - 1) & 1 == 1
    }

    /// Access to the underlying TRBG (for bias reporting).
    pub fn trbg(&self) -> &T {
        &self.trbg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trbg::PseudoTrbg;

    fn enable_ratio(mut c: AgingController<PseudoTrbg>, blocks: u64, writes_per_block: u64) -> f64 {
        let mut ones = 0u64;
        for _ in 0..blocks {
            for _ in 0..writes_per_block {
                ones += u64::from(c.next_enable());
            }
            c.new_block();
        }
        ones as f64 / (blocks * writes_per_block) as f64
    }

    #[test]
    fn balancing_cancels_bias() {
        let c = AgingController::new(PseudoTrbg::new(11, 0.7), 4);
        let ratio = enable_ratio(c, 1600, 8);
        assert!((ratio - 0.5).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn without_balancing_preserves_bias() {
        let c = AgingController::without_balancing(PseudoTrbg::new(11, 0.7));
        let ratio = enable_ratio(c, 1600, 8);
        assert!((ratio - 0.7).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn fair_trbg_is_unaffected_by_balancing() {
        let balanced = enable_ratio(AgingController::new(PseudoTrbg::new(5, 0.5), 4), 800, 8);
        assert!((balanced - 0.5).abs() < 0.03, "ratio {balanced}");
    }

    #[test]
    fn counter_wraps_at_2_to_m() {
        let mut c = AgingController::new(PseudoTrbg::new(0, 0.5), 2);
        // Period 4: MSB pattern over blocks 0..8 is 0,0,1,1,0,0,1,1.
        let mut msbs = Vec::new();
        for _ in 0..8 {
            msbs.push(c.block_counter >> 1 & 1);
            c.new_block();
        }
        assert_eq!(msbs, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn extreme_bias_fully_balanced_over_period() {
        // A TRBG stuck at 1: with balancing the enable stream is exactly
        // the MSB complement — deterministic 50% over each 2^M window.
        let mut c = AgingController::new(PseudoTrbg::new(3, 1.0), 3);
        let mut ones = 0;
        for _ in 0..8 {
            ones += u32::from(c.next_enable());
            c.new_block();
        }
        assert_eq!(ones, 4);
    }

    #[test]
    #[should_panic(expected = "m_bits must be in 1..=63")]
    fn rejects_zero_width_register() {
        let _ = AgingController::new(PseudoTrbg::new(0, 0.5), 0);
    }

    #[test]
    fn fork_copies_register_but_splits_trbg() {
        let mut parent = AgingController::new(PseudoTrbg::new(9, 1.0), 2);
        parent.new_block();
        parent.new_block(); // counter = 2 → MSB high
        let mut forked = parent.fork(3);
        assert_eq!(forked.m_bits(), parent.m_bits());
        assert!(forked.balancing());
        // A stuck-at-1 TRBG makes the enable the MSB complement, so the
        // copied register state is directly observable.
        assert!(!forked.next_enable(), "MSB high ⇒ enable low");
        forked.new_block();
        forked.new_block(); // wraps to 0 → MSB low
        assert!(forked.next_enable(), "MSB low ⇒ enable high");
    }

    #[test]
    fn forked_balancing_still_cancels_bias() {
        let parent = AgingController::new(PseudoTrbg::new(11, 0.7), 4);
        let ratio = enable_ratio(parent.fork(5), 1600, 8);
        assert!((ratio - 0.5).abs() < 0.02, "ratio {ratio}");
    }
}
