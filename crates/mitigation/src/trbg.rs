//! True Random Bit Generator models.
//!
//! The paper realises its TRBG as a 5-stage ring oscillator sampled by
//! the (much slower) system clock; accumulated period jitter makes the
//! sampled level unpredictable. Two models are provided:
//!
//! * [`PseudoTrbg`] — an ideal Bernoulli source with an exactly
//!   configurable bias. The paper's experiments are parameterised by
//!   bias (0.5 and 0.7), which maps directly onto this model.
//! * [`RingOscillatorTrbg`] — a behavioural model of the hardware:
//!   jittered stage delays, asymmetric rise/fall (the physical origin of
//!   bias), and clock-rate sampling.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Derives the construction seed of stream `stream` forked from a
/// generator built with `seed`. Stream 0 maps to `seed` itself — a
/// single-stream fork reproduces the parent's draw sequence exactly —
/// and the golden-ratio multiply spreads adjacent stream indices across
/// the seed space before the generator's own seed mixing runs.
pub(crate) fn fork_seed(seed: u64, stream: u64) -> u64 {
    seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A source of (possibly biased) random bits — the enable-signal
/// generator of the aging controller.
pub trait Trbg {
    /// Draws the next bit.
    fn next_bit(&mut self) -> bool;

    /// The long-run probability of emitting `true`, if known a priori
    /// (used for reporting; `None` for physical models whose bias is
    /// emergent).
    fn nominal_bias(&self) -> Option<f64> {
        None
    }

    /// An independent generator for stream `stream`, derived from this
    /// generator's *construction* seed (not its current state): stream
    /// 0 reproduces the parent's own draw sequence from its initial
    /// state, streams 1.. are decorrelated. The word-sharded exact
    /// simulator forks one stream per shard so every shard count is
    /// reproducible from the scenario seed alone.
    fn fork(&self, stream: u64) -> Self
    where
        Self: Sized;
}

/// Ideal Bernoulli TRBG with exact bias.
///
/// # Example
///
/// ```
/// use dnnlife_mitigation::{PseudoTrbg, Trbg};
///
/// let mut t = PseudoTrbg::new(7, 0.7);
/// let ones = (0..10_000).filter(|_| t.next_bit()).count();
/// assert!((ones as f64 / 10_000.0 - 0.7).abs() < 0.03);
/// ```
#[derive(Debug)]
pub struct PseudoTrbg {
    rng: StdRng,
    seed: u64,
    bias: f64,
    /// `ceil(bias * 2^53)` — `next_bit` compares the raw 53-bit draw
    /// against this instead of converting it to `f64` first. The two
    /// forms are exactly equivalent: the draw `k` is an integer and
    /// `k * 2⁻⁵³` and `bias * 2⁵³` are both computed exactly, so
    /// `k * 2⁻⁵³ < bias  ⟺  k < ⌈bias * 2⁵³⌉`.
    threshold: u64,
}

impl PseudoTrbg {
    /// Creates a TRBG emitting `true` with probability `bias`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is outside `[0, 1]`.
    pub fn new(seed: u64, bias: f64) -> Self {
        assert!(
            bias.is_finite() && (0.0..=1.0).contains(&bias),
            "PseudoTrbg: bias must be in [0,1], got {bias}"
        );
        Self {
            rng: StdRng::seed_from_u64(seed),
            seed,
            bias,
            threshold: (bias * (1u64 << 53) as f64).ceil() as u64,
        }
    }
}

impl Trbg for PseudoTrbg {
    fn next_bit(&mut self) -> bool {
        // Exactly `self.rng.random::<f64>() < self.bias` (the f64 draw
        // is `(next_u64() >> 11) * 2⁻⁵³`), minus the int→float round
        // trip — this runs once per simulated word write.
        (self.rng.next_u64() >> 11) < self.threshold
    }

    fn nominal_bias(&self) -> Option<f64> {
        Some(self.bias)
    }

    fn fork(&self, stream: u64) -> Self {
        Self::new(fork_seed(self.seed, stream), self.bias)
    }
}

/// Behavioural model of the paper's hardware TRBG: a 5-stage ring
/// oscillator sampled by the system clock.
///
/// The oscillator toggles with half-periods of `stages × delay` plus
/// accumulated Gaussian jitter; because the sampling period is orders of
/// magnitude longer than the oscillation period and jitter accumulates
/// over many cycles, the sampled level decorrelates between samples.
/// Unequal rise/fall delays skew the fraction of time spent high — the
/// physical origin of TRBG bias that the paper's bias-balancing register
/// corrects.
///
/// # Example
///
/// ```
/// use dnnlife_mitigation::{RingOscillatorTrbg, Trbg};
///
/// let mut ro = RingOscillatorTrbg::symmetric(42);
/// let ones = (0..2000).filter(|_| ro.next_bit()).count();
/// // Symmetric oscillator: close to balanced.
/// assert!((ones as f64 / 2000.0 - 0.5).abs() < 0.05);
/// ```
#[derive(Debug)]
pub struct RingOscillatorTrbg {
    rng: StdRng,
    /// Construction seed, kept for [`Trbg::fork`].
    seed: u64,
    /// Duration of the next high phase, ps (5 stages × rise-ish delay).
    high_half_ps: f64,
    /// Duration of the next low phase, ps.
    low_half_ps: f64,
    /// RMS jitter per half-period, ps.
    jitter_ps: f64,
    /// Sampling clock period, ps.
    sample_period_ps: f64,
    /// Current oscillator level.
    level: bool,
    /// Simulation time remaining until the next toggle, ps.
    until_toggle_ps: f64,
}

impl RingOscillatorTrbg {
    /// Creates a ring-oscillator TRBG.
    ///
    /// `high_half_ps`/`low_half_ps` are the nominal durations of the
    /// high and low oscillator phases (5 × stage delay for a 5-stage
    /// ring); `jitter_ps` is the RMS jitter added to each half-period;
    /// `sample_period_ps` is the system clock period.
    ///
    /// # Panics
    ///
    /// Panics if any duration is non-positive, or jitter is negative.
    pub fn new(
        seed: u64,
        high_half_ps: f64,
        low_half_ps: f64,
        jitter_ps: f64,
        sample_period_ps: f64,
    ) -> Self {
        assert!(
            high_half_ps > 0.0 && low_half_ps > 0.0 && sample_period_ps > 0.0,
            "RingOscillatorTrbg: durations must be > 0"
        );
        assert!(jitter_ps >= 0.0, "RingOscillatorTrbg: jitter must be >= 0");
        Self {
            rng: StdRng::seed_from_u64(seed),
            seed,
            high_half_ps,
            low_half_ps,
            jitter_ps,
            sample_period_ps,
            level: false,
            until_toggle_ps: low_half_ps,
        }
    }

    /// A symmetric 5-stage oscillator: 20 ps stage delay (100 ps half-
    /// period), 10 ps RMS jitter, sampled at 10 MHz (100 ns). Roughly a
    /// thousand oscillation half-periods elapse between samples, so the
    /// accumulated jitter (~10·√1000 ≈ 316 ps) exceeds the full period
    /// and the sampled phase is thoroughly decorrelated.
    pub fn symmetric(seed: u64) -> Self {
        Self::new(seed, 100.0, 100.0, 10.0, 100_000.0)
    }

    /// An asymmetric oscillator whose output is high for roughly
    /// `duty` of the time — a *biased* TRBG (the paper's bias-0.7 case
    /// corresponds to `duty = 0.7`).
    ///
    /// # Panics
    ///
    /// Panics if `duty` is not strictly between 0 and 1.
    pub fn biased(seed: u64, duty: f64) -> Self {
        assert!(
            duty > 0.0 && duty < 1.0,
            "RingOscillatorTrbg: duty must be in (0,1), got {duty}"
        );
        let period = 200.0;
        Self::new(seed, period * duty, period * (1.0 - duty), 10.0, 100_000.0)
    }

    fn jittered(&mut self, nominal: f64) -> f64 {
        // Box–Muller pair; one sample is enough here.
        let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (nominal + self.jitter_ps * z).max(nominal * 0.05)
    }
}

impl Trbg for RingOscillatorTrbg {
    fn fork(&self, stream: u64) -> Self {
        Self::new(
            fork_seed(self.seed, stream),
            self.high_half_ps,
            self.low_half_ps,
            self.jitter_ps,
            self.sample_period_ps,
        )
    }

    fn next_bit(&mut self) -> bool {
        // Advance the oscillator by one sampling period.
        let mut remaining = self.sample_period_ps;
        while remaining >= self.until_toggle_ps {
            remaining -= self.until_toggle_ps;
            self.level = !self.level;
            let nominal = if self.level {
                self.high_half_ps
            } else {
                self.low_half_ps
            };
            self.until_toggle_ps = self.jittered(nominal);
        }
        self.until_toggle_ps -= remaining;
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randtest::{monobit_z_score, runs_z_score};

    #[test]
    fn pseudo_trbg_is_deterministic() {
        let mut a = PseudoTrbg::new(1, 0.5);
        let mut b = PseudoTrbg::new(1, 0.5);
        let bits_a: Vec<bool> = (0..100).map(|_| a.next_bit()).collect();
        let bits_b: Vec<bool> = (0..100).map(|_| b.next_bit()).collect();
        assert_eq!(bits_a, bits_b);
    }

    #[test]
    fn pseudo_trbg_threshold_matches_f64_compare() {
        // The integer-threshold fast path must reproduce the defining
        // `random::<f64>() < bias` draw-for-draw, including biases that
        // are not exactly representable and the k = ⌈bias·2⁵³⌉ edge.
        for (seed, bias) in [
            (1u64, 0.7),
            (2, 0.3),
            (3, 0.5),
            (4, 1.0 / 3.0),
            (5, f64::from_bits(0.7f64.to_bits() + 1)),
            (6, 2.0f64.powi(-53)),
            (7, 1.0 - 2.0f64.powi(-53)),
        ] {
            let mut fast = PseudoTrbg::new(seed, bias);
            let mut reference = StdRng::seed_from_u64(seed);
            for draw in 0..10_000 {
                let expected = reference.random::<f64>() < bias;
                assert_eq!(
                    fast.next_bit(),
                    expected,
                    "seed {seed} bias {bias} draw {draw}"
                );
            }
        }
    }

    #[test]
    fn pseudo_trbg_extreme_biases() {
        let mut zero = PseudoTrbg::new(2, 0.0);
        let mut one = PseudoTrbg::new(2, 1.0);
        assert!((0..100).all(|_| !zero.next_bit()));
        assert!((0..100).all(|_| one.next_bit()));
    }

    #[test]
    fn pseudo_trbg_passes_randomness_tests_when_fair() {
        let mut t = PseudoTrbg::new(3, 0.5);
        let bits: Vec<bool> = (0..20_000).map(|_| t.next_bit()).collect();
        assert!(monobit_z_score(&bits).abs() < 4.0);
        assert!(runs_z_score(&bits).abs() < 4.0);
    }

    #[test]
    fn ring_oscillator_symmetric_is_roughly_fair() {
        let mut ro = RingOscillatorTrbg::symmetric(4);
        let bits: Vec<bool> = (0..8_000).map(|_| ro.next_bit()).collect();
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!((ones - 0.5).abs() < 0.03, "bias {ones}");
        // Jitter-decorrelated sampling should not produce long runs.
        assert!(runs_z_score(&bits).abs() < 6.0);
    }

    #[test]
    fn ring_oscillator_asymmetry_biases_output() {
        let mut ro = RingOscillatorTrbg::biased(5, 0.7);
        let bits: Vec<bool> = (0..8_000).map(|_| ro.next_bit()).collect();
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!(
            (ones - 0.7).abs() < 0.05,
            "expected ~0.7 bias, measured {ones}"
        );
    }

    #[test]
    fn ring_oscillator_deterministic_per_seed() {
        let mut a = RingOscillatorTrbg::symmetric(9);
        let mut b = RingOscillatorTrbg::symmetric(9);
        for _ in 0..50 {
            assert_eq!(a.next_bit(), b.next_bit());
        }
    }

    #[test]
    fn nominal_bias_reporting() {
        assert_eq!(PseudoTrbg::new(0, 0.7).nominal_bias(), Some(0.7));
        assert_eq!(RingOscillatorTrbg::symmetric(0).nominal_bias(), None);
    }

    #[test]
    fn fork_stream_zero_reproduces_parent_sequence() {
        let parent = PseudoTrbg::new(17, 0.5);
        let mut forked = parent.fork(0);
        let mut fresh = PseudoTrbg::new(17, 0.5);
        for _ in 0..200 {
            assert_eq!(forked.next_bit(), fresh.next_bit());
        }
        let ro_parent = RingOscillatorTrbg::symmetric(17);
        let mut ro_forked = ro_parent.fork(0);
        let mut ro_fresh = RingOscillatorTrbg::symmetric(17);
        for _ in 0..50 {
            assert_eq!(ro_forked.next_bit(), ro_fresh.next_bit());
        }
    }

    #[test]
    fn fork_streams_are_deterministic_and_distinct() {
        let parent = PseudoTrbg::new(23, 0.5);
        let collect = |mut t: PseudoTrbg| -> Vec<bool> { (0..128).map(|_| t.next_bit()).collect() };
        let s1a = collect(parent.fork(1));
        let s1b = collect(parent.fork(1));
        let s2 = collect(parent.fork(2));
        assert_eq!(s1a, s1b, "same stream index must reproduce");
        assert_ne!(s1a, s2, "distinct stream indices must decorrelate");
        assert_ne!(s1a, collect(parent.fork(0)), "stream 1 differs from parent");
    }
}
