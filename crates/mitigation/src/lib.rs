#![warn(missing_docs)]

//! Aging-mitigation micro-architecture (the paper's Section IV).
//!
//! The paper's scheme sits between the accelerator datapath and the
//! weight SRAM:
//!
//! * a **Write Data Encoder (WDE)** — an XOR array that conditionally
//!   inverts each word written to the weight memory,
//! * a **Read Data Decoder (RDD)** — the identical XOR array applying
//!   the same enable metadata on the way out (XOR is an involution),
//! * an **aging-mitigation controller** — a True Random Bit Generator
//!   (TRBG) whose output is XORed with the MSB of an M-bit counter
//!   clocked by the *new data block* signal, cancelling TRBG bias.
//!
//! This crate models that scheme behaviourally, together with the two
//! state-of-the-art baselines the paper compares against:
//!
//! * [`transducer::PeriodicInversion`] — invert every other write to the
//!   same location (Jin et al., duty-cycle-balanced caches),
//! * [`transducer::BarrelShifter`] — rotate each write by a per-location
//!   schedule (Kothawade et al., register-file rotation),
//! * [`transducer::Passthrough`] — no mitigation,
//! * [`transducer::DnnLife`] — the paper's randomised inversion.
//!
//! All transducers implement [`WriteTransducer`], whose
//! `encode`/`decode` pair is verified to be the identity by property
//! tests — the scheme must never alter inference results. For the
//! word-sharded exact simulator every transducer can also
//! [`WriteTransducer::fork`] into per-shard clones (deterministic
//! policies: a per-address state snapshot; DNN-Life: an independent
//! seed-derived TRBG stream per shard) — see the *Fork contract* on
//! the trait.
//!
//! # Example
//!
//! ```
//! use dnnlife_mitigation::{AgingController, PseudoTrbg};
//! use dnnlife_mitigation::transducer::{DnnLife, WriteTransducer};
//!
//! let controller = AgingController::new(PseudoTrbg::new(42, 0.5), 4);
//! let mut wde = DnnLife::new(8, controller);
//! let (stored, meta) = wde.encode(0, 0b1010_1010);
//! assert_eq!(wde.decode(stored, meta), 0b1010_1010);
//! ```

pub mod controller;
pub mod randtest;
pub mod transducer;
pub mod trbg;
pub mod wearlevel;

pub use controller::AgingController;
pub use transducer::{BarrelShifter, DnnLife, Passthrough, PeriodicInversion, WriteTransducer};
pub use trbg::{PseudoTrbg, RingOscillatorTrbg, Trbg};
pub use wearlevel::{RemapSchedule, WearLevelRemap};
