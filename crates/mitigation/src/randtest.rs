//! Lightweight randomness tests (NIST SP 800-22 style) used to validate
//! the TRBG models.

/// Monobit (frequency) test z-score: the standardised deviation of the
/// ones-count from `n/2`. For a fair source, `|z|` exceeds 4 with
/// probability ≈ 6e-5.
///
/// # Panics
///
/// Panics if `bits` is empty.
///
/// # Example
///
/// ```
/// use dnnlife_mitigation::randtest::monobit_z_score;
///
/// let balanced: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
/// assert!(monobit_z_score(&balanced).abs() < 0.1);
/// ```
pub fn monobit_z_score(bits: &[bool]) -> f64 {
    assert!(!bits.is_empty(), "monobit_z_score: empty sequence");
    let n = bits.len() as f64;
    let ones = bits.iter().filter(|&&b| b).count() as f64;
    (2.0 * ones - n) / n.sqrt()
}

/// Wald–Wolfowitz runs-test z-score: standardised deviation of the
/// number of runs from its expectation given the observed ones-count.
/// Detects both excessive alternation (negative serial correlation) and
/// clustering (positive correlation, e.g. an undersampled oscillator).
///
/// Returns 0 for degenerate all-equal sequences.
///
/// # Panics
///
/// Panics if `bits.len() < 2`.
///
/// # Example
///
/// ```
/// use dnnlife_mitigation::randtest::runs_z_score;
///
/// // Perfect alternation has far too many runs.
/// let alternating: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
/// assert!(runs_z_score(&alternating) > 10.0);
/// ```
pub fn runs_z_score(bits: &[bool]) -> f64 {
    assert!(bits.len() >= 2, "runs_z_score: need at least 2 bits");
    let n = bits.len() as f64;
    let n1 = bits.iter().filter(|&&b| b).count() as f64;
    let n0 = n - n1;
    if n1 == 0.0 || n0 == 0.0 {
        return 0.0;
    }
    let runs = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count();
    let expected = 2.0 * n0 * n1 / n + 1.0;
    let variance = (expected - 1.0) * (expected - 2.0) / (n - 1.0);
    if variance <= 0.0 {
        return 0.0;
    }
    (runs as f64 - expected) / variance.sqrt()
}

/// Serial correlation at lag 1 in `[-1, 1]` (0 for independent bits).
///
/// # Panics
///
/// Panics if `bits.len() < 2`.
pub fn lag1_correlation(bits: &[bool]) -> f64 {
    assert!(bits.len() >= 2, "lag1_correlation: need at least 2 bits");
    let xs: Vec<f64> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if var == 0.0 {
        return 0.0;
    }
    let cov = xs
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum::<f64>()
        / (n - 1) as f64;
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monobit_detects_bias() {
        let biased: Vec<bool> = (0..1000).map(|i| i % 4 != 0).collect(); // 75% ones
        assert!(monobit_z_score(&biased) > 10.0);
        let balanced: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        assert!(monobit_z_score(&balanced).abs() < 1e-9);
    }

    #[test]
    fn runs_detects_clustering() {
        // Blocks of 50 identical bits: far too few runs.
        let clustered: Vec<bool> = (0..1000).map(|i| (i / 50) % 2 == 0).collect();
        assert!(runs_z_score(&clustered) < -10.0);
    }

    #[test]
    fn runs_degenerate_sequences() {
        let all_ones = vec![true; 100];
        assert_eq!(runs_z_score(&all_ones), 0.0);
    }

    #[test]
    fn lag1_signs() {
        let alternating: Vec<bool> = (0..500).map(|i| i % 2 == 0).collect();
        assert!(lag1_correlation(&alternating) < -0.9);
        let clustered: Vec<bool> = (0..500).map(|i| (i / 25) % 2 == 0).collect();
        assert!(lag1_correlation(&clustered) > 0.9);
        let constant = vec![true; 100];
        assert_eq!(lag1_correlation(&constant), 0.0);
    }
}
