//! Property tests: the bit-sliced [`DutySliceTracker`] reproduces the
//! scalar [`DutyCycleTracker`] bit for bit wherever both accumulation
//! orders are exact — uniform dwell (pure integer counting) and dyadic
//! dwell values with bounded counts. Random cell counts (including
//! non-multiples of 64), write sequences and spill boundaries.

use dnnlife_sram::{DutyCycleTracker, DutySliceTracker};
use proptest::prelude::*;

/// Deterministic word pattern `r` for round `round`, word `w`.
fn pattern(round: u64, w: usize) -> u64 {
    (round ^ w as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left((round % 61) as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Uniform dwell: sliced and scalar duties are identical for any
    /// cell count and any write sequence, including sequences that
    /// cross the carry-save spill boundary (255 records) many times.
    #[test]
    fn sliced_matches_scalar_uniform(
        cells in 1usize..300,
        rounds in 1u64..700,
        salt in 0u64..1000,
    ) {
        let words = cells.div_ceil(64);
        let mut sliced = DutySliceTracker::new(cells);
        let mut scalar = DutyCycleTracker::new(cells);
        for round in 0..rounds {
            let state: Vec<u64> = (0..words).map(|w| pattern(round ^ salt, w)).collect();
            sliced.record_packed(&state, 1.0);
            scalar.record_packed(&state, 1.0);
        }
        let sliced: Vec<f64> = sliced.into_duties();
        let scalar: Vec<f64> = scalar.duties().collect();
        prop_assert_eq!(sliced, scalar);
    }

    /// Dyadic dwell values (exact in both accumulation orders): the
    /// grouped multiply-and-sum matches the scalar running sums.
    #[test]
    fn sliced_matches_scalar_dyadic_dwells(
        cells in 1usize..200,
        rounds in 1u64..400,
        salt in 0u64..1000,
    ) {
        const DWELLS: [f64; 4] = [0.25, 0.5, 1.0, 2.0];
        let words = cells.div_ceil(64);
        let mut sliced = DutySliceTracker::new(cells);
        let mut scalar = DutyCycleTracker::new(cells);
        for round in 0..rounds {
            let state: Vec<u64> = (0..words).map(|w| pattern(round ^ salt, w)).collect();
            let dwell = DWELLS[((round ^ salt) % 4) as usize];
            sliced.record_packed(&state, dwell);
            scalar.record_packed(&state, dwell);
        }
        let sliced: Vec<f64> = sliced.into_duties();
        let scalar: Vec<f64> = scalar.duties().collect();
        prop_assert_eq!(sliced, scalar);
    }

    /// `scale(k)` equals literally replaying the recorded prefix `k`
    /// times — the run-length collapse the exact simulator relies on.
    #[test]
    fn scale_equals_replay(
        cells in 1usize..150,
        prefix in 1u64..40,
        factor in 1u64..12,
        suffix in 0u64..40,
        salt in 0u64..1000,
    ) {
        let words = cells.div_ceil(64);
        let state = |round: u64| -> Vec<u64> {
            (0..words).map(|w| pattern(round ^ salt, w)).collect()
        };
        let mut collapsed = DutySliceTracker::new(cells);
        for round in 0..prefix {
            collapsed.record_packed(&state(round), 1.0);
        }
        collapsed.scale(factor);
        for round in 0..suffix {
            collapsed.record_packed(&state(prefix + round), 1.0);
        }
        let mut replayed = DutySliceTracker::new(cells);
        for _ in 0..factor {
            for round in 0..prefix {
                replayed.record_packed(&state(round), 1.0);
            }
        }
        for round in 0..suffix {
            replayed.record_packed(&state(prefix + round), 1.0);
        }
        let collapsed: Vec<f64> = collapsed.into_duties();
        let replayed: Vec<f64> = replayed.into_duties();
        prop_assert_eq!(collapsed, replayed);
    }

    /// Stray state bits beyond the cell population are ignored, exactly
    /// as the scalar tracker ignores them.
    #[test]
    fn tail_bits_are_ignored(
        cells in 1usize..190,
        rounds in 1u64..50,
        garbage in 0u64..=u64::MAX,
    ) {
        prop_assume!(cells % 64 != 0);
        let words = cells.div_ceil(64);
        let mut clean = DutySliceTracker::new(cells);
        let mut dirty = DutySliceTracker::new(cells);
        let mut scalar = DutyCycleTracker::new(cells);
        for round in 0..rounds {
            let state: Vec<u64> = (0..words).map(|w| pattern(round, w)).collect();
            let mut masked = state.clone();
            *masked.last_mut().unwrap() &= (1u64 << (cells % 64)) - 1;
            let mut polluted = state.clone();
            *polluted.last_mut().unwrap() |= garbage << (cells % 64);
            clean.record_packed(&masked, 1.0);
            dirty.record_packed(&polluted, 1.0);
            scalar.record_packed(&state, 1.0);
        }
        let clean: Vec<f64> = clean.into_duties();
        let dirty: Vec<f64> = dirty.into_duties();
        let scalar: Vec<f64> = scalar.duties().collect();
        prop_assert_eq!(&clean, &dirty);
        prop_assert_eq!(&clean, &scalar);
    }
}
