#![warn(missing_docs)]

//! 6T-SRAM cell, NBTI aging and Static Noise Margin (SNM) models.
//!
//! NBTI stress in a 6T-SRAM cell is carried by whichever of the two
//! cross-coupled PMOS transistors is ON; a cell storing `1` for a
//! fraction `d` of its lifetime (its *duty cycle*) stresses one PMOS
//! with duty `d` and the other with `1 − d`. Aging is governed by the
//! most-stressed transistor, so SNM degradation is minimal at `d = 0.5`
//! (Fig. 2b of the paper).
//!
//! This crate provides:
//!
//! * [`cell`] — the stress-split semantics of the 6T cell,
//! * [`duty`] — per-cell duty-cycle accumulation for memory simulation,
//! * [`duty_slice`] — the bit-sliced (64 cells per `u64` op) integer
//!   counterpart the exact simulator's hot loop records into,
//! * [`nbti`] — a long-term reaction–diffusion NBTI threshold-shift
//!   model (`ΔVth ∝ duty^(1/6) · t^(1/6)`),
//! * [`snm`] — two SNM models: the **calibrated** model anchored to the
//!   paper's numbers (10.82 % degradation at 50 % duty and 26.12 % at
//!   0 %/100 % after 7 years; DESIGN.md substitution #4) used by all
//!   experiments, and a **butterfly-curve** numerical extractor
//!   (square-law inverter VTCs, largest-embedded-square search) as the
//!   device-level reference implementation.
//!
//! # Example
//!
//! ```
//! use dnnlife_sram::snm::{CalibratedSnmModel, SnmModel};
//!
//! let model = CalibratedSnmModel::paper();
//! let best = model.degradation_percent(0.5, 7.0);
//! let worst = model.degradation_percent(1.0, 7.0);
//! assert!((best - 10.82).abs() < 1e-9);
//! assert!((worst - 26.12).abs() < 1e-9);
//! ```

pub mod cell;
pub mod duty;
pub mod duty_slice;
pub mod lifetime;
pub mod nbti;
pub mod snm;
pub mod tech;

pub use cell::stress_split;
pub use duty::DutyCycleTracker;
pub use duty_slice::DutySliceTracker;
pub use lifetime::{lifetime_improvement, lifetime_to_threshold, ReadFailureModel};
pub use nbti::NbtiModel;
pub use snm::{ButterflySnmModel, CalibratedSnmModel, SnmModel};
pub use tech::{
    CellExposure, CellFate, EnduranceWear, LifetimeModel, MemoryTech, ReramEnduranceLifetime,
    SramNbtiLifetime,
};
