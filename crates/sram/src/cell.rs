//! 6T-SRAM cell stress semantics.
//!
//! A 6T cell stores a bit in two cross-coupled inverters; the two PMOS
//! pull-ups (`P1`, `P2` in the paper's Fig. 2a) hold complementary
//! values. Whichever PMOS is ON (gate low) experiences negative bias —
//! NBTI stress. Storing `1` stresses one device, storing `0` the other,
//! so the *duty cycle* of the cell fully determines the long-term stress
//! split between the pair.

/// Splits a cell duty cycle (fraction of lifetime storing `1`) into the
/// stress duties of the two PMOS transistors: `(stress_p1, stress_p2) =
/// (duty, 1 − duty)`.
///
/// # Panics
///
/// Panics if `duty` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use dnnlife_sram::stress_split;
///
/// let (p1, p2) = stress_split(0.3);
/// assert!((p1 - 0.3).abs() < 1e-12 && (p2 - 0.7).abs() < 1e-12);
/// ```
pub fn stress_split(duty: f64) -> (f64, f64) {
    assert!(
        duty.is_finite() && (0.0..=1.0).contains(&duty),
        "stress_split: duty must be in [0,1], got {duty}"
    );
    (duty, 1.0 - duty)
}

/// Stress duty of the most-stressed PMOS — the device that defines cell
/// aging (`max(duty, 1 − duty)`).
///
/// # Panics
///
/// Panics if `duty` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use dnnlife_sram::cell::worst_stress;
///
/// assert_eq!(worst_stress(0.5), 0.5); // balanced: minimal worst-case
/// assert_eq!(worst_stress(0.0), 1.0); // constant 0: one device always on
/// ```
pub fn worst_stress(duty: f64) -> f64 {
    let (p1, p2) = stress_split(duty);
    p1.max(p2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sums_to_one() {
        for d in [0.0, 0.1, 0.5, 0.77, 1.0] {
            let (a, b) = stress_split(d);
            assert!((a + b - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn worst_stress_symmetric_and_minimal_at_half() {
        assert_eq!(worst_stress(0.2), worst_stress(0.8));
        for d in [0.0, 0.15, 0.35, 0.49] {
            assert!(worst_stress(d) > worst_stress(0.5));
        }
    }

    #[test]
    #[should_panic(expected = "duty must be in [0,1]")]
    fn rejects_out_of_range() {
        stress_split(1.5);
    }
}
