//! Long-term NBTI threshold-voltage shift model.
//!
//! Two standard results shape this model:
//!
//! * **Time**: the reaction–diffusion framework predicts the long-term
//!   threshold shift grows as `t^n` with `n ≈ 1/6` (H₂ diffusion).
//! * **Duty**: under AC stress the shift is the DC shift scaled by an
//!   activity factor that depends on the long-term *average* stress duty
//!   `d` — and only weakly on the short-term pattern (Abella et al.,
//!   the paper's ref. 14, which the paper leans on). We model the activity factor as
//!   `d^m` with `m = 1` by default; this linear form is what makes the
//!   50 % duty cycle the strict optimum for the cell (the two PMOS
//!   shifts then sum to a constant, so balancing minimises the maximum),
//!   and it reproduces the ≈2.4× best-to-worst SNM-degradation ratio of
//!   the paper's device model once the SNM sensitivity is calibrated.
//!
//! `ΔVth(d, t) = dc_shift · d^m · (t / t_ref)^n`.

use serde::{Deserialize, Serialize};

/// Long-term NBTI model `ΔVth(d, t) = a · d^m · (t/t_ref)^n`.
///
/// # Example
///
/// ```
/// use dnnlife_sram::NbtiModel;
///
/// let m = NbtiModel::default_65nm();
/// // DC stress for the full reference lifetime gives the full shift.
/// assert!((m.delta_vth_mv(1.0, 7.0) - 50.0).abs() < 1e-9);
/// // Halving the duty halves the shift (linear activity factor)...
/// assert!((m.delta_vth_mv(0.5, 7.0) - 25.0).abs() < 1e-9);
/// // ...while halving the *time* only shaves ~11% (t^(1/6)).
/// let ratio = m.delta_vth_mv(1.0, 7.0) / m.delta_vth_mv(1.0, 3.5);
/// assert!((ratio - 2f64.powf(1.0 / 6.0)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NbtiModel {
    /// Shift in millivolts under DC stress for the reference lifetime.
    dc_shift_mv: f64,
    /// Duty (activity-factor) exponent `m`.
    duty_exponent: f64,
    /// Time exponent `n` (≈ 1/6 for H₂ reaction–diffusion).
    time_exponent: f64,
    /// Reference lifetime in years.
    reference_years: f64,
}

impl NbtiModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or not finite.
    pub fn new(
        dc_shift_mv: f64,
        duty_exponent: f64,
        time_exponent: f64,
        reference_years: f64,
    ) -> Self {
        assert!(
            dc_shift_mv.is_finite() && dc_shift_mv > 0.0,
            "NbtiModel: dc_shift_mv must be > 0"
        );
        assert!(
            duty_exponent.is_finite() && duty_exponent > 0.0,
            "NbtiModel: duty_exponent must be > 0"
        );
        assert!(
            time_exponent.is_finite() && time_exponent > 0.0,
            "NbtiModel: time_exponent must be > 0"
        );
        assert!(
            reference_years.is_finite() && reference_years > 0.0,
            "NbtiModel: reference_years must be > 0"
        );
        Self {
            dc_shift_mv,
            duty_exponent,
            time_exponent,
            reference_years,
        }
    }

    /// A 65 nm-class parameterisation: 50 mV DC shift over 7 years,
    /// linear duty scaling, and the canonical `n = 1/6` time exponent.
    pub fn default_65nm() -> Self {
        Self::new(50.0, 1.0, 1.0 / 6.0, 7.0)
    }

    /// DC shift at the reference lifetime, in mV.
    pub fn dc_shift_mv(&self) -> f64 {
        self.dc_shift_mv
    }

    /// The duty (activity-factor) exponent `m`.
    pub fn duty_exponent(&self) -> f64 {
        self.duty_exponent
    }

    /// The reaction–diffusion time exponent `n`.
    pub fn time_exponent(&self) -> f64 {
        self.time_exponent
    }

    /// Reference lifetime in years.
    pub fn reference_years(&self) -> f64 {
        self.reference_years
    }

    /// Threshold shift in mV for a device stressed with duty cycle
    /// `stress_duty` for `years` years.
    ///
    /// # Panics
    ///
    /// Panics if `stress_duty` is outside `[0, 1]` or `years` is
    /// negative/not finite.
    pub fn delta_vth_mv(&self, stress_duty: f64, years: f64) -> f64 {
        assert!(
            stress_duty.is_finite() && (0.0..=1.0).contains(&stress_duty),
            "NbtiModel: stress_duty must be in [0,1], got {stress_duty}"
        );
        assert!(
            years.is_finite() && years >= 0.0,
            "NbtiModel: years must be >= 0, got {years}"
        );
        self.dc_shift_mv
            * stress_duty.powf(self.duty_exponent)
            * (years / self.reference_years).powf(self.time_exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stress_and_zero_time_give_zero_shift() {
        let m = NbtiModel::default_65nm();
        assert_eq!(m.delta_vth_mv(0.0, 7.0), 0.0);
        assert_eq!(m.delta_vth_mv(1.0, 0.0), 0.0);
    }

    #[test]
    fn monotone_in_duty_and_time() {
        let m = NbtiModel::default_65nm();
        let mut prev = -1.0;
        for i in 0..=10 {
            let v = m.delta_vth_mv(i as f64 / 10.0, 7.0);
            assert!(v > prev);
            prev = v;
        }
        assert!(m.delta_vth_mv(0.5, 10.0) > m.delta_vth_mv(0.5, 7.0));
    }

    #[test]
    fn sublinear_time_dependence() {
        // Doubling time increases the shift by only 2^(1/6) ≈ 12%.
        let m = NbtiModel::default_65nm();
        let r = m.delta_vth_mv(1.0, 14.0) / m.delta_vth_mv(1.0, 7.0);
        assert!((r - 2f64.powf(1.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn linear_duty_dependence_keeps_pair_sum_constant() {
        // With m = 1 the two PMOS shifts of a cell always sum to the DC
        // shift — the property that makes 50% duty the strict optimum.
        let m = NbtiModel::default_65nm();
        for d in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let sum = m.delta_vth_mv(d, 7.0) + m.delta_vth_mv(1.0 - d, 7.0);
            assert!((sum - 50.0).abs() < 1e-9, "duty {d}: sum {sum}");
        }
    }

    #[test]
    fn custom_exponents() {
        let m = NbtiModel::new(40.0, 0.5, 0.25, 10.0);
        assert!((m.delta_vth_mv(0.25, 10.0) - 40.0 * 0.5).abs() < 1e-12);
        assert!((m.delta_vth_mv(1.0, 2.5) - 40.0 * (0.25f64).powf(0.25)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "stress_duty must be in [0,1]")]
    fn rejects_bad_duty() {
        NbtiModel::default_65nm().delta_vth_mv(1.1, 7.0);
    }
}
