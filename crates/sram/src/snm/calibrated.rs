//! SNM degradation model calibrated to the paper's anchor values.

use super::SnmModel;
use crate::cell::worst_stress;
use crate::nbti::NbtiModel;
use serde::{Deserialize, Serialize};

/// SNM degradation as a first-order (linear) function of the threshold
/// shift of the cell's most-stressed PMOS.
///
/// The two coefficients are solved so that at the reference lifetime the
/// model reproduces the anchor values the paper reports for its device
/// model: `best_pct` at 50 % duty and `worst_pct` at 0 %/100 % duty.
/// The linearisation is calibrated around the multi-year evaluation
/// horizon (the paper evaluates 7 years); degradation is clamped at 0
/// for the short lifetimes where the affine form would go negative.
///
/// # Example
///
/// ```
/// use dnnlife_sram::snm::{CalibratedSnmModel, SnmModel};
///
/// let m = CalibratedSnmModel::paper();
/// // Fig. 2b: the minimum sits at 50 % duty cycle.
/// assert!(m.degradation_percent(0.5, 7.0) < m.degradation_percent(0.3, 7.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratedSnmModel {
    nbti: NbtiModel,
    offset_pct: f64,
    slope_pct_per_mv: f64,
    best_pct: f64,
    worst_pct: f64,
}

impl CalibratedSnmModel {
    /// Calibrates against the given NBTI model and anchor percentages at
    /// the NBTI model's reference lifetime.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= best_pct < worst_pct <= 100`.
    pub fn with_anchors(nbti: NbtiModel, best_pct: f64, worst_pct: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&best_pct)
                && (0.0..=100.0).contains(&worst_pct)
                && best_pct < worst_pct,
            "CalibratedSnmModel: need 0 <= best < worst <= 100, got {best_pct}, {worst_pct}"
        );
        let t_ref = nbti.reference_years();
        let shift_best = nbti.delta_vth_mv(0.5, t_ref);
        let shift_worst = nbti.delta_vth_mv(1.0, t_ref);
        let slope = (worst_pct - best_pct) / (shift_worst - shift_best);
        let offset = worst_pct - slope * shift_worst;
        Self {
            nbti,
            offset_pct: offset,
            slope_pct_per_mv: slope,
            best_pct,
            worst_pct,
        }
    }

    /// The paper's parameterisation: 10.82 % at 50 % duty, 26.12 % at the
    /// extremes, after 7 years (§V-A).
    pub fn paper() -> Self {
        Self::with_anchors(NbtiModel::default_65nm(), 10.82, 26.12)
    }

    /// Best-case (50 % duty) degradation at the reference lifetime.
    pub fn best_pct(&self) -> f64 {
        self.best_pct
    }

    /// Worst-case (0 %/100 % duty) degradation at the reference lifetime.
    pub fn worst_pct(&self) -> f64 {
        self.worst_pct
    }

    /// The underlying NBTI model.
    pub fn nbti(&self) -> &NbtiModel {
        &self.nbti
    }
}

impl CalibratedSnmModel {
    /// Degradation when the memory partition holding the cell is only
    /// powered (and thus under stress) for `utilization` of the
    /// lifetime — the knob exploited by partitioned-recovery schemes
    /// (Calimera et al., the paper's ref. 20): idle partitions recover, at
    /// the price of reduced usable capacity / performance. DNN-Life
    /// reaches the same stress reduction without sacrificing capacity.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn degradation_percent_with_utilization(
        &self,
        duty: f64,
        years: f64,
        utilization: f64,
    ) -> f64 {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0,1], got {utilization}"
        );
        let shift = self
            .nbti
            .delta_vth_mv(worst_stress(duty) * utilization, years);
        (self.offset_pct + self.slope_pct_per_mv * shift).clamp(0.0, 100.0)
    }
}

impl SnmModel for CalibratedSnmModel {
    fn degradation_percent(&self, duty: f64, years: f64) -> f64 {
        self.degradation_percent_with_utilization(duty, years, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_exact() {
        let m = CalibratedSnmModel::paper();
        assert!((m.degradation_percent(0.5, 7.0) - 10.82).abs() < 1e-9);
        assert!((m.degradation_percent(1.0, 7.0) - 26.12).abs() < 1e-9);
        assert!((m.degradation_percent(0.0, 7.0) - 26.12).abs() < 1e-9);
    }

    #[test]
    fn intermediate_duties_fall_between_anchors() {
        let m = CalibratedSnmModel::paper();
        for d in [0.55, 0.6, 0.7, 0.8, 0.9, 0.95] {
            let v = m.degradation_percent(d, 7.0);
            assert!(
                v > 10.82 && v < 26.12,
                "duty {d}: degradation {v} out of band"
            );
        }
    }

    #[test]
    fn longer_lifetime_ages_more() {
        let m = CalibratedSnmModel::paper();
        assert!(m.degradation_percent(0.7, 10.0) > m.degradation_percent(0.7, 7.0));
    }

    #[test]
    fn short_lifetime_clamps_at_zero() {
        let m = CalibratedSnmModel::paper();
        let v = m.degradation_percent(0.5, 0.1);
        assert!(v >= 0.0);
    }

    #[test]
    fn custom_anchors() {
        let m = CalibratedSnmModel::with_anchors(NbtiModel::default_65nm(), 5.0, 20.0);
        assert!((m.degradation_percent(0.5, 7.0) - 5.0).abs() < 1e-9);
        assert!((m.degradation_percent(1.0, 7.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn partitioned_recovery_needs_half_capacity_to_match_balancing() {
        // [20]-style recovery scales stress by the utilization factor;
        // DNN-Life scales it by duty balancing. For a worst-case cell
        // (duty 1.0), recovery must idle the partition half the time
        // (utilization 0.5) to match what DNN-Life achieves at full
        // utilization — i.e. it pays 50% capacity for the same aging.
        let m = CalibratedSnmModel::paper();
        let dnn_life = m.degradation_percent(0.5, 7.0);
        let recovery = m.degradation_percent_with_utilization(1.0, 7.0, 0.5);
        assert!((dnn_life - recovery).abs() < 1e-9);
        // Any smaller sacrifice leaves recovery behind.
        let weak_recovery = m.degradation_percent_with_utilization(1.0, 7.0, 0.75);
        assert!(weak_recovery > dnn_life + 3.0);
    }

    #[test]
    fn zero_utilization_means_no_aging() {
        let m = CalibratedSnmModel::paper();
        assert_eq!(m.degradation_percent_with_utilization(1.0, 7.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "need 0 <= best < worst")]
    fn rejects_inverted_anchors() {
        let _ = CalibratedSnmModel::with_anchors(NbtiModel::default_65nm(), 20.0, 5.0);
    }
}
