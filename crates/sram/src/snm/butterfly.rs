//! Device-level SNM extraction from inverter transfer curves.
//!
//! The paper uses SNM as the read-stability metric ("if the SNM of a
//! cell is low, the cell is highly susceptible to read failures", §V-A),
//! so this module extracts the **read SNM**: the butterfly is formed by
//! the VTCs of the two cell inverters *loaded by their access
//! transistors* with both bitlines precharged high and the wordline
//! asserted — the classical worst-case read condition (Seevinck et al.,
//! JSSC 1987). Read SNM is the 6T metric that NBTI visibly degrades even
//! under balanced stress, which is why the paper's device model shows a
//! non-zero 10.82 % floor at 50 % duty cycle.
//!
//! Rather than hunting for the largest nested square geometrically, the
//! equivalent *circuit* definition is used because it is numerically
//! robust for asymmetrically aged cells: equal-magnitude DC noise
//! sources are inserted in series with the inverter inputs with opposite
//! polarities (`+Vn` toward one gate, `−Vn` toward the other — the
//! arrangement that closes one butterfly lobe); the SNM is the largest
//! `Vn` for which the loop `x → f_A(x + Vn) → f_B(· − Vn)` is still
//! bistable. The two signs of `Vn` attack the two lobes; the smaller
//! critical noise defines the SNM.
//!
//! The VTCs come from square-law MOSFET I-V equations with channel-
//! length modulation (which keeps the current balance strictly monotone
//! and the solve well-posed). NBTI aging enters as an increase of the
//! stressed PMOS threshold magnitude.
//!
//! This model is the physical reference for
//! [`CalibratedSnmModel`](super::CalibratedSnmModel): both must agree on
//! symmetry and monotonicity (tested in `snm::tests`), while absolute
//! percentages are calibration-dependent.

use super::SnmModel;
use crate::cell::stress_split;
use crate::nbti::NbtiModel;

/// Electrical parameters of the cross-coupled inverters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverterParams {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// NMOS threshold voltage in volts.
    pub vtn: f64,
    /// Fresh PMOS threshold magnitude in volts.
    pub vtp: f64,
    /// NMOS transconductance factor (A/V², arbitrary consistent units).
    pub kn: f64,
    /// PMOS transconductance factor.
    pub kp: f64,
    /// Access (pass-gate) NMOS transconductance factor.
    pub kpg: f64,
    /// Channel-length modulation coefficient (1/V).
    pub lambda: f64,
}

impl InverterParams {
    /// A 65 nm-class operating point: 1.2 V supply, 0.4 V thresholds,
    /// and the classical 6T sizing discipline PD : PG : PU = 2 : 1.2 : 1
    /// (strong pull-downs for read stability, weak pull-ups).
    pub fn default_65nm() -> Self {
        Self {
            vdd: 1.2,
            vtn: 0.4,
            vtp: 0.4,
            kn: 2.0,
            kp: 1.0,
            kpg: 1.2,
            lambda: 0.05,
        }
    }
}

/// Square-law drain current of the NMOS pull-down, with `delta_vtn`
/// volts of PBTI-induced threshold increase.
fn nmos_current(p: &InverterParams, vgs: f64, vds: f64, delta_vtn: f64) -> f64 {
    let vov = vgs - (p.vtn + delta_vtn);
    if vov <= 0.0 || vds <= 0.0 {
        return 0.0;
    }
    let clm = 1.0 + p.lambda * vds;
    if vds < vov {
        p.kn * (vov * vds - 0.5 * vds * vds) * clm
    } else {
        0.5 * p.kn * vov * vov * clm
    }
}

/// Square-law drain current of the PMOS pull-up, with `delta_vtp` volts
/// of NBTI-induced threshold increase.
fn pmos_current(p: &InverterParams, vin: f64, vout: f64, delta_vtp: f64) -> f64 {
    let vsg = p.vdd - vin;
    let vt = p.vtp + delta_vtp;
    let vov = vsg - vt;
    let vsd = p.vdd - vout;
    if vov <= 0.0 || vsd <= 0.0 {
        return 0.0;
    }
    let clm = 1.0 + p.lambda * vsd;
    if vsd < vov {
        p.kp * (vov * vsd - 0.5 * vsd * vsd) * clm
    } else {
        0.5 * p.kp * vov * vov * clm
    }
}

/// Access-transistor current pulling the storage node toward the
/// precharged bitline (drain and gate both at `vdd` during read).
fn access_current(p: &InverterParams, vnode: f64) -> f64 {
    // Vgs = Vds = vdd - vnode: the device operates on the saturation
    // boundary whenever it conducts.
    let vov = p.vdd - vnode - p.vtn;
    if vov <= 0.0 {
        return 0.0;
    }
    0.5 * p.kpg * vov * vov * (1.0 + p.lambda * (p.vdd - vnode))
}

/// Storage-node voltage of one access-loaded cell inverter during read,
/// for gate input `vin`, solved by bisection on the current balance
/// (pull-up + access in, pull-down out; strictly decreasing in the node
/// voltage thanks to channel-length modulation).
fn solve_vtc(p: &InverterParams, vin: f64, delta_vtp: f64, delta_vtn: f64) -> f64 {
    let balance = |vout: f64| {
        pmos_current(p, vin, vout, delta_vtp) + access_current(p, vout)
            - nmos_current(p, vin, vout, delta_vtn)
    };
    let mut lo = 0.0f64;
    let mut hi = p.vdd;
    for _ in 0..52 {
        let mid = 0.5 * (lo + hi);
        if balance(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// A tabulated VTC with linear interpolation and rail clamping for
/// out-of-range inputs (gate overdrive beyond the rails saturates the
/// output at its rail value).
#[derive(Debug, Clone)]
struct VtcTable {
    lut: Vec<f64>,
    vdd: f64,
}

const VTC_POINTS: usize = 1201;

impl VtcTable {
    fn build(p: &InverterParams, delta_vtp: f64, delta_vtn: f64) -> Self {
        let lut = (0..VTC_POINTS)
            .map(|i| {
                let vin = i as f64 / (VTC_POINTS - 1) as f64 * p.vdd;
                solve_vtc(p, vin, delta_vtp, delta_vtn)
            })
            .collect();
        Self { lut, vdd: p.vdd }
    }

    fn eval(&self, vin: f64) -> f64 {
        let x = (vin / self.vdd).clamp(0.0, 1.0) * (VTC_POINTS - 1) as f64;
        let i = (x as usize).min(VTC_POINTS - 2);
        let frac = x - i as f64;
        self.lut[i] * (1.0 - frac) + self.lut[i + 1] * frac
    }
}

/// Whether the noisy cross-coupled loop still has two stable states.
///
/// `vn` is the signed series noise: `+vn` is added to inverter A's input
/// and `−vn` to inverter B's input. In the butterfly plot this shifts
/// one VTC toward the other, closing one lobe; the two signs of `vn`
/// attack the two lobes. The return map `M(x) = f_B(f_A(x + vn) − vn)`
/// is monotonically increasing; bistability means `M(x) − x` has three
/// zero crossings (stable / unstable / stable).
fn bistable(a: &VtcTable, b: &VtcTable, vn: f64) -> bool {
    const GRID: usize = 1600;
    let vdd = a.vdd;
    let mut changes = 0;
    let mut prev_sign = 0i8;
    for i in 0..=GRID {
        let x = i as f64 / GRID as f64 * vdd;
        let m = b.eval(a.eval(x + vn) - vn);
        let h = m - x;
        let sign = if h > 0.0 {
            1
        } else if h < 0.0 {
            -1
        } else {
            0
        };
        if sign != 0 {
            if prev_sign != 0 && sign != prev_sign {
                changes += 1;
            }
            prev_sign = sign;
        }
    }
    changes >= 3
}

/// Largest noise magnitude (volts) keeping the loop bistable for the
/// given polarity (`sign = ±1`), found by bisection.
fn critical_noise(a: &VtcTable, b: &VtcTable, sign: f64) -> f64 {
    let vdd = a.vdd;
    if !bistable(a, b, 0.0) {
        return 0.0;
    }
    let mut lo = 0.0f64;
    let mut hi = 0.75 * vdd;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if bistable(a, b, sign * mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Butterfly/critical-noise SNM model for a 6T cell aged by NBTI.
///
/// # Example
///
/// ```
/// use dnnlife_sram::snm::{ButterflySnmModel, InverterParams};
///
/// let model = ButterflySnmModel::default_65nm();
/// let snm = model.snm_volts(0.0, 0.0);
/// // A healthy 1.2 V cell has a few hundred mV of noise margin.
/// assert!(snm > 0.15 && snm < 0.6);
/// ```
#[derive(Debug, Clone)]
pub struct ButterflySnmModel {
    params: InverterParams,
    nbti: NbtiModel,
    fresh_snm: f64,
}

impl ButterflySnmModel {
    /// Builds the model from inverter parameters and an NBTI model,
    /// pre-computing the fresh SNM.
    pub fn new(params: InverterParams, nbti: NbtiModel) -> Self {
        let mut model = Self {
            params,
            nbti,
            fresh_snm: 0.0,
        };
        model.fresh_snm = model.snm_volts(0.0, 0.0);
        model
    }

    /// 65 nm-class defaults for both the electrical and aging parameters.
    pub fn default_65nm() -> Self {
        Self::new(InverterParams::default_65nm(), NbtiModel::default_65nm())
    }

    /// Electrical parameters in use.
    pub fn params(&self) -> &InverterParams {
        &self.params
    }

    /// Fresh (unaged) SNM in volts.
    pub fn fresh_snm_volts(&self) -> f64 {
        self.fresh_snm
    }

    /// SNM in volts with explicit PMOS threshold shifts (volts) on the
    /// two inverters.
    ///
    /// Both noise polarities are exercised — they attack the two stored
    /// states (butterfly lobes) — and the smaller critical noise is the
    /// SNM.
    pub fn snm_volts(&self, dvtp_a: f64, dvtp_b: f64) -> f64 {
        self.snm_volts_bti(dvtp_a, dvtp_b, 0.0, 0.0)
    }

    /// SNM in volts under combined BTI: NBTI shifts on the two PMOS
    /// pull-ups *and* PBTI shifts on the two NMOS pull-downs (the
    /// paper's footnote 1 notes PBTI as the NMOS analogue; it is milder
    /// but not zero in high-k stacks).
    pub fn snm_volts_bti(&self, dvtp_a: f64, dvtp_b: f64, dvtn_a: f64, dvtn_b: f64) -> f64 {
        let a = VtcTable::build(&self.params, dvtp_a, dvtn_a);
        let b = VtcTable::build(&self.params, dvtp_b, dvtn_b);
        let lobe1 = critical_noise(&a, &b, 1.0);
        let lobe2 = critical_noise(&a, &b, -1.0);
        lobe1.min(lobe2)
    }

    /// Degradation including PBTI on the pull-downs.
    ///
    /// When the cell stores `1` (node Q high), the *other* inverter's
    /// NMOS is ON: NMOS stress pairs opposite to PMOS stress, so the
    /// NMOS of inverter A is stressed with duty `1 − d` and B's with
    /// `d`. `pbti` supplies the NMOS shift (typically a fraction of the
    /// NBTI magnitude).
    pub fn degradation_percent_with_pbti(&self, duty: f64, years: f64, pbti: &NbtiModel) -> f64 {
        let (stress_a, stress_b) = stress_split(duty);
        let dvtp_a = self.nbti.delta_vth_mv(stress_a, years) / 1000.0;
        let dvtp_b = self.nbti.delta_vth_mv(stress_b, years) / 1000.0;
        let dvtn_a = pbti.delta_vth_mv(stress_b, years) / 1000.0;
        let dvtn_b = pbti.delta_vth_mv(stress_a, years) / 1000.0;
        let aged = self.snm_volts_bti(dvtp_a, dvtp_b, dvtn_a, dvtn_b);
        ((self.fresh_snm - aged) / self.fresh_snm * 100.0).clamp(0.0, 100.0)
    }
}

impl SnmModel for ButterflySnmModel {
    fn degradation_percent(&self, duty: f64, years: f64) -> f64 {
        let (stress_a, stress_b) = stress_split(duty);
        // NbtiModel yields mV; the electrical solver works in volts.
        let dvtp_a = self.nbti.delta_vth_mv(stress_a, years) / 1000.0;
        let dvtp_b = self.nbti.delta_vth_mv(stress_b, years) / 1000.0;
        let aged = self.snm_volts(dvtp_a, dvtp_b);
        ((self.fresh_snm - aged) / self.fresh_snm * 100.0).clamp(0.0, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtc_is_a_decreasing_read_curve() {
        let p = InverterParams::default_65nm();
        let mut prev = f64::INFINITY;
        let mut vin = 0.0;
        while vin <= p.vdd {
            let vout = solve_vtc(&p, vin, 0.0, 0.0);
            assert!(vout <= prev + 1e-9, "VTC not monotone at vin={vin}");
            assert!((0.0..=p.vdd).contains(&vout));
            prev = vout;
            vin += 0.05;
        }
        // High rail: pull-up + access both drive the node to vdd.
        assert!(solve_vtc(&p, 0.0, 0.0, 0.0) > 0.99 * p.vdd);
        // Low end: the node cannot reach 0 during read — it sits at the
        // read-disturb voltage set by the pass-gate/pull-down divider.
        let v_read = solve_vtc(&p, p.vdd, 0.0, 0.0);
        assert!(
            v_read > 0.05 * p.vdd && v_read < 0.4 * p.vdd,
            "read-disturb voltage {v_read} implausible"
        );
    }

    #[test]
    fn read_disturb_voltage_scales_with_cell_ratio() {
        // A stronger pull-down (higher cell ratio kn/kpg) lowers the
        // read-disturb voltage — the classic read-stability design knob.
        let weak = InverterParams {
            kn: 1.2,
            ..InverterParams::default_65nm()
        };
        let strong = InverterParams {
            kn: 3.0,
            ..InverterParams::default_65nm()
        };
        let v_weak = solve_vtc(&weak, weak.vdd, 0.0, 0.0);
        let v_strong = solve_vtc(&strong, strong.vdd, 0.0, 0.0);
        assert!(v_strong < v_weak, "{v_strong} vs {v_weak}");
    }

    #[test]
    fn aged_pmos_weakens_pull_up() {
        let p = InverterParams::default_65nm();
        // At mid-input, a higher |Vtp| lowers the output voltage.
        let fresh = solve_vtc(&p, 0.55, 0.0, 0.0);
        let aged = solve_vtc(&p, 0.55, 0.1, 0.0);
        assert!(aged < fresh, "aged {aged} vs fresh {fresh}");
    }

    #[test]
    fn fresh_cell_is_bistable_and_loses_state_under_large_noise() {
        let p = InverterParams::default_65nm();
        let a = VtcTable::build(&p, 0.0, 0.0);
        let b = VtcTable::build(&p, 0.0, 0.0);
        assert!(bistable(&a, &b, 0.0));
        assert!(!bistable(&a, &b, 0.7 * p.vdd));
    }

    #[test]
    fn fresh_snm_in_plausible_range() {
        let m = ButterflySnmModel::default_65nm();
        let snm = m.fresh_snm_volts();
        assert!(
            snm > 0.15 && snm < 0.6,
            "fresh SNM {snm} V out of the plausible 65 nm range"
        );
    }

    #[test]
    fn snm_decreases_with_aging() {
        let m = ButterflySnmModel::default_65nm();
        let s0 = m.snm_volts(0.0, 0.0);
        let s1 = m.snm_volts(0.05, 0.0);
        let s2 = m.snm_volts(0.10, 0.0);
        assert!(s1 < s0 && s2 < s1, "{s0} {s1} {s2}");
    }

    #[test]
    fn snm_symmetric_under_device_swap() {
        let m = ButterflySnmModel::default_65nm();
        let a = m.snm_volts(0.08, 0.02);
        let b = m.snm_volts(0.02, 0.08);
        assert!((a - b).abs() < 2e-3, "{a} vs {b}");
    }

    #[test]
    fn balanced_duty_minimises_degradation() {
        let m = ButterflySnmModel::default_65nm();
        let best = m.degradation_percent(0.5, 7.0);
        for d in [0.0, 0.2, 0.35, 0.65, 0.9, 1.0] {
            assert!(
                m.degradation_percent(d, 7.0) >= best - 0.2,
                "duty {d} beat the balanced case"
            );
        }
    }

    #[test]
    fn pbti_is_second_order_for_read_snm() {
        // PBTI at a quarter of the NBTI magnitude (typical high-k
        // ratio). At balanced duty the symmetric pull-down weakening is
        // nearly neutral for the read margin; at unbalanced duty the
        // asymmetric NMOS stress *adds* to the NBTI penalty. Dual BTI
        // therefore widens the gap between balanced and unbalanced cells
        // — it strengthens, not weakens, the case for duty balancing.
        let m = ButterflySnmModel::default_65nm();
        let pbti = NbtiModel::new(12.5, 1.0, 1.0 / 6.0, 7.0);
        // Balanced point barely moves.
        let best_nbti = m.degradation_percent(0.5, 7.0);
        let best_dual = m.degradation_percent_with_pbti(0.5, 7.0, &pbti);
        assert!(
            (best_dual - best_nbti).abs() < 0.6,
            "balanced point moved: {best_dual} vs {best_nbti}"
        );
        // Extremes get worse.
        let worst_nbti = m.degradation_percent(1.0, 7.0);
        let worst_dual = m.degradation_percent_with_pbti(1.0, 7.0, &pbti);
        assert!(
            worst_dual > worst_nbti,
            "PBTI should amplify the unbalanced penalty: {worst_dual} vs {worst_nbti}"
        );
        // Ordering: balanced duty still beats the extremes under dual BTI,
        // by a wider margin than under NBTI alone.
        assert!(best_dual < worst_dual);
        assert!(worst_dual - best_dual > worst_nbti - best_nbti - 0.1);
    }

    #[test]
    fn pbti_preserves_duty_symmetry() {
        let m = ButterflySnmModel::default_65nm();
        let pbti = NbtiModel::new(12.5, 1.0, 1.0 / 6.0, 7.0);
        let lo = m.degradation_percent_with_pbti(0.2, 7.0, &pbti);
        let hi = m.degradation_percent_with_pbti(0.8, 7.0, &pbti);
        assert!((lo - hi).abs() < 0.1, "{lo} vs {hi}");
    }

    #[test]
    fn degradation_scale_is_physically_sensible() {
        // With ~50 mV of 7-year DC shift, degradation lands in the single
        // to low-double-digit percent range — the same order as the
        // paper's device model.
        let m = ButterflySnmModel::default_65nm();
        let worst = m.degradation_percent(1.0, 7.0);
        assert!(worst > 2.0 && worst < 40.0, "worst-case {worst}%");
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn dump_lobes() {
        let m = ButterflySnmModel::default_65nm();
        println!("fresh = {:.6}", m.fresh_snm_volts());
        for (da, db) in [
            (0.0, 0.0),
            (0.025, 0.025),
            (0.010, 0.040),
            (0.040, 0.010),
            (0.0, 0.050),
            (0.050, 0.0),
        ] {
            let a = VtcTable::build(&m.params, da, 0.0);
            let b = VtcTable::build(&m.params, db, 0.0);
            let plus = critical_noise(&a, &b, 1.0);
            let minus = critical_noise(&a, &b, -1.0);
            println!(
                "dA={da:.3} dB={db:.3}  crit+={plus:.6} crit-={minus:.6} snm={:.6}",
                plus.min(minus)
            );
        }
    }
}
