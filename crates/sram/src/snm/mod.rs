//! Static Noise Margin models.
//!
//! Two implementations of [`SnmModel`] are provided:
//!
//! * [`CalibratedSnmModel`] — the model all experiments use. SNM
//!   degradation is linear in the threshold shift of the most-stressed
//!   PMOS (first-order sensitivity), with the two coefficients solved
//!   from the anchor values the paper states for its device model:
//!   10.82 % at 50 % duty cycle and 26.12 % at 0 %/100 % after 7 years.
//! * [`ButterflySnmModel`] — a from-scratch device-level reference:
//!   square-law inverter voltage transfer curves and the Seevinck
//!   largest-embedded-square butterfly construction, aged by shifting
//!   each PMOS threshold according to the NBTI model.
//!
//! The paper notes its technique is *orthogonal* to the device aging
//! model; the tests in this module verify that both models agree on
//! everything the mitigation results rely on (symmetry around 50 % duty
//! and monotonicity in duty-cycle deviation).

mod butterfly;
mod calibrated;

pub use butterfly::{ButterflySnmModel, InverterParams};
pub use calibrated::CalibratedSnmModel;

/// Maps a cell's lifetime duty cycle to SNM degradation.
pub trait SnmModel {
    /// SNM degradation in percent of the fresh SNM, for a cell that
    /// stored `1` for fraction `duty` of a lifetime of `years` years.
    ///
    /// # Panics
    ///
    /// Implementations panic if `duty` is outside `[0, 1]` or `years` is
    /// negative.
    fn degradation_percent(&self, duty: f64, years: f64) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both models must agree on the structural properties the paper's
    /// argument rests on.
    #[test]
    fn models_agree_on_symmetry_and_monotonicity() {
        let calibrated = CalibratedSnmModel::paper();
        let butterfly = ButterflySnmModel::default_65nm();
        let models: [&dyn SnmModel; 2] = [&calibrated, &butterfly];
        for model in models {
            // Symmetry: duty d and 1-d stress the complementary PMOS pair
            // identically.
            for d in [0.0, 0.1, 0.25, 0.4] {
                let lo = model.degradation_percent(d, 7.0);
                let hi = model.degradation_percent(1.0 - d, 7.0);
                assert!((lo - hi).abs() < 0.05, "asymmetry at d={d}: {lo} vs {hi}");
            }
            // Monotone in deviation from 0.5.
            let mut prev = model.degradation_percent(0.5, 7.0);
            for step in 1..=10 {
                let d = 0.5 + step as f64 * 0.05;
                let v = model.degradation_percent(d, 7.0);
                assert!(v >= prev - 1e-9, "not monotone at d={d}: {v} after {prev}");
                prev = v;
            }
        }
    }
}
