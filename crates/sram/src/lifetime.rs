//! Lifetime and read-failure consequences of SNM degradation.
//!
//! The paper's goal is "improving the *lifetime* of on-chip weight
//! memories": duty-cycle balancing slows SNM loss, which postpones the
//! point where cells become unreliable. This module provides the two
//! figures of merit that quantify that claim:
//!
//! * [`lifetime_to_threshold`] — the years until a cell at a given duty
//!   cycle reaches an SNM-degradation budget (design margin), and the
//!   resulting [`lifetime_improvement`] ratio between mitigated and
//!   unmitigated duty cycles;
//! * [`ReadFailureModel`] — the probability that thermal/supply noise
//!   exceeds the remaining noise margin on a read, treating noise as
//!   Gaussian (the standard cell-stability failure model; Agarwal &
//!   Nassif, DAC 2006 — the paper's ref. 26).

use crate::snm::SnmModel;
use dnnlife_numerics::special::normal_sf;

/// Years until `model.degradation_percent(duty, t)` first reaches
/// `threshold_pct`, found by bisection on `[0, max_years]`. Returns
/// `max_years` if the budget is never exhausted within the horizon.
///
/// # Panics
///
/// Panics if `threshold_pct` is not positive or `max_years` is not
/// positive/finite.
///
/// # Example
///
/// ```
/// use dnnlife_sram::lifetime::lifetime_to_threshold;
/// use dnnlife_sram::snm::CalibratedSnmModel;
///
/// let model = CalibratedSnmModel::paper();
/// // A fully unbalanced cell burns a 20% SNM budget years before a
/// // balanced one.
/// let worst = lifetime_to_threshold(&model, 1.0, 20.0, 100.0);
/// let best = lifetime_to_threshold(&model, 0.5, 20.0, 100.0);
/// assert!(worst < best);
/// ```
pub fn lifetime_to_threshold(
    model: &dyn SnmModel,
    duty: f64,
    threshold_pct: f64,
    max_years: f64,
) -> f64 {
    assert!(
        threshold_pct > 0.0,
        "lifetime_to_threshold: threshold must be > 0"
    );
    assert!(
        max_years.is_finite() && max_years > 0.0,
        "lifetime_to_threshold: max_years must be > 0"
    );
    if model.degradation_percent(duty, max_years) < threshold_pct {
        return max_years;
    }
    let mut lo = 0.0f64;
    let mut hi = max_years;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if model.degradation_percent(duty, mid) < threshold_pct {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Lifetime ratio achieved by moving a cell from `duty_unmitigated` to
/// `duty_mitigated` under a fixed SNM budget.
///
/// # Example
///
/// ```
/// use dnnlife_sram::lifetime::lifetime_improvement;
/// use dnnlife_sram::snm::CalibratedSnmModel;
///
/// let model = CalibratedSnmModel::paper();
/// let gain = lifetime_improvement(&model, 0.9, 0.5, 15.0);
/// assert!(gain > 2.0, "balancing should buy >2x lifetime, got {gain}");
/// ```
pub fn lifetime_improvement(
    model: &dyn SnmModel,
    duty_unmitigated: f64,
    duty_mitigated: f64,
    threshold_pct: f64,
) -> f64 {
    const HORIZON: f64 = 1000.0;
    let before = lifetime_to_threshold(model, duty_unmitigated, threshold_pct, HORIZON);
    let after = lifetime_to_threshold(model, duty_mitigated, threshold_pct, HORIZON);
    after / before
}

/// Gaussian read-noise failure model: a read fails when instantaneous
/// noise exceeds the remaining static noise margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadFailureModel {
    /// Fresh (unaged) SNM in millivolts.
    pub fresh_snm_mv: f64,
    /// RMS read noise in millivolts.
    pub noise_sigma_mv: f64,
}

impl ReadFailureModel {
    /// A 65 nm-class operating point: 260 mV fresh read SNM (matching
    /// the butterfly model), 25 mV RMS noise.
    pub fn default_65nm() -> Self {
        Self {
            fresh_snm_mv: 260.0,
            noise_sigma_mv: 25.0,
        }
    }

    /// Probability that one read of a cell with the given SNM
    /// degradation fails.
    ///
    /// # Contract
    ///
    /// `degradation_pct` is clamped to `[0, 100]` before use:
    ///
    /// * negative inputs (a recovery model overshooting) behave like a
    ///   fresh cell — the margin never exceeds `fresh_snm_mv`;
    /// * inputs above 100 % behave like a fully degraded cell (zero
    ///   remaining margin, failure probability exactly 0.5) — the
    ///   Gaussian model has no physical meaning for *negative* margins,
    ///   so the probability saturates instead of extrapolating past
    ///   0.5 toward certain failure.
    ///
    /// The clamp is deliberate: upstream degradation models
    /// ([`crate::snm::CalibratedSnmModel`]) already clamp to `[0, 100]`,
    /// and a caller composing its own affine model must not silently
    /// obtain extrapolated tail probabilities from out-of-range inputs.
    ///
    /// # Panics
    ///
    /// Panics if `degradation_pct` is NaN or infinite — those are
    /// upstream bugs, not boundary conditions.
    pub fn failure_probability(&self, degradation_pct: f64) -> f64 {
        assert!(
            degradation_pct.is_finite(),
            "failure_probability: degradation must be finite, got {degradation_pct}"
        );
        let degradation = degradation_pct.clamp(0.0, 100.0);
        let remaining = self.fresh_snm_mv * (1.0 - degradation / 100.0);
        normal_sf(remaining / self.noise_sigma_mv)
    }

    /// Ratio of failure probabilities between two degradation levels —
    /// how much *more* likely a read failure becomes (e.g. worst-case vs
    /// balanced duty after 7 years).
    pub fn failure_ratio(&self, degradation_a_pct: f64, degradation_b_pct: f64) -> f64 {
        self.failure_probability(degradation_a_pct) / self.failure_probability(degradation_b_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snm::CalibratedSnmModel;

    #[test]
    fn lifetime_bisection_is_consistent() {
        let model = CalibratedSnmModel::paper();
        // At 7 years a fully stressed cell shows exactly 26.12%; the
        // bisection must find ~7 years for that threshold.
        let years = lifetime_to_threshold(&model, 1.0, 26.12, 50.0);
        assert!((years - 7.0).abs() < 0.01, "years = {years}");
        // And ~7 years for a balanced cell at its 10.82% level.
        let years = lifetime_to_threshold(&model, 0.5, 10.82, 50.0);
        assert!((years - 7.0).abs() < 0.01, "years = {years}");
    }

    #[test]
    fn lifetime_monotone_in_duty_deviation() {
        let model = CalibratedSnmModel::paper();
        let mut prev = f64::INFINITY;
        for duty in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            let years = lifetime_to_threshold(&model, duty, 15.0, 1000.0);
            assert!(years <= prev, "duty {duty}: {years} > {prev}");
            prev = years;
        }
    }

    #[test]
    fn improvement_ratio_for_paper_numbers() {
        // Balanced vs fully-stressed: the NBTI t^(1/6) law means a 2x
        // ΔVth reduction buys 2^6 = 64x lifetime at a fixed Vth budget;
        // through the affine SNM calibration the gain at a 15% budget is
        // still an order of magnitude.
        let model = CalibratedSnmModel::paper();
        let gain = lifetime_improvement(&model, 1.0, 0.5, 15.0);
        assert!(gain > 10.0, "gain = {gain}");
    }

    #[test]
    fn horizon_caps_the_search() {
        let model = CalibratedSnmModel::paper();
        // A 99% budget is never reached: return the horizon.
        let years = lifetime_to_threshold(&model, 1.0, 99.0, 42.0);
        assert_eq!(years, 42.0);
    }

    #[test]
    fn failure_probability_increases_with_degradation() {
        let m = ReadFailureModel::default_65nm();
        let fresh = m.failure_probability(0.0);
        let balanced = m.failure_probability(10.82);
        let worst = m.failure_probability(26.12);
        assert!(fresh < balanced && balanced < worst);
        // All are small but the worst case is markedly more likely.
        assert!(m.failure_ratio(26.12, 10.82) > 3.0);
    }

    #[test]
    fn failure_probability_bounds() {
        let m = ReadFailureModel::default_65nm();
        for deg in [0.0, 25.0, 50.0, 100.0] {
            let p = m.failure_probability(deg);
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(m.failure_probability(100.0) >= 0.5 - 1e-6);
    }

    #[test]
    fn failure_probability_clamps_out_of_range_degradation() {
        let m = ReadFailureModel::default_65nm();
        // 0 % is the fresh-cell baseline...
        let fresh = m.failure_probability(0.0);
        assert!(fresh > 0.0 && fresh < 1e-6, "fresh p = {fresh}");
        // ...and negative degradation (recovery overshoot) clamps to it
        // instead of extrapolating a larger-than-fresh margin.
        assert_eq!(m.failure_probability(-5.0), fresh);
        // Above 100 % the margin is gone: exactly the 0.5 saturation of
        // the fully degraded cell, never a tail beyond it.
        assert_eq!(m.failure_probability(150.0), m.failure_probability(100.0));
        // 0.5 up to the erfc approximation's accuracy (~1e-7).
        assert!((m.failure_probability(150.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn failure_probability_monotone_across_the_clamped_domain() {
        let m = ReadFailureModel::default_65nm();
        let mut prev = -1.0f64;
        for deg in [-10.0, 0.0, 10.0, 50.0, 99.0, 100.0, 400.0] {
            let p = m.failure_probability(deg);
            assert!(p >= prev, "degradation {deg}: p {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn failure_probability_rejects_nan() {
        let _ = ReadFailureModel::default_65nm().failure_probability(f64::NAN);
    }
}
