//! Per-cell duty-cycle accumulation.
//!
//! The memory simulator in `dnnlife-accel` writes a sequence of bit
//! states into every cell, each resident for some dwell time. This
//! tracker accumulates, per cell, the fraction of total time spent
//! storing `1` — the duty cycle that the SNM models consume.
//!
//! States are supplied bit-packed (64 cells per `u64` word) because the
//! paper-scale memories hold millions of cells.

/// Accumulates time-weighted duty cycles for a fixed-size population of
/// cells.
///
/// # Example
///
/// ```
/// use dnnlife_sram::DutyCycleTracker;
///
/// let mut t = DutyCycleTracker::new(128);
/// // All 128 cells store `1` for 3 time units...
/// t.record_packed(&[u64::MAX, u64::MAX], 3.0);
/// // ...then `0` for 1 time unit.
/// t.record_packed(&[0, 0], 1.0);
/// assert!((t.duty(5) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct DutyCycleTracker {
    ones_time: Vec<f64>,
    total_time: f64,
    cells: usize,
}

impl DutyCycleTracker {
    /// Creates a tracker for `cells` cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0`.
    pub fn new(cells: usize) -> Self {
        assert!(cells > 0, "DutyCycleTracker: cells must be > 0");
        Self {
            ones_time: vec![0.0; cells],
            total_time: 0.0,
            cells,
        }
    }

    /// Number of tracked cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Total accumulated time.
    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    /// Records a memory state held for `dwell` time units. `state` is
    /// bit-packed LSB-first: cell `i` is bit `i % 64` of word `i / 64`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is shorter than `ceil(cells / 64)` words or if
    /// `dwell` is not positive and finite.
    pub fn record_packed(&mut self, state: &[u64], dwell: f64) {
        assert!(
            dwell.is_finite() && dwell > 0.0,
            "DutyCycleTracker: dwell must be positive, got {dwell}"
        );
        let needed = self.cells.div_ceil(64);
        assert!(
            state.len() >= needed,
            "DutyCycleTracker: state has {} words, need {needed}",
            state.len()
        );
        for (i, t) in self.ones_time.iter_mut().enumerate() {
            if state[i / 64] >> (i % 64) & 1 == 1 {
                *t += dwell;
            }
        }
        self.total_time += dwell;
    }

    /// Records an unpacked boolean state held for `dwell` time units
    /// (convenience for tests and small memories).
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.cells()`.
    pub fn record_bits(&mut self, state: &[bool], dwell: f64) {
        assert_eq!(
            state.len(),
            self.cells,
            "DutyCycleTracker: state length mismatch"
        );
        assert!(
            dwell.is_finite() && dwell > 0.0,
            "DutyCycleTracker: dwell must be positive, got {dwell}"
        );
        for (t, &bit) in self.ones_time.iter_mut().zip(state) {
            if bit {
                *t += dwell;
            }
        }
        self.total_time += dwell;
    }

    /// Duty cycle of cell `idx` (0.0 if no time has been recorded).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn duty(&self, idx: usize) -> f64 {
        assert!(
            idx < self.cells,
            "DutyCycleTracker: cell {idx} out of range"
        );
        if self.total_time == 0.0 {
            0.0
        } else {
            self.ones_time[idx] / self.total_time
        }
    }

    /// Iterates over all per-cell duty cycles.
    pub fn duties(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.cells).map(move |i| self.duty(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighting() {
        let mut t = DutyCycleTracker::new(2);
        t.record_bits(&[true, false], 1.0);
        t.record_bits(&[true, true], 3.0);
        assert!((t.duty(0) - 1.0).abs() < 1e-12);
        assert!((t.duty(1) - 0.75).abs() < 1e-12);
        assert_eq!(t.total_time(), 4.0);
    }

    #[test]
    fn packed_matches_bits() {
        let mut packed = DutyCycleTracker::new(70);
        let mut plain = DutyCycleTracker::new(70);
        // Alternating pattern across the word boundary.
        let bits: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        let mut words = [0u64; 2];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        packed.record_packed(&words, 2.0);
        plain.record_bits(&bits, 2.0);
        for i in 0..70 {
            assert_eq!(packed.duty(i), plain.duty(i), "cell {i}");
        }
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let t = DutyCycleTracker::new(4);
        assert_eq!(t.duty(3), 0.0);
        assert_eq!(t.total_time(), 0.0);
    }

    #[test]
    fn duties_iterator_covers_all_cells() {
        let mut t = DutyCycleTracker::new(3);
        t.record_bits(&[true, false, true], 1.0);
        let d: Vec<f64> = t.duties().collect();
        assert_eq!(d, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dwell must be positive")]
    fn rejects_zero_dwell() {
        let mut t = DutyCycleTracker::new(1);
        t.record_bits(&[true], 0.0);
    }

    #[test]
    #[should_panic(expected = "state has 1 words, need 2")]
    fn rejects_short_state() {
        let mut t = DutyCycleTracker::new(100);
        t.record_packed(&[0], 1.0);
    }
}
