//! Bit-sliced duty-cycle accumulation: 64 cells per `u64` operation.
//!
//! [`super::duty::DutyCycleTracker`] pays a branch and an f64 add *per
//! cell per recorded state* — the dominant cost of the exact memory
//! simulator's inner loop. [`DutySliceTracker`] replaces that with
//! vertical carry-save counters: each recorded state word is folded
//! into [`PLANES`] bit-plane words (plane `p` holds bit `p` of every
//! cell's pending count), so one record costs ~2 `u64` ops per 64
//! cells amortized. Pending planes spill into per-cell `u64` counters
//! every `2^PLANES − 1` records.
//!
//! Counts are kept as **integers per distinct dwell value** (grouped in
//! first-seen order) and converted to f64 duty once, at the end:
//!
//! * Uniform dwell (`1.0`, the paper's assumption (b) and the default)
//!   is exact by construction — the scalar tracker's repeated `+1.0`
//!   is integer arithmetic below 2^53, so `count as f64 / total as
//!   f64` reproduces it bit for bit.
//! * Non-uniform dwells are accumulated per group and combined as
//!   `Σ_g count_g × dwell_g` in first-seen group order — the grouped
//!   multiply-and-sum the exact simulator's store regression pins
//!   against the scalar tracker's goldens.
//!
//! Because counts are integers, *repeated identical write sequences
//! collapse into multiplication*: [`DutySliceTracker::scale`] multiplies
//! every count by a repetition factor exactly, which is what lets the
//! exact simulator simulate one period of a deterministic policy's
//! write cycle and replay it arithmetically.

/// Carry-save depth: pending per-cell counts up to `2^PLANES − 1`
/// before spilling into the 64-bit counters.
const PLANES: usize = 8;

/// Records per group between spills (`2^PLANES − 1`).
const SPILL_EVERY: u32 = (1 << PLANES) - 1;

/// Per-dwell-value accumulation state.
#[derive(Debug, Clone)]
struct DwellGroup {
    /// The group's dwell value (exact f64 bits).
    dwell: f64,
    /// States recorded under this dwell (after scaling).
    writes: u64,
    /// Spilled per-cell ones counts.
    counts: Vec<u64>,
    /// Carry-save planes, word-major: `planes[w * PLANES + p]` is bit
    /// plane `p` of state word `w`, so one record touches one cache
    /// line per state word.
    planes: Vec<u64>,
    /// Records folded into `planes` since the last spill
    /// (`< 2^PLANES`).
    pending: u32,
}

impl DwellGroup {
    fn new(dwell: f64, cells: usize, words: usize) -> Self {
        Self {
            dwell,
            writes: 0,
            counts: vec![0; cells],
            planes: vec![0; words * PLANES],
            pending: 0,
        }
    }

    /// Folds one packed state into the carry-save planes. `tail_mask`
    /// zeroes state bits beyond the cell population in the last word,
    /// mirroring the scalar tracker (which never reads them).
    #[inline]
    fn add(&mut self, state: &[u64], words: usize, tail_mask: u64) {
        for (w, word_planes) in self.planes.chunks_exact_mut(PLANES).enumerate() {
            let mut carry = state[w];
            if w == words - 1 {
                carry &= tail_mask;
            }
            let mut level = 0;
            while carry != 0 {
                debug_assert!(level < PLANES, "carry-save overflow before spill");
                let plane = &mut word_planes[level];
                let t = *plane & carry;
                *plane ^= carry;
                carry = t;
                level += 1;
            }
        }
        self.writes += 1;
        self.pending += 1;
        if self.pending == SPILL_EVERY {
            self.spill();
        }
    }

    /// Drains the pending planes into the per-cell counters.
    fn spill(&mut self) {
        if self.pending == 0 {
            return;
        }
        for (w, word_planes) in self.planes.chunks_exact_mut(PLANES).enumerate() {
            let base = w * 64;
            for (level, plane) in word_planes.iter_mut().enumerate() {
                let mut bits = std::mem::take(plane);
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    self.counts[base + i] += 1 << level;
                    bits &= bits - 1;
                }
            }
        }
        self.pending = 0;
    }
}

/// Bit-sliced, integer-counting drop-in for the scalar
/// [`super::duty::DutyCycleTracker`]: same cell layout, same recording
/// API, one final conversion to f64 duty cycles.
///
/// # Example
///
/// ```
/// use dnnlife_sram::DutySliceTracker;
///
/// let mut t = DutySliceTracker::new(128);
/// // All 128 cells store `1` for 3 write rounds...
/// t.record_packed(&[u64::MAX, u64::MAX], 1.0);
/// t.scale(3);
/// // ...then `0` for 1 round.
/// t.record_packed(&[0, 0], 1.0);
/// assert_eq!(t.into_duties()[5], 0.75);
/// ```
#[derive(Debug, Clone)]
pub struct DutySliceTracker {
    cells: usize,
    words: usize,
    /// Mask of live cell bits in the last state word.
    tail_mask: u64,
    /// Dwell groups in first-seen order. Uniform-dwell runs (the
    /// default) have exactly one.
    groups: Vec<DwellGroup>,
    /// Index of the most recently used group — the next record almost
    /// always repeats the same dwell.
    last: usize,
}

impl DutySliceTracker {
    /// Creates a tracker for `cells` cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0`.
    pub fn new(cells: usize) -> Self {
        assert!(cells > 0, "DutySliceTracker: cells must be > 0");
        Self {
            cells,
            words: cells.div_ceil(64),
            tail_mask: if cells.is_multiple_of(64) {
                u64::MAX
            } else {
                (1u64 << (cells % 64)) - 1
            },
            groups: Vec::new(),
            last: 0,
        }
    }

    /// Number of tracked cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Total accumulated time: `Σ_g writes_g × dwell_g` in first-seen
    /// group order (identical to the scalar tracker's running sum for
    /// uniform dwell).
    pub fn total_time(&self) -> f64 {
        self.groups.iter().map(|g| g.writes as f64 * g.dwell).sum()
    }

    /// Records a memory state held for `dwell` time units. `state` is
    /// bit-packed LSB-first: cell `i` is bit `i % 64` of word `i / 64`.
    /// Bits of `state` beyond `cells` are ignored, as in the scalar
    /// tracker.
    ///
    /// # Panics
    ///
    /// Panics if `state` is shorter than `ceil(cells / 64)` words or if
    /// `dwell` is not positive and finite.
    pub fn record_packed(&mut self, state: &[u64], dwell: f64) {
        assert!(
            dwell.is_finite() && dwell > 0.0,
            "DutySliceTracker: dwell must be positive, got {dwell}"
        );
        assert!(
            state.len() >= self.words,
            "DutySliceTracker: state has {} words, need {}",
            state.len(),
            self.words
        );
        let (words, tail_mask) = (self.words, self.tail_mask);
        let group = self.group_for(dwell);
        group.add(state, words, tail_mask);
    }

    /// Records an unpacked boolean state held for `dwell` time units
    /// (convenience for tests and small memories).
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.cells()` or `dwell` is not
    /// positive and finite.
    pub fn record_bits(&mut self, state: &[bool], dwell: f64) {
        assert_eq!(
            state.len(),
            self.cells,
            "DutySliceTracker: state length mismatch"
        );
        let mut packed = vec![0u64; self.words];
        for (i, &bit) in state.iter().enumerate() {
            if bit {
                packed[i / 64] |= 1 << (i % 64);
            }
        }
        self.record_packed(&packed, dwell);
    }

    /// Multiplies every accumulated count (and write total) by
    /// `factor` — exact integer run-length replay of everything
    /// recorded so far. The exact simulator records one period of a
    /// deterministic policy's write cycle and scales it by the number
    /// of repetitions instead of re-simulating them.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0` or a count would overflow `u64`.
    pub fn scale(&mut self, factor: u64) {
        assert!(factor > 0, "DutySliceTracker: scale factor must be > 0");
        if factor == 1 {
            return;
        }
        for group in &mut self.groups {
            group.spill();
            group.writes = group
                .writes
                .checked_mul(factor)
                .expect("DutySliceTracker: write count overflow");
            for count in &mut group.counts {
                *count = count
                    .checked_mul(factor)
                    .expect("DutySliceTracker: ones count overflow");
            }
        }
    }

    /// Converts the integer counts to per-cell duty cycles:
    /// `Σ_g count_g[i] × dwell_g / Σ_g writes_g × dwell_g`, group sums
    /// in first-seen order. All zeros if nothing was recorded. Counts
    /// above 2^53 lose the integer-exactness guarantee (as would the
    /// scalar tracker's f64 accumulation).
    pub fn into_duties(mut self) -> Vec<f64> {
        let total = self.total_time();
        if total == 0.0 {
            return vec![0.0; self.cells];
        }
        for group in &mut self.groups {
            group.spill();
        }
        let mut duties = vec![0.0; self.cells];
        if let [single] = self.groups.as_slice() {
            // One dwell value (the uniform case): duty is a pure
            // integer ratio — skip the per-group multiply entirely.
            // Counts range over 0..=writes, so when that range is small
            // a lookup table replaces the per-cell divide with the
            // identical precomputed quotient.
            if single.writes <= 1 << 16 {
                let table: Vec<f64> = (0..=single.writes)
                    .map(|c| (c as f64 * single.dwell) / total)
                    .collect();
                for (d, &count) in duties.iter_mut().zip(&single.counts) {
                    *d = table[count as usize];
                }
            } else {
                for (d, &count) in duties.iter_mut().zip(&single.counts) {
                    *d = (count as f64 * single.dwell) / total;
                }
            }
        } else {
            for group in &self.groups {
                for (d, &count) in duties.iter_mut().zip(&group.counts) {
                    *d += count as f64 * group.dwell;
                }
            }
            for d in &mut duties {
                *d /= total;
            }
        }
        duties
    }

    fn group_for(&mut self, dwell: f64) -> &mut DwellGroup {
        let key = dwell.to_bits();
        if let Some(i) = self
            .groups
            .get(self.last)
            .map(|g| g.dwell.to_bits() == key)
            .and_then(|hit| hit.then_some(self.last))
            .or_else(|| self.groups.iter().position(|g| g.dwell.to_bits() == key))
        {
            self.last = i;
        } else {
            self.groups
                .push(DwellGroup::new(dwell, self.cells, self.words));
            self.last = self.groups.len() - 1;
        }
        &mut self.groups[self.last]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duty::DutyCycleTracker;

    fn duties_of(t: &DutyCycleTracker) -> Vec<f64> {
        t.duties().collect()
    }

    #[test]
    fn matches_scalar_on_uniform_dwell() {
        let mut sliced = DutySliceTracker::new(130);
        let mut scalar = DutyCycleTracker::new(130);
        for round in 0u64..600 {
            let pattern = [
                round.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                !round,
                round & 3, // only bits 0..2 of the tail word are live
            ];
            sliced.record_packed(&pattern, 1.0);
            scalar.record_packed(&pattern, 1.0);
        }
        assert_eq!(sliced.into_duties(), duties_of(&scalar));
    }

    #[test]
    fn matches_scalar_on_grouped_dyadic_dwells() {
        // Dyadic dwell values make both accumulation orders exact, so
        // the grouped multiply-and-sum must be bit-identical.
        let mut sliced = DutySliceTracker::new(64);
        let mut scalar = DutyCycleTracker::new(64);
        for round in 0u64..300 {
            let state = [round.wrapping_mul(0x243F_6A88_85A3_08D3)];
            let dwell = [0.25, 0.5, 1.0, 2.0][(round % 4) as usize];
            sliced.record_packed(&state, dwell);
            scalar.record_packed(&state, dwell);
        }
        assert_eq!(sliced.into_duties(), duties_of(&scalar));
    }

    #[test]
    fn scale_is_exact_run_length_replay() {
        let mut scaled = DutySliceTracker::new(70);
        let mut replayed = DutySliceTracker::new(70);
        let states = [
            [0xFFFF_0000_FF00_F0F0u64, 0x3F],
            [0x0F0F_0F0F_0F0F_0F0F, 0x15],
        ];
        for state in &states {
            scaled.record_packed(state, 1.0);
        }
        scaled.scale(7);
        for _ in 0..7 {
            for state in &states {
                replayed.record_packed(state, 1.0);
            }
        }
        assert_eq!(scaled.into_duties(), replayed.into_duties());
    }

    #[test]
    fn spill_boundary_is_seamless() {
        // Cross the 2^PLANES − 1 pending ceiling several times over.
        let mut sliced = DutySliceTracker::new(64);
        let mut scalar = DutyCycleTracker::new(64);
        for round in 0u64..(u64::from(SPILL_EVERY) * 3 + 5) {
            let state = [1u64 << (round % 64) | 1];
            sliced.record_packed(&state, 1.0);
            scalar.record_packed(&state, 1.0);
        }
        assert_eq!(sliced.into_duties(), duties_of(&scalar));
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let t = DutySliceTracker::new(5);
        assert_eq!(t.total_time(), 0.0);
        assert_eq!(t.into_duties(), vec![0.0; 5]);
    }

    #[test]
    fn record_bits_matches_record_packed() {
        let bits: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        let mut words = [0u64; 2];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        let mut from_bits = DutySliceTracker::new(70);
        from_bits.record_bits(&bits, 2.0);
        let mut from_packed = DutySliceTracker::new(70);
        from_packed.record_packed(&words, 2.0);
        assert_eq!(from_bits.into_duties(), from_packed.into_duties());
    }

    #[test]
    #[should_panic(expected = "dwell must be positive")]
    fn rejects_zero_dwell() {
        let mut t = DutySliceTracker::new(1);
        t.record_packed(&[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "state has 1 words, need 2")]
    fn rejects_short_state() {
        let mut t = DutySliceTracker::new(100);
        t.record_packed(&[0], 1.0);
    }
}
