//! The memory-technology axis: which physical wear mechanism ages the
//! weight cells, behind one [`LifetimeModel`] trait.
//!
//! The paper's pipeline is hard-wired to SRAM — duty cycle → NBTI ΔVth
//! → SNM degradation → Gaussian read failure. ReRAM crossbars age by a
//! different mechanism entirely: every *write* consumes endurance, each
//! cell has a lognormally distributed endurance budget, and a worn-out
//! cell fails *hard* (stuck at one resistance state), not
//! probabilistically per read. This module abstracts the two behind a
//! shared trait so the campaign / injection machinery runs either
//! technology through the same word-level paths:
//!
//! * [`SramNbtiLifetime`] — the existing chain, delegating to
//!   [`CalibratedSnmModel`] and [`ReadFailureModel`] with bit-identical
//!   arithmetic; a cell's fate is a transient per-read flip probability.
//! * [`ReramEnduranceLifetime`] — duty-weighted write-stress wear
//!   against a deterministic per-cell lognormal endurance threshold
//!   (counter-hashed from a die seed, so thresholds are order- and
//!   thread-invariant); a worn-out cell is stuck at a die-determined
//!   value.
//!
//! The wear model: each write cycle always pays a RESET baseline
//! ([`ReramEnduranceLifetime::RESET_WEAR`]) and pays the full SET
//! stress in proportion to the duty cycle — the fraction of the
//! lifetime the cell holds the high-stress state. Wear is therefore a
//! pure function of the *final* duty cycle, which is exactly what the
//! simulators already compute, and what makes wear-leveling remap
//! provably help: averaging physical duty toward the mean strictly
//! lowers the maximum wear.

use crate::lifetime::ReadFailureModel;
use crate::snm::{CalibratedSnmModel, SnmModel};

/// Which physical lifetime mechanism ages the weight memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryTech {
    /// 6T-SRAM with NBTI duty-cycle aging (the paper's technology).
    #[default]
    SramNbti,
    /// ReRAM crossbar with write-endurance wear-out.
    ReramEndurance,
}

impl MemoryTech {
    /// Every technology, in canonical axis order.
    pub const ALL: [MemoryTech; 2] = [MemoryTech::SramNbti, MemoryTech::ReramEndurance];

    /// `true` for the default technology (SRAM) — stores omit the axis
    /// for it, keeping pre-axis record bytes intact.
    pub fn is_default(self) -> bool {
        self == MemoryTech::SramNbti
    }

    /// Short CLI / store name.
    pub fn display_name(self) -> &'static str {
        match self {
            MemoryTech::SramNbti => "sram",
            MemoryTech::ReramEndurance => "reram",
        }
    }

    /// Parses a CLI / store name ([`MemoryTech::display_name`] plus
    /// common aliases).
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "sram" | "sram-nbti" => Some(MemoryTech::SramNbti),
            "reram" | "reram-endurance" => Some(MemoryTech::ReramEndurance),
            _ => None,
        }
    }
}

// Stores carry the short CLI name ("sram" / "reram") rather than the
// variant identifier: the axis appears in spec JSON only when
// off-default, and the string form keeps those records grep-able and
// CLI-consistent.
impl serde::Serialize for MemoryTech {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.display_name().to_string())
    }
}

impl serde::Deserialize for MemoryTech {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::String(name) => Self::parse(name).ok_or_else(|| {
                serde::Error::new(format!("unknown memory tech {name:?} (sram | reram)"))
            }),
            _ => Err(serde::Error::new("MemoryTech: expected string")),
        }
    }
}

/// What one cell was exposed to over the device lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellExposure {
    /// Lifetime duty cycle (fraction of time storing `1`).
    pub duty: f64,
    /// Physical cell index within the die (unit-offset + word × width +
    /// bit) — keys the per-cell endurance threshold; irrelevant to the
    /// SRAM model.
    pub cell_index: u64,
}

/// The fate of one cell at an age checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellFate {
    /// The cell works; reads return the stored bit.
    Healthy,
    /// Transient read failures: each read flips independently with this
    /// probability (the SRAM read-noise mechanism).
    Transient {
        /// Per-read flip probability.
        flip_probability: f64,
    },
    /// Hard wear-out fault: every read returns `value` regardless of
    /// the stored bit (the ReRAM endurance mechanism).
    StuckAt {
        /// The bit the dead cell is stuck at.
        value: bool,
    },
}

/// One memory technology's lifetime model: how exposure becomes
/// degradation (for the report histograms) and cell fates (for fault
/// injection).
pub trait LifetimeModel: Sync {
    /// Which technology this model implements.
    fn tech(&self) -> MemoryTech;

    /// Population-level aging severity in percent at `(duty, years)`,
    /// for the sweep histograms: SNM degradation for SRAM, consumed
    /// median endurance for ReRAM. Deterministic in `duty` alone so
    /// callers may memoize on it.
    fn degradation_percent(&self, duty: f64, years: f64) -> f64;

    /// The fate of one specific cell at age `years`.
    fn cell_fate(&self, exposure: CellExposure, years: f64) -> CellFate;
}

/// The paper's SRAM chain behind the trait: duty → NBTI ΔVth → SNM
/// degradation → Gaussian read-failure probability. Pure delegation —
/// the arithmetic is bit-identical to calling the wrapped models
/// directly, which is what keeps pre-axis stores byte-stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramNbtiLifetime {
    snm: CalibratedSnmModel,
    read: ReadFailureModel,
}

impl SramNbtiLifetime {
    /// Wraps an SNM degradation model and a read-failure model.
    pub fn new(snm: CalibratedSnmModel, read: ReadFailureModel) -> Self {
        Self { snm, read }
    }

    /// The paper's calibration at the default 65 nm operating point.
    pub fn paper() -> Self {
        Self::new(
            CalibratedSnmModel::paper(),
            ReadFailureModel::default_65nm(),
        )
    }

    /// The wrapped SNM model.
    pub fn snm(&self) -> &CalibratedSnmModel {
        &self.snm
    }

    /// The wrapped read-failure model.
    pub fn read(&self) -> &ReadFailureModel {
        &self.read
    }
}

impl LifetimeModel for SramNbtiLifetime {
    fn tech(&self) -> MemoryTech {
        MemoryTech::SramNbti
    }

    fn degradation_percent(&self, duty: f64, years: f64) -> f64 {
        self.snm.degradation_percent(duty, years)
    }

    fn cell_fate(&self, exposure: CellExposure, years: f64) -> CellFate {
        CellFate::Transient {
            flip_probability: self
                .read
                .failure_probability(self.snm.degradation_percent(exposure.duty, years)),
        }
    }
}

/// SplitMix64 finalizer — the counter-hash behind the per-cell
/// endurance thresholds and stuck-at values. Identical constants to the
/// seed-mixing finalizer used by the campaign layer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Domain separators so the threshold and stuck-value streams never
/// collide even for equal `die_seed ^ f(cell_index)` inputs.
const THRESHOLD_MIX: u64 = 0xE27D_0000_7EA4_D0CE;
const STUCK_MIX: u64 = 0xE27D_0000_57C0_A7B1;

/// ReRAM write-endurance wear-out behind the trait.
///
/// Per-cell wear after `years` at duty `d` is
/// `years × WRITES_PER_YEAR × (RESET_WEAR + (1 − RESET_WEAR) × d)` —
/// every write cycle pays the RESET baseline, and SET stress scales
/// with the duty cycle. Each cell's endurance threshold is lognormal
/// (`MEDIAN_ENDURANCE_WRITES`, `SIGMA_LN`), drawn deterministically
/// from `(die_seed, cell_index)` by counter hashing — no RNG state, so
/// fates are independent of traversal order, thread count and shard
/// partition. A cell whose wear crosses its threshold is stuck at a
/// die-determined value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReramEnduranceLifetime {
    die_seed: u64,
}

impl ReramEnduranceLifetime {
    /// Write cycles per year of deployment (weight-memory refill rate).
    pub const WRITES_PER_YEAR: f64 = 1.0e5;
    /// Median per-cell endurance in write cycles (mid-range ReRAM).
    pub const MEDIAN_ENDURANCE_WRITES: f64 = 1.0e6;
    /// Lognormal shape of the endurance distribution.
    pub const SIGMA_LN: f64 = 0.45;
    /// Fraction of full SET stress every write cycle pays regardless of
    /// the stored value (the RESET half of the cycle).
    pub const RESET_WEAR: f64 = 0.2;

    /// A die sampled by `die_seed`: the seed determines every cell's
    /// endurance threshold and stuck-at polarity.
    pub fn new(die_seed: u64) -> Self {
        Self { die_seed }
    }

    /// The die seed this model was sampled with.
    pub fn die_seed(&self) -> u64 {
        self.die_seed
    }

    /// Accumulated wear in write cycles after `years` at duty `duty` —
    /// duty-weighted write stress, a pure function of the final duty
    /// cycle.
    pub fn wear(duty: f64, years: f64) -> f64 {
        years * Self::WRITES_PER_YEAR * (Self::RESET_WEAR + (1.0 - Self::RESET_WEAR) * duty)
    }

    /// This cell's endurance threshold in write cycles: lognormal with
    /// median [`Self::MEDIAN_ENDURANCE_WRITES`] and shape
    /// [`Self::SIGMA_LN`], deterministic in `(die_seed, cell_index)`.
    pub fn cell_threshold(&self, cell_index: u64) -> f64 {
        let h1 = splitmix64(
            self.die_seed ^ THRESHOLD_MIX ^ cell_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let h2 = splitmix64(h1 ^ THRESHOLD_MIX);
        // Box–Muller on two 53-bit uniforms; u1 is offset off zero so
        // ln never sees 0.
        let u1 = ((h1 >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0);
        let u2 = (h2 >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        Self::MEDIAN_ENDURANCE_WRITES * (Self::SIGMA_LN * z).exp()
    }

    /// The value a worn-out cell reads as, deterministic in
    /// `(die_seed, cell_index)` — wear-out leaves a cell in whichever
    /// resistance state its filament froze in.
    pub fn stuck_value(&self, cell_index: u64) -> bool {
        splitmix64(self.die_seed ^ STUCK_MIX ^ cell_index.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & 1
            == 1
    }
}

impl LifetimeModel for ReramEnduranceLifetime {
    fn tech(&self) -> MemoryTech {
        MemoryTech::ReramEndurance
    }

    /// Consumed endurance of the *median* cell, in percent (capped at
    /// 100) — the population-level severity metric the sweep histograms
    /// aggregate. Per-cell lognormal variation only matters for who
    /// actually dies, i.e. [`LifetimeModel::cell_fate`].
    fn degradation_percent(&self, duty: f64, years: f64) -> f64 {
        (100.0 * Self::wear(duty, years) / Self::MEDIAN_ENDURANCE_WRITES).min(100.0)
    }

    fn cell_fate(&self, exposure: CellExposure, years: f64) -> CellFate {
        if Self::wear(exposure.duty, years) >= self.cell_threshold(exposure.cell_index) {
            CellFate::StuckAt {
                value: self.stuck_value(exposure.cell_index),
            }
        } else {
            CellFate::Healthy
        }
    }
}

/// Per-cell write-stress accumulator for endurance wear.
///
/// Counts SET-direction writes among total writes in integer counters,
/// so accumulation is *exactly* write-order-invariant (and shard merges
/// are exact) — the property the endurance proptests pin. The final
/// duty (`ones / writes`) feeds [`ReramEnduranceLifetime::wear`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnduranceWear {
    ones: u64,
    writes: u64,
}

impl EnduranceWear {
    /// An accumulator with no writes recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one write of `bit` to the cell.
    pub fn record(&mut self, bit: bool) {
        self.ones += u64::from(bit);
        self.writes += 1;
    }

    /// Merges another accumulator (e.g. a shard's partial counts).
    pub fn merge(&mut self, other: &EnduranceWear) {
        self.ones += other.ones;
        self.writes += other.writes;
    }

    /// Total writes recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Duty cycle of the recorded writes (0 when none recorded).
    pub fn duty(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.ones as f64 / self.writes as f64
        }
    }

    /// Accumulated wear after `years` at the recorded duty.
    pub fn wear(&self, years: f64) -> f64 {
        ReramEnduranceLifetime::wear(self.duty(), years)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tech_parse_and_display_round_trip() {
        for tech in MemoryTech::ALL {
            assert_eq!(MemoryTech::parse(tech.display_name()), Some(tech));
        }
        assert_eq!(MemoryTech::parse("sram-nbti"), Some(MemoryTech::SramNbti));
        assert_eq!(
            MemoryTech::parse("reram-endurance"),
            Some(MemoryTech::ReramEndurance)
        );
        assert_eq!(MemoryTech::parse("flash"), None);
        assert!(MemoryTech::SramNbti.is_default());
        assert!(!MemoryTech::ReramEndurance.is_default());
        assert_eq!(MemoryTech::default(), MemoryTech::SramNbti);
    }

    #[test]
    fn sram_lifetime_delegates_bit_identically() {
        let model = SramNbtiLifetime::paper();
        let snm = CalibratedSnmModel::paper();
        let read = ReadFailureModel::default_65nm();
        for duty in [0.0, 0.25, 0.5, 0.9, 1.0] {
            for years in [2.0, 7.0, 10.0] {
                assert_eq!(
                    model.degradation_percent(duty, years),
                    snm.degradation_percent(duty, years)
                );
                let exposure = CellExposure {
                    duty,
                    cell_index: 42,
                };
                let CellFate::Transient { flip_probability } = model.cell_fate(exposure, years)
                else {
                    panic!("SRAM fates are transient");
                };
                assert_eq!(
                    flip_probability,
                    read.failure_probability(snm.degradation_percent(duty, years))
                );
            }
        }
    }

    #[test]
    fn reram_wear_scales_with_duty_and_years() {
        // duty 0 still wears (RESET baseline); duty 1 wears 5x faster
        // at RESET_WEAR = 0.2.
        let w0 = ReramEnduranceLifetime::wear(0.0, 7.0);
        let w1 = ReramEnduranceLifetime::wear(1.0, 7.0);
        assert!(w0 > 0.0);
        assert!((w1 / w0 - 5.0).abs() < 1e-12);
        assert!(ReramEnduranceLifetime::wear(1.0, 2.0) < w1);
        // 7 years at duty 1.0 consumes 70% of the median endurance.
        let model = ReramEnduranceLifetime::new(1);
        assert!((model.degradation_percent(1.0, 7.0) - 70.0).abs() < 1e-9);
        // Degradation saturates at 100%.
        assert_eq!(model.degradation_percent(1.0, 100.0), 100.0);
    }

    #[test]
    fn reram_thresholds_are_lognormal_around_the_median() {
        let model = ReramEnduranceLifetime::new(0xD1E5EED);
        let n = 20_000u64;
        let mut below = 0u64;
        let mut sum_ln = 0.0f64;
        for cell in 0..n {
            let t = model.cell_threshold(cell);
            assert!(t.is_finite() && t > 0.0);
            if t < ReramEnduranceLifetime::MEDIAN_ENDURANCE_WRITES {
                below += 1;
            }
            sum_ln += (t / ReramEnduranceLifetime::MEDIAN_ENDURANCE_WRITES).ln();
        }
        // Median check: ~half the cells below the median endurance.
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "below-median fraction {frac}");
        // Mean of ln(threshold/median) ≈ 0 (the lognormal's mu).
        let mean_ln = sum_ln / n as f64;
        assert!(mean_ln.abs() < 0.02, "mean ln deviation {mean_ln}");
    }

    #[test]
    fn reram_death_rates_match_the_design_points() {
        let model = ReramEnduranceLifetime::new(7);
        let n = 50_000u64;
        let dead_frac = |duty: f64, years: f64| {
            (0..n)
                .filter(|&cell| {
                    matches!(
                        model.cell_fate(
                            CellExposure {
                                duty,
                                cell_index: cell
                            },
                            years
                        ),
                        CellFate::StuckAt { .. }
                    )
                })
                .count() as f64
                / n as f64
        };
        // ~21% of duty-1.0 cells dead at 7 years; ~0.8% at the
        // wear-leveled duty; ~50% at 10 years.
        let hot7 = dead_frac(1.0, 7.0);
        assert!((0.18..0.25).contains(&hot7), "hot 7y death rate {hot7}");
        let leveled7 = dead_frac(0.35, 7.0);
        assert!(
            (0.002..0.02).contains(&leveled7),
            "leveled 7y death rate {leveled7}"
        );
        let hot10 = dead_frac(1.0, 10.0);
        assert!((0.45..0.55).contains(&hot10), "hot 10y death rate {hot10}");
        assert!(dead_frac(1.0, 2.0) < 0.002, "2y deaths should be rare");
    }

    #[test]
    fn reram_fates_are_deterministic_and_die_specific() {
        let a = ReramEnduranceLifetime::new(1);
        let b = ReramEnduranceLifetime::new(2);
        let exposure = |cell_index| CellExposure {
            duty: 1.0,
            cell_index,
        };
        let mut differs = false;
        for cell in 0..2_000 {
            assert_eq!(
                a.cell_fate(exposure(cell), 7.0),
                a.cell_fate(exposure(cell), 7.0)
            );
            differs |= a.cell_fate(exposure(cell), 7.0) != b.cell_fate(exposure(cell), 7.0);
        }
        assert!(differs, "distinct dies must sample distinct fate maps");
        // Stuck-at polarity is roughly balanced across cells.
        let ones = (0..10_000u64).filter(|&c| a.stuck_value(c)).count();
        assert!((4_000..6_000).contains(&ones), "stuck-1 cells: {ones}");
    }

    #[test]
    fn dead_cells_stay_dead_as_years_grow() {
        // Wear is monotone in years, so a cell dead at year y is dead
        // at every later year with the same stuck value.
        let model = ReramEnduranceLifetime::new(99);
        for cell in 0..2_000u64 {
            let exposure = CellExposure {
                duty: 0.8,
                cell_index: cell,
            };
            let mut was_dead: Option<CellFate> = None;
            for years in [2.0, 7.0, 10.0, 20.0] {
                let fate = model.cell_fate(exposure, years);
                if let Some(prev) = was_dead {
                    assert_eq!(fate, prev, "cell {cell} changed fate after death");
                } else if matches!(fate, CellFate::StuckAt { .. }) {
                    was_dead = Some(fate);
                }
            }
        }
    }

    #[test]
    fn endurance_wear_merge_matches_serial_accumulation() {
        let bits = [true, false, true, true, false, true, false, false, true];
        let mut serial = EnduranceWear::new();
        for &b in &bits {
            serial.record(b);
        }
        let mut left = EnduranceWear::new();
        let mut right = EnduranceWear::new();
        for &b in &bits[..4] {
            left.record(b);
        }
        for &b in &bits[4..] {
            right.record(b);
        }
        left.merge(&right);
        assert_eq!(left, serial);
        assert_eq!(serial.writes(), 9);
        assert_eq!(serial.duty(), 5.0 / 9.0);
        assert_eq!(EnduranceWear::new().duty(), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Endurance wear accumulation is exactly write-order
            /// invariant: any permutation of the same write multiset
            /// produces bit-identical duty and wear.
            #[test]
            fn wear_is_write_order_invariant(
                bits in proptest::collection::vec(any::<bool>(), 1..200),
                rotation in 0usize..200,
                years in 0.5f64..20.0,
            ) {
                let mut forward = EnduranceWear::new();
                for &b in &bits {
                    forward.record(b);
                }
                // A rotation + reversal reaches arbitrary reorderings
                // across cases.
                let r = rotation % bits.len();
                let mut permuted = EnduranceWear::new();
                for &b in bits[r..].iter().chain(&bits[..r]).rev() {
                    permuted.record(b);
                }
                prop_assert_eq!(forward, permuted);
                prop_assert_eq!(forward.duty().to_bits(), permuted.duty().to_bits());
                prop_assert_eq!(forward.wear(years).to_bits(), permuted.wear(years).to_bits());
            }

            /// Sharded accumulation merged in any split position equals
            /// the serial accumulation exactly.
            #[test]
            fn wear_shard_merge_is_exact(
                bits in proptest::collection::vec(any::<bool>(), 1..200),
                split in 0usize..200,
            ) {
                let split = split % (bits.len() + 1);
                let mut serial = EnduranceWear::new();
                for &b in &bits {
                    serial.record(b);
                }
                let mut a = EnduranceWear::new();
                let mut b_acc = EnduranceWear::new();
                for &b in &bits[..split] {
                    a.record(b);
                }
                for &b in &bits[split..] {
                    b_acc.record(b);
                }
                a.merge(&b_acc);
                prop_assert_eq!(a, serial);
            }

            /// Wear is monotone in duty and years, and every cell's
            /// threshold is positive and finite.
            #[test]
            fn wear_monotone_and_thresholds_sane(
                duty in 0.0f64..1.0,
                years in 0.1f64..30.0,
                die in any::<u64>(),
                cell in any::<u64>(),
            ) {
                let w = ReramEnduranceLifetime::wear(duty, years);
                prop_assert!(w > 0.0);
                prop_assert!(ReramEnduranceLifetime::wear(duty + 1e-6, years) >= w);
                prop_assert!(ReramEnduranceLifetime::wear(duty, years + 1e-6) >= w);
                let t = ReramEnduranceLifetime::new(die).cell_threshold(cell);
                prop_assert!(t.is_finite() && t > 0.0);
            }
        }
    }
}
