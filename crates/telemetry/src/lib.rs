#![warn(missing_docs)]

//! Run-time observability for the DNN-Life stack: lock-cheap counters
//! and span timings, a machine-readable `events.jsonl` journal, and an
//! opt-in live progress line.
//!
//! The design constraint is the campaign determinism contract: result
//! stores must stay **byte-identical** with telemetry on or off, at any
//! thread or shard count. Everything here therefore only *observes* —
//! a [`Telemetry`] handle owns an array of relaxed [`AtomicU64`]
//! counters (one add on the instrumented path, a single branch when
//! disabled via [`Telemetry::noop`]) plus an optional journal file
//! behind a mutex that is only touched at coarse per-scenario
//! granularity, never inside simulator inner loops.
//!
//! The journal uses the same torn-line-tolerant journaling as the
//! campaign's `JsonlStore`: every event is one JSON line, appended and
//! flushed; on (re-)open an unterminated trailing line — a crash or
//! power cut mid-write — is truncated away so the next event starts on
//! a clean line. Readers (`dnnlife perf`) additionally skip lines that
//! do not parse, so a journal survives anything short of losing the
//! file.
//!
//! | type | role |
//! |------|------|
//! | [`Counter`] | fixed roster of hot-path counters (executor, exact/analytic simulators, fault injection) |
//! | [`Telemetry`] | counter array + span timing + the `events.jsonl` journal |
//! | [`Progress`]  | done/total + throughput + ETA line; live `\r` rewrite on a TTY, periodic plain lines otherwise |
//! | [`Instrumentation`] | the `(telemetry, progress)` pair campaign entry points thread through |

use std::fs::OpenOptions;
use std::io::{IsTerminal, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde::Serialize;

/// The fixed roster of hot-path counters. Each names one monotonically
/// increasing `u64`; `*Nanos` counters accumulate span wall time. The
/// roster is closed (an enum, not string keys) so the instrumented
/// path is one array index + one relaxed atomic add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Campaign scenarios (or injection cells) journaled.
    ScenariosCompleted,
    /// In-flight scenarios cancelled mid-run; their partial results
    /// were discarded, never journaled.
    ScenariosDiscarded,
    /// Total time items waited between pool start and a worker picking
    /// them up.
    QueueWaitNanos,
    /// Total per-scenario run wall time (summed across workers, so it
    /// exceeds campaign wall time under parallelism — the ratio is the
    /// pool occupancy).
    ScenarioWallNanos,
    /// Exact-backend word writes: one per (sampled word, block,
    /// inference) encode.
    ExactWordWrites,
    /// Exact-backend word shards executed.
    ExactShardsRun,
    /// Exact-backend word reads served from the raw-block cache.
    BlockCacheHitWords,
    /// Exact-backend word reads that went to the block source (cache
    /// fill or cache disabled).
    BlockCacheMissWords,
    /// Time concatenating per-shard duty vectors into the final exact
    /// result.
    ShardMergeNanos,
    /// Analytic-backend cells simulated (sampled words × word bits).
    AnalyticCellsSimulated,
    /// Analytic-backend word shards executed.
    AnalyticShardsRun,
    /// Fault-injection trials completed.
    InjectionTrials,
    /// Wall time inside the per-age injection trial fan-out.
    TrialWallNanos,
    /// SECDED word reads fully corrected, summed over trials.
    EccCorrectedWords,
    /// SECDED word reads flagged uncorrectable, summed over trials.
    EccDetectedWords,
    /// SECDED word reads miscorrected (escapes), summed over trials.
    EccEscapedWords,
}

impl Counter {
    /// Every counter, in declaration order (the array layout).
    pub const ALL: [Counter; 16] = [
        Counter::ScenariosCompleted,
        Counter::ScenariosDiscarded,
        Counter::QueueWaitNanos,
        Counter::ScenarioWallNanos,
        Counter::ExactWordWrites,
        Counter::ExactShardsRun,
        Counter::BlockCacheHitWords,
        Counter::BlockCacheMissWords,
        Counter::ShardMergeNanos,
        Counter::AnalyticCellsSimulated,
        Counter::AnalyticShardsRun,
        Counter::InjectionTrials,
        Counter::TrialWallNanos,
        Counter::EccCorrectedWords,
        Counter::EccDetectedWords,
        Counter::EccEscapedWords,
    ];

    /// Stable snake_case name used in the journal's `counters` event
    /// and the `dnnlife perf` tables.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ScenariosCompleted => "scenarios_completed",
            Counter::ScenariosDiscarded => "scenarios_discarded",
            Counter::QueueWaitNanos => "queue_wait_nanos",
            Counter::ScenarioWallNanos => "scenario_wall_nanos",
            Counter::ExactWordWrites => "exact_word_writes",
            Counter::ExactShardsRun => "exact_shards_run",
            Counter::BlockCacheHitWords => "block_cache_hit_words",
            Counter::BlockCacheMissWords => "block_cache_miss_words",
            Counter::ShardMergeNanos => "shard_merge_nanos",
            Counter::AnalyticCellsSimulated => "analytic_cells_simulated",
            Counter::AnalyticShardsRun => "analytic_shards_run",
            Counter::InjectionTrials => "injection_trials",
            Counter::TrialWallNanos => "trial_wall_nanos",
            Counter::EccCorrectedWords => "ecc_corrected_words",
            Counter::EccDetectedWords => "ecc_detected_words",
            Counter::EccEscapedWords => "ecc_escaped_words",
        }
    }
}

/// The `events.jsonl` file: append-only JSON lines, flushed per event,
/// torn trailing lines truncated on open (the `JsonlStore` journaling
/// discipline).
struct Journal {
    file: std::fs::File,
    path: PathBuf,
    /// Set after the first write error; further events are dropped
    /// silently so a full disk degrades observability, not the run.
    failed: bool,
}

impl Journal {
    /// Opens (or creates) the journal for appending, truncating an
    /// unterminated trailing line left by a crash mid-write.
    fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let mut contents = String::new();
        file.read_to_string(&mut contents)?;
        if !contents.is_empty() && !contents.ends_with('\n') {
            // Torn tail: keep everything up to (and including) the last
            // complete line; drop the unterminated remainder.
            let valid = contents.rfind('\n').map_or(0, |i| i + 1);
            file.set_len(valid as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            failed: false,
        })
    }

    fn append(&mut self, line: &str) {
        if self.failed {
            return;
        }
        let write = (|| -> std::io::Result<()> {
            self.file.write_all(line.as_bytes())?;
            self.file.write_all(b"\n")?;
            self.file.flush()
        })();
        if let Err(e) = write {
            self.failed = true;
            eprintln!(
                "telemetry: journal write to {} failed ({e}); further events dropped",
                self.path.display()
            );
        }
    }
}

/// The telemetry handle: counters, span timings, and the optional
/// events journal. Cheap to share by reference across worker threads
/// (all interior mutability is atomic or mutex-guarded); the campaign
/// plumbing carries it as `Option<&Telemetry>` inside `RunOptions`.
///
/// Telemetry only observes: enabling it never changes any computed
/// result (the campaign regression tests pin stores byte-identical
/// with telemetry on and off).
pub struct Telemetry {
    enabled: bool,
    counters: [AtomicU64; Counter::ALL.len()],
    journal: Option<Mutex<Journal>>,
    epoch: Instant,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("journal", &self.journal_path())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    fn build(enabled: bool, journal: Option<Journal>) -> Self {
        Self {
            enabled,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            journal: journal.map(Mutex::new),
            epoch: Instant::now(),
        }
    }

    /// An in-memory handle: counters and spans collected, no journal.
    pub fn in_memory() -> Self {
        Self::build(true, None)
    }

    /// A handle journaling events to `path` (created if missing; a
    /// torn trailing line from a previous crash is truncated away, and
    /// new events append after the surviving complete lines).
    ///
    /// # Errors
    ///
    /// Propagates journal open/create I/O errors.
    pub fn with_journal(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::build(true, Some(Journal::open(path.as_ref())?)))
    }

    /// The shared disabled handle: every instrumented call is a single
    /// branch on `enabled` and returns immediately. This is what the
    /// instrumentation sites substitute when no handle was provided.
    pub fn noop() -> &'static Telemetry {
        static NOOP: OnceLock<Telemetry> = OnceLock::new();
        NOOP.get_or_init(|| Telemetry::build(false, None))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The journal file path, when journaling.
    pub fn journal_path(&self) -> Option<PathBuf> {
        self.journal.as_ref().map(|j| {
            j.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .path
                .clone()
        })
    }

    /// Adds `n` to a counter (relaxed; a no-op when disabled).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if self.enabled {
            self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of a counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Times `f` and accumulates its wall time into a `*Nanos`
    /// counter. When disabled, runs `f` without reading the clock.
    #[inline]
    pub fn time<R>(&self, counter: Counter, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let result = f();
        self.add(counter, start.elapsed().as_nanos() as u64);
        result
    }

    /// Non-zero counters as `(name, value)` pairs, in roster order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.get(c)))
            .filter(|&(_, v)| v != 0)
            .collect()
    }

    /// Appends one event line to the journal:
    /// `{"ev":"<kind>","t_ms":<since handle creation>,<fields...>}`.
    /// A no-op without a journal; write errors are reported once and
    /// then dropped (observability must never fail the run).
    pub fn emit(&self, kind: &str, fields: &[(&str, serde::Value)]) {
        let Some(journal) = &self.journal else {
            return;
        };
        let mut pairs: Vec<(String, serde::Value)> = Vec::with_capacity(fields.len() + 2);
        pairs.push(("ev".to_string(), kind.to_value()));
        pairs.push((
            "t_ms".to_string(),
            (self.epoch.elapsed().as_millis() as u64).to_value(),
        ));
        for (name, value) in fields {
            pairs.push(((*name).to_string(), value.clone()));
        }
        let line = serde_json::to_string(&serde::Value::Object(pairs))
            .expect("event value tree always serializes");
        journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .append(&line);
    }

    /// Emits the `counters` roll-up event (every non-zero counter),
    /// the journal's machine-readable equivalent of [`snapshot`].
    ///
    /// [`snapshot`]: Telemetry::snapshot
    pub fn emit_counters(&self) {
        let fields: Vec<(&str, serde::Value)> = self
            .snapshot()
            .into_iter()
            .map(|(name, value)| (name, value.to_value()))
            .collect();
        self.emit("counters", &fields);
    }
}

/// How a [`Progress`] handle reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressStyle {
    /// stderr is a TTY: one line rewritten in place with `\r`.
    Live,
    /// stderr is not a TTY (CI logs, pipes): periodic plain lines,
    /// each newline-terminated, no carriage returns.
    Periodic,
}

/// A done/total progress reporter with throughput and ETA. On a TTY it
/// rewrites one stderr line in place; redirected (CI logs, pipes) it
/// degrades to a plain newline-terminated line every few seconds so
/// logs stay readable — never a `\r` in that mode.
pub struct Progress {
    label: String,
    total: AtomicUsize,
    done: AtomicUsize,
    start: Instant,
    style: ProgressStyle,
    /// Minimum interval between prints (rate-limits the TTY rewrite,
    /// paces the periodic plain lines).
    period: Duration,
    last: Mutex<Option<Instant>>,
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Progress")
            .field("label", &self.label)
            .field("style", &self.style)
            .finish_non_exhaustive()
    }
}

impl Progress {
    /// A reporter writing to stderr, picking [`ProgressStyle::Live`]
    /// iff stderr is a terminal.
    pub fn stderr(label: impl Into<String>, total: usize) -> Self {
        let style = if std::io::stderr().is_terminal() {
            ProgressStyle::Live
        } else {
            ProgressStyle::Periodic
        };
        Self::with_style(label, total, style)
    }

    /// A reporter with an explicit style (tests pin the non-TTY
    /// degradation without needing a pseudo-terminal).
    pub fn with_style(label: impl Into<String>, total: usize, style: ProgressStyle) -> Self {
        Self {
            label: label.into(),
            total: AtomicUsize::new(total),
            done: AtomicUsize::new(0),
            start: Instant::now(),
            style,
            period: match style {
                ProgressStyle::Live => Duration::from_millis(100),
                ProgressStyle::Periodic => Duration::from_secs(5),
            },
            last: Mutex::new(None),
        }
    }

    /// The reporting style in effect.
    pub fn style(&self) -> ProgressStyle {
        self.style
    }

    /// Re-targets the total (the campaign entry point learns the
    /// *pending* count — after resume skips — only once the store has
    /// been read).
    pub fn set_total(&self, total: usize) {
        self.total.store(total, Ordering::Relaxed);
    }

    /// Items completed so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Records one completed item and prints when due (rate-limited;
    /// the final item always prints).
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let total = self.total.load(Ordering::Relaxed);
        let now = Instant::now();
        {
            let mut last = self
                .last
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let due = done >= total || last.is_none_or(|t| now.duration_since(t) >= self.period);
            if !due {
                return;
            }
            *last = Some(now);
        }
        let line = self.line(done, total);
        match self.style {
            ProgressStyle::Live => eprint!("\r{line}\x1b[K"),
            ProgressStyle::Periodic => eprintln!("{line}"),
        }
    }

    /// Ends the live line (moves the cursor off it). A no-op in
    /// periodic mode — plain lines are already newline-terminated.
    pub fn finish(&self) {
        if self.style == ProgressStyle::Live && self.done() > 0 {
            eprintln!();
        }
    }

    /// Renders the `label: done/total (rate, ETA)` line.
    fn line(&self, done: usize, total: usize) -> String {
        let elapsed = self.start.elapsed().as_secs_f64().max(1e-9);
        let rate = done as f64 / elapsed;
        let eta = if done == 0 || done >= total {
            0.0
        } else {
            (total - done) as f64 / rate
        };
        format!(
            "{}: {done}/{total} ({rate:.2}/s, ETA {eta:.0}s)",
            self.label
        )
    }
}

/// The observability pair the campaign entry points thread through:
/// both sides optional, both borrowed — `Default` is fully off.
#[derive(Debug, Clone, Copy, Default)]
pub struct Instrumentation<'a> {
    /// Counters / spans / events journal.
    pub telemetry: Option<&'a Telemetry>,
    /// Live progress reporting.
    pub progress: Option<&'a Progress>,
}

impl<'a> Instrumentation<'a> {
    /// The telemetry handle, or the shared no-op when absent.
    pub fn telemetry(&self) -> &'a Telemetry {
        self.telemetry.unwrap_or_else(|| Telemetry::noop())
    }

    /// Ticks the progress reporter, when present.
    pub fn tick(&self) {
        if let Some(progress) = self.progress {
            progress.tick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dnnlife-telemetry-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir.join("events.jsonl")
    }

    #[test]
    fn counters_accumulate_and_noop_stays_zero() {
        let tel = Telemetry::in_memory();
        tel.add(Counter::ExactWordWrites, 3);
        tel.add(Counter::ExactWordWrites, 4);
        assert_eq!(tel.get(Counter::ExactWordWrites), 7);
        assert_eq!(tel.snapshot(), vec![("exact_word_writes", 7)]);

        let noop = Telemetry::noop();
        noop.add(Counter::ExactWordWrites, 5);
        assert_eq!(noop.get(Counter::ExactWordWrites), 0);
        assert!(!noop.is_enabled());
    }

    #[test]
    fn time_accumulates_span_nanos() {
        let tel = Telemetry::in_memory();
        let out = tel.time(Counter::ShardMergeNanos, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert!(tel.get(Counter::ShardMergeNanos) >= 1_000_000);
    }

    #[test]
    fn journal_appends_parseable_lines() {
        let path = scratch("emit");
        let tel = Telemetry::with_journal(&path).expect("open journal");
        tel.emit("campaign_start", &[("total", 3u64.to_value())]);
        tel.add(Counter::InjectionTrials, 9);
        tel.emit_counters();
        drop(tel);

        let contents = std::fs::read_to_string(&path).expect("read journal");
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let value: serde::Value = serde_json::from_str(line).expect("line parses");
            assert!(value.get("ev").is_some());
            assert!(value.get("t_ms").is_some());
        }
        let counters: serde::Value = serde_json::from_str(lines[1]).expect("counters line");
        assert_eq!(counters.get("injection_trials"), Some(&9u64.to_value()));
    }

    #[test]
    fn journal_truncates_torn_trailing_line_on_open() {
        let path = scratch("torn");
        {
            let tel = Telemetry::with_journal(&path).expect("open journal");
            tel.emit("campaign_start", &[]);
        }
        // Crash mid-write: an unterminated partial line at the tail.
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("append garbage");
            file.write_all(b"{\"ev\":\"torn").expect("write torn tail");
        }
        let tel = Telemetry::with_journal(&path).expect("reopen journal");
        tel.emit("campaign_done", &[]);
        drop(tel);

        let contents = std::fs::read_to_string(&path).expect("read journal");
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2, "torn tail must be gone: {contents:?}");
        for line in lines {
            let _: serde::Value = serde_json::from_str(line).expect("every line parses");
        }
    }

    #[test]
    fn periodic_progress_never_emits_carriage_returns() {
        // The non-TTY degradation: every rendered line is plain text.
        let progress = Progress::with_style("sweep", 4, ProgressStyle::Periodic);
        assert_eq!(progress.style(), ProgressStyle::Periodic);
        for done in 1..=4 {
            let line = progress.line(done, 4);
            assert!(!line.contains('\r'), "plain line holds a \\r: {line:?}");
            assert!(line.starts_with("sweep: "));
        }
    }

    #[test]
    fn progress_line_reports_done_total_and_eta() {
        let progress = Progress::with_style("inject", 10, ProgressStyle::Live);
        let line = progress.line(5, 10);
        assert!(line.contains("5/10"), "{line}");
        assert!(line.contains("ETA"), "{line}");
        progress.set_total(6);
        progress.tick();
        assert_eq!(progress.done(), 1);
    }

    #[test]
    fn instrumentation_defaults_to_noop() {
        let instr = Instrumentation::default();
        assert!(!instr.telemetry().is_enabled());
        instr.tick(); // no progress: must not panic
    }
}
