#![warn(missing_docs)]

//! Run-time observability for the DNN-Life stack: lock-cheap counters
//! and span timings, a machine-readable `events.jsonl` journal, and an
//! opt-in live progress line.
//!
//! The design constraint is the campaign determinism contract: result
//! stores must stay **byte-identical** with telemetry on or off, at any
//! thread or shard count. Everything here therefore only *observes* —
//! a [`Telemetry`] handle owns an array of relaxed [`AtomicU64`]
//! counters (one add on the instrumented path, a single branch when
//! disabled via [`Telemetry::noop`]) plus an optional journal file
//! behind a mutex that is only touched at coarse per-scenario
//! granularity, never inside simulator inner loops.
//!
//! The journal uses the same torn-line-tolerant journaling as the
//! campaign's `JsonlStore`: every event is one JSON line, appended and
//! flushed; on (re-)open an unterminated trailing line — a crash or
//! power cut mid-write — is truncated away so the next event starts on
//! a clean line. Readers (`dnnlife perf`) additionally skip lines that
//! do not parse, so a journal survives anything short of losing the
//! file.
//!
//! | type | role |
//! |------|------|
//! | [`Counter`] | fixed roster of hot-path counters (executor, exact/analytic simulators, fault injection) |
//! | [`Registry`] | dynamic metrics: named counters, gauges, and log-bucketed [`Histogram`]s |
//! | [`Histogram`] / [`HistogramSnapshot`] | lock-free striped latency recording; mergeable snapshots with p50/p90/p99/max |
//! | [`SpanId`] | hierarchical trace spans journaled as `span_start`/`span_end` events |
//! | [`Telemetry`] | counter array + registry + spans + the `events.jsonl` journal |
//! | [`MetricsSnapshot`] | final registry state, renderable as Prometheus text exposition or JSON |
//! | [`Progress`]  | done/total + throughput + ETA line; live `\r` rewrite on a TTY, periodic plain lines otherwise |
//! | [`Instrumentation`] | the `(telemetry, progress)` pair campaign entry points thread through |
//!
//! Every journal line carries a schema version field `"v":1`; readers
//! tolerate lines without it (pre-versioning journals) and skip event
//! kinds they do not know, so journals mix across binary versions.

use std::fs::OpenOptions;
use std::io::{IsTerminal, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde::Serialize;

/// Schema version stamped into every `events.jsonl` line as `"v"`.
pub const EVENT_SCHEMA_VERSION: u64 = 1;

/// The fixed roster of hot-path counters. Each names one monotonically
/// increasing `u64`; `*Nanos` counters accumulate span wall time. The
/// roster is closed (an enum, not string keys) so the instrumented
/// path is one array index + one relaxed atomic add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Campaign scenarios (or injection cells) journaled.
    ScenariosCompleted,
    /// In-flight scenarios cancelled mid-run; their partial results
    /// were discarded, never journaled.
    ScenariosDiscarded,
    /// Total time items waited between pool start and a worker picking
    /// them up.
    QueueWaitNanos,
    /// Total per-scenario run wall time (summed across workers, so it
    /// exceeds campaign wall time under parallelism — the ratio is the
    /// pool occupancy).
    ScenarioWallNanos,
    /// Exact-backend word writes: one per (sampled word, block,
    /// inference) encode.
    ExactWordWrites,
    /// Exact-backend word shards executed.
    ExactShardsRun,
    /// Exact-backend word reads served from the raw-block cache.
    BlockCacheHitWords,
    /// Exact-backend word reads that went to the block source (cache
    /// fill or cache disabled).
    BlockCacheMissWords,
    /// Time concatenating per-shard duty vectors into the final exact
    /// result.
    ShardMergeNanos,
    /// Analytic-backend cells simulated (sampled words × word bits).
    AnalyticCellsSimulated,
    /// Analytic-backend word shards executed.
    AnalyticShardsRun,
    /// Fault-injection trials completed.
    InjectionTrials,
    /// Wall time inside the per-age injection trial fan-out.
    TrialWallNanos,
    /// SECDED word reads fully corrected, summed over trials.
    EccCorrectedWords,
    /// SECDED word reads flagged uncorrectable, summed over trials.
    EccDetectedWords,
    /// SECDED word reads miscorrected (escapes), summed over trials.
    EccEscapedWords,
}

impl Counter {
    /// Every counter, in declaration order (the array layout).
    pub const ALL: [Counter; 16] = [
        Counter::ScenariosCompleted,
        Counter::ScenariosDiscarded,
        Counter::QueueWaitNanos,
        Counter::ScenarioWallNanos,
        Counter::ExactWordWrites,
        Counter::ExactShardsRun,
        Counter::BlockCacheHitWords,
        Counter::BlockCacheMissWords,
        Counter::ShardMergeNanos,
        Counter::AnalyticCellsSimulated,
        Counter::AnalyticShardsRun,
        Counter::InjectionTrials,
        Counter::TrialWallNanos,
        Counter::EccCorrectedWords,
        Counter::EccDetectedWords,
        Counter::EccEscapedWords,
    ];

    /// Stable snake_case name used in the journal's `counters` event
    /// and the `dnnlife perf` tables.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ScenariosCompleted => "scenarios_completed",
            Counter::ScenariosDiscarded => "scenarios_discarded",
            Counter::QueueWaitNanos => "queue_wait_nanos",
            Counter::ScenarioWallNanos => "scenario_wall_nanos",
            Counter::ExactWordWrites => "exact_word_writes",
            Counter::ExactShardsRun => "exact_shards_run",
            Counter::BlockCacheHitWords => "block_cache_hit_words",
            Counter::BlockCacheMissWords => "block_cache_miss_words",
            Counter::ShardMergeNanos => "shard_merge_nanos",
            Counter::AnalyticCellsSimulated => "analytic_cells_simulated",
            Counter::AnalyticShardsRun => "analytic_shards_run",
            Counter::InjectionTrials => "injection_trials",
            Counter::TrialWallNanos => "trial_wall_nanos",
            Counter::EccCorrectedWords => "ecc_corrected_words",
            Counter::EccDetectedWords => "ecc_detected_words",
            Counter::EccEscapedWords => "ecc_escaped_words",
        }
    }

    /// One-line help string for the metrics registry / Prometheus
    /// `# HELP` line.
    pub fn help(self) -> &'static str {
        match self {
            Counter::ScenariosCompleted => "Campaign scenarios (or injection cells) journaled",
            Counter::ScenariosDiscarded => "In-flight scenarios cancelled mid-run and discarded",
            Counter::QueueWaitNanos => "Total time items waited before a worker picked them up",
            Counter::ScenarioWallNanos => "Total per-scenario run wall time summed across workers",
            Counter::ExactWordWrites => {
                "Exact-backend word writes (sampled word x block x inference)"
            }
            Counter::ExactShardsRun => "Exact-backend word shards executed",
            Counter::BlockCacheHitWords => {
                "Exact-backend word reads served from the raw-block cache"
            }
            Counter::BlockCacheMissWords => {
                "Exact-backend word reads that went to the block source"
            }
            Counter::ShardMergeNanos => "Time concatenating per-shard duty vectors",
            Counter::AnalyticCellsSimulated => "Analytic-backend cells simulated",
            Counter::AnalyticShardsRun => "Analytic-backend word shards executed",
            Counter::InjectionTrials => "Fault-injection trials completed",
            Counter::TrialWallNanos => "Wall time inside the per-age injection trial fan-out",
            Counter::EccCorrectedWords => "SECDED word reads fully corrected",
            Counter::EccDetectedWords => "SECDED word reads flagged uncorrectable",
            Counter::EccEscapedWords => "SECDED word reads miscorrected (escapes)",
        }
    }
}

/// A trace span identifier. `0` is reserved for [`SpanId::NONE`] — the
/// id handed back when telemetry is off or journalless, so span calls
/// stay single-branch no-ops on uninstrumented runs.
///
/// Ids are allocated from a per-handle atomic seeded with the handle's
/// creation time (`unix_ms << 20`), so ids stay globally unique across
/// resumed invocations appending to the same journal — the `dnnlife
/// trace` forest reconstruction never sees a reused id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanId(u64);

impl SpanId {
    /// The absent span: parent of root spans, and the result of
    /// starting a span on a disabled or journalless handle.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the absent span.
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }

    /// The raw id as journaled in `span`/`parent` fields.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Number of histogram buckets: 4 exact unit buckets for values
/// `0..=3`, then 4 log sub-buckets per power-of-two octave up to
/// `u64::MAX` (62 octaves × 4 + 4 = 252).
pub const HISTOGRAM_BUCKETS: usize = 252;

/// Concurrency stripes per histogram: recording threads hash onto a
/// stripe so a hot histogram never serializes its writers.
const HISTOGRAM_STRIPES: usize = 16;

fn stripe_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % HISTOGRAM_STRIPES;
    }
    SLOT.with(|s| *s)
}

struct HistogramStripe {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// A lock-free log-bucketed latency histogram (HdrHistogram-style: 4
/// sub-buckets per power-of-two octave, ~20–25% relative bucket width).
/// Recording is one relaxed add into a per-thread stripe plus a
/// `fetch_max` on the shared max — cheap enough to sit on instrumented
/// paths. Reading happens through [`Histogram::snapshot`], which merges
/// the stripes into a [`HistogramSnapshot`].
pub struct Histogram {
    stripes: Vec<HistogramStripe>,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.snapshot().count())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            stripes: (0..HISTOGRAM_STRIPES)
                .map(|_| HistogramStripe {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    sum: AtomicU64::new(0),
                })
                .collect(),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index holding `value`: values `0..=3` land in exact
    /// unit buckets, larger values in one of 4 log sub-buckets per
    /// power-of-two octave.
    pub fn bucket_index(value: u64) -> usize {
        if value < 4 {
            value as usize
        } else {
            let exp = 63 - value.leading_zeros() as usize;
            let sub = ((value >> (exp - 2)) & 3) as usize;
            (exp - 2) * 4 + sub + 4
        }
    }

    /// The smallest value that lands in bucket `index` (the quantile
    /// estimate reported for ranks falling in that bucket).
    pub fn bucket_lower_bound(index: usize) -> u64 {
        if index < 4 {
            index as u64
        } else {
            let oct = (index - 4) / 4;
            let sub = ((index - 4) % 4) as u64;
            (4 + sub) << oct
        }
    }

    /// Records one observation (relaxed, stripe-local except for the
    /// shared `fetch_max`).
    #[inline]
    pub fn record(&self, value: u64) {
        let stripe = &self.stripes[stripe_slot()];
        stripe.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merges the stripes into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        for stripe in &self.stripes {
            for (acc, bucket) in buckets.iter_mut().zip(stripe.buckets.iter()) {
                *acc += bucket.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(stripe.sum.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum,
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram state: dense bucket counts plus count / sum /
/// exact max. Snapshots merge associatively and commutatively (the
/// property the proptests pin), so per-invocation `hist` journal events
/// aggregate across resumes exactly like live stripes aggregate across
/// threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// The zero snapshot (merge identity).
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Rebuilds a snapshot from the sparse `[index, count]` pairs of a
    /// `hist` journal event. Out-of-range indices are ignored (a newer
    /// writer with a finer bucket layout must not crash an old reader).
    pub fn from_sparse(pairs: &[(usize, u64)], sum: u64, max: u64) -> Self {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for &(index, count) in pairs {
            if let Some(slot) = buckets.get_mut(index) {
                *slot += count;
            }
        }
        let count = buckets.iter().sum();
        Self {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Non-empty buckets as `(index, count)` pairs — the journal and
    /// JSON wire form.
    pub fn sparse(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact maximum observed value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds `other` into `self` (bucket-wise add, max of maxes).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile estimate (nearest-rank): the lower bound of the
    /// bucket holding rank `ceil(q·count)`, clamped to the exact max.
    /// Within one log bucket (~25%) of the true sorted-order value;
    /// exact for `q = 1`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // The last non-empty bucket contains the exact max —
                // a strictly better in-bucket estimate than the lower
                // bound (and it makes `quantile(1.0)` exact).
                return if seen == self.count {
                    self.max
                } else {
                    Histogram::bucket_lower_bound(index)
                };
            }
        }
        self.max
    }
}

/// One registered metric's current value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-set gauge.
    Gauge(u64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// One named metric inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Registered name (snake_case, un-prefixed).
    pub name: String,
    /// Registered help line.
    pub help: String,
    /// Current value.
    pub value: MetricValue,
}

/// A point-in-time capture of every registered metric, in registration
/// order. Renders as Prometheus text exposition (metric names prefixed
/// `dnnlife_`, histogram buckets as cumulative `le` series) or as a
/// JSON object via [`Serialize`] — the `--metrics-out` twin files.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Every registered metric, in registration order.
    pub metrics: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Renders the Prometheus text exposition format: `# HELP` /
    /// `# TYPE` headers and one `dnnlife_<name>`-prefixed series per
    /// metric. Histograms emit cumulative `_bucket{le="..."}` lines for
    /// non-empty buckets (plus the mandatory `+Inf`), `_sum`, and
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for metric in &self.metrics {
            let name = format!("dnnlife_{}", metric.name);
            let kind = match metric.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {name} {}\n", metric.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            match &metric.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (index, count) in h.sparse() {
                        cumulative += count;
                        if index + 1 < HISTOGRAM_BUCKETS {
                            // Inclusive upper bound of bucket `index`.
                            let le = Histogram::bucket_lower_bound(index + 1) - 1;
                            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                        }
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> serde::Value {
        let pairs = self
            .metrics
            .iter()
            .map(|metric| {
                let mut fields: Vec<(String, serde::Value)> = Vec::new();
                match &metric.value {
                    MetricValue::Counter(v) => {
                        fields.push(("kind".into(), "counter".to_value()));
                        fields.push(("value".into(), v.to_value()));
                    }
                    MetricValue::Gauge(v) => {
                        fields.push(("kind".into(), "gauge".to_value()));
                        fields.push(("value".into(), v.to_value()));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("kind".into(), "histogram".to_value()));
                        fields.push(("count".into(), h.count().to_value()));
                        fields.push(("sum".into(), h.sum().to_value()));
                        fields.push(("max".into(), h.max().to_value()));
                        fields.push(("p50".into(), h.quantile(0.50).to_value()));
                        fields.push(("p90".into(), h.quantile(0.90).to_value()));
                        fields.push(("p99".into(), h.quantile(0.99).to_value()));
                        fields.push(("buckets".into(), sparse_to_value(&h.sparse())));
                    }
                }
                (metric.name.clone(), serde::Value::Object(fields))
            })
            .collect();
        serde::Value::Object(pairs)
    }
}

/// Sparse `(index, count)` bucket pairs as the JSON `[[i,c],...]` form.
pub fn sparse_to_value(pairs: &[(usize, u64)]) -> serde::Value {
    serde::Value::Array(
        pairs
            .iter()
            .map(|&(i, c)| serde::Value::Array(vec![(i as u64).to_value(), c.to_value()]))
            .collect(),
    )
}

/// A last-write-wins gauge (relaxed).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct RegistryEntry {
    name: String,
    help: String,
    metric: Metric,
}

/// A dynamic metrics registry: get-or-register named counters, gauges,
/// and histograms. Registration takes a mutex (do it once, outside hot
/// loops, and keep the returned `Arc`); recording through the returned
/// handles is lock-free. The fixed [`Counter`] roster is re-registered
/// here by [`Telemetry::build`], so a [`MetricsSnapshot`] covers both
/// the closed hot-path roster and any dynamically added series.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<RegistryEntry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.snapshot().metrics.len())
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<RegistryEntry>> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn get_or_register(&self, name: &str, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut entries = self.lock();
        if let Some(entry) = entries.iter().find(|e| e.name == name) {
            return entry.metric.clone();
        }
        let metric = make();
        entries.push(RegistryEntry {
            name: name.to_string(),
            help: help.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// Gets or registers a monotonic counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<AtomicU64> {
        match self.get_or_register(name, help, || Metric::Counter(Arc::default())) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} already registered as a non-counter"),
        }
    }

    /// Gets or registers a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.get_or_register(name, help, || Metric::Gauge(Arc::default())) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered as a non-gauge"),
        }
    }

    /// Gets or registers a histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.get_or_register(name, help, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered as a non-histogram"),
        }
    }

    /// Captures every registered metric, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self
            .lock()
            .iter()
            .map(|entry| MetricSample {
                name: entry.name.clone(),
                help: entry.help.clone(),
                value: match &entry.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { metrics }
    }
}

/// The `events.jsonl` file: append-only JSON lines, flushed per event,
/// torn trailing lines truncated on open (the `JsonlStore` journaling
/// discipline).
struct Journal {
    file: std::fs::File,
    path: PathBuf,
    /// Set after the first write error; further events are dropped
    /// silently so a full disk degrades observability, not the run.
    failed: bool,
}

impl Journal {
    /// Opens (or creates) the journal for appending, truncating an
    /// unterminated trailing line left by a crash mid-write.
    fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let mut contents = String::new();
        file.read_to_string(&mut contents)?;
        if !contents.is_empty() && !contents.ends_with('\n') {
            // Torn tail: keep everything up to (and including) the last
            // complete line; drop the unterminated remainder.
            let valid = contents.rfind('\n').map_or(0, |i| i + 1);
            file.set_len(valid as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            failed: false,
        })
    }

    fn append(&mut self, line: &str) {
        if self.failed {
            return;
        }
        let write = (|| -> std::io::Result<()> {
            self.file.write_all(line.as_bytes())?;
            self.file.write_all(b"\n")?;
            self.file.flush()
        })();
        if let Err(e) = write {
            self.failed = true;
            eprintln!(
                "telemetry: journal write to {} failed ({e}); further events dropped",
                self.path.display()
            );
        }
    }
}

/// The telemetry handle: counters, span timings, and the optional
/// events journal. Cheap to share by reference across worker threads
/// (all interior mutability is atomic or mutex-guarded); the campaign
/// plumbing carries it as `Option<&Telemetry>` inside `RunOptions`.
///
/// Telemetry only observes: enabling it never changes any computed
/// result (the campaign regression tests pin stores byte-identical
/// with telemetry on and off).
pub struct Telemetry {
    enabled: bool,
    /// The fixed hot-path roster, shared with `registry` (the same
    /// atomics back both views, so `snapshot()` and
    /// `metrics_snapshot()` can never disagree).
    counters: [Arc<AtomicU64>; Counter::ALL.len()],
    registry: Registry,
    journal: Option<Mutex<Journal>>,
    epoch: Instant,
    /// Next span id; seeded from wall-clock ms so ids stay unique
    /// across resumed invocations appending to one journal.
    next_span: AtomicU64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("journal", &self.journal_path())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    fn build(enabled: bool, journal: Option<Journal>) -> Self {
        let registry = Registry::new();
        // Re-register the closed hot-path roster on the dynamic
        // registry: the same Arc<AtomicU64> backs the array (one index,
        // one relaxed add) and the named registry entry.
        let counters = std::array::from_fn(|i| {
            registry.counter(Counter::ALL[i].name(), Counter::ALL[i].help())
        });
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        Self {
            enabled,
            counters,
            registry,
            journal: journal.map(Mutex::new),
            epoch: Instant::now(),
            next_span: AtomicU64::new((unix_ms << 20) | 1),
        }
    }

    /// An in-memory handle: counters and spans collected, no journal.
    pub fn in_memory() -> Self {
        Self::build(true, None)
    }

    /// A handle journaling events to `path` (created if missing; a
    /// torn trailing line from a previous crash is truncated away, and
    /// new events append after the surviving complete lines).
    ///
    /// # Errors
    ///
    /// Propagates journal open/create I/O errors.
    pub fn with_journal(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::build(true, Some(Journal::open(path.as_ref())?)))
    }

    /// The shared disabled handle: every instrumented call is a single
    /// branch on `enabled` and returns immediately. This is what the
    /// instrumentation sites substitute when no handle was provided.
    pub fn noop() -> &'static Telemetry {
        static NOOP: OnceLock<Telemetry> = OnceLock::new();
        NOOP.get_or_init(|| Telemetry::build(false, None))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The journal file path, when journaling.
    pub fn journal_path(&self) -> Option<PathBuf> {
        self.journal.as_ref().map(|j| {
            j.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .path
                .clone()
        })
    }

    /// Adds `n` to a counter (relaxed; a no-op when disabled).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if self.enabled {
            self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of a counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Times `f` and accumulates its wall time into a `*Nanos`
    /// counter. When disabled, runs `f` without reading the clock.
    #[inline]
    pub fn time<R>(&self, counter: Counter, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let result = f();
        self.add(counter, start.elapsed().as_nanos() as u64);
        result
    }

    /// Non-zero counters as `(name, value)` pairs, in roster order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.get(c)))
            .filter(|&(_, v)| v != 0)
            .collect()
    }

    /// Appends one event line to the journal:
    /// `{"ev":"<kind>","v":1,"t_ms":<since handle creation>,<fields...>}`.
    /// A no-op without a journal; write errors are reported once and
    /// then dropped (observability must never fail the run).
    pub fn emit(&self, kind: &str, fields: &[(&str, serde::Value)]) {
        let Some(journal) = &self.journal else {
            return;
        };
        let mut pairs: Vec<(String, serde::Value)> = Vec::with_capacity(fields.len() + 3);
        pairs.push(("ev".to_string(), kind.to_value()));
        pairs.push(("v".to_string(), EVENT_SCHEMA_VERSION.to_value()));
        pairs.push((
            "t_ms".to_string(),
            (self.epoch.elapsed().as_millis() as u64).to_value(),
        ));
        for (name, value) in fields {
            pairs.push(((*name).to_string(), value.clone()));
        }
        let line = serde_json::to_string(&serde::Value::Object(pairs))
            .expect("event value tree always serializes");
        journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .append(&line);
    }

    /// Emits the `counters` roll-up event (every non-zero counter),
    /// the journal's machine-readable equivalent of [`snapshot`].
    ///
    /// [`snapshot`]: Telemetry::snapshot
    pub fn emit_counters(&self) {
        let fields: Vec<(&str, serde::Value)> = self
            .snapshot()
            .into_iter()
            .map(|(name, value)| (name, value.to_value()))
            .collect();
        self.emit("counters", &fields);
    }

    /// The dynamic metrics registry behind this handle. Registration is
    /// live even when disabled (the handles just never get recorded
    /// into through [`observe`]/[`gauge_set`]).
    ///
    /// [`observe`]: Telemetry::observe
    /// [`gauge_set`]: Telemetry::gauge_set
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records `value` into the named histogram (get-or-register; a
    /// single branch when disabled). The registry lookup takes a short
    /// mutex — call at per-scenario granularity, or hold the
    /// [`Registry::histogram`] `Arc` yourself for per-item loops.
    pub fn observe(&self, name: &str, help: &str, value: u64) {
        if self.enabled {
            self.registry.histogram(name, help).record(value);
        }
    }

    /// Sets the named gauge (get-or-register; a no-op when disabled).
    pub fn gauge_set(&self, name: &str, help: &str, value: u64) {
        if self.enabled {
            self.registry.gauge(name, help).set(value);
        }
    }

    /// Captures every registered metric — the `--metrics-out` payload.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Emits one `hist` roll-up event per non-empty registered
    /// histogram: `{"ev":"hist","name":...,"buckets":[[i,c],...],
    /// "count":N,"sum":S,"max":M}` — the journal's durable form of the
    /// latency distributions, merged across invocations by `dnnlife
    /// perf`.
    pub fn emit_histograms(&self) {
        if self.journal.is_none() {
            return;
        }
        for metric in self.metrics_snapshot().metrics {
            let MetricValue::Histogram(h) = metric.value else {
                continue;
            };
            if h.count() == 0 {
                continue;
            }
            self.emit(
                "hist",
                &[
                    ("name", metric.name.to_value()),
                    ("buckets", sparse_to_value(&h.sparse())),
                    ("count", h.count().to_value()),
                    ("sum", h.sum().to_value()),
                    ("max", h.max().to_value()),
                ],
            );
        }
    }

    /// Starts a hierarchical trace span and journals its `span_start`
    /// event (fields: `span`, `parent` when non-root, `label`, and a
    /// microsecond `t_us` timestamp). Returns [`SpanId::NONE`] — and
    /// emits nothing — when disabled or journalless, so uninstrumented
    /// runs stay byte-identical.
    pub fn span_start(&self, label: &str, parent: SpanId) -> SpanId {
        if !self.enabled || self.journal.is_none() {
            return SpanId::NONE;
        }
        let id = SpanId(self.next_span.fetch_add(1, Ordering::Relaxed));
        let t_us = (self.epoch.elapsed().as_micros() as u64).to_value();
        if parent.is_none() {
            self.emit(
                "span_start",
                &[
                    ("span", id.0.to_value()),
                    ("label", label.to_value()),
                    ("t_us", t_us),
                ],
            );
        } else {
            self.emit(
                "span_start",
                &[
                    ("span", id.0.to_value()),
                    ("parent", parent.0.to_value()),
                    ("label", label.to_value()),
                    ("t_us", t_us),
                ],
            );
        }
        id
    }

    /// Ends a span (journals `span_end` with the closing `t_us`). A
    /// no-op for [`SpanId::NONE`].
    pub fn span_end(&self, span: SpanId) {
        if span.is_none() {
            return;
        }
        self.emit(
            "span_end",
            &[
                ("span", span.0.to_value()),
                ("t_us", (self.epoch.elapsed().as_micros() as u64).to_value()),
            ],
        );
    }
}

/// How a [`Progress`] handle reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressStyle {
    /// stderr is a TTY: one line rewritten in place with `\r`.
    Live,
    /// stderr is not a TTY (CI logs, pipes): periodic plain lines,
    /// each newline-terminated, no carriage returns.
    Periodic,
}

/// A done/total progress reporter with throughput and ETA. On a TTY it
/// rewrites one stderr line in place; redirected (CI logs, pipes) it
/// degrades to a plain newline-terminated line every few seconds so
/// logs stay readable — never a `\r` in that mode.
pub struct Progress {
    label: String,
    total: AtomicUsize,
    done: AtomicUsize,
    start: Instant,
    style: ProgressStyle,
    /// Minimum interval between prints (rate-limits the TTY rewrite,
    /// paces the periodic plain lines).
    period: Duration,
    last: Mutex<Option<Instant>>,
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Progress")
            .field("label", &self.label)
            .field("style", &self.style)
            .finish_non_exhaustive()
    }
}

impl Progress {
    /// A reporter writing to stderr, picking [`ProgressStyle::Live`]
    /// iff stderr is a terminal.
    pub fn stderr(label: impl Into<String>, total: usize) -> Self {
        let style = if std::io::stderr().is_terminal() {
            ProgressStyle::Live
        } else {
            ProgressStyle::Periodic
        };
        Self::with_style(label, total, style)
    }

    /// A reporter with an explicit style (tests pin the non-TTY
    /// degradation without needing a pseudo-terminal).
    pub fn with_style(label: impl Into<String>, total: usize, style: ProgressStyle) -> Self {
        Self {
            label: label.into(),
            total: AtomicUsize::new(total),
            done: AtomicUsize::new(0),
            start: Instant::now(),
            style,
            period: match style {
                ProgressStyle::Live => Duration::from_millis(100),
                // Off-tty (CI logs): one plain line per ~2s, however
                // fast items complete — long campaigns must not flood
                // the log with a line per tick.
                ProgressStyle::Periodic => Duration::from_secs(2),
            },
            last: Mutex::new(None),
        }
    }

    /// The reporting style in effect.
    pub fn style(&self) -> ProgressStyle {
        self.style
    }

    /// The minimum interval between printed lines.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Re-targets the total (the campaign entry point learns the
    /// *pending* count — after resume skips — only once the store has
    /// been read).
    pub fn set_total(&self, total: usize) {
        self.total.store(total, Ordering::Relaxed);
    }

    /// Items completed so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Records one completed item and prints when due (time
    /// rate-limited at [`period`]; the final item always prints).
    ///
    /// [`period`]: Progress::period
    pub fn tick(&self) {
        if let Some(line) = self.tick_line() {
            match self.style {
                ProgressStyle::Live => eprint!("\r{line}\x1b[K"),
                ProgressStyle::Periodic => eprintln!("{line}"),
            }
        }
    }

    /// The rate-limiting core of [`tick`]: records the completion and
    /// returns the line to print iff one is due now.
    ///
    /// [`tick`]: Progress::tick
    fn tick_line(&self) -> Option<String> {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let total = self.total.load(Ordering::Relaxed);
        let now = Instant::now();
        {
            let mut last = self
                .last
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let due = done >= total || last.is_none_or(|t| now.duration_since(t) >= self.period);
            if !due {
                return None;
            }
            *last = Some(now);
        }
        Some(self.line(done, total))
    }

    /// Ends the live line (moves the cursor off it). A no-op in
    /// periodic mode — plain lines are already newline-terminated.
    pub fn finish(&self) {
        if self.style == ProgressStyle::Live && self.done() > 0 {
            eprintln!();
        }
    }

    /// Renders the `label: done/total (rate, ETA)` line.
    fn line(&self, done: usize, total: usize) -> String {
        let elapsed = self.start.elapsed().as_secs_f64().max(1e-9);
        let rate = done as f64 / elapsed;
        let eta = if done == 0 || done >= total {
            0.0
        } else {
            (total - done) as f64 / rate
        };
        format!(
            "{}: {done}/{total} ({rate:.2}/s, ETA {eta:.0}s)",
            self.label
        )
    }
}

/// The observability pair the campaign entry points thread through:
/// both sides optional, both borrowed — `Default` is fully off.
#[derive(Debug, Clone, Copy, Default)]
pub struct Instrumentation<'a> {
    /// Counters / spans / events journal.
    pub telemetry: Option<&'a Telemetry>,
    /// Live progress reporting.
    pub progress: Option<&'a Progress>,
}

impl<'a> Instrumentation<'a> {
    /// The telemetry handle, or the shared no-op when absent.
    pub fn telemetry(&self) -> &'a Telemetry {
        self.telemetry.unwrap_or_else(|| Telemetry::noop())
    }

    /// Ticks the progress reporter, when present.
    pub fn tick(&self) {
        if let Some(progress) = self.progress {
            progress.tick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dnnlife-telemetry-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir.join("events.jsonl")
    }

    #[test]
    fn counters_accumulate_and_noop_stays_zero() {
        let tel = Telemetry::in_memory();
        tel.add(Counter::ExactWordWrites, 3);
        tel.add(Counter::ExactWordWrites, 4);
        assert_eq!(tel.get(Counter::ExactWordWrites), 7);
        assert_eq!(tel.snapshot(), vec![("exact_word_writes", 7)]);

        let noop = Telemetry::noop();
        noop.add(Counter::ExactWordWrites, 5);
        assert_eq!(noop.get(Counter::ExactWordWrites), 0);
        assert!(!noop.is_enabled());
    }

    #[test]
    fn time_accumulates_span_nanos() {
        let tel = Telemetry::in_memory();
        let out = tel.time(Counter::ShardMergeNanos, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert!(tel.get(Counter::ShardMergeNanos) >= 1_000_000);
    }

    #[test]
    fn journal_appends_parseable_lines() {
        let path = scratch("emit");
        let tel = Telemetry::with_journal(&path).expect("open journal");
        tel.emit("campaign_start", &[("total", 3u64.to_value())]);
        tel.add(Counter::InjectionTrials, 9);
        tel.emit_counters();
        drop(tel);

        let contents = std::fs::read_to_string(&path).expect("read journal");
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let value: serde::Value = serde_json::from_str(line).expect("line parses");
            assert!(value.get("ev").is_some());
            assert!(value.get("t_ms").is_some());
        }
        let counters: serde::Value = serde_json::from_str(lines[1]).expect("counters line");
        assert_eq!(counters.get("injection_trials"), Some(&9u64.to_value()));
    }

    #[test]
    fn journal_truncates_torn_trailing_line_on_open() {
        let path = scratch("torn");
        {
            let tel = Telemetry::with_journal(&path).expect("open journal");
            tel.emit("campaign_start", &[]);
        }
        // Crash mid-write: an unterminated partial line at the tail.
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("append garbage");
            file.write_all(b"{\"ev\":\"torn").expect("write torn tail");
        }
        let tel = Telemetry::with_journal(&path).expect("reopen journal");
        tel.emit("campaign_done", &[]);
        drop(tel);

        let contents = std::fs::read_to_string(&path).expect("read journal");
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2, "torn tail must be gone: {contents:?}");
        for line in lines {
            let _: serde::Value = serde_json::from_str(line).expect("every line parses");
        }
    }

    #[test]
    fn periodic_progress_never_emits_carriage_returns() {
        // The non-TTY degradation: every rendered line is plain text.
        let progress = Progress::with_style("sweep", 4, ProgressStyle::Periodic);
        assert_eq!(progress.style(), ProgressStyle::Periodic);
        for done in 1..=4 {
            let line = progress.line(done, 4);
            assert!(!line.contains('\r'), "plain line holds a \\r: {line:?}");
            assert!(line.starts_with("sweep: "));
        }
    }

    #[test]
    fn progress_line_reports_done_total_and_eta() {
        let progress = Progress::with_style("inject", 10, ProgressStyle::Live);
        let line = progress.line(5, 10);
        assert!(line.contains("5/10"), "{line}");
        assert!(line.contains("ETA"), "{line}");
        progress.set_total(6);
        progress.tick();
        assert_eq!(progress.done(), 1);
    }

    #[test]
    fn instrumentation_defaults_to_noop() {
        let instr = Instrumentation::default();
        assert!(!instr.telemetry().is_enabled());
        instr.tick(); // no progress: must not panic
    }

    #[test]
    fn every_event_line_carries_schema_version_one() {
        let path = scratch("schema-version");
        let tel = Telemetry::with_journal(&path).expect("open journal");
        tel.emit("campaign_start", &[("total", 1u64.to_value())]);
        let span = tel.span_start("scenario", SpanId::NONE);
        tel.span_end(span);
        tel.emit_counters();
        drop(tel);

        let contents = std::fs::read_to_string(&path).expect("read journal");
        assert!(contents.lines().count() >= 3);
        for line in contents.lines() {
            let value: serde::Value = serde_json::from_str(line).expect("line parses");
            assert_eq!(
                value.get("v"),
                Some(&EVENT_SCHEMA_VERSION.to_value()),
                "missing v on {line}"
            );
        }
    }

    #[test]
    fn bucket_bounds_round_trip() {
        for index in 0..HISTOGRAM_BUCKETS {
            let lb = Histogram::bucket_lower_bound(index);
            assert_eq!(Histogram::bucket_index(lb), index, "lb({index}) = {lb}");
        }
        for value in [0u64, 1, 3, 4, 7, 8, 9, 100, 1 << 20, u64::MAX] {
            let index = Histogram::bucket_index(value);
            assert!(Histogram::bucket_lower_bound(index) <= value);
            if index + 1 < HISTOGRAM_BUCKETS {
                assert!(Histogram::bucket_lower_bound(index + 1) > value);
            }
        }
    }

    #[test]
    fn histogram_quantiles_track_recorded_values() {
        let hist = Histogram::new();
        for v in 1..=1000u64 {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum(), 500_500);
        assert_eq!(snap.max(), 1000);
        assert_eq!(snap.quantile(1.0), 1000, "max is exact");
        // Estimates are bucket lower bounds: same bucket as the true
        // nearest-rank value.
        for (q, truth) in [(0.50, 500u64), (0.90, 900), (0.99, 990)] {
            let est = snap.quantile(q);
            assert_eq!(
                Histogram::bucket_index(est),
                Histogram::bucket_index(truth),
                "q={q}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn histogram_stripes_merge_across_threads() {
        let hist = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let hist = &hist;
                scope.spawn(move || {
                    for i in 0..100 {
                        hist.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 800);
        assert_eq!(snap.max(), 7099);
    }

    #[test]
    fn snapshot_sparse_round_trips_and_merges() {
        let hist = Histogram::new();
        for v in [0u64, 1, 5, 5, 1000, 123_456] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let rebuilt = HistogramSnapshot::from_sparse(&snap.sparse(), snap.sum(), snap.max());
        assert_eq!(rebuilt, snap);

        let mut merged = HistogramSnapshot::empty();
        merged.merge(&snap);
        merged.merge(&snap);
        assert_eq!(merged.count(), 2 * snap.count());
        assert_eq!(merged.max(), snap.max());
        assert_eq!(merged.quantile(1.0), 123_456);
    }

    #[test]
    fn registry_reuses_entries_and_snapshots_in_order() {
        let registry = Registry::new();
        let a = registry.counter("reads", "read ops");
        let b = registry.counter("reads", "ignored duplicate help");
        a.fetch_add(3, Ordering::Relaxed);
        b.fetch_add(4, Ordering::Relaxed);
        registry.gauge("pending", "queue depth").set(7);
        registry.histogram("wall_us", "wall time").record(42);

        let snap = registry.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["reads", "pending", "wall_us"]);
        assert_eq!(snap.metrics[0].value, MetricValue::Counter(7));
        assert_eq!(snap.metrics[1].value, MetricValue::Gauge(7));
    }

    #[test]
    fn telemetry_counters_are_registered_on_the_registry() {
        let tel = Telemetry::in_memory();
        tel.add(Counter::ExactWordWrites, 11);
        let snap = tel.metrics_snapshot();
        let sample = snap
            .metrics
            .iter()
            .find(|m| m.name == "exact_word_writes")
            .expect("roster counter registered");
        assert_eq!(sample.value, MetricValue::Counter(11));
        assert_eq!(snap.metrics.len(), Counter::ALL.len());
        // Disabled handles never record through observe/gauge_set.
        let noop = Telemetry::noop();
        noop.observe("wall_us", "", 5);
        noop.gauge_set("pending", "", 5);
        assert_eq!(noop.metrics_snapshot().metrics.len(), Counter::ALL.len());
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_prefixed() {
        let tel = Telemetry::in_memory();
        tel.add(Counter::InjectionTrials, 2);
        tel.observe("scenario_wall_us", "scenario wall time", 5);
        tel.observe("scenario_wall_us", "scenario wall time", 5);
        tel.observe("scenario_wall_us", "scenario wall time", 1000);
        let text = tel.metrics_snapshot().render_prometheus();
        assert!(text.contains("# TYPE dnnlife_injection_trials counter"));
        assert!(text.contains("dnnlife_injection_trials 2"));
        assert!(text.contains("# TYPE dnnlife_scenario_wall_us histogram"));
        // Bucket for value 5 covers 5..=5 (le="5"), cumulative 2.
        assert!(
            text.contains("dnnlife_scenario_wall_us_bucket{le=\"5\"} 2"),
            "{text}"
        );
        assert!(text.contains("dnnlife_scenario_wall_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("dnnlife_scenario_wall_us_sum 1010"));
        assert!(text.contains("dnnlife_scenario_wall_us_count 3"));
        // The JSON twin parses and carries the same totals.
        let text = serde_json::to_string(&tel.metrics_snapshot().to_value()).expect("serializes");
        let json: serde::Value = serde_json::from_str(&text).expect("twin parses");
        let wall = json.get("scenario_wall_us").expect("histogram present");
        assert_eq!(wall.get("count"), Some(&3u64.to_value()));
        assert_eq!(wall.get("max"), Some(&1000u64.to_value()));
    }

    #[test]
    fn spans_journal_ids_and_parents() {
        let path = scratch("spans");
        let tel = Telemetry::with_journal(&path).expect("open journal");
        let root = tel.span_start("campaign:test", SpanId::NONE);
        let child = tel.span_start("scenario", root);
        assert!(!root.is_none() && !child.is_none() && root != child);
        tel.span_end(child);
        tel.span_end(root);
        drop(tel);

        let contents = std::fs::read_to_string(&path).expect("read journal");
        let events: Vec<serde::Value> = contents
            .lines()
            .map(|l| serde_json::from_str(l).expect("line parses"))
            .collect();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ev"), Some(&"span_start".to_value()));
        assert!(events[0].get("parent").is_none(), "root has no parent");
        assert_eq!(events[1].get("parent"), Some(&root.raw().to_value()));
        assert_eq!(events[1].get("label"), Some(&"scenario".to_value()));
        for event in &events {
            assert!(event.get("t_us").is_some());
            assert!(event.get("span").is_some());
        }
        // Ends close in LIFO order here: child first.
        assert_eq!(events[2].get("span"), Some(&child.raw().to_value()));
    }

    #[test]
    fn spans_are_noops_without_a_journal() {
        let tel = Telemetry::in_memory();
        assert_eq!(tel.span_start("scenario", SpanId::NONE), SpanId::NONE);
        tel.span_end(SpanId::NONE); // must not panic
        let noop = Telemetry::noop();
        assert_eq!(noop.span_start("scenario", SpanId::NONE), SpanId::NONE);
    }

    #[test]
    fn hist_events_round_trip_through_the_journal() {
        let path = scratch("hist-event");
        let tel = Telemetry::with_journal(&path).expect("open journal");
        for v in [10u64, 20, 30, 40_000] {
            tel.observe("scenario_wall_us", "wall", v);
        }
        tel.emit_histograms();
        drop(tel);

        let contents = std::fs::read_to_string(&path).expect("read journal");
        let event: serde::Value =
            serde_json::from_str(contents.lines().next().expect("one line")).expect("parses");
        assert_eq!(event.get("ev"), Some(&"hist".to_value()));
        assert_eq!(event.get("name"), Some(&"scenario_wall_us".to_value()));
        assert_eq!(event.get("count"), Some(&4u64.to_value()));
        assert_eq!(event.get("max"), Some(&40_000u64.to_value()));
    }

    #[test]
    fn periodic_progress_is_time_rate_limited_not_per_tick() {
        let progress = Progress::with_style("sweep", 1000, ProgressStyle::Periodic);
        assert_eq!(progress.period(), Duration::from_secs(2));
        // A burst of fast completions prints at most one line (the
        // first); the rest fall inside the 2s window.
        let printed: usize = (0..100).filter_map(|_| progress.tick_line()).count();
        assert_eq!(printed, 1, "burst must not flood the log");
        // The final item always prints.
        progress.set_total(101);
        assert!(progress.tick_line().is_some());
    }
}
