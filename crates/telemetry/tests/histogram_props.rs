//! Property tests for the log-bucketed histogram: merge is a
//! commutative monoid over snapshots, and quantile estimates stay
//! within one bucket of a scalar sorted-order reference for
//! adversarial value streams (full-domain u64s, dense small values,
//! and mixed splits).

use dnnlife_telemetry::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let hist = Histogram::new();
    for &v in values {
        hist.record(v);
    }
    hist.snapshot()
}

/// Nearest-rank reference quantile over the raw values.
fn reference_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn assert_within_one_bucket(estimate: u64, truth: u64, context: &str) {
    let est_bucket = Histogram::bucket_index(estimate) as i64;
    let truth_bucket = Histogram::bucket_index(truth) as i64;
    assert!(
        (est_bucket - truth_bucket).abs() <= 1,
        "{context}: estimate {estimate} (bucket {est_bucket}) vs \
         reference {truth} (bucket {truth_bucket})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(any::<u64>(), 0..48),
        b in prop::collection::vec(any::<u64>(), 0..48),
        c in prop::collection::vec(any::<u64>(), 0..48),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        // (a ⊔ b) ⊔ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊔ (b ⊔ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Identity: merging the empty snapshot changes nothing.
        let mut with_empty = left.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(with_empty, left);
    }

    #[test]
    fn merged_snapshot_equals_combined_stream(
        a in prop::collection::vec(any::<u64>(), 1..64),
        b in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut combined = a.clone();
        combined.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&combined));
    }

    #[test]
    fn quantiles_within_one_bucket_full_domain(
        values in prop::collection::vec(any::<u64>(), 1..256),
    ) {
        let snap = snapshot_of(&values);
        for q in [0.0, 0.5, 0.9, 0.99] {
            assert_within_one_bucket(
                snap.quantile(q),
                reference_quantile(&values, q),
                &format!("q={q} full-domain"),
            );
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.quantile(1.0), *sorted.last().unwrap());
    }

    #[test]
    fn quantiles_within_one_bucket_dense_small(
        values in prop::collection::vec(0u64..5000, 1..256),
    ) {
        // Adversarial for log buckets: many collisions in few octaves.
        let snap = snapshot_of(&values);
        for q in [0.5, 0.9, 0.99] {
            assert_within_one_bucket(
                snap.quantile(q),
                reference_quantile(&values, q),
                &format!("q={q} dense-small"),
            );
        }
    }

    #[test]
    fn quantiles_within_one_bucket_bimodal(
        small in prop::collection::vec(0u64..16, 1..128),
        large in prop::collection::vec((1u64 << 40)..(1u64 << 50), 1..128),
    ) {
        // A latency cliff: most mass tiny, a heavy tail 10 orders up.
        let mut values = small.clone();
        values.extend_from_slice(&large);
        let snap = snapshot_of(&values);
        for q in [0.5, 0.9, 0.99] {
            assert_within_one_bucket(
                snap.quantile(q),
                reference_quantile(&values, q),
                &format!("q={q} bimodal"),
            );
        }
        prop_assert_eq!(snap.count(), values.len() as u64);
    }
}
