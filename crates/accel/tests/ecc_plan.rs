//! Duty accounting for SECDED parity cells.
//!
//! Parity columns are real SRAM cells: they are rewritten on every
//! weight write, so every mitigation policy ages them, and the duty
//! simulation must cover them — a plan's simulated cell population is
//! data + parity *exactly*, never data alone. These tests pin that
//! accounting for every policy on both platforms.

use dnnlife_accel::{
    simulate_analytic, AcceleratorConfig, AnalyticPolicy, AnalyticSimConfig, BlockSource,
    FifoSlotMemory, FlatWeightMemory,
};
use dnnlife_nn::NetworkSpec;
use dnnlife_quant::{NumberFormat, RepairPolicy};

fn policies() -> Vec<AnalyticPolicy> {
    vec![
        AnalyticPolicy::Passthrough,
        AnalyticPolicy::PeriodicInversion,
        AnalyticPolicy::BarrelShifter,
        AnalyticPolicy::DnnLife {
            bias: 0.7,
            bias_balancing: Some(4),
            seed: 11,
        },
    ]
}

fn cfg() -> AnalyticSimConfig {
    AnalyticSimConfig {
        inferences: 4,
        sample_stride: 1,
        threads: 1,
        shards: 1,
    }
}

/// Mean duty of the parity columns over the occupied words of a unit
/// (`data_bits..word_bits` of each stored word). Only occupied words
/// count: padding words store the all-zero codeword, whose parity is
/// legitimately zero under the passthrough policy.
fn parity_mean(duties: &[f64], word_bits: usize, data_bits: usize, occupied: usize) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for w in 0..occupied {
        for b in data_bits..word_bits {
            sum += duties[w * word_bits + b];
            n += 1;
        }
    }
    sum / n as f64
}

#[test]
fn flat_plan_parity_cells_age_under_every_policy() {
    let mut hw = AcceleratorConfig::baseline();
    hw.weight_memory_bytes = 2048; // small fills → several blocks
    let spec = NetworkSpec::custom_mnist();
    let plain = FlatWeightMemory::new(&hw, &spec, NumberFormat::Int8Symmetric, 3);
    let mem = plain
        .clone()
        .with_repair(&RepairPolicy::Secded { interleave: 1 });

    // Cell accounting: data + parity exactly, for the whole unit.
    let geo = mem.geometry();
    assert_eq!(geo.word_bits, 13);
    assert_eq!(
        geo.cells(),
        plain.geometry().cells() + plain.geometry().words as u64 * 5,
        "plan cells must be data + parity exactly"
    );

    for policy in policies() {
        let duties = simulate_analytic(&mem, &policy, &cfg());
        assert_eq!(
            duties.len() as u64,
            geo.cells(),
            "{}: simulated cells must cover parity columns",
            policy.name()
        );
        assert!(duties.iter().all(|d| (0.0..=1.0).contains(d)));
        let mean = parity_mean(&duties, 13, 8, geo.words);
        assert!(
            mean > 0.05,
            "{}: parity-cell mean duty {mean} — parity cells are written \
             on every weight write and must age",
            policy.name()
        );
    }
}

#[test]
fn npu_slot_parity_cells_age_under_every_policy() {
    let spec = NetworkSpec::custom_mnist();
    let slots = FifoSlotMemory::all_slots(&spec, NumberFormat::Int8Symmetric, 3);
    let mem = slots[0]
        .clone()
        .with_repair(&RepairPolicy::Secded { interleave: 1 });
    let geo = mem.geometry();
    assert_eq!(geo.word_bits, 13);
    assert_eq!(geo.cells(), slots[0].geometry().cells() / 8 * 13);

    for policy in policies() {
        let duties = simulate_analytic(&mem, &policy, &cfg());
        assert_eq!(duties.len() as u64, geo.cells(), "{}", policy.name());
        let mean = parity_mean(&duties, 13, 8, geo.words);
        assert!(
            mean > 0.05,
            "{}: parity-cell mean duty {mean}",
            policy.name()
        );
    }
}

#[test]
fn parity_columns_shift_the_duty_distribution() {
    // The scientifically interesting interaction: parity cells carry
    // data-dependent bit statistics, so wrapping a memory in SECDED
    // changes its duty distribution, not just its cell count. Under no
    // mitigation the ECC'd unit's mean duty must differ measurably
    // from the data-only mean.
    let spec = NetworkSpec::custom_mnist();
    let slots = FifoSlotMemory::all_slots(&spec, NumberFormat::Int8Symmetric, 3);
    let mean = |duties: &[f64]| duties.iter().sum::<f64>() / duties.len() as f64;
    let plain = simulate_analytic(&slots[0], &AnalyticPolicy::Passthrough, &cfg());
    let ecc = simulate_analytic(
        &slots[0]
            .clone()
            .with_repair(&RepairPolicy::Secded { interleave: 1 }),
        &AnalyticPolicy::Passthrough,
        &cfg(),
    );
    assert!(
        (mean(&plain) - mean(&ecc)).abs() > 1e-3,
        "parity columns should skew the duty distribution: {} vs {}",
        mean(&plain),
        mean(&ecc)
    );
}
