//! Property tests for dataflow plans, the analytic simulator and the
//! exact simulator's packed-bit image.

use dnnlife_accel::exact::{read_bits, simulate_exact_sampled, write_bits};
use dnnlife_accel::{
    simulate_analytic, simulate_exact, simulate_exact_sharded, AcceleratorConfig, AnalyticPolicy,
    AnalyticSimConfig, BlockSource, ExactShardConfig, FifoSlotMemory, FlatWeightMemory,
};
use dnnlife_mitigation::{BarrelShifter, Passthrough, PeriodicInversion, WriteTransducer};
use dnnlife_nn::NetworkSpec;
use dnnlife_quant::NumberFormat;
use proptest::prelude::*;

fn small_config(kib: u64) -> AcceleratorConfig {
    let mut cfg = AcceleratorConfig::baseline();
    cfg.weight_memory_bytes = kib * 1024;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Block sources are pure functions of (block, word).
    #[test]
    fn flat_words_are_pure(seed in 0u64..1000, kib in 1u64..8, block_pick in 0u64..1000, word_pick in 0usize..100_000) {
        let mem = FlatWeightMemory::new(
            &small_config(kib),
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            seed,
        );
        let block = block_pick % mem.block_count();
        let word = word_pick % mem.geometry().words;
        prop_assert_eq!(mem.word(block, word), mem.word(block, word));
        prop_assert!(mem.word(block, word) < 256);
    }

    /// Every weight of the network appears in the block stream exactly
    /// once (conservation of the weight stream).
    #[test]
    fn flat_stream_conserves_weight_count(seed in 0u64..100, kib in 1u64..8) {
        let spec = NetworkSpec::custom_mnist();
        let mem = FlatWeightMemory::new(
            &small_config(kib),
            &spec,
            NumberFormat::Int8Symmetric,
            seed,
        );
        // Padded stream length covers all weights plus ragged-lane zeros.
        let padded: u64 = spec
            .layers()
            .iter()
            .map(|l| l.filter_count().div_ceil(8) * 8 * l.weights_per_filter())
            .sum();
        prop_assert_eq!(mem.stream_len(), padded);
        prop_assert_eq!(
            mem.block_count(),
            padded.div_ceil(mem.geometry().words as u64)
        );
    }

    /// NPU slots partition the tile stream: every tile lands in exactly
    /// one slot, and slot block counts differ by at most one.
    #[test]
    fn npu_slots_partition_tiles(seed in 0u64..100) {
        let slots = FifoSlotMemory::all_slots(
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            seed,
        );
        let total: u64 = slots.iter().map(|s| s.block_count()).sum();
        prop_assert_eq!(total, slots[0].total_tiles());
        let max = slots.iter().map(|s| s.block_count()).max().unwrap();
        let min = slots.iter().map(|s| s.block_count()).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Analytic duties are always valid probabilities, under any policy.
    #[test]
    fn analytic_duties_in_unit_interval(
        seed in 0u64..100,
        policy_pick in 0usize..4,
        inferences in 1u64..12,
    ) {
        let mem = FlatWeightMemory::new(
            &small_config(1),
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            seed,
        );
        let policy = match policy_pick {
            0 => AnalyticPolicy::Passthrough,
            1 => AnalyticPolicy::PeriodicInversion,
            2 => AnalyticPolicy::BarrelShifter,
            _ => AnalyticPolicy::DnnLife { bias: 0.6, bias_balancing: Some(4), seed },
        };
        let cfg = AnalyticSimConfig { inferences, sample_stride: 37, threads: 1, shards: 1 };
        let duties = simulate_analytic(&mem, &policy, &cfg);
        prop_assert!(!duties.is_empty());
        for d in duties {
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }

    /// Deterministic policies: analytic equals event-driven exactly, for
    /// random seeds and inference counts (beyond the fixed cases in
    /// validation.rs).
    #[test]
    fn analytic_matches_exact_random_configs(
        seed in 0u64..50,
        inferences in 1u64..6,
        policy_pick in 0usize..3,
    ) {
        let mut cfg = AcceleratorConfig::baseline();
        cfg.weight_memory_bytes = 512;
        let mem = FlatWeightMemory::new(
            &cfg,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            seed,
        );
        let words = mem.geometry().words;
        let (mut transducer, policy): (Box<dyn WriteTransducer>, AnalyticPolicy) =
            match policy_pick {
                0 => (Box::new(Passthrough::new(8)), AnalyticPolicy::Passthrough),
                1 => (
                    Box::new(PeriodicInversion::new(8, words)),
                    AnalyticPolicy::PeriodicInversion,
                ),
                _ => (
                    Box::new(BarrelShifter::new(8, words)),
                    AnalyticPolicy::BarrelShifter,
                ),
            };
        let exact = simulate_exact(&mem, transducer.as_mut(), inferences);
        let analytic = simulate_analytic(
            &mem,
            &policy,
            &AnalyticSimConfig { inferences, sample_stride: 1, threads: 1, shards: 1 },
        );
        prop_assert_eq!(exact.len(), analytic.len());
        for (i, (e, a)) in exact.iter().zip(&analytic).enumerate() {
            prop_assert!((e - a).abs() < 1e-12, "cell {}: {} vs {}", i, e, a);
        }
    }

    /// `write_bits` round-trips random (offset, width, value) triples
    /// through `read_bits`, including word-straddling writes.
    #[test]
    fn write_bits_roundtrips_random_fields(
        offset in 0usize..192,
        width in 1usize..=64,
        value in 0u64..=u64::MAX,
    ) {
        prop_assume!(offset + width <= 256);
        let mut state = vec![0u64; 4];
        write_bits(&mut state, offset, width, value);
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        prop_assert_eq!(read_bits(&state, offset, width), value & mask);
    }

    /// A write leaves every neighbouring bit untouched, and writing
    /// over a previous value fully replaces it (no stale bits) — the
    /// invariants the exact simulator's duty accounting rests on.
    #[test]
    fn write_bits_preserves_neighbours_and_overwrites(
        offset in 0usize..192,
        width in 1usize..=64,
        value in 0u64..=u64::MAX,
        prior in 0u64..=u64::MAX,
        background in 0u64..=u64::MAX,
    ) {
        prop_assume!(offset + width <= 256);
        // Reference model: one bool per cell.
        let mut state = vec![background; 4];
        let mut reference: Vec<bool> = (0..256).map(|i| background >> (i % 64) & 1 == 1).collect();
        let apply = |state: &mut [u64], reference: &mut [bool], v: u64| {
            write_bits(state, offset, width, v);
            for bit in 0..width {
                reference[offset + bit] = v >> bit & 1 == 1;
            }
        };
        apply(&mut state, &mut reference, prior);
        apply(&mut state, &mut reference, value);
        for (i, &expect) in reference.iter().enumerate() {
            let got = state[i / 64] >> (i % 64) & 1 == 1;
            prop_assert_eq!(got, expect, "cell {} mismatch", i);
        }
    }

    /// Strided exact simulation subsamples the full run exactly for
    /// deterministic policies (per-address transducer state is
    /// independent across words).
    #[test]
    fn strided_exact_subsamples_full_run(
        seed in 0u64..30,
        stride in 1usize..32,
        inferences in 1u64..4,
        policy_pick in 0usize..3,
    ) {
        let mut cfg = AcceleratorConfig::baseline();
        cfg.weight_memory_bytes = 512;
        let mem = FlatWeightMemory::new(
            &cfg,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            seed,
        );
        let words = mem.geometry().words;
        let width = 8usize;
        let mut full_t: Box<dyn WriteTransducer> = match policy_pick {
            0 => Box::new(Passthrough::new(8)),
            1 => Box::new(PeriodicInversion::new(8, words)),
            _ => Box::new(BarrelShifter::new(8, words)),
        };
        let mut strided_t: Box<dyn WriteTransducer> = match policy_pick {
            0 => Box::new(Passthrough::new(8)),
            1 => Box::new(PeriodicInversion::new(8, words)),
            _ => Box::new(BarrelShifter::new(8, words)),
        };
        let full = simulate_exact(&mem, full_t.as_mut(), inferences);
        let strided = simulate_exact_sampled(&mem, strided_t.as_mut(), inferences, stride);
        prop_assert_eq!(strided.len(), words.div_ceil(stride) * width);
        for (si, chunk) in strided.chunks(width).enumerate() {
            let word = si * stride;
            prop_assert_eq!(chunk, &full[word * width..(word + 1) * width]);
        }
    }

    /// Word sharding is invisible to the deterministic policies: for
    /// any shard count, thread count and stride, the sharded exact
    /// simulator reproduces the serial run bit for bit (per-address
    /// transducer state + shard-index-order merge).
    #[test]
    fn sharded_exact_matches_serial_for_any_partition(
        seed in 0u64..30,
        stride in 1usize..16,
        shards in 1usize..10,
        threads in 1usize..5,
        inferences in 1u64..4,
        policy_pick in 0usize..3,
    ) {
        let mut cfg = AcceleratorConfig::baseline();
        cfg.weight_memory_bytes = 512;
        let mem = FlatWeightMemory::new(
            &cfg,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            seed,
        );
        let words = mem.geometry().words;
        let prototype: Box<dyn WriteTransducer> = match policy_pick {
            0 => Box::new(Passthrough::new(8)),
            1 => Box::new(PeriodicInversion::new(8, words)),
            _ => Box::new(BarrelShifter::new(8, words)),
        };
        let mut serial_t = prototype.fork(0);
        let serial = simulate_exact_sampled(&mem, serial_t.as_mut(), inferences, stride);
        let cfg = ExactShardConfig {
            shards,
            threads,
            cancel: None,
            telemetry: None,
            ..ExactShardConfig::default()
        };
        let sharded = simulate_exact_sharded(&mem, prototype.as_ref(), inferences, stride, &cfg)
            .expect("not cancelled");
        prop_assert_eq!(sharded, serial);
    }
}
