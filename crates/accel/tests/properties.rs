//! Property tests for dataflow plans and the analytic simulator.

use dnnlife_accel::{
    simulate_analytic, simulate_exact, AcceleratorConfig, AnalyticPolicy, AnalyticSimConfig,
    BlockSource, FifoSlotMemory, FlatWeightMemory,
};
use dnnlife_mitigation::{BarrelShifter, Passthrough, PeriodicInversion, WriteTransducer};
use dnnlife_nn::NetworkSpec;
use dnnlife_quant::NumberFormat;
use proptest::prelude::*;

fn small_config(kib: u64) -> AcceleratorConfig {
    let mut cfg = AcceleratorConfig::baseline();
    cfg.weight_memory_bytes = kib * 1024;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Block sources are pure functions of (block, word).
    #[test]
    fn flat_words_are_pure(seed in 0u64..1000, kib in 1u64..8, block_pick in 0u64..1000, word_pick in 0usize..100_000) {
        let mem = FlatWeightMemory::new(
            &small_config(kib),
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            seed,
        );
        let block = block_pick % mem.block_count();
        let word = word_pick % mem.geometry().words;
        prop_assert_eq!(mem.word(block, word), mem.word(block, word));
        prop_assert!(mem.word(block, word) < 256);
    }

    /// Every weight of the network appears in the block stream exactly
    /// once (conservation of the weight stream).
    #[test]
    fn flat_stream_conserves_weight_count(seed in 0u64..100, kib in 1u64..8) {
        let spec = NetworkSpec::custom_mnist();
        let mem = FlatWeightMemory::new(
            &small_config(kib),
            &spec,
            NumberFormat::Int8Symmetric,
            seed,
        );
        // Padded stream length covers all weights plus ragged-lane zeros.
        let padded: u64 = spec
            .layers()
            .iter()
            .map(|l| l.filter_count().div_ceil(8) * 8 * l.weights_per_filter())
            .sum();
        prop_assert_eq!(mem.stream_len(), padded);
        prop_assert_eq!(
            mem.block_count(),
            padded.div_ceil(mem.geometry().words as u64)
        );
    }

    /// NPU slots partition the tile stream: every tile lands in exactly
    /// one slot, and slot block counts differ by at most one.
    #[test]
    fn npu_slots_partition_tiles(seed in 0u64..100) {
        let slots = FifoSlotMemory::all_slots(
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            seed,
        );
        let total: u64 = slots.iter().map(|s| s.block_count()).sum();
        prop_assert_eq!(total, slots[0].total_tiles());
        let max = slots.iter().map(|s| s.block_count()).max().unwrap();
        let min = slots.iter().map(|s| s.block_count()).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Analytic duties are always valid probabilities, under any policy.
    #[test]
    fn analytic_duties_in_unit_interval(
        seed in 0u64..100,
        policy_pick in 0usize..4,
        inferences in 1u64..12,
    ) {
        let mem = FlatWeightMemory::new(
            &small_config(1),
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            seed,
        );
        let policy = match policy_pick {
            0 => AnalyticPolicy::Passthrough,
            1 => AnalyticPolicy::PeriodicInversion,
            2 => AnalyticPolicy::BarrelShifter,
            _ => AnalyticPolicy::DnnLife { bias: 0.6, bias_balancing: Some(4), seed },
        };
        let cfg = AnalyticSimConfig { inferences, sample_stride: 37, threads: 1 };
        let duties = simulate_analytic(&mem, &policy, &cfg);
        prop_assert!(!duties.is_empty());
        for d in duties {
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }

    /// Deterministic policies: analytic equals event-driven exactly, for
    /// random seeds and inference counts (beyond the fixed cases in
    /// validation.rs).
    #[test]
    fn analytic_matches_exact_random_configs(
        seed in 0u64..50,
        inferences in 1u64..6,
        policy_pick in 0usize..3,
    ) {
        let mut cfg = AcceleratorConfig::baseline();
        cfg.weight_memory_bytes = 512;
        let mem = FlatWeightMemory::new(
            &cfg,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            seed,
        );
        let words = mem.geometry().words;
        let (mut transducer, policy): (Box<dyn WriteTransducer>, AnalyticPolicy) =
            match policy_pick {
                0 => (Box::new(Passthrough::new(8)), AnalyticPolicy::Passthrough),
                1 => (
                    Box::new(PeriodicInversion::new(8, words)),
                    AnalyticPolicy::PeriodicInversion,
                ),
                _ => (
                    Box::new(BarrelShifter::new(8, words)),
                    AnalyticPolicy::BarrelShifter,
                ),
            };
        let exact = simulate_exact(&mem, transducer.as_mut(), inferences);
        let analytic = simulate_analytic(
            &mem,
            &policy,
            &AnalyticSimConfig { inferences, sample_stride: 1, threads: 1 },
        );
        prop_assert_eq!(exact.len(), analytic.len());
        for (i, (e, a)) in exact.iter().zip(&analytic).enumerate() {
            prop_assert!((e - a).abs() < 1e-12, "cell {}: {} vs {}", i, e, a);
        }
    }
}
