//! Cross-validation: the analytic simulator must agree with the
//! event-driven reference — exactly for deterministic policies,
//! statistically for DNN-Life.

use dnnlife_accel::{
    simulate_analytic, simulate_exact, AcceleratorConfig, AnalyticPolicy, AnalyticSimConfig,
    BlockSource, FifoSlotMemory, FlatWeightMemory,
};
use dnnlife_mitigation::{
    AgingController, BarrelShifter, DnnLife, Passthrough, PeriodicInversion, PseudoTrbg,
};
use dnnlife_nn::NetworkSpec;
use dnnlife_quant::NumberFormat;

fn tiny_flat(format: NumberFormat) -> FlatWeightMemory {
    let mut cfg = AcceleratorConfig::baseline();
    cfg.weight_memory_bytes = 2048;
    FlatWeightMemory::new(&cfg, &NetworkSpec::custom_mnist(), format, 11)
}

fn analytic_cfg(inferences: u64) -> AnalyticSimConfig {
    AnalyticSimConfig {
        inferences,
        sample_stride: 1,
        threads: 2,
        shards: 0,
    }
}

#[test]
fn passthrough_matches_exactly() {
    let mem = tiny_flat(NumberFormat::Int8Symmetric);
    let mut transducer = Passthrough::new(8);
    let exact = simulate_exact(&mem, &mut transducer, 4);
    let analytic = simulate_analytic(&mem, &AnalyticPolicy::Passthrough, &analytic_cfg(4));
    assert_eq!(exact.len(), analytic.len());
    for (i, (e, a)) in exact.iter().zip(&analytic).enumerate() {
        assert!((e - a).abs() < 1e-12, "cell {i}: exact {e}, analytic {a}");
    }
}

#[test]
fn inversion_matches_exactly() {
    let mem = tiny_flat(NumberFormat::Int8Symmetric);
    let mut transducer = PeriodicInversion::new(8, mem.geometry().words);
    let exact = simulate_exact(&mem, &mut transducer, 5);
    let analytic = simulate_analytic(&mem, &AnalyticPolicy::PeriodicInversion, &analytic_cfg(5));
    for (i, (e, a)) in exact.iter().zip(&analytic).enumerate() {
        assert!((e - a).abs() < 1e-12, "cell {i}: exact {e}, analytic {a}");
    }
}

#[test]
fn barrel_matches_exactly() {
    let mem = tiny_flat(NumberFormat::Int8Symmetric);
    let mut transducer = BarrelShifter::new(8, mem.geometry().words);
    let exact = simulate_exact(&mem, &mut transducer, 5);
    let analytic = simulate_analytic(&mem, &AnalyticPolicy::BarrelShifter, &analytic_cfg(5));
    for (i, (e, a)) in exact.iter().zip(&analytic).enumerate() {
        assert!((e - a).abs() < 1e-12, "cell {i}: exact {e}, analytic {a}");
    }
}

#[test]
fn barrel_matches_exactly_fp32() {
    // 32-bit words exercise the gcd/lcm arithmetic differently.
    let mem = tiny_flat(NumberFormat::Fp32);
    let mut transducer = BarrelShifter::new(32, mem.geometry().words);
    let exact = simulate_exact(&mem, &mut transducer, 3);
    let analytic = simulate_analytic(&mem, &AnalyticPolicy::BarrelShifter, &analytic_cfg(3));
    for (i, (e, a)) in exact.iter().zip(&analytic).enumerate() {
        assert!((e - a).abs() < 1e-12, "cell {i}: exact {e}, analytic {a}");
    }
}

#[test]
fn npu_slots_match_exactly_for_inversion() {
    for slot in
        FifoSlotMemory::all_slots(&NetworkSpec::custom_mnist(), NumberFormat::Int8Symmetric, 3)
    {
        if slot.block_count() == 0 {
            continue;
        }
        let mut transducer = PeriodicInversion::new(8, slot.geometry().words);
        let exact = simulate_exact(&slot, &mut transducer, 4);
        let analytic =
            simulate_analytic(&slot, &AnalyticPolicy::PeriodicInversion, &analytic_cfg(4));
        for (i, (e, a)) in exact.iter().zip(&analytic).enumerate() {
            assert!((e - a).abs() < 1e-12, "cell {i}: exact {e}, analytic {a}");
        }
    }
}

/// Mean and deviation statistics agree between the exact simulator
/// (with a real TRBG) and the analytic binomial collapse.
#[test]
fn dnn_life_matches_statistically() {
    let mem = tiny_flat(NumberFormat::Int8Symmetric);
    let inferences = 20u64;

    let controller = AgingController::new(PseudoTrbg::new(5, 0.7), 4);
    let mut transducer = DnnLife::new(8, controller);
    let exact = simulate_exact(&mem, &mut transducer, inferences);

    let policy = AnalyticPolicy::DnnLife {
        bias: 0.7,
        bias_balancing: Some(4),
        seed: 5,
    };
    let analytic = simulate_analytic(&mem, &policy, &analytic_cfg(inferences));

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let dev = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    let (me, ma) = (mean(&exact), mean(&analytic));
    let (de, da) = (dev(&exact), dev(&analytic));
    assert!(
        (me - ma).abs() < 0.01,
        "mean duty mismatch: exact {me}, analytic {ma}"
    );
    assert!(
        (de - da).abs() < 0.02,
        "duty deviation mismatch: exact {de}, analytic {da}"
    );
    // Both should hover near the balanced point despite the 0.7 bias.
    assert!((me - 0.5).abs() < 0.02);
}

/// Without bias balancing a 0.7-biased TRBG pushes duties off 0.5 in
/// both simulators consistently.
#[test]
fn dnn_life_bias_unbalanced_consistency() {
    let mem = tiny_flat(NumberFormat::Int8Symmetric);
    let inferences = 20u64;

    let controller = AgingController::without_balancing(PseudoTrbg::new(6, 0.7));
    let mut transducer = DnnLife::new(8, controller);
    let exact = simulate_exact(&mem, &mut transducer, inferences);

    let policy = AnalyticPolicy::DnnLife {
        bias: 0.7,
        bias_balancing: None,
        seed: 6,
    };
    let analytic = simulate_analytic(&mem, &policy, &analytic_cfg(inferences));

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let dev = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    let (me, ma) = (mean(&exact), mean(&analytic));
    assert!((me - ma).abs() < 0.01, "exact {me} vs analytic {ma}");

    // The biased-no-balancing failure mode: duty = bias − (2·bias − 1)·b̄,
    // so per-cell block-bit means spread into a wider duty distribution
    // than the balanced case (where duty concentrates at 0.5 regardless
    // of the data).
    let balanced = simulate_analytic(
        &mem,
        &AnalyticPolicy::DnnLife {
            bias: 0.5,
            bias_balancing: Some(4),
            seed: 6,
        },
        &analytic_cfg(inferences),
    );
    let (du, db) = (dev(&analytic), dev(&balanced));
    assert!(
        du > 1.2 * db,
        "unbalanced spread {du} should exceed balanced spread {db}"
    );
}

/// Sampling a strided subset leaves per-cell values identical to the
/// full run (same cells, same seeds).
#[test]
fn stride_sampling_is_consistent() {
    let mem = tiny_flat(NumberFormat::Int8Symmetric);
    let full = simulate_analytic(&mem, &AnalyticPolicy::Passthrough, &analytic_cfg(4));
    let strided = simulate_analytic(
        &mem,
        &AnalyticPolicy::Passthrough,
        &AnalyticSimConfig {
            inferences: 4,
            sample_stride: 4,
            threads: 1,
            shards: 0,
        },
    );
    let width = 8usize;
    for (si, chunk) in strided.chunks(width).enumerate() {
        let word = si * 4;
        assert_eq!(chunk, &full[word * width..(word + 1) * width]);
    }
}

/// Thread count must not change results.
#[test]
fn thread_count_invariance() {
    let mem = tiny_flat(NumberFormat::Int8Symmetric);
    let policy = AnalyticPolicy::DnnLife {
        bias: 0.5,
        bias_balancing: Some(4),
        seed: 42,
    };
    let one = simulate_analytic(
        &mem,
        &policy,
        &AnalyticSimConfig {
            inferences: 10,
            sample_stride: 1,
            threads: 1,
            shards: 0,
        },
    );
    let many = simulate_analytic(
        &mem,
        &policy,
        &AnalyticSimConfig {
            inferences: 10,
            sample_stride: 1,
            threads: 7,
            shards: 0,
        },
    );
    assert_eq!(one, many);
}

/// Residency ablation (§III-C): compute-weighted dwell changes the
/// unmitigated duty distribution, but DNN-Life's balanced 0.5 duty is
/// residency-invariant — randomised inversion balances *time*, not
/// writes, as long as inversion is equally likely on every write.
#[test]
fn compute_weighted_residency_ablation() {
    let spec = NetworkSpec::custom_mnist();
    let mut cfg = AcceleratorConfig::baseline();
    cfg.weight_memory_bytes = 2048;
    let equal = FlatWeightMemory::new(&cfg, &spec, NumberFormat::Int8Symmetric, 11);
    let weighted = FlatWeightMemory::new(&cfg, &spec, NumberFormat::Int8Symmetric, 11)
        .with_compute_weighted_residency(&spec);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    // Unmitigated: the weighted run emphasises conv-layer fills, so the
    // duty distribution shifts measurably.
    let mut p1 = Passthrough::new(8);
    let mut p2 = Passthrough::new(8);
    let equal_duties = simulate_exact(&equal, &mut p1, 2);
    let weighted_duties = simulate_exact(&weighted, &mut p2, 2);
    let shift: f64 = equal_duties
        .iter()
        .zip(&weighted_duties)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / equal_duties.len() as f64;
    assert!(shift > 0.01, "residency weighting had no effect: {shift}");

    // DNN-Life: balanced at 0.5 under both residency models.
    let controller = AgingController::new(PseudoTrbg::new(5, 0.5), 4);
    let mut wde = DnnLife::new(8, controller);
    let mitigated = simulate_exact(&weighted, &mut wde, 30);
    let m = mean(&mitigated);
    assert!(
        (m - 0.5).abs() < 0.01,
        "DNN-Life mean duty {m} under weighted residency"
    );
}

/// The analytic simulator refuses non-uniform dwell instead of silently
/// ignoring it.
#[test]
fn analytic_rejects_weighted_residency() {
    let spec = NetworkSpec::custom_mnist();
    let mut cfg = AcceleratorConfig::baseline();
    cfg.weight_memory_bytes = 2048;
    let weighted = FlatWeightMemory::new(&cfg, &spec, NumberFormat::Int8Symmetric, 11)
        .with_compute_weighted_residency(&spec);
    let result = std::panic::catch_unwind(|| {
        simulate_analytic(&weighted, &AnalyticPolicy::Passthrough, &analytic_cfg(2))
    });
    assert!(result.is_err());
}
