//! Counter-seeded SplitMix64 RNG for per-cell reproducible sampling.
//!
//! The analytic simulator draws two binomial samples *per cell*, in
//! parallel across worker threads. Seeding a tiny full-period generator
//! from `(experiment seed, cell id)` makes every cell's draw independent
//! of scheduling — the same experiment seed always produces the same
//! histogram regardless of thread count or stride order.

use std::convert::Infallible;

/// SplitMix64 pseudo-random generator (Steele et al.), implementing the
/// `rand` traits so the `dnnlife-numerics` samplers can consume it.
///
/// # Example
///
/// ```
/// use dnnlife_accel::rng::SplitMix64;
/// use rand::RngExt;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Convenience: a generator for a `(seed, stream)` pair, pre-mixed
    /// so nearby streams are decorrelated.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Self::new(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // One warm-up step distances trivially related seeds.
        let _ = rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl rand::TryRng for SplitMix64 {
    type Error = Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.step() >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.step())
    }

    #[inline]
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngExt};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = SplitMix64::for_stream(1, 0);
        let mut b = SplitMix64::for_stream(1, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut rng = SplitMix64::new(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
