#![warn(missing_docs)]

//! DNN-accelerator weight-memory simulator.
//!
//! This crate models the two hardware platforms of the paper's Table I
//! — the baseline dense accelerator (§II-A) and a TPU-like NPU with a
//! four-tile-deep circular weight FIFO — together with the Fig. 5
//! dataflow that streams weight blocks through the on-chip weight
//! memory. Its product is, for every SRAM cell, the lifetime duty cycle
//! under a chosen mitigation policy; the SNM models in `dnnlife-sram`
//! then turn those into the Fig. 9 / Fig. 11 degradation histograms.
//!
//! Two simulators are provided:
//!
//! * [`exact`] — an event-driven simulator that pushes every word of
//!   every block of every inference through a real
//!   [`dnnlife_mitigation::WriteTransducer`] and a
//!   [`dnnlife_sram::DutyCycleTracker`]. Exact, but `O(cells × K ×
//!   inferences)` — used for validation and small configurations.
//! * [`analytic`] — a closed-form simulator exploiting that the same
//!   `K` blocks recur every inference: deterministic policies reduce to
//!   one pass over the blocks, and the DNN-Life policy's TRBG
//!   randomness collapses into two binomial draws per cell (sum of the
//!   per-write Bernoulli inversions). `O(cells × K)`, embarrassingly
//!   parallel, distribution-identical to [`exact`] (cross-validated in
//!   `tests/`).
//!
//! The block sources in [`plan`] are *random access* — any word of any
//! block is computable in O(1) from the counter-based weight generator —
//! which is what makes the analytic simulator parallel and allows
//! sampling cell subsets without generating whole blocks.

pub mod analytic;
pub mod config;
pub mod duty_map;
pub mod exact;
pub mod plan;
pub mod rng;

pub use analytic::{
    simulate_analytic, simulate_analytic_telemetry, AnalyticPolicy, AnalyticSimConfig,
};
pub use config::AcceleratorConfig;
pub use duty_map::UnitDutyMap;
pub use exact::{simulate_exact, simulate_exact_sampled, simulate_exact_sharded, ExactShardConfig};
pub use plan::{
    zipf_weights, BlockSource, FifoSlotMemory, FlatWeightMemory, MemoryGeometry, RemappedMemory,
    WeightAddress,
};
