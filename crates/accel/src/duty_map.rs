//! Per-cell duty maps: simulator output keyed by physical address.
//!
//! The simulators in [`crate::analytic`] / [`crate::exact`] return flat
//! per-cell duty vectors in sampled-word-major order — fine for the
//! histogram aggregates of Fig. 9 / Fig. 11, but downstream consumers
//! that reason about *specific* cells (the fault-injection pipeline
//! needs the duty of every cell that stores a network weight) must not
//! re-derive the sampling layout by hand. A [`UnitDutyMap`] wraps one
//! memory unit's duty vector together with its geometry and sampling
//! stride and answers "what is the lifetime duty of bit `b` of word
//! `w`" directly.

use crate::analytic::{simulate_analytic, AnalyticPolicy, AnalyticSimConfig};
use crate::plan::BlockSource;

/// Per-cell duty cycles of one memory unit, addressable by
/// `(word, bit)`.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitDutyMap {
    label: String,
    word_bits: u32,
    words: usize,
    sample_stride: usize,
    /// Sampled-word-major, bit 0 first — the simulators' cell order.
    duties: Vec<f64>,
}

impl UnitDutyMap {
    /// Wraps a duty vector produced by one of the simulators for
    /// `source` at `sample_stride`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_stride == 0` or `duties.len()` disagrees with
    /// the sampled cell count of the unit.
    pub fn new(source: &dyn BlockSource, sample_stride: usize, duties: Vec<f64>) -> Self {
        assert!(sample_stride > 0, "UnitDutyMap: stride must be > 0");
        let geo = source.geometry();
        let sampled = geo.words.div_ceil(sample_stride);
        assert_eq!(
            duties.len(),
            sampled * geo.word_bits as usize,
            "UnitDutyMap: {} duties for {} sampled cells",
            duties.len(),
            sampled * geo.word_bits as usize
        );
        Self {
            label: source.label(),
            word_bits: geo.word_bits,
            words: geo.words,
            sample_stride,
            duties,
        }
    }

    /// Runs the closed-form analytic simulator on `source` and wraps
    /// its output — the one-call path from a memory plan to an
    /// addressable duty map.
    pub fn analytic(
        source: &dyn BlockSource,
        policy: &AnalyticPolicy,
        cfg: &AnalyticSimConfig,
    ) -> Self {
        Self::new(
            source,
            cfg.sample_stride,
            simulate_analytic(source, policy, cfg),
        )
    }

    /// The unit's report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Word width in bits.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Total words of the unit (sampled or not).
    pub fn words(&self) -> usize {
        self.words
    }

    /// The stride the map was sampled at (1 = every cell present).
    pub fn sample_stride(&self) -> usize {
        self.sample_stride
    }

    /// Number of cells the map holds duties for.
    pub fn cells(&self) -> usize {
        self.duties.len()
    }

    /// The raw duty vector (sampled-word-major, bit 0 first).
    pub fn duties(&self) -> &[f64] {
        &self.duties
    }

    /// Mean duty over the sampled cells.
    pub fn mean(&self) -> f64 {
        if self.duties.is_empty() {
            return 0.0;
        }
        self.duties.iter().sum::<f64>() / self.duties.len() as f64
    }

    /// Per-bit duties of word `word`, or `None` if the word was not
    /// sampled (never for stride 1).
    ///
    /// # Panics
    ///
    /// Panics if `word` is outside the unit.
    pub fn word_duties(&self, word: usize) -> Option<&[f64]> {
        assert!(word < self.words, "word {word} outside unit");
        if !word.is_multiple_of(self.sample_stride) {
            return None;
        }
        let si = word / self.sample_stride;
        let width = self.word_bits as usize;
        Some(&self.duties[si * width..(si + 1) * width])
    }

    /// The duty of bit `bit` of word `word`, or `None` if the word was
    /// not sampled.
    ///
    /// # Panics
    ///
    /// Panics if `word` is outside the unit or `bit >= word_bits`.
    pub fn cell(&self, word: usize, bit: u32) -> Option<f64> {
        assert!(bit < self.word_bits, "bit {bit} outside word");
        self.word_duties(word).map(|d| d[bit as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::plan::FlatWeightMemory;
    use dnnlife_nn::NetworkSpec;
    use dnnlife_quant::NumberFormat;

    fn tiny_memory() -> FlatWeightMemory {
        let mut cfg = AcceleratorConfig::baseline();
        cfg.weight_memory_bytes = 2048;
        FlatWeightMemory::new(
            &cfg,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            3,
        )
    }

    #[test]
    fn map_addresses_the_flat_duty_vector() {
        let mem = tiny_memory();
        let cfg = AnalyticSimConfig {
            inferences: 4,
            sample_stride: 3,
            threads: 1,
            shards: 1,
        };
        let map = UnitDutyMap::analytic(&mem, &AnalyticPolicy::Passthrough, &cfg);
        assert_eq!(map.word_bits(), 8);
        assert_eq!(map.words(), mem.geometry().words);
        assert_eq!(map.cells(), mem.geometry().words.div_ceil(3) * 8);
        // Sampled word 6 is sampled index 2.
        let by_word = map.word_duties(6).expect("word 6 is sampled");
        assert_eq!(by_word, &map.duties()[2 * 8..3 * 8]);
        assert_eq!(map.cell(6, 5), Some(by_word[5]));
        // Word 7 is skipped at stride 3.
        assert_eq!(map.word_duties(7), None);
        assert_eq!(map.cell(7, 0), None);
    }

    #[test]
    fn stride_one_covers_every_word() {
        let mem = tiny_memory();
        let cfg = AnalyticSimConfig {
            inferences: 2,
            sample_stride: 1,
            threads: 1,
            shards: 1,
        };
        let map = UnitDutyMap::analytic(&mem, &AnalyticPolicy::PeriodicInversion, &cfg);
        for word in [0, 1, mem.geometry().words - 1] {
            assert!(map.word_duties(word).is_some(), "word {word}");
        }
        assert!((0.0..=1.0).contains(&map.mean()));
    }

    #[test]
    #[should_panic(expected = "duties for")]
    fn wrong_length_rejected() {
        let mem = tiny_memory();
        let _ = UnitDutyMap::new(&mem, 1, vec![0.5; 7]);
    }
}
