//! Event-driven reference simulator.
//!
//! Replays every word of every block of every inference through a real
//! [`WriteTransducer`] into a bit-packed memory image, accumulating
//! per-cell duty cycles weighted by each block's residency
//! ([`BlockSource::dwell`]; uniform by default — the paper's assumption
//! (b) in §III-B). `O(cells × K × inferences)` — the ground truth that
//! the analytic simulator is validated against, and the right tool for
//! small configurations and residency ablations.
//!
//! For campaign sweeps, [`simulate_exact_sampled`] simulates every
//! n-th memory word (the same unbiased word subsample the analytic
//! simulator's `sample_stride` takes) and caches each block's raw words
//! across inferences — the weight generator and quantizer are the
//! expensive part of the inner loop, and their output is identical
//! every inference.

use crate::plan::BlockSource;
use dnnlife_mitigation::WriteTransducer;
use dnnlife_sram::DutyCycleTracker;

/// Raw-block-word cache ceiling for [`simulate_exact_sampled`]: above
/// this the simulator recomputes words per inference instead of
/// caching `block_count × sampled_words` u64s.
const BLOCK_CACHE_BYTES: usize = 64 << 20;

/// Simulates `inferences` repeated inferences of the block stream
/// through `transducer`, returning per-cell duty cycles (cell order:
/// word-major, bit 0 first).
///
/// # Panics
///
/// Panics if the transducer width does not match the memory word width,
/// or if the source has no blocks.
///
/// # Example
///
/// ```
/// use dnnlife_accel::{simulate_exact, AcceleratorConfig, BlockSource, FlatWeightMemory};
/// use dnnlife_mitigation::Passthrough;
/// use dnnlife_nn::NetworkSpec;
/// use dnnlife_quant::NumberFormat;
///
/// let mem = FlatWeightMemory::new(
///     &AcceleratorConfig::baseline(),
///     &NetworkSpec::custom_mnist(),
///     NumberFormat::Int8Symmetric,
///     42,
/// );
/// let mut policy = Passthrough::new(8);
/// let duties = simulate_exact(&mem, &mut policy, 2);
/// assert_eq!(duties.len() as u64, mem.geometry().cells());
/// ```
pub fn simulate_exact(
    source: &dyn BlockSource,
    transducer: &mut dyn WriteTransducer,
    inferences: u64,
) -> Vec<f64> {
    simulate_exact_sampled(source, transducer, inferences, 1)
}

/// [`simulate_exact`] restricted to every `sample_stride`-th memory
/// word — the strided inner loop that keeps exact campaign sweeps
/// tractable. Returns per-cell duty cycles in sampled-word-major order
/// (bit 0 first), matching `simulate_analytic`'s cell order for the
/// same stride.
///
/// The per-address transducer state of the deterministic policies
/// (inversion parity, barrel-shift counters) is independent across
/// words, so a strided run produces bit-identical duties for the
/// sampled words. The DNN-Life policy consumes one TRBG draw per word
/// write, so striding changes *which* draws each word sees — a
/// different but identically distributed random stream.
///
/// # Panics
///
/// Panics if the transducer width does not match the memory word
/// width, if the source has no blocks, or if `sample_stride == 0`.
pub fn simulate_exact_sampled(
    source: &dyn BlockSource,
    transducer: &mut dyn WriteTransducer,
    inferences: u64,
    sample_stride: usize,
) -> Vec<f64> {
    let geo = source.geometry();
    assert_eq!(
        transducer.width(),
        geo.word_bits,
        "simulate_exact: transducer width {} != memory word width {}",
        transducer.width(),
        geo.word_bits
    );
    assert!(sample_stride > 0, "simulate_exact: stride must be > 0");
    let k_blocks = source.block_count();
    assert!(k_blocks > 0, "simulate_exact: source has no blocks");

    let sampled: Vec<usize> = (0..geo.words).step_by(sample_stride).collect();
    let width = geo.word_bits as usize;
    let cells = sampled.len() * width;
    let mut tracker = DutyCycleTracker::new(cells);
    let mut state = vec![0u64; cells.div_ceil(64)];

    // Raw words are a pure function of (block, word): cache them once
    // and replay from memory on every later inference. A single
    // inference has no later replay, so it skips the cache entirely.
    let cache_len = (k_blocks as usize).saturating_mul(sampled.len());
    let cache_pays_off = inferences > 1 && cache_len.saturating_mul(8) <= BLOCK_CACHE_BYTES;
    let cached: Option<Vec<u64>> = cache_pays_off.then(|| {
        let mut words = Vec::with_capacity(cache_len);
        for block in 0..k_blocks {
            for &word in &sampled {
                words.push(source.word(block, word));
            }
        }
        words
    });

    for _inference in 0..inferences {
        for block in 0..k_blocks {
            for (si, &word) in sampled.iter().enumerate() {
                let raw = match &cached {
                    Some(words) => words[block as usize * sampled.len() + si],
                    None => source.word(block, word),
                };
                let (stored, _meta) = transducer.encode(word as u64, raw);
                write_bits(&mut state, si * width, width, stored);
            }
            transducer.new_block();
            tracker.record_packed(&state, source.dwell(block));
        }
    }
    tracker.duties().collect()
}

/// Writes the low `width` bits of `value` into the packed bit image at
/// bit offset `offset` (LSB-first; a write may straddle one 64-bit
/// word boundary). Bits of `value` beyond `width` are ignored.
///
/// # Panics
///
/// Panics if the write reaches past the end of `state`, or if `width`
/// is 0 or above 64.
pub fn write_bits(state: &mut [u64], offset: usize, width: usize, value: u64) {
    assert!((1..=64).contains(&width), "write_bits: bad width {width}");
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let value = value & mask;
    let word = offset / 64;
    let pos = offset % 64;
    state[word] = (state[word] & !(mask << pos)) | (value << pos);
    let spill = pos + width;
    if spill > 64 {
        let hi_bits = spill - 64;
        let hi_mask = (1u64 << hi_bits) - 1;
        state[word + 1] = (state[word + 1] & !hi_mask) | (value >> (64 - pos));
    }
}

/// Reads `width` bits starting at bit `offset` from the packed image —
/// the inverse of [`write_bits`], used by its property tests.
///
/// # Panics
///
/// Panics if the read reaches past the end of `state`, or if `width`
/// is 0 or above 64.
pub fn read_bits(state: &[u64], offset: usize, width: usize) -> u64 {
    assert!((1..=64).contains(&width), "read_bits: bad width {width}");
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let word = offset / 64;
    let pos = offset % 64;
    let mut value = state[word] >> pos;
    if pos + width > 64 {
        value |= state[word + 1] << (64 - pos);
    }
    value & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::plan::FlatWeightMemory;
    use dnnlife_mitigation::{Passthrough, PeriodicInversion};
    use dnnlife_nn::NetworkSpec;
    use dnnlife_quant::NumberFormat;

    fn tiny_memory() -> FlatWeightMemory {
        // Shrink the baseline config so the exact simulator is fast.
        let mut cfg = AcceleratorConfig::baseline();
        cfg.weight_memory_bytes = 2048;
        FlatWeightMemory::new(
            &cfg,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            3,
        )
    }

    #[test]
    fn passthrough_duty_is_block_mean() {
        let mem = tiny_memory();
        let k = mem.block_count();
        let mut policy = Passthrough::new(8);
        let duties = simulate_exact(&mem, &mut policy, 3);
        // Cross-check a few cells against direct block averaging.
        for (word, bit) in [(0usize, 0usize), (7, 3), (100, 7)] {
            let ones: u64 = (0..k).map(|b| mem.word(b, word) >> bit & 1).sum();
            let expect = ones as f64 / k as f64;
            let got = duties[word * 8 + bit];
            assert!(
                (got - expect).abs() < 1e-12,
                "cell ({word},{bit}): got {got}, want {expect}"
            );
        }
    }

    #[test]
    fn inversion_halves_constant_cells_when_k_odd_times_even_infs() {
        let mem = tiny_memory();
        let words = mem.geometry().words;
        let mut policy = PeriodicInversion::new(8, words);
        let duties = simulate_exact(&mem, &mut policy, 2);
        let k = mem.block_count();
        if k % 2 == 1 {
            // Odd K with an even number of inferences: every cell is
            // balanced exactly.
            for (i, d) in duties.iter().enumerate() {
                assert!((d - 0.5).abs() < 1e-12, "cell {i}: duty {d}");
            }
        }
    }

    #[test]
    fn strided_run_subsamples_the_full_run_for_deterministic_policies() {
        let mem = tiny_memory();
        let words = mem.geometry().words;
        let width = 8usize;
        let mut full_policy = PeriodicInversion::new(8, words);
        let full = simulate_exact(&mem, &mut full_policy, 3);
        let mut strided_policy = PeriodicInversion::new(8, words);
        let strided = simulate_exact_sampled(&mem, &mut strided_policy, 3, 7);
        for (si, chunk) in strided.chunks(width).enumerate() {
            let word = si * 7;
            assert_eq!(
                chunk,
                &full[word * width..(word + 1) * width],
                "word {word}"
            );
        }
    }

    #[test]
    fn write_bits_roundtrip() {
        let mut state = vec![0u64; 2];
        write_bits(&mut state, 60, 8, 0xAB);
        // Bits 60..68 straddle the word boundary.
        let read_back = (state[0] >> 60) | ((state[1] & 0xF) << 4);
        assert_eq!(read_back, 0xAB);
        assert_eq!(read_bits(&state, 60, 8), 0xAB);
        write_bits(&mut state, 60, 8, 0x00);
        assert_eq!(state[0], 0);
        assert_eq!(state[1], 0);
    }

    #[test]
    fn write_bits_full_width_words() {
        let mut state = vec![0u64; 2];
        write_bits(&mut state, 0, 64, u64::MAX);
        assert_eq!(state[0], u64::MAX);
        assert_eq!(state[1], 0);
        write_bits(&mut state, 64, 64, 0x1234_5678_9ABC_DEF0);
        assert_eq!(read_bits(&state, 64, 64), 0x1234_5678_9ABC_DEF0);
        write_bits(&mut state, 0, 64, 0);
        assert_eq!(state[0], 0);
    }

    #[test]
    fn write_bits_ignores_value_bits_beyond_width() {
        let mut state = vec![u64::MAX; 1];
        write_bits(&mut state, 8, 8, 0xF00); // low byte 0x00
        assert_eq!(read_bits(&state, 8, 8), 0x00);
        assert_eq!(read_bits(&state, 0, 8), 0xFF, "neighbours untouched");
        assert_eq!(read_bits(&state, 16, 8), 0xFF, "neighbours untouched");
    }

    #[test]
    #[should_panic(expected = "transducer width")]
    fn width_mismatch_rejected() {
        let mem = tiny_memory();
        let mut policy = Passthrough::new(32);
        let _ = simulate_exact(&mem, &mut policy, 1);
    }
}
