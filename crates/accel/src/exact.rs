//! Event-driven reference simulator.
//!
//! Replays every word of every block of every inference through a real
//! [`WriteTransducer`] into a bit-packed memory image, accumulating
//! per-cell duty cycles weighted by each block's residency
//! ([`BlockSource::dwell`]; uniform by default — the paper's assumption
//! (b) in §III-B). `O(cells × K × inferences)` — the ground truth that
//! the analytic simulator is validated against, and the right tool for
//! small configurations and residency ablations.

use crate::plan::BlockSource;
use dnnlife_mitigation::WriteTransducer;
use dnnlife_sram::DutyCycleTracker;

/// Simulates `inferences` repeated inferences of the block stream
/// through `transducer`, returning per-cell duty cycles (cell order:
/// word-major, bit 0 first).
///
/// # Panics
///
/// Panics if the transducer width does not match the memory word width,
/// or if the source has no blocks.
///
/// # Example
///
/// ```
/// use dnnlife_accel::{simulate_exact, AcceleratorConfig, BlockSource, FlatWeightMemory};
/// use dnnlife_mitigation::Passthrough;
/// use dnnlife_nn::NetworkSpec;
/// use dnnlife_quant::NumberFormat;
///
/// let mem = FlatWeightMemory::new(
///     &AcceleratorConfig::baseline(),
///     &NetworkSpec::custom_mnist(),
///     NumberFormat::Int8Symmetric,
///     42,
/// );
/// let mut policy = Passthrough::new(8);
/// let duties = simulate_exact(&mem, &mut policy, 2);
/// assert_eq!(duties.len() as u64, mem.geometry().cells());
/// ```
pub fn simulate_exact(
    source: &dyn BlockSource,
    transducer: &mut dyn WriteTransducer,
    inferences: u64,
) -> Vec<f64> {
    let geo = source.geometry();
    assert_eq!(
        transducer.width(),
        geo.word_bits,
        "simulate_exact: transducer width {} != memory word width {}",
        transducer.width(),
        geo.word_bits
    );
    let k_blocks = source.block_count();
    assert!(k_blocks > 0, "simulate_exact: source has no blocks");

    let cells = geo.cells() as usize;
    let mut tracker = DutyCycleTracker::new(cells);
    let mut state = vec![0u64; cells.div_ceil(64)];
    let width = geo.word_bits as usize;

    for _inference in 0..inferences {
        for block in 0..k_blocks {
            for word in 0..geo.words {
                let raw = source.word(block, word);
                let (stored, _meta) = transducer.encode(word as u64, raw);
                write_bits(&mut state, word * width, width, stored);
            }
            transducer.new_block();
            tracker.record_packed(&state, source.dwell(block));
        }
    }
    tracker.duties().collect()
}

/// Writes the low `width` bits of `value` into the packed bit image at
/// bit offset `offset`.
fn write_bits(state: &mut [u64], offset: usize, width: usize, value: u64) {
    for bit in 0..width {
        let idx = offset + bit;
        let word = idx / 64;
        let pos = idx % 64;
        if value >> bit & 1 == 1 {
            state[word] |= 1 << pos;
        } else {
            state[word] &= !(1 << pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::plan::FlatWeightMemory;
    use dnnlife_mitigation::{Passthrough, PeriodicInversion};
    use dnnlife_nn::NetworkSpec;
    use dnnlife_quant::NumberFormat;

    fn tiny_memory() -> FlatWeightMemory {
        // Shrink the baseline config so the exact simulator is fast.
        let mut cfg = AcceleratorConfig::baseline();
        cfg.weight_memory_bytes = 2048;
        FlatWeightMemory::new(
            &cfg,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            3,
        )
    }

    #[test]
    fn passthrough_duty_is_block_mean() {
        let mem = tiny_memory();
        let k = mem.block_count();
        let mut policy = Passthrough::new(8);
        let duties = simulate_exact(&mem, &mut policy, 3);
        // Cross-check a few cells against direct block averaging.
        for (word, bit) in [(0usize, 0usize), (7, 3), (100, 7)] {
            let ones: u64 = (0..k).map(|b| mem.word(b, word) >> bit & 1).sum();
            let expect = ones as f64 / k as f64;
            let got = duties[word * 8 + bit];
            assert!(
                (got - expect).abs() < 1e-12,
                "cell ({word},{bit}): got {got}, want {expect}"
            );
        }
    }

    #[test]
    fn inversion_halves_constant_cells_when_k_odd_times_even_infs() {
        let mem = tiny_memory();
        let words = mem.geometry().words;
        let mut policy = PeriodicInversion::new(8, words);
        let duties = simulate_exact(&mem, &mut policy, 2);
        let k = mem.block_count();
        if k % 2 == 1 {
            // Odd K with an even number of inferences: every cell is
            // balanced exactly.
            for (i, d) in duties.iter().enumerate() {
                assert!((d - 0.5).abs() < 1e-12, "cell {i}: duty {d}");
            }
        }
    }

    #[test]
    fn write_bits_roundtrip() {
        let mut state = vec![0u64; 2];
        write_bits(&mut state, 60, 8, 0xAB);
        // Bits 60..68 straddle the word boundary.
        let read_back = (state[0] >> 60) | ((state[1] & 0xF) << 4);
        assert_eq!(read_back, 0xAB);
        write_bits(&mut state, 60, 8, 0x00);
        assert_eq!(state[0], 0);
        assert_eq!(state[1], 0);
    }

    #[test]
    #[should_panic(expected = "transducer width")]
    fn width_mismatch_rejected() {
        let mem = tiny_memory();
        let mut policy = Passthrough::new(32);
        let _ = simulate_exact(&mem, &mut policy, 1);
    }
}
