//! Event-driven reference simulator.
//!
//! Replays every word of every block of every inference through a real
//! [`WriteTransducer`] into a bit-packed memory image, accumulating
//! per-cell duty cycles weighted by each block's residency
//! ([`BlockSource::dwell`]; uniform by default — the paper's assumption
//! (b) in §III-B). `O(cells × K × inferences)` — the ground truth that
//! the analytic simulator is validated against, and the right tool for
//! small configurations and residency ablations.
//!
//! The inner loop is bit-parallel: each block's stored words are
//! encoded in one batched [`WriteTransducer::encode_run`] call, packed
//! into the `u64` memory image, and folded into a bit-sliced
//! [`DutySliceTracker`] — 64 cells per `u64` operation instead of an
//! f64 add per cell. Uniform dwell (the default) keeps integer counts
//! end to end, so deterministic policies with a known write period
//! ([`WriteTransducer::write_period`]) simulate one period and replay
//! it by exact multiplication ([`DutySliceTracker::scale`]). Runs with
//! non-uniform dwell fall back to the scalar [`DutyCycleTracker`],
//! whose order-sensitive f64 accumulation the stored goldens pin.
//!
//! For campaign sweeps, [`simulate_exact_sampled`] simulates every
//! n-th memory word (the same unbiased word subsample the analytic
//! simulator's `sample_stride` takes) and caches each block's raw words
//! across inferences — the weight generator and quantizer are the
//! expensive part of the inner loop, and their output is identical
//! every inference.
//!
//! [`simulate_exact_sharded`] parallelizes the same loop across
//! contiguous *word shards*: each shard runs an independent
//! [`WriteTransducer::fork`] of the policy over its own range of
//! sampled words, and per-shard duty vectors are concatenated in
//! shard-index order. Per-address transducer state makes the partition
//! invisible to the deterministic policies (any shard count is
//! bit-identical to the serial run); the DNN-Life policy draws from an
//! independent seed-derived TRBG stream per shard, so a given shard
//! count is reproducible from the scenario seed alone.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::plan::BlockSource;
use dnnlife_mitigation::WriteTransducer;
use dnnlife_sram::{DutyCycleTracker, DutySliceTracker};
use dnnlife_telemetry::{Counter, SpanId, Telemetry};

/// Raw-block-word cache ceiling for [`simulate_exact_sampled`]: above
/// this the simulator recomputes words per inference instead of
/// caching `block_count × sampled_words` u64s. Sharded runs partition
/// the same budget — each shard caches only its own word range, so the
/// total stays under this ceiling for every shard count.
const BLOCK_CACHE_BYTES: usize = 64 << 20;

/// Execution knobs for [`simulate_exact_sharded`].
#[derive(Debug, Clone, Copy)]
pub struct ExactShardConfig<'a> {
    /// Logical word shards (≥ 1; clamped to the sampled word count).
    /// Semantic for the DNN-Life policy: the shard count selects how
    /// TRBG streams are dealt to words, so two different values give
    /// two different (identically distributed) random runs.
    pub shards: usize,
    /// OS threads executing the shards (0 = all available cores,
    /// clamped to the shard count). Never semantic: any thread count
    /// produces the same bytes for a given shard count.
    pub threads: usize,
    /// Cooperative cancellation, polled once per block per shard — an
    /// abort lands within one block write, well under one inference.
    pub cancel: Option<&'a AtomicBool>,
    /// Observability handle: shard counts, word-write totals, cache
    /// hit/miss accounting, merge timing. Never semantic — duties are
    /// byte-identical with or without it.
    pub telemetry: Option<&'a Telemetry>,
    /// Trace-span parent for the per-shard `exact_shard` /
    /// `exact_merge` spans journaled through `telemetry`.
    pub parent_span: SpanId,
}

impl Default for ExactShardConfig<'_> {
    fn default() -> Self {
        Self {
            shards: 1,
            threads: 0,
            cancel: None,
            telemetry: None,
            parent_span: SpanId::NONE,
        }
    }
}

fn cancelled(cancel: Option<&AtomicBool>) -> bool {
    cancel.is_some_and(|flag| flag.load(Ordering::Relaxed))
}

/// Simulates `inferences` repeated inferences of the block stream
/// through `transducer`, returning per-cell duty cycles (cell order:
/// word-major, bit 0 first).
///
/// # Panics
///
/// Panics if the transducer width does not match the memory word width,
/// or if the source has no blocks.
///
/// # Example
///
/// ```
/// use dnnlife_accel::{simulate_exact, AcceleratorConfig, BlockSource, FlatWeightMemory};
/// use dnnlife_mitigation::Passthrough;
/// use dnnlife_nn::NetworkSpec;
/// use dnnlife_quant::NumberFormat;
///
/// let mem = FlatWeightMemory::new(
///     &AcceleratorConfig::baseline(),
///     &NetworkSpec::custom_mnist(),
///     NumberFormat::Int8Symmetric,
///     42,
/// );
/// let mut policy = Passthrough::new(8);
/// let duties = simulate_exact(&mem, &mut policy, 2);
/// assert_eq!(duties.len() as u64, mem.geometry().cells());
/// ```
pub fn simulate_exact(
    source: &dyn BlockSource,
    transducer: &mut dyn WriteTransducer,
    inferences: u64,
) -> Vec<f64> {
    simulate_exact_sampled(source, transducer, inferences, 1)
}

/// [`simulate_exact`] restricted to every `sample_stride`-th memory
/// word — the strided inner loop that keeps exact campaign sweeps
/// tractable. Returns per-cell duty cycles in sampled-word-major order
/// (bit 0 first), matching `simulate_analytic`'s cell order for the
/// same stride.
///
/// The per-address transducer state of the deterministic policies
/// (inversion parity, barrel-shift counters) is independent across
/// words, so a strided run produces bit-identical duties for the
/// sampled words. The DNN-Life policy consumes one TRBG draw per word
/// write, so striding changes *which* draws each word sees — a
/// different but identically distributed random stream.
///
/// # Panics
///
/// Panics if the transducer width does not match the memory word
/// width, if the source has no blocks, or if `sample_stride == 0`.
pub fn simulate_exact_sampled(
    source: &dyn BlockSource,
    transducer: &mut dyn WriteTransducer,
    inferences: u64,
    sample_stride: usize,
) -> Vec<f64> {
    let (sampled, use_cache) = check_and_sample(source, transducer, inferences, sample_stride);
    simulate_word_range(source, transducer, inferences, &sampled, use_cache, None)
        .expect("uncancellable run cannot be cancelled")
}

/// [`simulate_exact_sampled`] parallelized across contiguous word
/// shards: the sampled-word list is split into `cfg.shards` balanced
/// ranges, each range runs through its own [`WriteTransducer::fork`] on
/// a scoped thread, and per-shard duty vectors are concatenated in
/// shard-index order — so the output cell order is exactly
/// [`simulate_exact_sampled`]'s for every shard count.
///
/// Determinism: the deterministic policies (per-address state) are
/// bit-identical to the serial simulator for **any** shard count; the
/// DNN-Life policy consumes an independent seed-derived TRBG stream per
/// shard, so its duties are reproducible for a *given* shard count (one
/// shard reproduces the serial stream exactly) and distribution-
/// identical across shard counts. The thread count is never semantic.
///
/// Returns `None` iff `cfg.cancel` was raised before the run finished;
/// cancellation is polled once per block per shard, so an abort lands
/// within one inference.
///
/// # Panics
///
/// Panics if the transducer width does not match the memory word width,
/// if the source has no blocks, if `sample_stride == 0`, or if
/// `cfg.shards == 0`.
pub fn simulate_exact_sharded(
    source: &dyn BlockSource,
    prototype: &dyn WriteTransducer,
    inferences: u64,
    sample_stride: usize,
    cfg: &ExactShardConfig,
) -> Option<Vec<f64>> {
    assert!(cfg.shards > 0, "simulate_exact: shards must be > 0");
    let (sampled, use_cache) = check_and_sample(source, prototype, inferences, sample_stride);
    let width = source.geometry().word_bits as usize;
    let shards = cfg.shards.min(sampled.len()).max(1);
    let ranges = shard_ranges(sampled.len(), shards);

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        cfg.threads
    }
    .clamp(1, shards);

    let telemetry = cfg.telemetry.unwrap_or_else(|| Telemetry::noop());
    let mut slots: Vec<Option<Vec<f64>>> = (0..shards).map(|_| None).collect();
    if threads == 1 {
        // Serial shard loop: same forks, same merge order, no spawn.
        for (shard, range) in ranges.iter().enumerate() {
            let mut transducer = prototype.fork(shard as u64);
            let span = telemetry.span_start("exact_shard", cfg.parent_span);
            let duties = simulate_word_range(
                source,
                transducer.as_mut(),
                inferences,
                &sampled[range.clone()],
                use_cache,
                cfg.cancel,
            );
            telemetry.span_end(span);
            slots[shard] = Some(duties?);
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Vec<f64>)>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let (next, ranges, sampled) = (&next, &ranges, &sampled);
                scope.spawn(move || loop {
                    let shard = next.fetch_add(1, Ordering::Relaxed);
                    let Some(range) = ranges.get(shard) else {
                        break;
                    };
                    let mut transducer = prototype.fork(shard as u64);
                    let span = telemetry.span_start("exact_shard", cfg.parent_span);
                    let duties = simulate_word_range(
                        source,
                        transducer.as_mut(),
                        inferences,
                        &sampled[range.clone()],
                        use_cache,
                        cfg.cancel,
                    );
                    telemetry.span_end(span);
                    let Some(duties) = duties else {
                        break; // cancelled: the partial shard is dropped
                    };
                    if tx.send((shard, duties)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (shard, duties) in rx {
                // Merge guard: every shard lands at its own index, so
                // concatenation below is in shard order regardless of
                // completion order.
                assert!(
                    slots[shard].replace(duties).is_none(),
                    "shard {shard} completed twice"
                );
            }
        });
    }

    let merge_span = telemetry.span_start("exact_merge", cfg.parent_span);
    let out = telemetry.time(Counter::ShardMergeNanos, || {
        let mut out = Vec::with_capacity(sampled.len() * width);
        for (shard, slot) in slots.into_iter().enumerate() {
            let duties = slot?; // a missing shard means the run was cancelled
            assert_eq!(
                duties.len(),
                ranges[shard].len() * width,
                "shard {shard} returned a mis-sized duty vector"
            );
            out.extend(duties);
        }
        Some(out)
    });
    telemetry.span_end(merge_span);
    let out = out?;

    // Counter bookkeeping is arithmetic over the completed run's shape
    // — never per-encode atomics in the hot loop. The counts are
    // *logical* word writes (one per sampled word per block per
    // inference): period-collapsed inferences are counted as if
    // simulated, so throughput metrics reflect the replayed schedule.
    // With the raw-word cache on, the fill is the only pass that
    // touches the block source.
    let k_blocks = source.block_count();
    let word_reads = (sampled.len() as u64)
        .saturating_mul(k_blocks)
        .saturating_mul(inferences);
    telemetry.add(Counter::ExactShardsRun, shards as u64);
    telemetry.add(Counter::ExactWordWrites, word_reads);
    if use_cache {
        telemetry.add(Counter::BlockCacheHitWords, word_reads);
        telemetry.add(
            Counter::BlockCacheMissWords,
            (sampled.len() as u64).saturating_mul(k_blocks),
        );
    } else {
        telemetry.add(Counter::BlockCacheMissWords, word_reads);
    }
    Some(out)
}

/// Shared input validation: returns the sampled-word list and whether
/// the raw-block-word cache pays off (a *global* decision over the full
/// sampled population, so shard counts never change memory behaviour —
/// each shard caches only its own slice of the budget).
fn check_and_sample(
    source: &dyn BlockSource,
    transducer: &dyn WriteTransducer,
    inferences: u64,
    sample_stride: usize,
) -> (Vec<usize>, bool) {
    let geo = source.geometry();
    assert_eq!(
        transducer.width(),
        geo.word_bits,
        "simulate_exact: transducer width {} != memory word width {}",
        transducer.width(),
        geo.word_bits
    );
    assert!(sample_stride > 0, "simulate_exact: stride must be > 0");
    let k_blocks = source.block_count();
    assert!(k_blocks > 0, "simulate_exact: source has no blocks");
    let sampled: Vec<usize> = (0..geo.words).step_by(sample_stride).collect();
    let cache_len = (k_blocks as usize).saturating_mul(sampled.len());
    let use_cache = inferences > 1 && cache_len.saturating_mul(8) <= BLOCK_CACHE_BYTES;
    (sampled, use_cache)
}

/// Splits `len` items into `shards` contiguous balanced ranges (the
/// first `len % shards` ranges are one item longer). Shared with the
/// analytic simulator so both backends partition work identically.
pub(crate) fn shard_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let base = len / shards;
    let extra = len % shards;
    let mut start = 0;
    (0..shards)
        .map(|shard| {
            let size = base + usize::from(shard < extra);
            let range = start..start + size;
            start += size;
            range
        })
        .collect()
}

/// The exact inner loop over one contiguous range of sampled words:
/// every word of every block of every inference goes through
/// `transducer` into a packed bit image, and each block state is
/// folded into a bit-sliced integer duty tracker — 64 cells per `u64`
/// op instead of a branch and an f64 add per cell. Returns `None` if
/// `cancel` was raised (polled once per block, including during cache
/// fill).
///
/// Two further collapses keep the loop's *output* untouched while
/// shrinking its work:
///
/// * Encodes go through [`WriteTransducer::encode_run`] — one virtual
///   dispatch per block instead of per word, with the same stored bits
///   and state advance.
/// * When the policy reports a [`WriteTransducer::write_period`], only
///   one period of the repeated inference schedule is simulated; the
///   remaining full periods are replayed by exact integer
///   multiplication of the tracker's counts
///   ([`DutySliceTracker::scale`]), and the leftover inferences run
///   normally from the cycled-back (= reset) transducer state.
fn simulate_word_range(
    source: &dyn BlockSource,
    transducer: &mut dyn WriteTransducer,
    inferences: u64,
    words: &[usize],
    use_cache: bool,
    cancel: Option<&AtomicBool>,
) -> Option<Vec<f64>> {
    let width = source.geometry().word_bits as usize;
    let k_blocks = source.block_count();
    let cells = words.len() * width;
    if cells == 0 {
        return Some(Vec::new());
    }
    // The bit-sliced integer tracker reproduces the scalar tracker bit
    // for bit when every dwell is exactly 1.0 (integer counts, integer
    // total — the default residency model). A non-uniform dwell
    // sequence is accumulated by the scalar tracker instead: its
    // per-cell result is an *order-sensitive* f64 sum that no grouped
    // multiply-and-sum can reproduce exactly, and the store regression
    // pins those bytes (see tests/golden/exact_dwell.jsonl in
    // dnnlife-campaign).
    let uniform = (0..k_blocks).all(|b| source.dwell(b).to_bits() == 1.0f64.to_bits());
    let mut tracker = if uniform {
        Recorder::Sliced(DutySliceTracker::new(cells))
    } else {
        Recorder::Scalar(DutyCycleTracker::new(cells))
    };
    let mut state = vec![0u64; cells.div_ceil(64)];
    let addrs: Vec<u64> = words.iter().map(|&word| word as u64).collect();
    let mut stored = vec![0u64; words.len()];

    // Raw words are a pure function of (block, word): cache them once
    // and replay from memory on every later inference. A single
    // inference has no later replay, so it skips the cache entirely.
    let cached: Option<Vec<u64>> = if use_cache {
        let mut cache = Vec::with_capacity((k_blocks as usize).saturating_mul(words.len()));
        for block in 0..k_blocks {
            if cancelled(cancel) {
                return None;
            }
            for &word in words {
                cache.push(source.word(block, word));
            }
        }
        Some(cache)
    } else {
        None
    };
    let mut scratch = vec![0u64; if cached.is_some() { 0 } else { words.len() }];

    let mut run =
        |tracker: &mut Recorder, transducer: &mut dyn WriteTransducer, n: u64| -> Option<()> {
            for _inference in 0..n {
                for block in 0..k_blocks {
                    if cancelled(cancel) {
                        return None;
                    }
                    let raw: &[u64] = match &cached {
                        Some(cache) => &cache[block as usize * words.len()..][..words.len()],
                        None => {
                            for (slot, &word) in scratch.iter_mut().zip(words) {
                                *slot = source.word(block, word);
                            }
                            &scratch
                        }
                    };
                    transducer.encode_run(&addrs, raw, &mut stored);
                    pack_state(&mut state, &stored, width);
                    transducer.new_block();
                    tracker.record(&state, source.dwell(block));
                }
            }
            Some(())
        };

    // Each address sees `k_blocks` writes per inference, so a policy
    // whose encoder state has period `p` writes cycles back to reset
    // every `p / gcd(k_blocks, p)` inferences — and the integer
    // tracker can replay whole cycles by multiplication. The scalar
    // (non-uniform dwell) tracker has no exact replay, so it always
    // simulates every inference.
    let cycle = match &tracker {
        Recorder::Sliced(_) => transducer.write_period().and_then(|p| {
            let c = p / gcd(k_blocks, p);
            (c < inferences).then_some(c)
        }),
        Recorder::Scalar(_) => None,
    };
    match cycle {
        Some(c) => {
            run(&mut tracker, transducer, c)?;
            tracker.scale(inferences / c);
            run(&mut tracker, transducer, inferences % c)?;
        }
        None => run(&mut tracker, transducer, inferences)?,
    }
    Some(tracker.into_duties())
}

/// The inner loop's duty accumulator: bit-sliced integer counts on the
/// uniform-dwell fast path, the scalar f64 tracker for non-uniform
/// dwell sequences (whose stored bytes are order-sensitive).
enum Recorder {
    Sliced(DutySliceTracker),
    Scalar(DutyCycleTracker),
}

impl Recorder {
    #[inline]
    fn record(&mut self, state: &[u64], dwell: f64) {
        match self {
            Recorder::Sliced(t) => t.record_packed(state, dwell),
            Recorder::Scalar(t) => t.record_packed(state, dwell),
        }
    }

    fn scale(&mut self, factor: u64) {
        match self {
            Recorder::Sliced(t) => t.scale(factor),
            Recorder::Scalar(_) => unreachable!("scalar recorder never collapses cycles"),
        }
    }

    fn into_duties(self) -> Vec<f64> {
        match self {
            Recorder::Sliced(t) => t.into_duties(),
            Recorder::Scalar(t) => t.duties().collect(),
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Rebuilds the packed bit image from one block's stored words: word
/// `i`'s low `width` bits land at bit offset `i × width`, LSB-first —
/// exactly [`write_bits`] of every word in sequence, but as a
/// streaming pack with no read-modify-write (valid because a block
/// write covers every cell of the image). `stored` words must have no
/// bits beyond `width` (transducer outputs never do).
fn pack_state(state: &mut [u64], stored: &[u64], width: usize) {
    debug_assert!((1..=64).contains(&width), "pack_state: bad width {width}");
    debug_assert_eq!(state.len(), (stored.len() * width).div_ceil(64));
    if width == 64 {
        state.copy_from_slice(stored);
        return;
    }
    let mut acc = 0u64;
    let mut fill = 0usize;
    let mut out = 0usize;
    for &value in stored {
        debug_assert_eq!(value >> width, 0, "stored word has bits beyond width");
        acc |= value << fill;
        fill += width;
        if fill >= 64 {
            state[out] = acc;
            out += 1;
            fill -= 64;
            acc = if fill == 0 {
                0
            } else {
                value >> (width - fill)
            };
        }
    }
    if fill > 0 {
        state[out] = acc;
    }
}

/// Writes the low `width` bits of `value` into the packed bit image at
/// bit offset `offset` (LSB-first; a write may straddle one 64-bit
/// word boundary). Bits of `value` beyond `width` are ignored.
///
/// # Panics
///
/// Panics if the write reaches past the end of `state`, or if `width`
/// is 0 or above 64.
pub fn write_bits(state: &mut [u64], offset: usize, width: usize, value: u64) {
    assert!((1..=64).contains(&width), "write_bits: bad width {width}");
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let value = value & mask;
    let word = offset / 64;
    let pos = offset % 64;
    state[word] = (state[word] & !(mask << pos)) | (value << pos);
    let spill = pos + width;
    if spill > 64 {
        let hi_bits = spill - 64;
        let hi_mask = (1u64 << hi_bits) - 1;
        state[word + 1] = (state[word + 1] & !hi_mask) | (value >> (64 - pos));
    }
}

/// Reads `width` bits starting at bit `offset` from the packed image —
/// the inverse of [`write_bits`], used by its property tests.
///
/// # Panics
///
/// Panics if the read reaches past the end of `state`, or if `width`
/// is 0 or above 64.
pub fn read_bits(state: &[u64], offset: usize, width: usize) -> u64 {
    assert!((1..=64).contains(&width), "read_bits: bad width {width}");
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let word = offset / 64;
    let pos = offset % 64;
    let mut value = state[word] >> pos;
    if pos + width > 64 {
        value |= state[word + 1] << (64 - pos);
    }
    value & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::plan::FlatWeightMemory;
    use dnnlife_mitigation::{BarrelShifter, Passthrough, PeriodicInversion};
    use dnnlife_nn::NetworkSpec;
    use dnnlife_quant::NumberFormat;

    fn tiny_memory() -> FlatWeightMemory {
        // Shrink the baseline config so the exact simulator is fast.
        let mut cfg = AcceleratorConfig::baseline();
        cfg.weight_memory_bytes = 2048;
        FlatWeightMemory::new(
            &cfg,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            3,
        )
    }

    #[test]
    fn passthrough_duty_is_block_mean() {
        let mem = tiny_memory();
        let k = mem.block_count();
        let mut policy = Passthrough::new(8);
        let duties = simulate_exact(&mem, &mut policy, 3);
        // Cross-check a few cells against direct block averaging.
        for (word, bit) in [(0usize, 0usize), (7, 3), (100, 7)] {
            let ones: u64 = (0..k).map(|b| mem.word(b, word) >> bit & 1).sum();
            let expect = ones as f64 / k as f64;
            let got = duties[word * 8 + bit];
            assert!(
                (got - expect).abs() < 1e-12,
                "cell ({word},{bit}): got {got}, want {expect}"
            );
        }
    }

    #[test]
    fn inversion_halves_constant_cells_when_k_odd_times_even_infs() {
        let mem = tiny_memory();
        let words = mem.geometry().words;
        let mut policy = PeriodicInversion::new(8, words);
        let duties = simulate_exact(&mem, &mut policy, 2);
        let k = mem.block_count();
        if k % 2 == 1 {
            // Odd K with an even number of inferences: every cell is
            // balanced exactly.
            for (i, d) in duties.iter().enumerate() {
                assert!((d - 0.5).abs() < 1e-12, "cell {i}: duty {d}");
            }
        }
    }

    #[test]
    fn strided_run_subsamples_the_full_run_for_deterministic_policies() {
        let mem = tiny_memory();
        let words = mem.geometry().words;
        let width = 8usize;
        let mut full_policy = PeriodicInversion::new(8, words);
        let full = simulate_exact(&mem, &mut full_policy, 3);
        let mut strided_policy = PeriodicInversion::new(8, words);
        let strided = simulate_exact_sampled(&mem, &mut strided_policy, 3, 7);
        for (si, chunk) in strided.chunks(width).enumerate() {
            let word = si * 7;
            assert_eq!(
                chunk,
                &full[word * width..(word + 1) * width],
                "word {word}"
            );
        }
    }

    #[test]
    fn write_bits_roundtrip() {
        let mut state = vec![0u64; 2];
        write_bits(&mut state, 60, 8, 0xAB);
        // Bits 60..68 straddle the word boundary.
        let read_back = (state[0] >> 60) | ((state[1] & 0xF) << 4);
        assert_eq!(read_back, 0xAB);
        assert_eq!(read_bits(&state, 60, 8), 0xAB);
        write_bits(&mut state, 60, 8, 0x00);
        assert_eq!(state[0], 0);
        assert_eq!(state[1], 0);
    }

    #[test]
    fn write_bits_full_width_words() {
        let mut state = vec![0u64; 2];
        write_bits(&mut state, 0, 64, u64::MAX);
        assert_eq!(state[0], u64::MAX);
        assert_eq!(state[1], 0);
        write_bits(&mut state, 64, 64, 0x1234_5678_9ABC_DEF0);
        assert_eq!(read_bits(&state, 64, 64), 0x1234_5678_9ABC_DEF0);
        write_bits(&mut state, 0, 64, 0);
        assert_eq!(state[0], 0);
    }

    #[test]
    fn write_bits_width_64_straddles_words() {
        // A full-width field at a non-aligned offset touches two words.
        let mut state = vec![u64::MAX; 3];
        let value = 0x0123_4567_89AB_CDEF;
        write_bits(&mut state, 60, 64, value);
        assert_eq!(read_bits(&state, 60, 64), value);
        assert_eq!(read_bits(&state, 0, 60), (1u64 << 60) - 1, "low neighbours");
        assert_eq!(read_bits(&state, 124, 4), 0xF, "high neighbours");
        assert_eq!(state[2], u64::MAX);
        write_bits(&mut state, 60, 64, u64::MAX);
        assert_eq!(state[0], u64::MAX);
        assert_eq!(state[1], u64::MAX);
    }

    #[test]
    fn write_bits_at_offset_zero_every_width() {
        for width in 1..=64usize {
            let mut state = vec![u64::MAX; 2];
            write_bits(&mut state, 0, width, 0);
            assert_eq!(read_bits(&state, 0, width), 0, "width {width}");
            if width < 64 {
                assert_eq!(
                    read_bits(&state, width, 64 - width),
                    u64::MAX >> width,
                    "width {width}: bits above the field must survive"
                );
            }
            assert_eq!(state[1], u64::MAX, "width {width}");
        }
    }

    #[test]
    fn pack_state_matches_write_bits() {
        // The streaming packer must produce exactly the image that
        // word-by-word `write_bits` calls would.
        for (width, words) in [(1usize, 130usize), (3, 41), (8, 16), (13, 10), (64, 5)] {
            let stored: Vec<u64> = (0..words as u64)
                .map(|w| {
                    let v = w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    if width == 64 {
                        v
                    } else {
                        v & ((1 << width) - 1)
                    }
                })
                .collect();
            let cells = words * width;
            let mut packed = vec![0u64; cells.div_ceil(64)];
            let mut reference = vec![0u64; cells.div_ceil(64)];
            pack_state(&mut packed, &stored, width);
            for (i, &value) in stored.iter().enumerate() {
                write_bits(&mut reference, i * width, width, value);
            }
            assert_eq!(packed, reference, "width {width} × {words} words");
        }
    }

    #[test]
    fn write_bits_ignores_value_bits_beyond_width() {
        let mut state = vec![u64::MAX; 1];
        write_bits(&mut state, 8, 8, 0xF00); // low byte 0x00
        assert_eq!(read_bits(&state, 8, 8), 0x00);
        assert_eq!(read_bits(&state, 0, 8), 0xFF, "neighbours untouched");
        assert_eq!(read_bits(&state, 16, 8), 0xFF, "neighbours untouched");
    }

    #[test]
    #[should_panic(expected = "transducer width")]
    fn width_mismatch_rejected() {
        let mem = tiny_memory();
        let mut policy = Passthrough::new(32);
        let _ = simulate_exact(&mem, &mut policy, 1);
    }

    #[test]
    fn shard_ranges_are_contiguous_and_balanced() {
        for (len, shards) in [(10, 3), (8, 8), (7, 2), (1, 1), (64, 5)] {
            let ranges = shard_ranges(len, shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "ranges must be contiguous");
                assert!(
                    pair[0].len() >= pair[1].len(),
                    "earlier shards are never smaller"
                );
            }
            let sizes: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn sharded_matches_serial_bit_for_bit_for_deterministic_policies() {
        let mem = tiny_memory();
        let words = mem.geometry().words;
        let make: Vec<(&str, Box<dyn WriteTransducer>)> = vec![
            ("none", Box::new(Passthrough::new(8))),
            ("inversion", Box::new(PeriodicInversion::new(8, words))),
            ("barrel", Box::new(BarrelShifter::new(8, words))),
        ];
        for (name, prototype) in make {
            let mut serial_policy = prototype.fork(0);
            let serial = simulate_exact_sampled(&mem, serial_policy.as_mut(), 3, 5);
            for shards in [1usize, 2, 3, 8, 64] {
                for threads in [1usize, 4] {
                    let cfg = ExactShardConfig {
                        shards,
                        threads,
                        cancel: None,
                        telemetry: None,
                        parent_span: SpanId::NONE,
                    };
                    let sharded = simulate_exact_sharded(&mem, prototype.as_ref(), 3, 5, &cfg)
                        .expect("not cancelled");
                    assert_eq!(
                        sharded, serial,
                        "policy {name}: {shards} shard(s) × {threads} thread(s) diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn one_shard_dnn_life_matches_serial_stream() {
        use dnnlife_mitigation::{AgingController, DnnLife, PseudoTrbg};
        let mem = tiny_memory();
        let proto = DnnLife::new(8, AgingController::new(PseudoTrbg::new(77, 0.7), 4));
        let mut serial_policy = proto.fork(0);
        let serial = simulate_exact_sampled(&mem, serial_policy.as_mut(), 4, 3);
        let cfg = ExactShardConfig::default();
        let sharded = simulate_exact_sharded(&mem, &proto, 4, 3, &cfg).expect("not cancelled");
        assert_eq!(
            sharded, serial,
            "one shard must replay the serial TRBG stream"
        );
    }

    #[test]
    fn sharded_dnn_life_stays_distribution_identical() {
        use dnnlife_mitigation::{AgingController, DnnLife, PseudoTrbg};
        let mem = tiny_memory();
        let proto = DnnLife::new(8, AgingController::new(PseudoTrbg::new(5, 0.5), 4));
        let mean = |duties: &[f64]| duties.iter().sum::<f64>() / duties.len() as f64;
        let base = simulate_exact_sharded(&mem, &proto, 60, 1, &ExactShardConfig::default())
            .expect("not cancelled");
        let split = simulate_exact_sharded(
            &mem,
            &proto,
            60,
            1,
            &ExactShardConfig {
                shards: 8,
                threads: 2,
                cancel: None,
                telemetry: None,
                parent_span: SpanId::NONE,
            },
        )
        .expect("not cancelled");
        assert_eq!(base.len(), split.len());
        assert_ne!(
            base, split,
            "different shard counts deal different TRBG draws"
        );
        assert!(
            (mean(&base) - mean(&split)).abs() < 0.02,
            "mean duty moved: {} vs {}",
            mean(&base),
            mean(&split)
        );
    }

    #[test]
    fn pre_raised_cancel_returns_none_immediately() {
        let mem = tiny_memory();
        let proto = Passthrough::new(8);
        let flag = AtomicBool::new(true);
        let cfg = ExactShardConfig {
            shards: 4,
            threads: 2,
            cancel: Some(&flag),
            telemetry: None,
            parent_span: SpanId::NONE,
        };
        // An inference count that would take far too long uncancelled.
        let started = std::time::Instant::now();
        assert_eq!(
            simulate_exact_sharded(&mem, &proto, u64::MAX, 1, &cfg),
            None
        );
        assert!(
            started.elapsed().as_secs() < 10,
            "cancellation was not prompt"
        );
    }
}
