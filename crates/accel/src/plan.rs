//! Dataflow plans: how weight blocks map onto the on-chip memory.
//!
//! Both platforms follow the Fig. 5 discipline — filters are grouped
//! into sets of `f`, each set is split into chunks that fit on chip,
//! and blocks stream through the memory in (layer, set, chunk) order —
//! but the physical memories differ:
//!
//! * [`FlatWeightMemory`] — the baseline accelerator's single weight
//!   buffer: every block rewrites the whole memory.
//! * [`FifoSlotMemory`] — one slot of the TPU-like NPU's four-tile-deep
//!   circular weight FIFO: tiles are written round-robin, so slot `s`
//!   sees tiles `s, s+4, s+8, …` of the global stream.
//!
//! Partial blocks/tiles are **zero-padded**: hardware must load inert
//! values into unused MAC lanes, and zero is the inert value for
//! multiply-accumulate. This is what makes small networks age the NPU
//! FIFO badly in Fig. 11 (most cells hold padding, i.e. constant bits).
//!
//! Sources are *random access* (`word(block, w)` is a pure O(1)
//! function), which the analytic simulator exploits for parallelism and
//! sampling.

use std::sync::Arc;

use dnnlife_mitigation::RemapSchedule;
use dnnlife_nn::weights::{LayerWeightGen, WeightRange};
use dnnlife_nn::zoo::NetworkSpec;
use dnnlife_quant::{EccLayout, NumberFormat, Quantizer, RepairPolicy};

/// Where one layer's weight values come from: the synthetic
/// counter-based generator (the default — pure `O(1)` random access),
/// or an explicit per-layer table (trained weights supplied by the
/// fault-injection pipeline, so the simulated memory holds exactly the
/// values the executable network computes with).
#[derive(Debug, Clone)]
enum WeightSource {
    /// Synthetic trained-like model (`dnnlife_nn::weights`).
    Gen(LayerWeightGen),
    /// Explicit weight table in canonical `[out][in]` order.
    Table(Arc<Vec<f32>>),
}

impl WeightSource {
    fn weight(&self, index: u64) -> f32 {
        match self {
            WeightSource::Gen(gen) => gen.weight(index),
            WeightSource::Table(table) => table[usize::try_from(index).expect("index fits usize")],
        }
    }

    /// Observed range over the first `limit` weights (quantizer
    /// calibration — mirrors [`LayerWeightGen::range`]).
    fn range(&self, limit: u64) -> WeightRange {
        match self {
            WeightSource::Gen(gen) => gen.range(limit),
            WeightSource::Table(table) => {
                let n = (table.len() as u64).min(limit.max(1));
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for &w in &table[..n as usize] {
                    lo = lo.min(w);
                    hi = hi.max(w);
                }
                WeightRange {
                    min: lo,
                    max: hi,
                    sampled: n,
                }
            }
        }
    }
}

/// Validates explicit per-layer tables against `spec` and wraps each
/// in a shared handle — built once per plan *set*, so the four FIFO
/// slots of one NPU plan share the same table allocations instead of
/// deep-copying every weight per slot.
fn shared_tables(spec: &NetworkSpec, tables: &[Vec<f32>]) -> Vec<Arc<Vec<f32>>> {
    assert_eq!(
        tables.len(),
        spec.layers().len(),
        "weight tables: {} tables for {} layers",
        tables.len(),
        spec.layers().len()
    );
    spec.layers()
        .iter()
        .zip(tables)
        .map(|(layer, table)| {
            assert_eq!(
                table.len() as u64,
                layer.weight_count(),
                "weight table for layer {} holds {} weights, spec says {}",
                layer.name(),
                table.len(),
                layer.weight_count()
            );
            Arc::new(table.clone())
        })
        .collect()
}

/// Per-layer weight sources over shared table handles.
fn sources_from_shared(shared: &[Arc<Vec<f32>>]) -> Vec<WeightSource> {
    shared.iter().cloned().map(WeightSource::Table).collect()
}

/// Builds per-layer weight sources from explicit tables, validating the
/// shape against `spec`.
fn table_sources(spec: &NetworkSpec, tables: &[Vec<f32>]) -> Vec<WeightSource> {
    sources_from_shared(&shared_tables(spec, tables))
}

/// Physical location of one canonical weight inside a memory unit:
/// which block writes it and at which word address it lands (every
/// repetition of the block rewrites the same address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightAddress {
    /// Block (memory fill / FIFO tile) carrying the weight.
    pub block: u64,
    /// Word address inside the memory unit.
    pub word: usize,
}

/// Shape of one simulated memory unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryGeometry {
    /// Width of one weight word in bits (8 or 32).
    pub word_bits: u32,
    /// Number of weight words in the memory unit.
    pub words: usize,
}

impl MemoryGeometry {
    /// Total SRAM cells in this unit.
    pub fn cells(&self) -> u64 {
        self.words as u64 * u64::from(self.word_bits)
    }
}

/// A random-access stream of weight blocks targeting one memory unit.
pub trait BlockSource: Sync {
    /// Memory unit shape.
    fn geometry(&self) -> MemoryGeometry;

    /// Number of distinct blocks written per inference (the paper's `K`
    /// for this memory unit).
    fn block_count(&self) -> u64;

    /// The stored word written to address `word` by block `block`
    /// (zero-padded outside the occupied region).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `block >= block_count()` or `word >=
    /// geometry().words`.
    fn word(&self, block: u64, word: usize) -> u64;

    /// Global block-write index of `(inference, block)` — what the
    /// DNN-Life controller's M-bit register counts.
    fn global_block_index(&self, inference: u64, block: u64) -> u64;

    /// Relative residency time of `block` (mean 1.0). The paper's
    /// assumption (b) is equal residency; sources may override this to
    /// model compute-weighted residency (§III-C notes that per-layer
    /// processing times vary). Only the event-driven simulator honours
    /// non-uniform dwell.
    fn dwell(&self, _block: u64) -> f64 {
        1.0
    }

    /// Human-readable label for reports.
    fn label(&self) -> String;
}

/// Per-layer slice of a flat dataflow plan.
#[derive(Debug, Clone)]
struct LayerPlan {
    /// Offset of this layer in the dataflow-ordered weight stream.
    stream_offset: u64,
    /// Stream length of this layer: `sets × f × weights_per_filter`
    /// (ragged final sets carry zero-padded lanes).
    stream_len: u64,
    /// Filters in the layer.
    filters: u64,
    /// Weights per filter.
    weights_per_filter: u64,
    /// Weight values for the layer.
    source: WeightSource,
    /// Calibrated quantizer for the layer.
    quantizer: Quantizer,
}

/// The baseline accelerator's weight buffer under the Fig. 5 dataflow.
///
/// Filters are grouped into sets of `f`; each set's weights stream out
/// interleaved (one word per filter lane, matching the `f × N`-wide
/// memory rows of Fig. 4); consecutive sets and layers pack
/// back-to-back; and the stream is chopped into memory-sized fills.
/// Each fill is one *block* in the paper's sense — `K = ceil(DNN size /
/// memory size)`, exactly the quantity Eq. 1 reasons about (117 for
/// 8-bit AlexNet on the 512 KB baseline, 466 for fp32).
///
/// # Example
///
/// ```
/// use dnnlife_accel::{AcceleratorConfig, BlockSource, FlatWeightMemory};
/// use dnnlife_nn::NetworkSpec;
/// use dnnlife_quant::NumberFormat;
///
/// let mem = FlatWeightMemory::new(
///     &AcceleratorConfig::baseline(),
///     &NetworkSpec::alexnet(),
///     NumberFormat::Int8Symmetric,
///     42,
/// );
/// assert_eq!(mem.block_count(), 117);
/// ```
#[derive(Debug, Clone)]
pub struct FlatWeightMemory {
    geometry: MemoryGeometry,
    parallel_filters: u64,
    layers: Vec<LayerPlan>,
    stream_len: u64,
    total_blocks: u64,
    label: String,
    /// Optional per-block relative residency (mean 1.0).
    dwell_weights: Option<Vec<f64>>,
    /// Optional SECDED layout: stored words carry parity columns.
    ecc: Option<EccLayout>,
}

/// Sample cap for quantizer range calibration (see
/// [`dnnlife_quant::distribution::DEFAULT_SAMPLE_CAP`]).
const RANGE_CAP: u64 = 1_000_000;

impl FlatWeightMemory {
    /// Plans the dataflow of `spec` on `config` with weights stored in
    /// `format`.
    ///
    /// # Panics
    ///
    /// Panics if the memory cannot hold at least one weight.
    pub fn new(
        config: &crate::config::AcceleratorConfig,
        spec: &NetworkSpec,
        format: NumberFormat,
        seed: u64,
    ) -> Self {
        let sources = spec
            .layers()
            .iter()
            .enumerate()
            .map(|(li, _)| WeightSource::Gen(LayerWeightGen::new(spec, li, seed)))
            .collect();
        Self::with_sources(config, spec, format, sources)
    }

    /// Plans the same dataflow with weights read from explicit
    /// per-layer tables (canonical `[out][in]` order) instead of the
    /// synthetic generator — the path the fault-injection pipeline uses
    /// so that the aged memory holds exactly the trained weights the
    /// executable network computes with. Quantizers are calibrated from
    /// the table ranges, matching what [`FlatWeightMemory::new`] does
    /// for generated weights.
    ///
    /// # Panics
    ///
    /// Panics if the table count or any table length disagrees with
    /// `spec`, or if the memory cannot hold at least one weight.
    pub fn with_weight_tables(
        config: &crate::config::AcceleratorConfig,
        spec: &NetworkSpec,
        format: NumberFormat,
        tables: &[Vec<f32>],
    ) -> Self {
        Self::with_sources(config, spec, format, table_sources(spec, tables))
    }

    fn with_sources(
        config: &crate::config::AcceleratorConfig,
        spec: &NetworkSpec,
        format: NumberFormat,
        sources: Vec<WeightSource>,
    ) -> Self {
        let word_bits = format.bits() as u32;
        let words = config.weight_capacity(word_bits) as usize;
        assert!(words > 0, "FlatWeightMemory: memory holds no weights");
        let f = config.parallel_filters;
        let mut layers = Vec::with_capacity(spec.layers().len());
        let mut offset = 0u64;
        for (layer, source) in spec.layers().iter().zip(sources) {
            let filters = layer.filter_count();
            let wpf = layer.weights_per_filter();
            let sets = filters.div_ceil(f);
            let stream_len = sets * f * wpf;
            let quantizer = Quantizer::calibrate(format, &source.range(RANGE_CAP));
            layers.push(LayerPlan {
                stream_offset: offset,
                stream_len,
                filters,
                weights_per_filter: wpf,
                source,
                quantizer,
            });
            offset += stream_len;
        }
        let total_blocks = offset.div_ceil(words as u64);
        Self {
            geometry: MemoryGeometry { word_bits, words },
            parallel_filters: f,
            layers,
            stream_len: offset,
            total_blocks,
            label: format!("{}/{}/{}", config.name, spec.name(), format),
            dwell_weights: None,
            ecc: None,
        }
    }

    /// Wraps the stored words in `policy`'s error-correcting code: the
    /// memory grows the parity columns ([`RepairPolicy::parity_bits`]
    /// extra bits per word, reflected in [`BlockSource::geometry`]),
    /// and every stored word becomes the interleaved codeword of its
    /// data word — so the duty and lifetime models age the parity
    /// cells alongside the data cells (parity is rewritten on every
    /// weight write). A no-repair policy returns the plan unchanged.
    ///
    /// # Panics
    ///
    /// Panics if ECC was already applied, or the policy is invalid for
    /// this word width (see [`RepairPolicy::is_valid_for`]).
    pub fn with_repair(mut self, policy: &RepairPolicy) -> Self {
        let Some(layout) = policy.layout(self.geometry.word_bits) else {
            return self;
        };
        assert!(self.ecc.is_none(), "FlatWeightMemory: ECC applied twice");
        self.geometry.word_bits = layout.width();
        self.ecc = Some(layout);
        self
    }

    /// The calibrated quantizer of layer `layer` — what
    /// [`BlockSource::word`] encodes that layer's weights with, exposed
    /// so fault injection decodes corrupted codes with the exact same
    /// scale/zero-point the memory image was built from.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_quantizer(&self, layer: usize) -> Quantizer {
        self.layers[layer].quantizer
    }

    /// The physical address of canonical weight `index` of layer
    /// `layer` (the inverse of the [`BlockSource::word`] dataflow
    /// mapping): the block that writes it and the word it lands on.
    /// Always well-defined — every real weight occupies exactly one
    /// (block, word) slot; padded lanes have no canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `layer` or `index` is out of range.
    pub fn locate_weight(&self, layer: usize, index: u64) -> WeightAddress {
        let plan = &self.layers[layer];
        assert!(
            index < plan.filters * plan.weights_per_filter,
            "locate_weight: index {index} out of range for layer {layer}"
        );
        let f = self.parallel_filters;
        let filter = index / plan.weights_per_filter;
        let weight_index = index % plan.weights_per_filter;
        let set = filter / f;
        let in_set = weight_index * f + filter % f;
        let pos = plan.stream_offset + set * (f * plan.weights_per_filter) + in_set;
        WeightAddress {
            block: pos / self.geometry.words as u64,
            word: (pos % self.geometry.words as u64) as usize,
        }
    }

    /// Length of the dataflow-ordered weight stream (including padded
    /// lanes of ragged final filter sets).
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// Switches from the paper's equal-residency assumption (b) to
    /// compute-weighted residency: each memory fill stays resident for
    /// a time proportional to the MAC work of the weights it holds
    /// (conv fills are reused across output positions and stay resident
    /// far longer than FC fills). `spec` must be the same network the
    /// plan was built from. Honoured by [`crate::simulate_exact`]; the
    /// analytic simulator rejects non-uniform dwell.
    ///
    /// # Panics
    ///
    /// Panics if `spec` has a different layer structure than the plan.
    pub fn with_compute_weighted_residency(self, spec: &NetworkSpec) -> Self {
        let weights = self.layer_proportional_weights(spec);
        self.with_dwell_weights(weights)
    }

    /// Per-block residency weights proportional to MAC work: each block
    /// weighs the per-word MAC count of the layers it spans (the
    /// [`FlatWeightMemory::with_compute_weighted_residency`] model,
    /// exposed so callers can inspect or post-process the weights).
    ///
    /// # Panics
    ///
    /// Panics if `spec` has a different layer structure than the plan.
    pub fn layer_proportional_weights(&self, spec: &NetworkSpec) -> Vec<f64> {
        assert_eq!(
            spec.layers().len(),
            self.layers.len(),
            "layer_proportional_weights: spec mismatch"
        );
        // MACs per stream word, by layer.
        let per_word: Vec<f64> = spec
            .layers()
            .iter()
            .zip(&self.layers)
            .map(|(ls, plan)| ls.macs() as f64 / plan.stream_len as f64)
            .collect();
        self.per_word_factor_weights(&per_word)
    }

    /// Per-block residency weights from arbitrary per-layer factors:
    /// `factors[li]` is the relative time the memory dwells on one word
    /// of layer `li`, and a block's weight sums the factors of the
    /// stream words it holds. This is how custom dwell models are
    /// constructed from a [`NetworkSpec`]'s layer structure.
    ///
    /// # Panics
    ///
    /// Panics if `factors.len()` differs from the plan's layer count.
    pub fn per_layer_dwell_weights(&self, factors: &[f64]) -> Vec<f64> {
        assert_eq!(
            factors.len(),
            self.layers.len(),
            "per_layer_dwell_weights: {} factors for {} layers",
            factors.len(),
            self.layers.len()
        );
        self.per_word_factor_weights(factors)
    }

    fn per_word_factor_weights(&self, per_word: &[f64]) -> Vec<f64> {
        let words = self.geometry.words as u64;
        let mut weights = Vec::with_capacity(self.total_blocks as usize);
        for k in 0..self.total_blocks {
            let lo = k * words;
            let hi = ((k + 1) * words).min(self.stream_len);
            let mut work = 0.0f64;
            for (li, plan) in self.layers.iter().enumerate() {
                let seg_lo = lo.max(plan.stream_offset);
                let seg_hi = hi.min(plan.stream_offset + plan.stream_len);
                if seg_hi > seg_lo {
                    work += (seg_hi - seg_lo) as f64 * per_word[li];
                }
            }
            weights.push(work);
        }
        weights
    }

    /// Installs explicit per-block residency weights (one per block,
    /// any positive scale — duties depend only on ratios). Weights are
    /// normalised to mean 1.0, with a small positive floor for
    /// zero-work padding blocks (the memory still holds them for the
    /// transfer). Honoured by [`crate::simulate_exact`]; the analytic
    /// simulator rejects non-uniform dwell.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.block_count()`, or any weight
    /// is negative or non-finite, or all weights are zero.
    pub fn with_dwell_weights(mut self, weights: Vec<f64>) -> Self {
        self.dwell_weights = Some(normalize_dwell(weights, self.total_blocks));
        self
    }
}

/// Normalises raw residency weights to mean 1.0 with a `1e-3` floor.
fn normalize_dwell(mut weights: Vec<f64>, blocks: u64) -> Vec<f64> {
    assert_eq!(
        weights.len() as u64,
        blocks,
        "dwell weights: {} values for {blocks} blocks",
        weights.len()
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "dwell weights must be finite and non-negative"
    );
    let mean = weights.iter().sum::<f64>() / weights.len() as f64;
    assert!(mean > 0.0, "dwell weights must not all be zero");
    for w in &mut weights {
        *w = (*w / mean).max(1e-3);
    }
    weights
}

/// Zipf-style hot-block residency: block `b` (stream order) dwells for
/// a time proportional to `(b + 1)^-exponent`. `exponent = 0` is
/// uniform; larger exponents concentrate residency on the first blocks
/// of the stream (the paper's early conv layers). Feed the result to
/// [`FlatWeightMemory::with_dwell_weights`] /
/// [`FifoSlotMemory::with_dwell_weights`].
///
/// # Panics
///
/// Panics if `blocks == 0` or `exponent` is negative or non-finite.
pub fn zipf_weights(blocks: u64, exponent: f64) -> Vec<f64> {
    assert!(blocks > 0, "zipf_weights: no blocks");
    assert!(
        exponent.is_finite() && exponent >= 0.0,
        "zipf_weights: bad exponent {exponent}"
    );
    (0..blocks)
        .map(|b| ((b + 1) as f64).powf(-exponent))
        .collect()
}

impl BlockSource for FlatWeightMemory {
    fn geometry(&self) -> MemoryGeometry {
        self.geometry
    }

    fn block_count(&self) -> u64 {
        self.total_blocks
    }

    fn word(&self, block: u64, word: usize) -> u64 {
        assert!(block < self.total_blocks, "block out of range");
        assert!(word < self.geometry.words, "word out of range");
        let pos = block * self.geometry.words as u64 + word as u64;
        if pos >= self.stream_len {
            return 0; // tail of the final fill (codeword of 0 is 0)
        }
        // Locate the layer containing this stream position.
        let idx = self
            .layers
            .partition_point(|l| l.stream_offset + l.stream_len <= pos);
        let layer = &self.layers[idx];
        let local = pos - layer.stream_offset;
        let f = self.parallel_filters;
        let set_len = f * layer.weights_per_filter;
        let set = local / set_len;
        let in_set = local % set_len;
        // Interleaved rows: consecutive stream words cycle over the f
        // filter lanes of the set.
        let weight_index = in_set / f;
        let filter_in_set = in_set % f;
        let filter = set * f + filter_in_set;
        if filter >= layer.filters {
            return 0; // padded lane of a ragged final set
        }
        let canonical = filter * layer.weights_per_filter + weight_index;
        let data = u64::from(layer.quantizer.encode(layer.source.weight(canonical)));
        match &self.ecc {
            Some(layout) => layout.store(data),
            None => data,
        }
    }

    fn global_block_index(&self, inference: u64, block: u64) -> u64 {
        inference * self.total_blocks + block
    }

    fn dwell(&self, block: u64) -> f64 {
        self.dwell_weights
            .as_ref()
            .map_or(1.0, |w| w[block as usize])
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Per-layer slice of the NPU tile plan.
#[derive(Debug, Clone)]
struct LayerTiles {
    tile_offset: u64,
    tiles: u64,
    row_tiles: u64,
    filters: u64,
    weights_per_filter: u64,
    source: WeightSource,
    quantizer: Quantizer,
}

/// One slot of the TPU-like NPU's circular weight FIFO.
///
/// The FIFO is four tiles deep; the global tile stream (layer by layer,
/// filter-set by filter-set, then row-chunks — the Fig. 5 order with
/// `f = 256`) is written round-robin, so slot `s` holds tiles
/// `s, s + 4, s + 8, …`. Each slot is simulated as its own 256 × 256 ×
/// 8-bit memory unit; Fig. 11 histograms merge the four slots.
///
/// # Example
///
/// ```
/// use dnnlife_accel::{BlockSource, FifoSlotMemory};
/// use dnnlife_nn::NetworkSpec;
/// use dnnlife_quant::NumberFormat;
///
/// let slots = FifoSlotMemory::all_slots(
///     &NetworkSpec::custom_mnist(),
///     NumberFormat::Int8Symmetric,
///     42,
/// );
/// assert_eq!(slots.len(), 4);
/// let total: u64 = slots.iter().map(|s| s.block_count()).sum();
/// // The custom network spans 7 tiles (conv1:1, conv2:2, fc1:4... see tests).
/// assert!(total >= 7);
/// ```
#[derive(Debug, Clone)]
pub struct FifoSlotMemory {
    slot: u64,
    depth: u64,
    tile_side: u64,
    layers: Vec<LayerTiles>,
    total_tiles: u64,
    local_blocks: u64,
    label: String,
    /// Optional per-block relative residency (mean 1.0).
    dwell_weights: Option<Vec<f64>>,
    /// Optional SECDED layout: stored words carry parity columns.
    ecc: Option<EccLayout>,
}

impl FifoSlotMemory {
    /// FIFO depth in tiles (Table I: "four tiles deep").
    pub const DEPTH: u64 = 4;
    /// Tile side in weights (256 × 256 PE array).
    pub const TILE_SIDE: u64 = 256;

    /// Plans slot `slot` (0..4) of the FIFO for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 4` or `format` is not 8-bit (the NPU datapath
    /// is 8-bit per Table I).
    pub fn new(slot: u64, spec: &NetworkSpec, format: NumberFormat, seed: u64) -> Self {
        let sources = spec
            .layers()
            .iter()
            .enumerate()
            .map(|(li, _)| WeightSource::Gen(LayerWeightGen::new(spec, li, seed)))
            .collect();
        Self::with_sources(slot, spec, format, sources)
    }

    /// Plans slot `slot` with weights read from explicit per-layer
    /// tables — see [`FlatWeightMemory::with_weight_tables`].
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 4`, `format` is not 8-bit, or the tables
    /// disagree with `spec`.
    pub fn with_weight_tables(
        slot: u64,
        spec: &NetworkSpec,
        format: NumberFormat,
        tables: &[Vec<f32>],
    ) -> Self {
        Self::with_sources(slot, spec, format, table_sources(spec, tables))
    }

    fn with_sources(
        slot: u64,
        spec: &NetworkSpec,
        format: NumberFormat,
        sources: Vec<WeightSource>,
    ) -> Self {
        let (layers, total_tiles) = Self::plan_layers(spec, format, sources);
        Self::from_plan(slot, spec, format, layers, total_tiles)
    }

    /// The slot-independent part of the plan: tile layout and quantizer
    /// calibration per layer. Calibration sweeps up to [`RANGE_CAP`]
    /// weights per layer, so `all_slots` computes this once and shares
    /// it across the four slots instead of re-sweeping per slot.
    fn plan_layers(
        spec: &NetworkSpec,
        format: NumberFormat,
        sources: Vec<WeightSource>,
    ) -> (Vec<LayerTiles>, u64) {
        assert_eq!(
            format.bits(),
            8,
            "FifoSlotMemory: the NPU weight FIFO stores 8-bit weights"
        );
        let side = Self::TILE_SIDE;
        let mut layers = Vec::with_capacity(spec.layers().len());
        let mut offset = 0u64;
        for (layer, source) in spec.layers().iter().zip(sources) {
            let filters = layer.filter_count();
            let wpf = layer.weights_per_filter();
            let col_tiles = filters.div_ceil(side);
            let row_tiles = wpf.div_ceil(side);
            let quantizer = Quantizer::calibrate(format, &source.range(RANGE_CAP));
            layers.push(LayerTiles {
                tile_offset: offset,
                tiles: col_tiles * row_tiles,
                row_tiles,
                filters,
                weights_per_filter: wpf,
                source,
                quantizer,
            });
            offset += col_tiles * row_tiles;
        }
        (layers, offset)
    }

    fn from_plan(
        slot: u64,
        spec: &NetworkSpec,
        format: NumberFormat,
        layers: Vec<LayerTiles>,
        offset: u64,
    ) -> Self {
        assert!(
            slot < Self::DEPTH,
            "FifoSlotMemory: slot {slot} out of range"
        );
        let local_blocks = if offset > slot {
            (offset - slot).div_ceil(Self::DEPTH)
        } else {
            0
        };
        Self {
            slot,
            depth: Self::DEPTH,
            tile_side: Self::TILE_SIDE,
            layers,
            total_tiles: offset,
            local_blocks,
            label: format!("tpu-like-npu/{}/{}/slot{}", spec.name(), format, slot),
            dwell_weights: None,
            ecc: None,
        }
    }

    /// Wraps the stored words in `policy`'s error-correcting code —
    /// see [`FlatWeightMemory::with_repair`]. The NPU's 8-bit datapath
    /// grows to 13-bit SECDED codewords per word.
    ///
    /// # Panics
    ///
    /// Panics if ECC was already applied, or the policy is invalid for
    /// 8-bit words.
    pub fn with_repair(mut self, policy: &RepairPolicy) -> Self {
        let Some(layout) = policy.layout(8) else {
            return self;
        };
        assert!(self.ecc.is_none(), "FifoSlotMemory: ECC applied twice");
        self.ecc = Some(layout);
        self
    }

    /// All four slots of the FIFO. The per-layer plan (tile layout and
    /// quantizer calibration) is slot-independent, so it is computed
    /// once and shared — building all four slots costs one calibration
    /// sweep, not four.
    pub fn all_slots(spec: &NetworkSpec, format: NumberFormat, seed: u64) -> Vec<Self> {
        let sources = spec
            .layers()
            .iter()
            .enumerate()
            .map(|(li, _)| WeightSource::Gen(LayerWeightGen::new(spec, li, seed)))
            .collect();
        let (layers, total_tiles) = Self::plan_layers(spec, format, sources);
        (0..Self::DEPTH)
            .map(|s| Self::from_plan(s, spec, format, layers.clone(), total_tiles))
            .collect()
    }

    /// All four slots with explicit per-layer weight tables — see
    /// [`FlatWeightMemory::with_weight_tables`].
    ///
    /// # Panics
    ///
    /// Panics if `format` is not 8-bit or the tables disagree with
    /// `spec`.
    pub fn all_slots_with_weight_tables(
        spec: &NetworkSpec,
        format: NumberFormat,
        tables: &[Vec<f32>],
    ) -> Vec<Self> {
        // One validation + one allocation per layer, one calibration
        // sweep; the four slots share the table handles and the plan.
        let shared = shared_tables(spec, tables);
        let (layers, total_tiles) = Self::plan_layers(spec, format, sources_from_shared(&shared));
        (0..Self::DEPTH)
            .map(|s| Self::from_plan(s, spec, format, layers.clone(), total_tiles))
            .collect()
    }

    /// The calibrated quantizer of layer `layer` — see
    /// [`FlatWeightMemory::layer_quantizer`].
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_quantizer(&self, layer: usize) -> Quantizer {
        self.layers[layer].quantizer
    }

    /// The physical address of canonical weight `index` of layer
    /// `layer` *if its tile round-robins into this slot* — `None` when
    /// another slot holds it (exactly one of the four slots returns
    /// `Some` for every weight).
    ///
    /// # Panics
    ///
    /// Panics if `layer` or `index` is out of range.
    pub fn locate_weight(&self, layer: usize, index: u64) -> Option<WeightAddress> {
        let plan = &self.layers[layer];
        assert!(
            index < plan.filters * plan.weights_per_filter,
            "locate_weight: index {index} out of range for layer {layer}"
        );
        let side = self.tile_side;
        let filter = index / plan.weights_per_filter;
        let weight_index = index % plan.weights_per_filter;
        let col_tile = filter / side;
        let row_tile = weight_index / side;
        let tile = plan.tile_offset + col_tile * plan.row_tiles + row_tile;
        if tile % self.depth != self.slot {
            return None;
        }
        Some(WeightAddress {
            block: (tile - self.slot) / self.depth,
            word: ((weight_index % side) * side + filter % side) as usize,
        })
    }

    /// Total tiles streamed per inference (across all slots).
    pub fn total_tiles(&self) -> u64 {
        self.total_tiles
    }

    /// The layer index owning tile number `tile` of the global stream.
    fn layer_of_tile(&self, tile: u64) -> usize {
        self.layers
            .iter()
            .position(|l| tile < l.tile_offset + l.tiles)
            .expect("tile within plan")
    }

    /// Per-block residency weights proportional to MAC work, mirroring
    /// [`FlatWeightMemory::layer_proportional_weights`]: a tile dwells
    /// for the per-word MAC count of its layer.
    ///
    /// # Panics
    ///
    /// Panics if `spec` has a different layer structure than the plan.
    pub fn layer_proportional_weights(&self, spec: &NetworkSpec) -> Vec<f64> {
        assert_eq!(
            spec.layers().len(),
            self.layers.len(),
            "layer_proportional_weights: spec mismatch"
        );
        let words_per_tile = (self.tile_side * self.tile_side) as f64;
        let factors: Vec<f64> = spec
            .layers()
            .iter()
            .zip(&self.layers)
            .map(|(ls, plan)| ls.macs() as f64 / (plan.tiles as f64 * words_per_tile))
            .collect();
        self.per_layer_dwell_weights(&factors)
    }

    /// Zipf residency by **global** tile stream order: local block `b`
    /// of this slot is global tile `slot + b·depth`, so its weight is
    /// `(slot + b·depth + 1)^-exponent` — matching what
    /// [`zipf_weights`] assigns the same tiles on a flat memory. Using
    /// slot-local indices instead would give every slot's first tile
    /// full weight regardless of where it sits in the stream.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is negative or non-finite.
    pub fn zipf_dwell_weights(&self, exponent: f64) -> Vec<f64> {
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "zipf_dwell_weights: bad exponent {exponent}"
        );
        (0..self.local_blocks)
            .map(|b| ((self.slot + b * self.depth + 1) as f64).powf(-exponent))
            .collect()
    }

    /// Per-block residency weights from per-layer factors (`factors[li]`
    /// = relative dwell per word of layer `li`; a tile is wholly owned
    /// by one layer, so its weight is that layer's factor).
    ///
    /// # Panics
    ///
    /// Panics if `factors.len()` differs from the plan's layer count.
    pub fn per_layer_dwell_weights(&self, factors: &[f64]) -> Vec<f64> {
        assert_eq!(
            factors.len(),
            self.layers.len(),
            "per_layer_dwell_weights: {} factors for {} layers",
            factors.len(),
            self.layers.len()
        );
        (0..self.local_blocks)
            .map(|b| factors[self.layer_of_tile(self.slot + b * self.depth)])
            .collect()
    }

    /// Installs explicit per-block residency weights (see
    /// [`FlatWeightMemory::with_dwell_weights`]).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.block_count()` or any weight is
    /// negative or non-finite, or all weights are zero.
    pub fn with_dwell_weights(mut self, weights: Vec<f64>) -> Self {
        self.dwell_weights = Some(normalize_dwell(weights, self.local_blocks));
        self
    }
}

impl BlockSource for FifoSlotMemory {
    fn geometry(&self) -> MemoryGeometry {
        MemoryGeometry {
            word_bits: self.ecc.as_ref().map_or(8, EccLayout::width),
            words: (self.tile_side * self.tile_side) as usize,
        }
    }

    fn block_count(&self) -> u64 {
        self.local_blocks
    }

    fn word(&self, block: u64, word: usize) -> u64 {
        assert!(block < self.local_blocks, "block out of range");
        let tile = self.slot + block * self.depth;
        let layer = self
            .layers
            .iter()
            .find(|l| tile < l.tile_offset + l.tiles)
            .expect("tile within plan");
        let local = tile - layer.tile_offset;
        let col_tile = local / layer.row_tiles; // filter-set index
        let row_tile = local % layer.row_tiles; // chunk index
        let side = self.tile_side;
        let row = word as u64 / side; // weight-in-chunk
        let col = word as u64 % side; // filter-in-set
        let filter = col_tile * side + col;
        if filter >= layer.filters {
            return 0;
        }
        let weight_index = row_tile * side + row;
        if weight_index >= layer.weights_per_filter {
            return 0;
        }
        let canonical = filter * layer.weights_per_filter + weight_index;
        let data = u64::from(layer.quantizer.encode(layer.source.weight(canonical)));
        match &self.ecc {
            Some(layout) => layout.store(data),
            None => data,
        }
    }

    fn global_block_index(&self, inference: u64, block: u64) -> u64 {
        inference * self.total_tiles + self.slot + block * self.depth
    }

    fn dwell(&self, block: u64) -> f64 {
        self.dwell_weights
            .as_ref()
            .map_or(1.0, |w| w[block as usize])
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Wear-leveling view of a block source: the physical memory under a
/// periodic hot-row rotation ([`RemapSchedule`]).
///
/// The device lifetime is split into `E` epochs; within each epoch the
/// inner plan's `K` blocks stream as usual, but the logical→physical
/// row mapping is rotated per epoch. Both simulators age *physical*
/// cells, so the rotation is presented as a cyclic `E·K`-block source:
/// block `k′` is epoch `k′ / K` streaming inner block `k′ mod K`, and
/// `word(k′, p)` answers "what does physical word `p` hold then" —
/// `inner.word(k′ mod K, logical(p, epoch))`. Time-averaged physical
/// duty is then exactly the epoch-average of the unremapped duties,
/// with zero changes to either simulator.
///
/// Per-block dwell is inherited from the inner block (`dwell(k′) =
/// inner.dwell(k′ mod K)`), so uniform-dwell plans stay analytic-legal.
#[derive(Debug, Clone)]
pub struct RemappedMemory<S: BlockSource> {
    inner: S,
    schedule: RemapSchedule,
}

impl<S: BlockSource> RemappedMemory<S> {
    /// Wraps `inner` in an `epochs`-epoch rotation over rows of
    /// `row_words` words.
    ///
    /// # Panics
    ///
    /// Panics if the inner word count is not a whole number of
    /// `row_words`-word rows, or `epochs == 0`.
    pub fn new(inner: S, row_words: usize, epochs: u32) -> Self {
        let schedule = RemapSchedule::new(inner.geometry().words, row_words, epochs);
        Self { inner, schedule }
    }

    /// The rotation schedule in effect.
    pub fn schedule(&self) -> &RemapSchedule {
        &self.schedule
    }

    /// The unrotated plan.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: BlockSource> BlockSource for RemappedMemory<S> {
    fn geometry(&self) -> MemoryGeometry {
        self.inner.geometry()
    }

    fn block_count(&self) -> u64 {
        u64::from(self.schedule.epochs()) * self.inner.block_count()
    }

    fn word(&self, block: u64, word: usize) -> u64 {
        let k = self.inner.block_count();
        assert!(block < self.block_count(), "block out of range");
        let epoch = (block / k) as u32;
        let logical = self.schedule.logical_word(word as u64, epoch);
        self.inner.word(block % k, logical as usize)
    }

    fn global_block_index(&self, inference: u64, block: u64) -> u64 {
        inference * self.block_count() + block
    }

    fn dwell(&self, block: u64) -> f64 {
        self.inner.dwell(block % self.inner.block_count())
    }

    fn label(&self) -> String {
        format!(
            "{}+wear-level:{}",
            self.inner.label(),
            self.schedule.epochs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;

    #[test]
    fn alexnet_block_count_matches_paper_scale() {
        let mem = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &NetworkSpec::alexnet(),
            NumberFormat::Int8Symmetric,
            1,
        );
        // All AlexNet layers have filter counts divisible by f = 8, so
        // the stream is exactly the 60,954,656 weights; 512 KB fills:
        // ceil(60954656 / 524288) = 117 — the paper's "K = DNN size /
        // memory size".
        assert_eq!(mem.stream_len(), 60_954_656);
        assert_eq!(mem.block_count(), 117);
    }

    #[test]
    fn fp32_quarters_capacity_and_scales_blocks() {
        let int8 = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &NetworkSpec::alexnet(),
            NumberFormat::Int8Symmetric,
            1,
        );
        let fp32 = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &NetworkSpec::alexnet(),
            NumberFormat::Fp32,
            1,
        );
        assert_eq!(fp32.geometry().words, int8.geometry().words / 4);
        // 131072 fp32 words per fill: ceil(60954656 / 131072) = 466.
        assert_eq!(fp32.block_count(), 466);
    }

    #[test]
    fn words_are_deterministic_and_in_range() {
        let mem = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Asymmetric,
            7,
        );
        for block in 0..mem.block_count().min(4) {
            for word in [0usize, 1, 8, 100, mem.geometry().words - 1] {
                let a = mem.word(block, word);
                let b = mem.word(block, word);
                assert_eq!(a, b);
                assert!(a < 256, "8-bit word out of range: {a}");
            }
        }
    }

    #[test]
    fn interleaving_maps_consecutive_words_to_filters() {
        // For f=8: stream words 0..8 are weight 0 of filters 0..8.
        let spec = NetworkSpec::custom_mnist();
        let mem = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &spec,
            NumberFormat::Int8Symmetric,
            7,
        );
        let gen = LayerWeightGen::new(&spec, 0, 7);
        let quantizer = {
            let r = gen.range(u64::MAX);
            Quantizer::calibrate(NumberFormat::Int8Symmetric, &r)
        };
        for filter in 0..8u64 {
            let expect = u64::from(quantizer.encode(gen.weight(filter * 25)));
            assert_eq!(mem.word(0, filter as usize), expect, "filter {filter}");
        }
        // Word 8 is weight 1 of filter 0.
        let expect = u64::from(quantizer.encode(gen.weight(1)));
        assert_eq!(mem.word(0, 8), expect);
    }

    #[test]
    fn final_fill_tail_is_zero_padded() {
        // The custom network stream (231,696 words at 8-bit) does not
        // fill the last 512 KB block; its tail must be zero.
        let mem = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            7,
        );
        assert_eq!(mem.stream_len(), 231_696);
        assert_eq!(mem.block_count(), 1);
        assert_eq!(mem.word(0, mem.geometry().words - 1), 0);
    }

    #[test]
    fn ragged_set_lanes_are_zero_padded() {
        // conv2 of the custom net has 50 filters: the 7th set uses only
        // 2 of its 8 lanes. Stream position of conv2 set 6, weight 0,
        // lane 2 (filter 50 — out of range) must be zero.
        let mem = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            7,
        );
        // conv1 stream: 2 sets × 8 × 25 = 400 words; conv2 set 6 starts
        // at 400 + 6×8×400 = 19600; lane 2 is word 19602.
        assert_eq!(mem.word(0, 19_602), 0);
        // Lane 0 of that set (filter 48) is real data.
        assert_ne!(mem.word(0, 19_600), 0);
    }

    #[test]
    fn compute_weighted_dwell_favours_conv_fills() {
        let spec = NetworkSpec::alexnet();
        let mem = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &spec,
            NumberFormat::Int8Symmetric,
            1,
        )
        .with_compute_weighted_residency(&spec);
        // Mean dwell is 1.0 by construction.
        let k = mem.block_count();
        let mean: f64 = (0..k).map(|b| mem.dwell(b)).sum::<f64>() / k as f64;
        assert!((mean - 1.0).abs() < 1e-9);
        // The first fill (conv layers, heavy reuse) dwells far longer
        // than a mid-stream FC fill.
        let conv_dwell = mem.dwell(0);
        let fc_dwell = mem.dwell(k / 2); // deep inside fc6
        assert!(
            conv_dwell > 10.0 * fc_dwell,
            "conv {conv_dwell} vs fc {fc_dwell}"
        );
    }

    #[test]
    fn default_dwell_is_uniform() {
        let mem = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &NetworkSpec::alexnet(),
            NumberFormat::Int8Symmetric,
            1,
        );
        assert_eq!(mem.dwell(0), 1.0);
        assert_eq!(mem.dwell(mem.block_count() - 1), 1.0);
    }

    #[test]
    fn zipf_weights_decay_and_zero_exponent_is_uniform() {
        let flat = zipf_weights(5, 0.0);
        assert!(flat.iter().all(|w| (w - 1.0).abs() < 1e-12));
        let hot = zipf_weights(5, 1.0);
        for pair in hot.windows(2) {
            assert!(pair[0] > pair[1], "zipf weights must decay: {hot:?}");
        }
        assert!((hot[0] / hot[4] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_dwell_weights_normalize_to_mean_one() {
        let mut cfg = AcceleratorConfig::baseline();
        cfg.weight_memory_bytes = 2048;
        let mem = FlatWeightMemory::new(
            &cfg,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            3,
        );
        let k = mem.block_count();
        let mem = mem.with_dwell_weights(zipf_weights(k, 1.3));
        let mean: f64 = (0..k).map(|b| mem.dwell(b)).sum::<f64>() / k as f64;
        assert!((mean - 1.0).abs() < 1e-9, "mean dwell {mean}");
        assert!(mem.dwell(0) > mem.dwell(k - 1));
    }

    #[test]
    fn per_layer_factors_weight_blocks_by_layer_span() {
        // Two factors: double residency for conv1 words, none extra for
        // the rest. custom_mnist has 4 layers.
        let mut cfg = AcceleratorConfig::baseline();
        cfg.weight_memory_bytes = 2048;
        let mem = FlatWeightMemory::new(
            &cfg,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            3,
        );
        let raw = mem.per_layer_dwell_weights(&[2.0, 1.0, 1.0, 1.0]);
        assert_eq!(raw.len() as u64, mem.block_count());
        // Block 0 holds conv1 (400 words at factor 2) + conv2 start; it
        // must outweigh a pure-conv2 block.
        assert!(raw[0] > raw[1], "conv1 block {} vs {}", raw[0], raw[1]);
    }

    #[test]
    fn npu_dwell_weights_follow_tile_layers() {
        let spec = NetworkSpec::custom_mnist();
        let slots = FifoSlotMemory::all_slots(&spec, NumberFormat::Int8Symmetric, 1);
        // 8 tiles: conv1 (1), conv2 (2), fc1 (4), fc2 (1). Slot 0 holds
        // tiles 0 (conv1) and 4 (fc1).
        let raw = slots[0].per_layer_dwell_weights(&[8.0, 4.0, 2.0, 1.0]);
        assert_eq!(raw, vec![8.0, 2.0]);
        // Layer-proportional: conv1 is reused across 576 output
        // positions, fc1 only once per inference, so the conv tile
        // dwells far longer.
        let prop = slots[0].layer_proportional_weights(&spec);
        assert!(
            prop[0] > 4.0 * prop[1],
            "conv {0} vs fc {1}",
            prop[0],
            prop[1]
        );
        let mem = slots[0].clone().with_dwell_weights(prop);
        let mean = (mem.dwell(0) + mem.dwell(1)) / 2.0;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn npu_zipf_dwell_uses_global_tile_order() {
        let spec = NetworkSpec::custom_mnist();
        let slots = FifoSlotMemory::all_slots(&spec, NumberFormat::Int8Symmetric, 1);
        // Slot 1 holds global tiles 1 and 5; at exponent 1 their
        // weights must be 1/2 and 1/6 — a 3:1 ratio, not the 2:1 that
        // slot-local indices (1, 1/2) would give.
        let w = slots[1].zipf_dwell_weights(1.0);
        assert_eq!(w.len(), 2);
        assert!((w[0] - 0.5).abs() < 1e-12, "global tile 1: {}", w[0]);
        assert!((w[1] - 1.0 / 6.0).abs() < 1e-12, "global tile 5: {}", w[1]);
        // Consistency with the flat-memory convention: slot 0's first
        // tile is global tile 0 and gets the same weight zipf_weights
        // assigns stream position 0.
        let w0 = slots[0].zipf_dwell_weights(1.0);
        assert_eq!(w0[0], zipf_weights(8, 1.0)[0]);
    }

    #[test]
    fn npu_tile_counts() {
        let slots =
            FifoSlotMemory::all_slots(&NetworkSpec::custom_mnist(), NumberFormat::Int8Symmetric, 1);
        // conv1: 16 filters × 25 wpf → 1×1 = 1 tile; conv2: 50×400 → 1×2 = 2;
        // fc1: 256×800 → 1×4 = 4; fc2: 10×256 → 1×1 = 1. Total 8 tiles.
        assert_eq!(slots[0].total_tiles(), 8);
        // Round-robin: each slot gets exactly 2 of the 8 tiles.
        for s in &slots {
            assert_eq!(s.block_count(), 2);
        }
    }

    #[test]
    fn npu_global_index_is_round_robin() {
        let slot2 = FifoSlotMemory::new(
            2,
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            1,
        );
        assert_eq!(slot2.global_block_index(0, 0), 2);
        assert_eq!(slot2.global_block_index(0, 1), 6);
        // Second inference continues the global tile count (8 tiles/inf).
        assert_eq!(slot2.global_block_index(1, 0), 10);
    }

    #[test]
    fn npu_rejects_fp32() {
        let result = std::panic::catch_unwind(|| {
            FifoSlotMemory::new(0, &NetworkSpec::custom_mnist(), NumberFormat::Fp32, 1)
        });
        assert!(result.is_err());
    }

    fn gen_tables(spec: &NetworkSpec, seed: u64) -> Vec<Vec<f32>> {
        (0..spec.layers().len())
            .map(|li| {
                let gen = LayerWeightGen::new(spec, li, seed);
                gen.iter().collect()
            })
            .collect()
    }

    #[test]
    fn table_backed_flat_plan_reproduces_generated_words() {
        let spec = NetworkSpec::custom_mnist();
        let from_gen = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &spec,
            NumberFormat::Int8Asymmetric,
            9,
        );
        let from_tables = FlatWeightMemory::with_weight_tables(
            &AcceleratorConfig::baseline(),
            &spec,
            NumberFormat::Int8Asymmetric,
            &gen_tables(&spec, 9),
        );
        assert_eq!(from_tables.block_count(), from_gen.block_count());
        for word in [0usize, 1, 399, 19_600, 231_695] {
            assert_eq!(from_tables.word(0, word), from_gen.word(0, word));
        }
        assert_eq!(
            from_tables.layer_quantizer(2),
            from_gen.layer_quantizer(2),
            "table calibration must match the generator's range"
        );
    }

    #[test]
    fn table_backed_plan_sees_edited_weights() {
        let spec = NetworkSpec::custom_mnist();
        let mut tables = gen_tables(&spec, 9);
        tables[0][0] = 100.0; // outlier dominating conv1's calibration range
        let mem = FlatWeightMemory::with_weight_tables(
            &AcceleratorConfig::baseline(),
            &spec,
            NumberFormat::Int8Symmetric,
            &tables,
        );
        let addr = mem.locate_weight(0, 0);
        let code = mem.word(addr.block, addr.word);
        // The outlier dominates the symmetric range, so it encodes to
        // the top code.
        assert_eq!(code as u8 as i8, 127);
    }

    #[test]
    #[should_panic(expected = "weight table for layer")]
    fn table_shape_mismatch_rejected() {
        let spec = NetworkSpec::custom_mnist();
        let mut tables = gen_tables(&spec, 9);
        tables[1].pop();
        let _ = FlatWeightMemory::with_weight_tables(
            &AcceleratorConfig::baseline(),
            &spec,
            NumberFormat::Int8Symmetric,
            &tables,
        );
    }

    #[test]
    fn locate_weight_inverts_the_flat_dataflow() {
        let spec = NetworkSpec::custom_mnist();
        let mem = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &spec,
            NumberFormat::Int8Symmetric,
            7,
        );
        for (li, layer) in spec.layers().iter().enumerate() {
            let gen = LayerWeightGen::new(&spec, li, 7);
            let quantizer = mem.layer_quantizer(li);
            let count = layer.weight_count();
            for index in [0, 1, count / 2, count - 1] {
                let addr = mem.locate_weight(li, index);
                assert_eq!(
                    mem.word(addr.block, addr.word),
                    u64::from(quantizer.encode(gen.weight(index))),
                    "layer {li} weight {index} at {addr:?}"
                );
            }
        }
    }

    #[test]
    fn locate_weight_inverts_the_npu_dataflow() {
        let spec = NetworkSpec::custom_mnist();
        let slots = FifoSlotMemory::all_slots(&spec, NumberFormat::Int8Symmetric, 7);
        for (li, layer) in spec.layers().iter().enumerate() {
            let gen = LayerWeightGen::new(&spec, li, 7);
            let quantizer = slots[0].layer_quantizer(li);
            let count = layer.weight_count();
            for index in [0, 1, count / 2, count - 1] {
                let hits: Vec<(usize, WeightAddress)> = slots
                    .iter()
                    .enumerate()
                    .filter_map(|(s, slot)| slot.locate_weight(li, index).map(|a| (s, a)))
                    .collect();
                assert_eq!(hits.len(), 1, "layer {li} weight {index}: {hits:?}");
                let (s, addr) = hits[0];
                assert_eq!(
                    slots[s].word(addr.block, addr.word),
                    u64::from(quantizer.encode(gen.weight(index))),
                    "layer {li} weight {index} in slot {s} at {addr:?}"
                );
            }
        }
    }

    #[test]
    fn ecc_plan_grows_parity_columns_and_encodes_codewords() {
        use dnnlife_quant::{RepairPolicy, SecdedCode};
        let spec = NetworkSpec::custom_mnist();
        let secded = RepairPolicy::Secded { interleave: 1 };
        let plain = FlatWeightMemory::new(
            &AcceleratorConfig::baseline(),
            &spec,
            NumberFormat::Int8Symmetric,
            7,
        );
        let ecc = plain.clone().with_repair(&secded);
        // Geometry: same word count, 5 extra parity columns per word —
        // total cells are data + parity exactly.
        assert_eq!(ecc.geometry().words, plain.geometry().words);
        assert_eq!(ecc.geometry().word_bits, 13);
        assert_eq!(
            ecc.geometry().cells(),
            plain.geometry().cells() + plain.geometry().words as u64 * 5
        );
        // Every stored word is the codeword of the plain data word.
        let code = SecdedCode::for_data_bits(8);
        for word in [0usize, 1, 399, 19_600, 231_695] {
            assert_eq!(ecc.word(0, word), code.encode(plain.word(0, word)));
            assert_eq!(code.syndrome(ecc.word(0, word)), 0);
        }
        // `RepairPolicy::None` is the identity.
        let same = plain.clone().with_repair(&RepairPolicy::None);
        assert_eq!(same.geometry(), plain.geometry());
        assert_eq!(same.word(0, 42), plain.word(0, 42));

        // NPU slots grow the same columns.
        let slots = FifoSlotMemory::all_slots(&spec, NumberFormat::Int8Symmetric, 7);
        let slot_ecc = slots[0].clone().with_repair(&secded);
        assert_eq!(slot_ecc.geometry().word_bits, 13);
        assert_eq!(slot_ecc.geometry().words, slots[0].geometry().words);
        assert_eq!(slot_ecc.word(0, 5), code.encode(slots[0].word(0, 5)));
        // Interleaved layouts permute columns but keep the bit
        // population (the codeword content is identical).
        let scattered = slots[0]
            .clone()
            .with_repair(&RepairPolicy::Secded { interleave: 5 });
        let mut permuted_somewhere = false;
        for w in 0..100usize {
            assert_eq!(
                scattered.word(0, w).count_ones(),
                slot_ecc.word(0, w).count_ones(),
                "word {w}"
            );
            permuted_somewhere |= scattered.word(0, w) != slot_ecc.word(0, w);
        }
        assert!(permuted_somewhere, "stride-5 layout should move columns");
    }

    #[test]
    fn alexnet_npu_tiles() {
        let slots =
            FifoSlotMemory::all_slots(&NetworkSpec::alexnet(), NumberFormat::Int8Symmetric, 1);
        // 61M weights / 64Ki per tile, with per-layer ragged edges: the
        // count is near but above the dense bound.
        let total = slots[0].total_tiles();
        assert!((930..1100).contains(&total), "tiles = {total}");
    }

    fn small_flat() -> FlatWeightMemory {
        FlatWeightMemory::new(
            &AcceleratorConfig::crossbar(),
            &NetworkSpec::custom_mnist(),
            NumberFormat::Int8Symmetric,
            7,
        )
    }

    #[test]
    fn crossbar_geometry_matches_tile_budget() {
        let mem = small_flat();
        // 64 tiles × 128 WL × 128 BL single-bit cells = 131072 8-bit words.
        assert_eq!(mem.geometry().words, 131_072);
        assert_eq!(mem.geometry().word_bits, 8);
        // Custom MNIST (231,696 weights) streams as two crossbar fills.
        assert_eq!(mem.block_count(), 2);
    }

    #[test]
    fn remapped_memory_is_the_inner_plan_viewed_through_the_schedule() {
        let inner = small_flat();
        let k = inner.block_count();
        let remapped = RemappedMemory::new(inner.clone(), 16, 4);
        assert_eq!(remapped.block_count(), 4 * k);
        assert_eq!(remapped.geometry(), inner.geometry());
        let schedule = *remapped.schedule();
        for block in [0u64, k, 2 * k + 1, 4 * k - 1] {
            let epoch = (block / k) as u32;
            for word in [0usize, 17, 4000, 131_071] {
                let logical = schedule.logical_word(word as u64, epoch) as usize;
                assert_eq!(
                    remapped.word(block, word),
                    inner.word(block % k, logical),
                    "block {block} word {word}"
                );
            }
        }
        // Epoch 0 is the identity view.
        for word in 0..64 {
            assert_eq!(remapped.word(0, word), inner.word(0, word));
        }
    }

    #[test]
    fn remapped_memory_preserves_per_epoch_word_population() {
        let inner = small_flat();
        let k = inner.block_count();
        let remapped = RemappedMemory::new(inner.clone(), 16, 3);
        // Rotation only moves words, so each epoch's sum over physical
        // addresses equals the inner plan's sum over logical addresses.
        for inner_block in 0..k {
            let want: u64 = (0..inner.geometry().words)
                .map(|w| inner.word(inner_block, w))
                .sum();
            for epoch in 0..3u64 {
                let got: u64 = (0..inner.geometry().words)
                    .map(|w| remapped.word(epoch * k + inner_block, w))
                    .sum();
                assert_eq!(got, want, "epoch {epoch} block {inner_block}");
            }
        }
    }

    #[test]
    fn remapped_memory_inherits_dwell_per_inner_block() {
        let inner = small_flat().with_dwell_weights(vec![3.0, 1.0]);
        let d0 = inner.dwell(0);
        let d1 = inner.dwell(1);
        let remapped = RemappedMemory::new(inner, 16, 4);
        for epoch in 0..4u64 {
            assert_eq!(remapped.dwell(epoch * 2), d0);
            assert_eq!(remapped.dwell(epoch * 2 + 1), d1);
        }
    }

    #[test]
    fn remapped_memory_label_names_the_rotation() {
        let remapped = RemappedMemory::new(small_flat(), 16, 4);
        assert!(
            remapped.label().ends_with("+wear-level:4"),
            "{}",
            remapped.label()
        );
    }
}
