//! Closed-form lifetime simulator.
//!
//! The same `K` blocks cycle through the weight memory every inference
//! (§III-B), so a cell's lifetime bit sequence is highly structured and
//! per-policy duty cycles have closed forms:
//!
//! * **no mitigation** — duty is the mean of the cell's `K` block bits;
//! * **periodic inversion** — the per-location write parity alternates
//!   deterministically; the duty is an exact average over the
//!   `lcm(2, K)` write cycle plus the partial remainder;
//! * **barrel shifter** — the (data, shift) pair cycles with period
//!   `lcm(K, W)`; full cycles reduce to per-residue bit sums and the
//!   remainder is replayed directly — still exact;
//! * **DNN-Life** — conditioning on the deterministic bias-balancing
//!   MSB schedule, the number of inverted writes among a cell's `T`
//!   writes is a sum of independent Bernoulli draws, i.e. *two binomial
//!   variables* (one for writes where the stored bit would be the data
//!   bit, one for the complement). Sampling those two binomials per
//!   cell reproduces the exact per-cell duty distribution without
//!   simulating a single TRBG draw.
//!
//! One caveat is shared with every analytic treatment: cells in the
//! same word share TRBG draws, so *across* cells duties are weakly
//! correlated; sampling per cell preserves every marginal (and hence
//! the expected histogram) but not that correlation. The cross-
//! validation tests against the event-driven simulator bound the
//! effect.
//!
//! Work is `O(cells × K)` and embarrassingly parallel across words
//! (block sources are random-access). `sample_stride` simulates every
//! n-th word — an unbiased subsample of the cell population for
//! histogram purposes.

use crate::plan::BlockSource;
use crate::rng::SplitMix64;
use dnnlife_numerics::sample_binomial;
use dnnlife_telemetry::{Counter, SpanId, Telemetry};

/// Mitigation policy, in the closed-form parameterisation used by this
/// simulator (mirrors `dnnlife_mitigation::transducer`).
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyticPolicy {
    /// No mitigation.
    Passthrough,
    /// Invert every other write to the same location.
    PeriodicInversion,
    /// Rotate each write by a per-location schedule (one more position
    /// per write).
    BarrelShifter,
    /// The paper's randomised inversion.
    DnnLife {
        /// TRBG probability of emitting 1.
        bias: f64,
        /// `Some(m)` enables the M-bit bias-balancing register.
        bias_balancing: Option<u32>,
        /// Seed for the per-cell binomial draws.
        seed: u64,
    },
}

impl AnalyticPolicy {
    /// Short name matching `WriteTransducer::name`.
    pub fn name(&self) -> &'static str {
        match self {
            AnalyticPolicy::Passthrough => "none",
            AnalyticPolicy::PeriodicInversion => "inversion",
            AnalyticPolicy::BarrelShifter => "barrel-shifter",
            AnalyticPolicy::DnnLife { .. } => "dnn-life",
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyticSimConfig {
    /// Number of inferences over the device lifetime (the paper uses
    /// 100 to estimate duty cycles).
    pub inferences: u64,
    /// Simulate every `sample_stride`-th word (1 = all cells).
    pub sample_stride: usize,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Contiguous word shards the sampled population is split into —
    /// the same work-partitioning axis the exact backend's
    /// `ExactShardConfig::shards` uses, so both backends share one
    /// execution story (`RunOptions { shards }` resolves this for
    /// both). 0 derives one shard per worker thread. **Never
    /// semantic**: the analytic per-cell draws are counter-seeded, so
    /// every shard count produces identical bytes (unlike the exact
    /// backend, where the shard count deals DNN-Life TRBG streams).
    pub shards: usize,
}

impl Default for AnalyticSimConfig {
    fn default() -> Self {
        Self {
            inferences: 100,
            sample_stride: 1,
            threads: 0,
            shards: 0,
        }
    }
}

// The campaign executor calls `simulate_analytic` from scenario worker
// threads while the simulator itself shards cells across inner threads,
// so its inputs must stay `Send + Sync` (`BlockSource` already has the
// `Sync` supertrait). Enforced at compile time so a stray `Rc`/`RefCell`
// in a future policy variant fails here, not in a consumer crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnalyticPolicy>();
    assert_send_sync::<AnalyticSimConfig>();
    assert_send_sync::<crate::plan::FlatWeightMemory>();
    assert_send_sync::<crate::plan::FifoSlotMemory>();
};

/// Runs the analytic simulation, returning per-cell duty cycles for the
/// sampled words (cell order: sampled-word-major, bit 0 first).
///
/// # Panics
///
/// Panics if `sample_stride == 0` or `inferences == 0`.
///
/// # Example
///
/// ```
/// use dnnlife_accel::{simulate_analytic, AcceleratorConfig, AnalyticPolicy,
///                     AnalyticSimConfig, FlatWeightMemory};
/// use dnnlife_nn::NetworkSpec;
/// use dnnlife_quant::NumberFormat;
///
/// let mem = FlatWeightMemory::new(
///     &AcceleratorConfig::baseline(),
///     &NetworkSpec::custom_mnist(),
///     NumberFormat::Int8Symmetric,
///     42,
/// );
/// let cfg = AnalyticSimConfig { inferences: 100, sample_stride: 64, threads: 1, shards: 1 };
/// let duties = simulate_analytic(&mem, &AnalyticPolicy::PeriodicInversion, &cfg);
/// assert!(!duties.is_empty());
/// assert!(duties.iter().all(|d| (0.0..=1.0).contains(d)));
/// ```
pub fn simulate_analytic(
    source: &dyn BlockSource,
    policy: &AnalyticPolicy,
    cfg: &AnalyticSimConfig,
) -> Vec<f64> {
    simulate_analytic_telemetry(source, policy, cfg, None, SpanId::NONE)
}

/// [`simulate_analytic`] with an observability handle: shard and cell
/// counts are rolled into `telemetry`, and each word shard journals an
/// `analytic_shard` trace span under `parent` ([`AnalyticSimConfig`]
/// stays a plain `Eq` value type, so the borrowed handle and span
/// parent ride alongside it instead of inside). Never semantic —
/// duties are byte-identical with or without it.
///
/// # Panics
///
/// Panics if `sample_stride == 0` or `inferences == 0`.
pub fn simulate_analytic_telemetry(
    source: &dyn BlockSource,
    policy: &AnalyticPolicy,
    cfg: &AnalyticSimConfig,
    telemetry: Option<&Telemetry>,
    parent: SpanId,
) -> Vec<f64> {
    assert!(
        cfg.sample_stride > 0,
        "simulate_analytic: stride must be > 0"
    );
    assert!(
        cfg.inferences > 0,
        "simulate_analytic: inferences must be > 0"
    );
    let geo = source.geometry();
    let width = geo.word_bits as usize;
    let k_blocks = source.block_count();
    for block in 0..k_blocks {
        assert!(
            (source.dwell(block) - 1.0).abs() < 1e-12,
            "simulate_analytic: closed forms assume equal residency \
             (paper assumption (b)); use simulate_exact for weighted dwell"
        );
    }
    let telemetry = telemetry.unwrap_or_else(|| Telemetry::noop());
    let sampled: Vec<usize> = (0..geo.words).step_by(cfg.sample_stride).collect();
    if k_blocks == 0 {
        // An unused memory unit holds its reset state (all zeros).
        telemetry.add(
            Counter::AnalyticCellsSimulated,
            (sampled.len() * width) as u64,
        );
        return vec![0.0; sampled.len() * width];
    }

    // Deterministic per-block counts of MSB-high inferences for the
    // DNN-Life bias-balancing schedule (empty for other policies).
    let m1: Vec<u64> = match policy {
        AnalyticPolicy::DnnLife {
            bias_balancing: Some(m_bits),
            ..
        } => (0..k_blocks)
            .map(|k| {
                (0..cfg.inferences)
                    .filter(|&i| source.global_block_index(i, k) >> (m_bits - 1) & 1 == 1)
                    .count() as u64
            })
            .collect(),
        _ => Vec::new(),
    };

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    }
    .max(1);
    // Same partitioning story as the exact backend: contiguous balanced
    // word shards, executed by up to `threads` workers. Per-cell duties
    // are counter-seeded, so the partition is never semantic here.
    let shards = if cfg.shards == 0 { threads } else { cfg.shards }.clamp(1, sampled.len().max(1));
    let ranges = crate::exact::shard_ranges(sampled.len(), shards);
    let workers = threads.min(shards);

    /// One shard's work: its sampled-word range and the disjoint
    /// output slice it writes.
    type ShardJob<'a> = (std::ops::Range<usize>, &'a mut [f64]);

    let mut duties = vec![0.0f64; sampled.len() * width];
    {
        let m1 = &m1;
        let sampled = &sampled;
        // Hand each shard its disjoint output slice up front; workers
        // then pull (range, slice) pairs until the queue drains.
        let mut queue: Vec<ShardJob> = Vec::with_capacity(ranges.len());
        let mut rest: &mut [f64] = duties.as_mut_slice();
        for range in ranges {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(range.len() * width);
            rest = tail;
            queue.push((range, head));
        }
        if workers == 1 {
            for (range, out) in queue {
                let span = telemetry.span_start("analytic_shard", parent);
                simulate_words(source, policy, cfg, k_blocks, m1, &sampled[range], out);
                telemetry.span_end(span);
            }
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let jobs: Vec<std::sync::Mutex<Option<ShardJob>>> = queue
                .drain(..)
                .map(|job| std::sync::Mutex::new(Some(job)))
                .collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let (next, jobs) = (&next, &jobs);
                    scope.spawn(move || loop {
                        let slot = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(job) = jobs.get(slot) else {
                            break;
                        };
                        let (range, out) = job
                            .lock()
                            .expect("job mutex never poisoned")
                            .take()
                            .expect("each job claimed once");
                        let span = telemetry.span_start("analytic_shard", parent);
                        simulate_words(source, policy, cfg, k_blocks, m1, &sampled[range], out);
                        telemetry.span_end(span);
                    });
                }
            });
        }
    }
    telemetry.add(Counter::AnalyticShardsRun, shards as u64);
    telemetry.add(Counter::AnalyticCellsSimulated, duties.len() as u64);
    duties
}

/// Simulates one contiguous range of sampled words.
fn simulate_words(
    source: &dyn BlockSource,
    policy: &AnalyticPolicy,
    cfg: &AnalyticSimConfig,
    k_blocks: u64,
    m1: &[u64],
    words: &[usize],
    out: &mut [f64],
) {
    let width = source.geometry().word_bits as usize;
    let t_writes = cfg.inferences * k_blocks;
    let mut block_bits: Vec<u64> = vec![0; k_blocks as usize];

    for (wi, &word) in words.iter().enumerate() {
        for k in 0..k_blocks {
            block_bits[k as usize] = source.word(k, word);
        }
        let cell_base = word as u64 * width as u64;
        let out = &mut out[wi * width..(wi + 1) * width];
        match policy {
            AnalyticPolicy::Passthrough => {
                for (j, slot) in out.iter_mut().enumerate() {
                    let ones: u64 = block_bits.iter().map(|b| b >> j & 1).sum();
                    *slot = ones as f64 / k_blocks as f64;
                }
            }
            AnalyticPolicy::PeriodicInversion => {
                inversion_duties(&block_bits, t_writes, out);
            }
            AnalyticPolicy::BarrelShifter => {
                barrel_duties(&block_bits, width, t_writes, out);
            }
            AnalyticPolicy::DnnLife {
                bias,
                bias_balancing,
                seed,
            } => {
                dnn_life_duties(
                    &block_bits,
                    cfg.inferences,
                    *bias,
                    bias_balancing.is_some().then_some(m1),
                    *seed,
                    cell_base,
                    out,
                );
            }
        }
    }
}

/// Exact duty under alternating per-location inversion.
fn inversion_duties(block_bits: &[u64], t_writes: u64, out: &mut [f64]) {
    let k = block_bits.len() as u64;
    let cycle = 2 * k; // write pattern repeats every 2K writes
    let full_cycles = t_writes / cycle;
    let rem = t_writes % cycle;
    for (j, slot) in out.iter_mut().enumerate() {
        // Ones per full 2K cycle.
        let mut cycle_ones = 0u64;
        for t in 0..cycle {
            let bit = block_bits[(t % k) as usize] >> j & 1;
            cycle_ones += bit ^ (t & 1);
        }
        let mut ones = full_cycles * cycle_ones;
        for t in 0..rem {
            let bit = block_bits[(t % k) as usize] >> j & 1;
            ones += bit ^ (t & 1);
        }
        *slot = ones as f64 / t_writes as f64;
    }
}

/// Exact duty under the per-location rotation schedule.
fn barrel_duties(block_bits: &[u64], width: usize, t_writes: u64, out: &mut [f64]) {
    let k = block_bits.len() as u64;
    let w = width as u64;
    let g = gcd(k, w);
    let cycle = k / g * w; // lcm(K, W)
    let full_cycles = t_writes / cycle;
    let rem = t_writes % cycle;

    // Per-residue bit sums: u[k][c] = Σ_{p ≡ c (mod g)} bit_k[p].
    // Over one lcm cycle each (k, s ≡ k mod g) pair occurs once, and
    // stored bit j of rot_left(word_k, s) is word_k[(j − s) mod W], so
    // the cycle sum at position j is Σ_k u[k][(j − k) mod g].
    let mut ones = vec![0u64; width];
    if full_cycles > 0 {
        let mut u = vec![0u64; g as usize];
        for (ki, bits) in block_bits.iter().enumerate() {
            u.iter_mut().for_each(|v| *v = 0);
            for p in 0..w {
                u[(p % g) as usize] += bits >> p & 1;
            }
            for (j, slot) in ones.iter_mut().enumerate() {
                let c = (j as u64 + w - (ki as u64 % w)) % w % g;
                *slot += full_cycles * u[c as usize];
            }
        }
    }
    // Remainder writes replayed directly.
    for t in 0..rem {
        let bits = block_bits[(t % k) as usize];
        let s = t % w;
        for (j, slot) in ones.iter_mut().enumerate() {
            let p = (j as u64 + w - s) % w;
            *slot += bits >> p & 1;
        }
    }
    for (j, slot) in out.iter_mut().enumerate() {
        *slot = ones[j] as f64 / t_writes as f64;
    }
}

/// Duty under DNN-Life randomised inversion: deterministic schedule
/// counts plus two binomial draws per cell.
fn dnn_life_duties(
    block_bits: &[u64],
    inferences: u64,
    bias: f64,
    m1: Option<&[u64]>,
    seed: u64,
    cell_base: u64,
    out: &mut [f64],
) {
    let t_writes = inferences * block_bits.len() as u64;
    for (j, slot) in out.iter_mut().enumerate() {
        // n_plus: writes whose stored bit equals the raw TRBG draw
        // (data 0 & MSB 0, or data 1 & MSB 1); n_minus: the complement.
        let mut n_plus = 0u64;
        for (ki, bits) in block_bits.iter().enumerate() {
            let b = bits >> j & 1;
            let m1k = m1.map_or(0, |m| m[ki]);
            n_plus += if b == 1 { m1k } else { inferences - m1k };
        }
        let n_minus = t_writes - n_plus;
        let mut rng = SplitMix64::for_stream(seed, cell_base + j as u64);
        let x_plus = sample_binomial(&mut rng, n_plus, bias);
        let x_minus = sample_binomial(&mut rng, n_minus, bias);
        *slot = (n_minus + x_plus - x_minus) as f64 / t_writes as f64;
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 8), 1);
        assert_eq!(gcd(8, 8), 8);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn inversion_balances_odd_k() {
        // K = 3 identical all-ones blocks, T = 6 writes: parities cancel.
        let bits = vec![0xFFu64; 3];
        let mut out = vec![0.0; 8];
        inversion_duties(&bits, 6, &mut out);
        for d in out {
            assert!((d - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn inversion_stuck_for_even_k() {
        // K = 2 all-ones blocks: write parity is locked to block parity,
        // so bits alternate 1,0,1,0 → exactly 0.5 here; but with both
        // blocks at parity-matched values the duty stays data-dependent:
        // blocks [0xFF, 0x00] produce stored 0xFF (t even, no invert) and
        // 0xFF (t odd, invert 0x00) → duty 1.0.
        let bits = vec![0xFF, 0x00];
        let mut out = vec![0.0; 8];
        inversion_duties(&bits, 100, &mut out);
        for d in out {
            assert!((d - 1.0).abs() < 1e-12, "duty {d}");
        }
    }

    #[test]
    fn barrel_spreads_bits_across_positions() {
        // Single block 0b00000001, W = 8: each position holds the 1 for
        // exactly 1/8 of the writes.
        let bits = vec![0b1u64];
        let mut out = vec![0.0; 8];
        barrel_duties(&bits, 8, 800, &mut out);
        for d in out {
            assert!((d - 0.125).abs() < 1e-12, "duty {d}");
        }
    }

    #[test]
    fn barrel_cannot_fix_global_imbalance() {
        // 0b00001111: mean 0.5 per position after rotation — but
        // 0b01111111 stays at 7/8 everywhere.
        let bits = vec![0b0111_1111u64];
        let mut out = vec![0.0; 8];
        barrel_duties(&bits, 8, 800, &mut out);
        for d in out {
            assert!((d - 0.875).abs() < 1e-12, "duty {d}");
        }
    }

    #[test]
    fn barrel_remainder_exactness() {
        // T not a multiple of lcm(K, W): compare against brute force.
        let bits = vec![0b1010_0110u64, 0b0000_1111, 0b1110_0001];
        let (k, w, t) = (3u64, 8u64, 50u64);
        let mut out = vec![0.0; 8];
        barrel_duties(&bits, 8, t, &mut out);
        for j in 0..8u64 {
            let mut ones = 0u64;
            for tt in 0..t {
                let s = tt % w;
                let p = (j + w - s) % w;
                ones += bits[(tt % k) as usize] >> p & 1;
            }
            let expect = ones as f64 / t as f64;
            assert!(
                (out[j as usize] - expect).abs() < 1e-12,
                "bit {j}: {} vs {expect}",
                out[j as usize]
            );
        }
    }

    #[test]
    fn dnn_life_unbiased_concentrates_at_half() {
        // All-ones data, fair TRBG, many writes: duty ≈ 0.5 with
        // variance 1/(4T).
        let bits = vec![0xFFu64; 10];
        let mut out = vec![0.0; 8];
        dnn_life_duties(&bits, 400, 0.5, None, 9, 0, &mut out);
        for d in out {
            assert!((d - 0.5).abs() < 0.05, "duty {d}");
        }
    }

    #[test]
    fn dnn_life_biased_without_balancing_shifts_duty() {
        // Stored = data XOR e with e ~ Bern(0.7): all-ones data → duty
        // ≈ 0.3; all-zeros data → duty ≈ 0.7.
        let ones = vec![0xFFu64; 10];
        let zeros = vec![0x00u64; 10];
        let mut d_ones = vec![0.0; 8];
        let mut d_zeros = vec![0.0; 8];
        dnn_life_duties(&ones, 400, 0.7, None, 9, 0, &mut d_ones);
        dnn_life_duties(&zeros, 400, 0.7, None, 9, 64, &mut d_zeros);
        for d in d_ones {
            assert!((d - 0.3).abs() < 0.05, "ones-data duty {d}");
        }
        for d in d_zeros {
            assert!((d - 0.7).abs() < 0.05, "zeros-data duty {d}");
        }
    }

    #[test]
    fn dnn_life_biased_with_balancing_recovers_half() {
        // The MSB schedule flips half of the writes: a 0.7-biased TRBG
        // still yields ~0.5 duty. Build an m1 schedule with exactly half
        // the inferences MSB-high for every block.
        let bits = vec![0xFFu64; 10];
        let m1 = vec![200u64; 10]; // of 400 inferences
        let mut out = vec![0.0; 8];
        dnn_life_duties(&bits, 400, 0.7, Some(&m1), 9, 0, &mut out);
        for d in out {
            assert!((d - 0.5).abs() < 0.05, "duty {d}");
        }
    }

    #[test]
    fn shard_and_thread_counts_never_change_analytic_bytes() {
        use crate::config::AcceleratorConfig;
        use crate::plan::FlatWeightMemory;
        let mut hw = AcceleratorConfig::baseline();
        hw.weight_memory_bytes = 2048;
        let mem = FlatWeightMemory::new(
            &hw,
            &dnnlife_nn::NetworkSpec::custom_mnist(),
            dnnlife_quant::NumberFormat::Int8Symmetric,
            3,
        );
        let run = |threads: usize, shards: usize, policy: &AnalyticPolicy| {
            simulate_analytic(
                &mem,
                policy,
                &AnalyticSimConfig {
                    inferences: 6,
                    sample_stride: 5,
                    threads,
                    shards,
                },
            )
        };
        for policy in [
            AnalyticPolicy::BarrelShifter,
            AnalyticPolicy::DnnLife {
                bias: 0.7,
                bias_balancing: Some(4),
                seed: 11,
            },
        ] {
            let base = run(1, 1, &policy);
            for (threads, shards) in [(1, 7), (4, 1), (4, 16), (2, 0), (4, 1000)] {
                assert_eq!(
                    run(threads, shards, &policy),
                    base,
                    "{threads} thread(s) × {shards} shard(s) diverged for {policy:?}"
                );
            }
        }
    }

    #[test]
    fn per_cell_rng_is_deterministic() {
        let bits = vec![0x5Au64; 4];
        let mut a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        dnn_life_duties(&bits, 100, 0.5, None, 77, 1234, &mut a);
        dnn_life_duties(&bits, 100, 0.5, None, 77, 1234, &mut b);
        assert_eq!(a, b);
    }
}
