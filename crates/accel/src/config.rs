//! Hardware configurations (the paper's Table I).

use serde::{Deserialize, Serialize};

/// A DNN accelerator configuration in the sense of Table I.
///
/// # Example
///
/// ```
/// use dnnlife_accel::AcceleratorConfig;
///
/// let baseline = AcceleratorConfig::baseline();
/// assert_eq!(baseline.weight_memory_bytes, 512 * 1024);
/// assert_eq!(baseline.parallel_filters, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Configuration name.
    pub name: String,
    /// On-chip weight memory capacity in bytes.
    pub weight_memory_bytes: u64,
    /// On-chip activation memory capacity in bytes (bookkeeping only —
    /// activations do not live in the weight memory under study).
    pub activation_memory_bytes: u64,
    /// `f`: number of filters processed in parallel (the filter-set size
    /// of the Fig. 5 dataflow).
    pub parallel_filters: u64,
    /// `N`: multipliers per processing element.
    pub multipliers_per_pe: u64,
}

impl AcceleratorConfig {
    /// The baseline accelerator of §II-A / Table I: 512 KB weight
    /// memory, 4 MB activation memory, 8 PEs of 8 multipliers (f = 8).
    pub fn baseline() -> Self {
        Self {
            name: "baseline".to_string(),
            weight_memory_bytes: 512 * 1024,
            activation_memory_bytes: 4 * 1024 * 1024,
            parallel_filters: 8,
            multipliers_per_pe: 8,
        }
    }

    /// The TPU-like NPU of Table I: 256 KB weight FIFO (four tiles of
    /// 256 × 256 8-bit weights), 24 MB activation memory, 256 × 256 PEs
    /// (f = 256).
    pub fn tpu_like() -> Self {
        Self {
            name: "tpu-like-npu".to_string(),
            weight_memory_bytes: 256 * 1024,
            activation_memory_bytes: 24 * 1024 * 1024,
            parallel_filters: 256,
            multipliers_per_pe: 1,
        }
    }

    /// A ReRAM crossbar accelerator in the style of the in-memory
    /// inference engines of the retrieved endurance papers: 64 tiles of
    /// 128 wordlines × 128 bitlines of single-bit cells (128 KB of
    /// weight storage), weights-stationary, one 8-bit weight spread
    /// over eight bitline cells, 16 weights read out per wordline
    /// activation (f = 16).
    pub fn crossbar() -> Self {
        Self {
            name: "reram-crossbar".to_string(),
            weight_memory_bytes: 64 * 128 * 128 / 8,
            activation_memory_bytes: 4 * 1024 * 1024,
            parallel_filters: 16,
            multipliers_per_pe: 1,
        }
    }

    /// Weight-memory capacity in weights of `bits` width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or not a multiple of 8.
    pub fn weight_capacity(&self, bits: u32) -> u64 {
        assert!(
            bits > 0 && bits.is_multiple_of(8),
            "weight_capacity: bits must be a positive multiple of 8"
        );
        self.weight_memory_bytes * 8 / u64::from(bits)
    }

    /// Number of SRAM cells in the weight memory.
    pub fn weight_memory_cells(&self) -> u64 {
        self.weight_memory_bytes * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_baseline_values() {
        let c = AcceleratorConfig::baseline();
        assert_eq!(c.weight_memory_bytes, 524_288);
        assert_eq!(c.activation_memory_bytes, 4_194_304);
        assert_eq!(c.parallel_filters, 8);
        assert_eq!(c.multipliers_per_pe, 8);
        assert_eq!(c.weight_memory_cells(), 4_194_304);
    }

    #[test]
    fn table1_npu_values() {
        let c = AcceleratorConfig::tpu_like();
        assert_eq!(c.weight_memory_bytes, 262_144);
        assert_eq!(c.activation_memory_bytes, 25_165_824);
        assert_eq!(c.parallel_filters, 256);
        // The FIFO is four 256×256 8-bit tiles deep.
        assert_eq!(c.weight_capacity(8), 4 * 256 * 256);
    }

    #[test]
    fn capacity_scales_with_format() {
        let c = AcceleratorConfig::baseline();
        assert_eq!(c.weight_capacity(8), 524_288);
        assert_eq!(c.weight_capacity(32), 131_072);
    }

    #[test]
    #[should_panic(expected = "positive multiple of 8")]
    fn rejects_odd_widths() {
        AcceleratorConfig::baseline().weight_capacity(12);
    }
}
