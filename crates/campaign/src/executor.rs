//! Parallel campaign executor.
//!
//! Scenarios are sharded across a std-only worker pool: workers pull
//! the next pending scenario index from a shared atomic counter (work
//! stealing without queues — scenario runtimes vary by orders of
//! magnitude between networks, so static partitioning would idle
//! cores), run it, and send the record back over a channel. The main
//! thread journals each completion to the [`ResultStore`] immediately,
//! then finalizes the store in canonical grid order.
//!
//! The thread budget is **two-level**: when a grid has fewer pending
//! scenarios than budgeted threads, the leftover threads are pooled
//! and each worker claims a fair share of them when it starts a
//! scenario, handing them to the simulator (analytic cell shards /
//! exact word shards) instead of letting them idle — one exact
//! scenario no longer monopolizes a single core while the rest of the
//! pool waits.
//!
//! The pool itself ([`execute_shared_pool`]) is generic over the work
//! item: the scenario sweep, the cross-validation fan-out and the
//! fault-injection campaign all run on it, so every subsystem shares
//! the same budget arithmetic and the same cancellation story.
//!
//! Determinism: each scenario's result depends only on its spec plus
//! the (deterministic) shard policy — never on the thread count — and
//! the finalize pass orders the file by the grid, so the finished
//! store is **byte-identical for any worker count** and for
//! interrupted-then-resumed runs.
//!
//! Aborts are prompt: when the completion callback declines further
//! results — or an external cancellation token (Ctrl-C) is raised — a
//! shared flag cancels in-flight **exact** simulations at block
//! granularity (within one inference — the backend whose scenarios run
//! for minutes) and their partial results are discarded, not
//! journaled. Analytic scenarios poll the flag only between memory
//! units; their closed forms are orders of magnitude shorter, so the
//! flag exists to stop the expensive backend, not the cheap one.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use dnnlife_core::experiment::{run_experiment_with, RunOptions, ShardPolicy};
use dnnlife_telemetry::{Counter, Instrumentation, SpanId};
use serde::Serialize;

use crate::grid::CampaignGrid;
use crate::store::{ResultStore, ScenarioRecord, StoreLock};

/// Executor knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignOptions {
    /// Total thread budget: scenario workers plus the spare threads
    /// handed to in-flight simulators (0 = all available cores).
    pub threads: usize,
    /// Skip scenarios already present in the store. When false, an
    /// existing store file is discarded and every scenario re-runs.
    pub resume: bool,
    /// Print per-scenario progress lines to stderr.
    pub verbose: bool,
    /// Exact-backend word-shard policy per scenario. `Auto` (default)
    /// derives a machine-independent count from each memory unit's
    /// sampled word population, so stores stay byte-identical for any
    /// thread count; a `Fixed` count pins the DNN-Life stream split
    /// explicitly (deterministic policies are bit-identical either
    /// way).
    pub shards: ShardPolicy,
}

/// What a campaign run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Scenarios executed by this invocation.
    pub executed: usize,
    /// Scenarios skipped because the store already held them.
    pub skipped: usize,
    /// Worker threads used (1 when nothing was pending).
    pub threads: usize,
}

/// Runs every scenario of `grid`, journaling into (and finalizing) the
/// store at `store_path`.
///
/// # Errors
///
/// Propagates store I/O errors. A panic in a worker (a scenario
/// panicking mid-simulation) propagates after in-flight completions
/// have been journaled.
pub fn run_campaign(
    grid: &CampaignGrid,
    store_path: impl Into<std::path::PathBuf>,
    options: &CampaignOptions,
) -> std::io::Result<CampaignOutcome> {
    run_campaign_cancellable(grid, store_path, options, None)
}

/// [`run_campaign`] under an external cancellation token (the CLI's
/// Ctrl-C handler): when `cancel` is raised, idle workers stop at
/// their next claim, in-flight exact simulations abort within one
/// inference, journaled completions are kept, and the call returns an
/// [`std::io::ErrorKind::Interrupted`] error — re-running with
/// `resume` picks up exactly the missing scenarios.
pub fn run_campaign_cancellable(
    grid: &CampaignGrid,
    store_path: impl Into<std::path::PathBuf>,
    options: &CampaignOptions,
    cancel: Option<&AtomicBool>,
) -> std::io::Result<CampaignOutcome> {
    run_campaign_instrumented(
        grid,
        store_path,
        options,
        cancel,
        Instrumentation::default(),
    )
}

/// [`run_campaign_cancellable`] with an observability sink: counters,
/// span timings and `events.jsonl` records flow through
/// `instr.telemetry`, and per-scenario completions tick
/// `instr.progress`. Telemetry is never semantic — the finished store
/// is byte-identical with instrumentation on or off.
pub fn run_campaign_instrumented(
    grid: &CampaignGrid,
    store_path: impl Into<std::path::PathBuf>,
    options: &CampaignOptions,
    cancel: Option<&AtomicBool>,
    instr: Instrumentation<'_>,
) -> std::io::Result<CampaignOutcome> {
    let store_path = store_path.into();
    // Held for the whole campaign: a second sweep journaling into the
    // same file would interleave writes and corrupt it mid-line.
    let _lock = StoreLock::acquire(&store_path)?;
    if !options.resume && store_path.exists() {
        std::fs::remove_file(&store_path)?;
    }
    let mut store = ResultStore::open(&store_path)?;

    let keys = grid.keys();
    let stale = store.stale_keys(&keys);
    if !stale.is_empty() {
        eprintln!(
            "campaign `{}`: dropping {} stale record(s) from {} — they were produced \
             by a sweep with different parameters (seed/stride/inferences/grid)",
            grid.name,
            stale.len(),
            store.path().display()
        );
    }
    // A stored record satisfies a scenario only if it was computed
    // under the same word-shard annotation: shard-sensitive records
    // (exact × DNN-Life) journaled by a sweep with a different
    // `--shards` hold a different TRBG stream-deal, and skipping them
    // would silently mix two deals in one store.
    let mut shard_stale = 0usize;
    let pending: Vec<usize> = (0..grid.scenarios.len())
        .filter(|&i| match store.get(&keys[i]) {
            None => true,
            Some(record) => {
                let stale = record.shards
                    != crate::store::shard_annotation(&grid.scenarios[i], options.shards);
                shard_stale += usize::from(stale);
                stale
            }
        })
        .collect();
    if shard_stale > 0 {
        eprintln!(
            "campaign `{}`: re-running {shard_stale} DNN-Life exact record(s) journaled \
             under a different --shards value (their TRBG stream split differs)",
            grid.name,
        );
    }
    let skipped = grid.scenarios.len() - pending.len();

    let budget = requested_threads(options.threads);
    let threads = effective_threads(options.threads, pending.len());
    if options.verbose {
        eprintln!(
            "campaign `{}`: {} scenarios ({} pending, {} already stored), {} worker(s), \
             {} thread(s) total",
            grid.name,
            grid.scenarios.len(),
            pending.len(),
            skipped,
            threads,
            budget
        );
    }

    let specs: Vec<&dnnlife_core::ExperimentSpec> =
        pending.iter().map(|&i| &grid.scenarios[i]).collect();
    let shards = options.shards;
    let done = journal_into_store(
        &grid.name,
        "scenario",
        &mut store,
        &keys,
        &specs,
        budget,
        cancel,
        options.verbose,
        instr,
        |record| record.result.label.clone(),
        |record| record.spec.policy.display_name().to_string(),
        |spec, threads, cancel, span| {
            let opts = RunOptions {
                threads,
                shards,
                cancel: Some(cancel),
                telemetry: instr.telemetry,
                parent_span: span,
            };
            run_experiment_with(spec, &opts)
                .map(|result| ScenarioRecord::annotated((*spec).clone(), result, shards))
        },
    )?;
    Ok(CampaignOutcome {
        executed: done,
        skipped,
        threads,
    })
}

/// The common tail of the scenario and injection campaign drivers:
/// fans `pending` through the shared pool, journals every completed
/// record into `store` (flushing per record), reports progress, maps a
/// journal I/O error or a raised cancellation token to an error, and
/// finalizes the store in canonical `keys` order. Returns the number
/// of items journaled by this invocation.
///
/// Observability rides along without touching results: each item's
/// queue wait and run wall time accumulate into `instr.telemetry`'s
/// counters and the `scenario_wall_us`/`scenario_queue_us` latency
/// histograms, `scenario_start`/`scenario_done`/`scenario_discarded`
/// events flow to the journal in completion order, and every journaled
/// record ticks `instr.progress`. The campaign brackets a
/// `campaign:{name}` trace span; each item runs under its own
/// `scenario` child span whose id is handed to `run` as the parent for
/// simulator-level spans. `label` names a record for progress lines;
/// `group` buckets it for per-policy throughput in `dnnlife perf`.
///
/// # Errors
///
/// The first journal I/O error, or [`std::io::ErrorKind::Interrupted`]
/// when `cancel` was raised before the pending set drained (journaled
/// completions are kept either way — the caller's resume flow picks up
/// the remainder). The interrupted message carries the full
/// cancellation summary: completed / in-flight discarded / never
/// started.
#[allow(clippy::too_many_arguments)]
pub(crate) fn journal_into_store<T, R, RunF>(
    name: &str,
    noun: &str,
    store: &mut crate::store::JsonlStore<R>,
    keys: &[String],
    pending: &[&T],
    budget: usize,
    cancel: Option<&AtomicBool>,
    verbose: bool,
    instr: Instrumentation<'_>,
    label: fn(&R) -> String,
    group: fn(&R) -> String,
    run: RunF,
) -> std::io::Result<usize>
where
    T: Sync,
    R: crate::store::StoreRecord + Send,
    RunF: Fn(&&T, usize, &AtomicBool, SpanId) -> Option<R> + Sync,
{
    let telemetry = instr.telemetry();
    if let Some(progress) = instr.progress {
        progress.set_total(pending.len());
    }
    let mut done = 0usize;
    let discarded = AtomicUsize::new(0);
    let mut campaign_span = SpanId::NONE;
    if !pending.is_empty() {
        let workers = budget.min(pending.len()).max(1);
        // Absolute wall-clock anchor for the journal. Every other
        // timestamp in the journal is the relative `t_ms` offset from
        // the telemetry epoch; `unix_ms` on `campaign_start` is the
        // only absolute time, letting tooling correlate journals from
        // different runs (e.g. nightly `perf --diff` against the
        // previous night's artifact). Consumers must tolerate its
        // absence: journals written before this field existed lack it.
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        telemetry.emit(
            "campaign_start",
            &[
                ("name", name.to_value()),
                ("noun", noun.to_value()),
                ("pending", (pending.len() as u64).to_value()),
                ("workers", (workers as u64).to_value()),
                ("budget", (budget as u64).to_value()),
                ("unix_ms", unix_ms.to_value()),
            ],
        );
        campaign_span = telemetry.span_start(&format!("campaign:{name}"), SpanId::NONE);
        telemetry.gauge_set(
            "campaign_pending",
            "Scenarios pending at campaign start (after resume skips)",
            pending.len() as u64,
        );
        telemetry.gauge_set(
            "campaign_workers",
            "Item workers the shared pool started with",
            workers as u64,
        );
        let epoch = Instant::now();
        let mut journal_error = None;
        execute_shared_pool(
            pending,
            budget,
            cancel,
            |item, index, threads, run_flag| {
                // Queue wait: how long this item sat pending before a
                // worker claimed it. Two clock reads per item — noise
                // next to scenario runtimes (ms to minutes).
                let queue_nanos = epoch.elapsed().as_nanos() as u64;
                telemetry.emit(
                    "scenario_start",
                    &[
                        ("i", (index as u64).to_value()),
                        ("threads", (threads as u64).to_value()),
                    ],
                );
                let span = telemetry.span_start("scenario", campaign_span);
                let started = Instant::now();
                let result = run(item, threads, run_flag, span);
                let wall_nanos = started.elapsed().as_nanos() as u64;
                telemetry.span_end(span);
                match result {
                    Some(record) => {
                        telemetry.add(Counter::ScenariosCompleted, 1);
                        telemetry.add(Counter::QueueWaitNanos, queue_nanos);
                        telemetry.add(Counter::ScenarioWallNanos, wall_nanos);
                        telemetry.observe(
                            "scenario_wall_us",
                            "Per-scenario run wall time in microseconds",
                            wall_nanos / 1_000,
                        );
                        telemetry.observe(
                            "scenario_queue_us",
                            "Per-scenario queue wait in microseconds",
                            queue_nanos / 1_000,
                        );
                        telemetry.emit(
                            "scenario_done",
                            &[
                                ("i", (index as u64).to_value()),
                                ("label", label(&record).to_value()),
                                ("group", group(&record).to_value()),
                                ("wall_ms", (wall_nanos as f64 / 1e6).to_value()),
                                ("queue_ms", (queue_nanos as f64 / 1e6).to_value()),
                                ("threads", (threads as u64).to_value()),
                            ],
                        );
                        Some(record)
                    }
                    None => {
                        // Counted even with telemetry off: the stderr
                        // cancellation summary needs it.
                        discarded.fetch_add(1, Ordering::Relaxed);
                        telemetry.add(Counter::ScenariosDiscarded, 1);
                        telemetry.emit(
                            "scenario_discarded",
                            &[
                                ("i", (index as u64).to_value()),
                                ("wall_ms", (wall_nanos as f64 / 1e6).to_value()),
                            ],
                        );
                        None
                    }
                }
            },
            |_, record| {
                let label = label(&record);
                if let Err(e) = store.append(record) {
                    journal_error = Some(e);
                    return false;
                }
                done += 1;
                instr.tick();
                if verbose {
                    eprintln!("  [{done}/{}] {label}", pending.len());
                }
                true
            },
        );
        if let Some(e) = journal_error {
            return Err(e);
        }
        if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
            let discarded = discarded.load(Ordering::Relaxed);
            let remaining = pending.len().saturating_sub(done + discarded);
            telemetry.span_end(campaign_span);
            telemetry.emit(
                "campaign_abort",
                &[
                    ("name", name.to_value()),
                    ("completed", (done as u64).to_value()),
                    ("discarded", (discarded as u64).to_value()),
                    ("remaining", (remaining as u64).to_value()),
                ],
            );
            telemetry.emit_counters();
            telemetry.emit_histograms();
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!(
                    "`{name}` interrupted: {done} of {} pending {noun}(s) completed, \
                     {discarded} in-flight discarded, {remaining} never started; \
                     journaled results kept — rerun with --resume",
                    pending.len()
                ),
            ));
        }
    }
    store.finalize(keys)?;
    if let Some(progress) = instr.progress {
        progress.finish();
    }
    telemetry.span_end(campaign_span);
    telemetry.emit(
        "campaign_done",
        &[
            ("name", name.to_value()),
            ("completed", (done as u64).to_value()),
        ],
    );
    telemetry.emit_counters();
    telemetry.emit_histograms();
    Ok(done)
}

/// Runs every scenario of `grid` on a `threads`-sized budget (0 = all
/// cores) without touching disk, returning records in grid order. This
/// is the path report harnesses use when they only need the in-memory
/// fold.
pub fn run_scenarios(grid: &CampaignGrid, threads: usize) -> Vec<ScenarioRecord> {
    let specs: Vec<&dnnlife_core::ExperimentSpec> = grid.scenarios.iter().collect();
    let mut slots: Vec<Option<ScenarioRecord>> = vec![None; specs.len()];
    execute_shared_pool(
        &specs,
        requested_threads(threads),
        None,
        |spec, _index, threads, cancel| {
            let opts = RunOptions {
                threads,
                shards: ShardPolicy::default(),
                cancel: Some(cancel),
                ..RunOptions::default()
            };
            run_experiment_with(spec, &opts).map(|result| {
                ScenarioRecord::annotated((*spec).clone(), result, ShardPolicy::default())
            })
        },
        |index, record| {
            slots[index] = Some(record);
            true
        },
    );
    slots
        .into_iter()
        .map(|slot| slot.expect("execute_shared_pool completes every scenario"))
        .collect()
}

/// Shared worker pool with a two-level thread budget: `budget` threads
/// total, `min(budget, |items|)` of them item workers pulling indices
/// from an atomic counter, the remainder pooled as *spare* simulator
/// threads. A worker starting an item claims a fair share of the spare
/// pool and runs the item on `1 + share` simulator threads (returning
/// the share afterwards), so a wide machine is not wasted on a narrow
/// grid.
///
/// `run` executes one item — `(item, index, threads, cancel)` — on the
/// given thread count under the shared cancellation flag, returning
/// `None` iff the item was cancelled mid-run (a cancelled partial
/// result is discarded, never delivered). The item's index lets
/// instrumented callers join start/done telemetry events without
/// threading state through the result type. The calling thread
/// observes each `(index, result)` completion in completion order;
/// `on_complete` returning `false` — or an external `cancel` token
/// being raised — stops the pool: idle workers stop at their next
/// claim, and in-flight work observes the flag through `run`'s cancel
/// argument (the exact simulator polls it at block granularity, within
/// one inference).
pub(crate) fn execute_shared_pool<T, R, RunF, DoneF>(
    items: &[T],
    budget: usize,
    cancel: Option<&AtomicBool>,
    run: RunF,
    mut on_complete: DoneF,
) where
    T: Sync,
    R: Send,
    RunF: Fn(&T, usize, usize, &AtomicBool) -> Option<R> + Sync,
    DoneF: FnMut(usize, R) -> bool,
{
    let workers = budget.min(items.len()).max(1);
    let spare = AtomicUsize::new(budget.saturating_sub(workers));
    // Two abort sources, never written into the caller's token (a
    // journal error must not masquerade as a Ctrl-C): `on_complete`
    // declining raises the *local* flag; the external token is only
    // read. In-flight work polls `run_flag` — the external token when
    // provided (so Ctrl-C cancels at block granularity), the local
    // flag otherwise (so an in-process abort stays equally prompt);
    // a local abort with an external token present still stops
    // in-flight items at delivery (the dropped receiver fails their
    // send) and idle workers at their next claim.
    let local_abort = AtomicBool::new(false);
    let run_flag: &AtomicBool = cancel.unwrap_or(&local_abort);
    let aborted = || local_abort.load(Ordering::Relaxed) || run_flag.load(Ordering::Relaxed);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, spare, run, aborted) = (&next, &spare, &run, &aborted);
            scope.spawn(move || loop {
                if aborted() {
                    break;
                }
                let slot = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(slot) else {
                    break;
                };
                let extra = claim_spare(spare, items.len() - slot);
                let result = run(item, slot, 1 + extra, run_flag);
                if extra > 0 {
                    spare.fetch_add(extra, Ordering::AcqRel);
                }
                let Some(result) = result else {
                    break; // cancelled mid-item: discard the partial
                };
                if tx.send((slot, result)).is_err() {
                    break; // receiver gone: abort requested
                }
            });
        }
        drop(tx);
        for (index, result) in rx {
            if !on_complete(index, result) {
                // Raise the local flag *and* drop the receiver: idle
                // workers stop at their next claim, in-flight
                // simulations stop within one inference (or, with an
                // external token present, at delivery).
                local_abort.store(true, Ordering::Relaxed);
                break;
            }
        }
    });
}

/// Claims this worker's share of the spare-thread pool: an even split
/// over the items not yet claimed (`remaining` ≥ 1 counts the one
/// being started), so early claimers don't starve the rest of the
/// grid, and the last item takes everything still pooled.
fn claim_spare(spare: &AtomicUsize, remaining: usize) -> usize {
    let mut take = 0;
    let _ = spare.fetch_update(Ordering::AcqRel, Ordering::Acquire, |pooled| {
        take = pooled.div_ceil(remaining.max(1)).min(pooled);
        Some(pooled - take)
    });
    take
}

/// The requested total thread budget (0 = all available cores).
pub(crate) fn requested_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

pub(crate) fn effective_threads(requested: usize, pending: usize) -> usize {
    requested_threads(requested).min(pending).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnlife_core::experiment::{
        DwellModel, NetworkKind, Platform, PolicySpec, SimulatorBackend,
    };
    use dnnlife_core::ExperimentSpec;

    fn run_pool_of_specs<F>(specs: &[&ExperimentSpec], budget: usize, shards: ShardPolicy, f: F)
    where
        F: FnMut(usize, ScenarioRecord) -> bool,
    {
        execute_shared_pool(
            specs,
            budget,
            None,
            |spec, _index, threads, cancel| {
                let opts = RunOptions {
                    threads,
                    shards,
                    cancel: Some(cancel),
                    ..RunOptions::default()
                };
                run_experiment_with(spec, &opts)
                    .map(|r| ScenarioRecord::annotated((*spec).clone(), r, shards))
            },
            f,
        );
    }

    #[test]
    fn thread_count_clamps_to_pending_work() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(4, 0), 1);
        assert!(effective_threads(0, usize::MAX) >= 1);
    }

    #[test]
    fn spare_claims_split_fairly_and_drain_on_the_tail() {
        let spare = AtomicUsize::new(5);
        assert_eq!(claim_spare(&spare, 3), 2);
        assert_eq!(claim_spare(&spare, 2), 2);
        assert_eq!(claim_spare(&spare, 1), 1, "last scenario takes the rest");
        assert_eq!(claim_spare(&spare, 4), 0, "empty pool claims nothing");
        let spare = AtomicUsize::new(7);
        assert_eq!(claim_spare(&spare, 1), 7, "sole scenario takes everything");
    }

    fn npu_spec(backend: SimulatorBackend, inferences: u64, stride: usize) -> ExperimentSpec {
        ExperimentSpec {
            platform: Platform::TpuLike,
            network: NetworkKind::CustomMnist,
            format: dnnlife_quant::NumberFormat::Int8Symmetric,
            policy: PolicySpec::None,
            inferences,
            years: 7.0,
            seed: 3,
            sample_stride: stride,
            backend,
            dwell: DwellModel::Uniform,
            repair: dnnlife_core::RepairPolicy::None,
            tech: dnnlife_core::MemoryTech::SramNbti,
        }
    }

    /// The abort-latency contract: after `on_complete` declines, an
    /// in-flight exact scenario is cancelled within one inference (not
    /// after minutes of finishing its whole run), and its partial
    /// result is discarded — `on_complete` never sees it.
    #[test]
    fn abort_cancels_in_flight_scenarios_within_one_inference() {
        // One fast analytic scenario and one exact scenario that would
        // take on the order of minutes uncancelled (tens of thousands
        // of inferences over every word of every FIFO slot).
        let fast = npu_spec(SimulatorBackend::Analytic, 10, 1024);
        let slow = npu_spec(SimulatorBackend::Exact, 50_000, 16);
        let specs: Vec<&ExperimentSpec> = vec![&fast, &slow];

        let started = std::time::Instant::now();
        let mut delivered = 0usize;
        run_pool_of_specs(&specs, 2, ShardPolicy::Auto, |_, _| {
            delivered += 1;
            false // abort after the first completion
        });
        assert_eq!(
            delivered, 1,
            "the cancelled partial result must be discarded, not delivered"
        );
        assert!(
            started.elapsed().as_secs() < 30,
            "abort took {:?} — in-flight work was not cancelled promptly",
            started.elapsed()
        );
    }

    /// An external cancellation token raised mid-run stops the pool the
    /// same way `on_complete` declining does.
    #[test]
    fn external_cancel_token_aborts_the_pool() {
        let fast = npu_spec(SimulatorBackend::Analytic, 10, 1024);
        let slow = npu_spec(SimulatorBackend::Exact, 50_000, 16);
        let specs: Vec<&ExperimentSpec> = vec![&fast, &slow];
        let cancel = AtomicBool::new(false);

        let started = std::time::Instant::now();
        let mut delivered = 0usize;
        execute_shared_pool(
            &specs,
            2,
            Some(&cancel),
            |spec, _index, threads, cancel| {
                let opts = RunOptions {
                    threads,
                    shards: ShardPolicy::Auto,
                    cancel: Some(cancel),
                    ..RunOptions::default()
                };
                run_experiment_with(spec, &opts).map(|r| ScenarioRecord::new((*spec).clone(), r))
            },
            |_, _| {
                delivered += 1;
                // Simulate Ctrl-C arriving while the slow scenario is
                // in flight.
                cancel.store(true, Ordering::Relaxed);
                true // the callback itself keeps accepting
            },
        );
        assert_eq!(delivered, 1, "the cancelled scenario must not deliver");
        assert!(
            started.elapsed().as_secs() < 30,
            "external cancel took {:?}",
            started.elapsed()
        );
    }

    /// Budgets wider than the grid hand their leftover threads to the
    /// running scenarios instead of idling them — and results are the
    /// same as a single-threaded pool.
    #[test]
    fn wide_budget_on_narrow_grid_matches_single_thread_results() {
        let a = npu_spec(SimulatorBackend::Exact, 8, 256);
        let mut b = a.clone();
        b.seed = 4;
        let specs: Vec<&ExperimentSpec> = vec![&a, &b];
        let run = |budget: usize| {
            let mut out: Vec<Option<ScenarioRecord>> = vec![None; specs.len()];
            run_pool_of_specs(&specs, budget, ShardPolicy::Fixed(4), |i, r| {
                out[i] = Some(r);
                true
            });
            out
        };
        assert_eq!(
            run(1),
            run(8),
            "spare simulator threads must never be semantic"
        );
    }
}
