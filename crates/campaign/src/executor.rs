//! Parallel campaign executor.
//!
//! Scenarios are sharded across a std-only worker pool: workers pull
//! the next pending scenario index from a shared atomic counter (work
//! stealing without queues — scenario runtimes vary by orders of
//! magnitude between networks, so static partitioning would idle
//! cores), run it, and send the record back over a channel. The main
//! thread journals each completion to the [`ResultStore`] immediately,
//! then finalizes the store in canonical grid order.
//!
//! The thread budget is **two-level**: when a grid has fewer pending
//! scenarios than budgeted threads, the leftover threads are pooled
//! and each worker claims a fair share of them when it starts a
//! scenario, handing them to the simulator (analytic cell shards /
//! exact word shards) instead of letting them idle — one exact
//! scenario no longer monopolizes a single core while the rest of the
//! pool waits.
//!
//! Determinism: each scenario's result depends only on its spec plus
//! the (deterministic) shard policy — never on the thread count — and
//! the finalize pass orders the file by the grid, so the finished
//! store is **byte-identical for any worker count** and for
//! interrupted-then-resumed runs.
//!
//! Aborts are prompt: when the completion callback declines further
//! results, a shared flag cancels in-flight **exact** simulations at
//! block granularity (within one inference — the backend whose
//! scenarios run for minutes) and their partial results are discarded,
//! not journaled. Analytic scenarios poll the flag only between memory
//! units; their closed forms are orders of magnitude shorter, so the
//! flag exists to stop the expensive backend, not the cheap one.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

use dnnlife_core::experiment::{run_experiment_with, RunOptions, ShardPolicy};

use crate::grid::CampaignGrid;
use crate::store::{ResultStore, ScenarioRecord, StoreLock};

/// Executor knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignOptions {
    /// Total thread budget: scenario workers plus the spare threads
    /// handed to in-flight simulators (0 = all available cores).
    pub threads: usize,
    /// Skip scenarios already present in the store. When false, an
    /// existing store file is discarded and every scenario re-runs.
    pub resume: bool,
    /// Print per-scenario progress lines to stderr.
    pub verbose: bool,
    /// Exact-backend word-shard policy per scenario. `Auto` (default)
    /// derives a machine-independent count from each memory unit's
    /// sampled word population, so stores stay byte-identical for any
    /// thread count; a `Fixed` count pins the DNN-Life stream split
    /// explicitly (deterministic policies are bit-identical either
    /// way).
    pub shards: ShardPolicy,
}

/// What a campaign run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Scenarios executed by this invocation.
    pub executed: usize,
    /// Scenarios skipped because the store already held them.
    pub skipped: usize,
    /// Worker threads used (1 when nothing was pending).
    pub threads: usize,
}

/// Runs every scenario of `grid`, journaling into (and finalizing) the
/// store at `store_path`.
///
/// # Errors
///
/// Propagates store I/O errors. A panic in a worker (a scenario
/// panicking mid-simulation) propagates after in-flight completions
/// have been journaled.
pub fn run_campaign(
    grid: &CampaignGrid,
    store_path: impl Into<std::path::PathBuf>,
    options: &CampaignOptions,
) -> std::io::Result<CampaignOutcome> {
    let store_path = store_path.into();
    // Held for the whole campaign: a second sweep journaling into the
    // same file would interleave writes and corrupt it mid-line.
    let _lock = StoreLock::acquire(&store_path)?;
    if !options.resume && store_path.exists() {
        std::fs::remove_file(&store_path)?;
    }
    let mut store = ResultStore::open(&store_path)?;

    let keys = grid.keys();
    let stale = store.stale_keys(&keys);
    if !stale.is_empty() {
        eprintln!(
            "campaign `{}`: dropping {} stale record(s) from {} — they were produced \
             by a sweep with different parameters (seed/stride/inferences/grid)",
            grid.name,
            stale.len(),
            store.path().display()
        );
    }
    // A stored record satisfies a scenario only if it was computed
    // under the same word-shard annotation: shard-sensitive records
    // (exact × DNN-Life) journaled by a sweep with a different
    // `--shards` hold a different TRBG stream-deal, and skipping them
    // would silently mix two deals in one store.
    let mut shard_stale = 0usize;
    let pending: Vec<usize> = (0..grid.scenarios.len())
        .filter(|&i| match store.get(&keys[i]) {
            None => true,
            Some(record) => {
                let stale = record.shards
                    != crate::store::shard_annotation(&grid.scenarios[i], options.shards);
                shard_stale += usize::from(stale);
                stale
            }
        })
        .collect();
    if shard_stale > 0 {
        eprintln!(
            "campaign `{}`: re-running {shard_stale} DNN-Life exact record(s) journaled \
             under a different --shards value (their TRBG stream split differs)",
            grid.name,
        );
    }
    let skipped = grid.scenarios.len() - pending.len();

    let budget = requested_threads(options.threads);
    let threads = effective_threads(options.threads, pending.len());
    if options.verbose {
        eprintln!(
            "campaign `{}`: {} scenarios ({} pending, {} already stored), {} worker(s), \
             {} thread(s) total",
            grid.name,
            grid.scenarios.len(),
            pending.len(),
            skipped,
            threads,
            budget
        );
    }

    if !pending.is_empty() {
        let specs: Vec<&dnnlife_core::ExperimentSpec> =
            pending.iter().map(|&i| &grid.scenarios[i]).collect();
        let mut done = 0usize;
        let mut journal_error = None;
        execute_pool(&specs, budget, options.shards, |_, record| {
            let label = record.result.label.clone();
            if let Err(e) = store.append(record) {
                journal_error = Some(e);
                return false;
            }
            done += 1;
            if options.verbose {
                eprintln!("  [{done}/{}] {label}", specs.len());
            }
            true
        });
        if let Some(e) = journal_error {
            return Err(e);
        }
    }

    store.finalize(&keys)?;
    Ok(CampaignOutcome {
        executed: pending.len(),
        skipped,
        threads,
    })
}

/// Runs every scenario of `grid` on a `threads`-sized budget (0 = all
/// cores) without touching disk, returning records in grid order. This
/// is the path report harnesses use when they only need the in-memory
/// fold.
pub fn run_scenarios(grid: &CampaignGrid, threads: usize) -> Vec<ScenarioRecord> {
    let specs: Vec<&dnnlife_core::ExperimentSpec> = grid.scenarios.iter().collect();
    let mut slots: Vec<Option<ScenarioRecord>> = vec![None; specs.len()];
    execute_pool(
        &specs,
        requested_threads(threads),
        ShardPolicy::default(),
        |index, record| {
            slots[index] = Some(record);
            true
        },
    );
    slots
        .into_iter()
        .map(|slot| slot.expect("execute_pool completes every scenario"))
        .collect()
}

/// Shared worker pool with a two-level thread budget: `budget` threads
/// total, `min(budget, |specs|)` of them scenario workers pulling
/// indices from an atomic counter, the remainder pooled as *spare*
/// simulator threads. A worker starting a scenario claims a fair share
/// of the spare pool and runs the scenario on `1 + share` simulator
/// threads (returning the share afterwards), so a wide machine is not
/// wasted on a narrow grid.
///
/// The calling thread observes each `(index, record)` completion in
/// completion order. `on_complete` returning `false` raises a shared
/// abort flag that cancels in-flight exact simulations at block
/// granularity — workers notice within one inference, not after
/// finishing a minutes-long scenario — and cancelled partial results
/// are discarded, never delivered. (Analytic scenarios poll the flag
/// only between memory units.)
fn execute_pool<F>(
    specs: &[&dnnlife_core::ExperimentSpec],
    budget: usize,
    shards: ShardPolicy,
    mut on_complete: F,
) where
    F: FnMut(usize, ScenarioRecord) -> bool,
{
    let workers = budget.min(specs.len()).max(1);
    let spare = AtomicUsize::new(budget.saturating_sub(workers));
    let abort = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, ScenarioRecord)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, spare, abort) = (&next, &spare, &abort);
            scope.spawn(move || loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let slot = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(slot) else {
                    break;
                };
                let extra = claim_spare(spare, specs.len() - slot);
                let opts = RunOptions {
                    threads: 1 + extra,
                    shards,
                    cancel: Some(abort),
                };
                let result = run_experiment_with(spec, &opts);
                if extra > 0 {
                    spare.fetch_add(extra, Ordering::AcqRel);
                }
                let Some(result) = result else {
                    break; // cancelled mid-scenario: discard the partial
                };
                let record = ScenarioRecord::annotated((*spec).clone(), result, shards);
                if tx.send((slot, record)).is_err() {
                    break; // receiver gone: abort requested
                }
            });
        }
        drop(tx);
        for (index, record) in rx {
            if !on_complete(index, record) {
                // Raise the cancel flag *and* drop the receiver: idle
                // workers stop at their next claim, in-flight
                // simulations stop within one inference.
                abort.store(true, Ordering::Relaxed);
                break;
            }
        }
    });
}

/// Claims this worker's share of the spare-thread pool: an even split
/// over the scenarios not yet claimed (`remaining` ≥ 1 counts the one
/// being started), so early claimers don't starve the rest of the
/// grid, and the last scenario takes everything still pooled.
fn claim_spare(spare: &AtomicUsize, remaining: usize) -> usize {
    let mut take = 0;
    let _ = spare.fetch_update(Ordering::AcqRel, Ordering::Acquire, |pooled| {
        take = pooled.div_ceil(remaining.max(1)).min(pooled);
        Some(pooled - take)
    });
    take
}

/// The requested total thread budget (0 = all available cores).
fn requested_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

pub(crate) fn effective_threads(requested: usize, pending: usize) -> usize {
    requested_threads(requested).min(pending).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnlife_core::experiment::{
        DwellModel, NetworkKind, Platform, PolicySpec, SimulatorBackend,
    };
    use dnnlife_core::ExperimentSpec;

    #[test]
    fn thread_count_clamps_to_pending_work() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(4, 0), 1);
        assert!(effective_threads(0, usize::MAX) >= 1);
    }

    #[test]
    fn spare_claims_split_fairly_and_drain_on_the_tail() {
        let spare = AtomicUsize::new(5);
        assert_eq!(claim_spare(&spare, 3), 2);
        assert_eq!(claim_spare(&spare, 2), 2);
        assert_eq!(claim_spare(&spare, 1), 1, "last scenario takes the rest");
        assert_eq!(claim_spare(&spare, 4), 0, "empty pool claims nothing");
        let spare = AtomicUsize::new(7);
        assert_eq!(claim_spare(&spare, 1), 7, "sole scenario takes everything");
    }

    fn npu_spec(backend: SimulatorBackend, inferences: u64, stride: usize) -> ExperimentSpec {
        ExperimentSpec {
            platform: Platform::TpuLike,
            network: NetworkKind::CustomMnist,
            format: dnnlife_quant::NumberFormat::Int8Symmetric,
            policy: PolicySpec::None,
            inferences,
            years: 7.0,
            seed: 3,
            sample_stride: stride,
            backend,
            dwell: DwellModel::Uniform,
        }
    }

    /// The abort-latency contract: after `on_complete` declines, an
    /// in-flight exact scenario is cancelled within one inference (not
    /// after minutes of finishing its whole run), and its partial
    /// result is discarded — `on_complete` never sees it.
    #[test]
    fn abort_cancels_in_flight_scenarios_within_one_inference() {
        // One fast analytic scenario and one exact scenario that would
        // take on the order of minutes uncancelled (tens of thousands
        // of inferences over every word of every FIFO slot).
        let fast = npu_spec(SimulatorBackend::Analytic, 10, 1024);
        let slow = npu_spec(SimulatorBackend::Exact, 50_000, 16);
        let specs: Vec<&ExperimentSpec> = vec![&fast, &slow];

        let started = std::time::Instant::now();
        let mut delivered = 0usize;
        execute_pool(&specs, 2, ShardPolicy::Auto, |_, _| {
            delivered += 1;
            false // abort after the first completion
        });
        assert_eq!(
            delivered, 1,
            "the cancelled partial result must be discarded, not delivered"
        );
        assert!(
            started.elapsed().as_secs() < 30,
            "abort took {:?} — in-flight work was not cancelled promptly",
            started.elapsed()
        );
    }

    /// Budgets wider than the grid hand their leftover threads to the
    /// running scenarios instead of idling them — and results are the
    /// same as a single-threaded pool.
    #[test]
    fn wide_budget_on_narrow_grid_matches_single_thread_results() {
        let a = npu_spec(SimulatorBackend::Exact, 8, 256);
        let mut b = a.clone();
        b.seed = 4;
        let specs: Vec<&ExperimentSpec> = vec![&a, &b];
        let run = |budget: usize| {
            let mut out: Vec<Option<ScenarioRecord>> = vec![None; specs.len()];
            execute_pool(&specs, budget, ShardPolicy::Fixed(4), |i, r| {
                out[i] = Some(r);
                true
            });
            out
        };
        assert_eq!(
            run(1),
            run(8),
            "spare simulator threads must never be semantic"
        );
    }
}
