//! Parallel campaign executor.
//!
//! Scenarios are sharded across a std-only worker pool: workers pull
//! the next pending scenario index from a shared atomic counter (work
//! stealing without queues — scenario runtimes vary by orders of
//! magnitude between networks, so static partitioning would idle
//! cores), run it with the simulator pinned to one thread, and send
//! the record back over a channel. The main thread journals each
//! completion to the [`ResultStore`] immediately, then finalizes the
//! store in canonical grid order.
//!
//! Determinism: each scenario's result depends only on its spec (per-
//! cell counter-seeded RNG streams), and the finalize pass orders the
//! file by the grid, so the finished store is **byte-identical for any
//! worker count** and for interrupted-then-resumed runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use dnnlife_core::experiment::run_experiment_threaded;

use crate::grid::CampaignGrid;
use crate::store::{ResultStore, ScenarioRecord, StoreLock};

/// Executor knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignOptions {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Skip scenarios already present in the store. When false, an
    /// existing store file is discarded and every scenario re-runs.
    pub resume: bool,
    /// Print per-scenario progress lines to stderr.
    pub verbose: bool,
}

/// What a campaign run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Scenarios executed by this invocation.
    pub executed: usize,
    /// Scenarios skipped because the store already held them.
    pub skipped: usize,
    /// Worker threads used (1 when nothing was pending).
    pub threads: usize,
}

/// Runs every scenario of `grid`, journaling into (and finalizing) the
/// store at `store_path`.
///
/// # Errors
///
/// Propagates store I/O errors. A panic in a worker (a scenario
/// panicking mid-simulation) propagates after in-flight completions
/// have been journaled.
pub fn run_campaign(
    grid: &CampaignGrid,
    store_path: impl Into<std::path::PathBuf>,
    options: &CampaignOptions,
) -> std::io::Result<CampaignOutcome> {
    let store_path = store_path.into();
    // Held for the whole campaign: a second sweep journaling into the
    // same file would interleave writes and corrupt it mid-line.
    let _lock = StoreLock::acquire(&store_path)?;
    if !options.resume && store_path.exists() {
        std::fs::remove_file(&store_path)?;
    }
    let mut store = ResultStore::open(&store_path)?;

    let keys = grid.keys();
    let stale = store.stale_keys(&keys);
    if !stale.is_empty() {
        eprintln!(
            "campaign `{}`: dropping {} stale record(s) from {} — they were produced \
             by a sweep with different parameters (seed/stride/inferences/grid)",
            grid.name,
            stale.len(),
            store.path().display()
        );
    }
    let pending: Vec<usize> = (0..grid.scenarios.len())
        .filter(|&i| !store.contains(&keys[i]))
        .collect();
    let skipped = grid.scenarios.len() - pending.len();

    let threads = effective_threads(options.threads, pending.len());
    if options.verbose {
        eprintln!(
            "campaign `{}`: {} scenarios ({} pending, {} already stored), {} worker(s)",
            grid.name,
            grid.scenarios.len(),
            pending.len(),
            skipped,
            threads
        );
    }

    if !pending.is_empty() {
        let specs: Vec<&dnnlife_core::ExperimentSpec> =
            pending.iter().map(|&i| &grid.scenarios[i]).collect();
        let mut done = 0usize;
        let mut journal_error = None;
        execute_pool(&specs, threads, |_, record| {
            let label = record.result.label.clone();
            if let Err(e) = store.append(record) {
                journal_error = Some(e);
                return false;
            }
            done += 1;
            if options.verbose {
                eprintln!("  [{done}/{}] {label}", specs.len());
            }
            true
        });
        if let Some(e) = journal_error {
            return Err(e);
        }
    }

    store.finalize(&keys)?;
    Ok(CampaignOutcome {
        executed: pending.len(),
        skipped,
        threads,
    })
}

/// Runs every scenario of `grid` on `threads` workers (0 = all cores)
/// without touching disk, returning records in grid order. This is the
/// path report harnesses use when they only need the in-memory fold.
pub fn run_scenarios(grid: &CampaignGrid, threads: usize) -> Vec<ScenarioRecord> {
    let specs: Vec<&dnnlife_core::ExperimentSpec> = grid.scenarios.iter().collect();
    let mut slots: Vec<Option<ScenarioRecord>> = vec![None; specs.len()];
    execute_pool(
        &specs,
        effective_threads(threads, specs.len()),
        |index, record| {
            slots[index] = Some(record);
            true
        },
    );
    slots
        .into_iter()
        .map(|slot| slot.expect("execute_pool completes every scenario"))
        .collect()
}

/// Shared worker pool: workers pull scenario indices from an atomic
/// counter, run them with the simulator pinned to one thread, and the
/// calling thread observes each `(index, record)` completion in
/// completion order. `on_complete` returning `false` aborts remaining
/// work (in-flight scenarios still finish).
fn execute_pool<F>(specs: &[&dnnlife_core::ExperimentSpec], threads: usize, mut on_complete: F)
where
    F: FnMut(usize, ScenarioRecord) -> bool,
{
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, ScenarioRecord)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(slot) else {
                    break;
                };
                let result = run_experiment_threaded(spec, 1);
                if tx
                    .send((slot, ScenarioRecord::new((*spec).clone(), result)))
                    .is_err()
                {
                    break; // receiver gone: abort requested
                }
            });
        }
        drop(tx);
        for (index, record) in rx {
            if !on_complete(index, record) {
                break; // dropping rx stops the workers
            }
        }
    });
}

fn effective_threads(requested: usize, pending: usize) -> usize {
    let available = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    available.min(pending).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_clamps_to_pending_work() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(4, 0), 1);
        assert!(effective_threads(0, usize::MAX) >= 1);
    }
}
