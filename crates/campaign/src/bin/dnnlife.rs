//! `dnnlife` — campaign CLI: sweep scenario grids in parallel, report
//! aggregated tables, compare result stores, cross-validate the
//! analytic and exact simulators.
//!
//! ```text
//! dnnlife sweep --grid <fig9|fig11|bias|mbits|full> [--threads N]
//!               [--out FILE] [--resume] [--seed N] [--stride N]
//!               [--inferences N] [--backend analytic|exact]
//!               [--dwell uniform|layer|zipf[:EXP]|custom:F1,F2,...]
//!               [--ecc none|secded[:INTERLEAVE]|both]
//!               [--shards auto|N] [--verbose]
//! dnnlife report --store FILE [--table fig9|fig11|bias|mbits|detail|all]
//! dnnlife compare --store-a FILE --store-b FILE
//! dnnlife validate --grid <fig9|fig11|bias|mbits|full> [--threads N]
//!                  [--seed N] [--stride N] [--inferences N]
//!                  [--dwell MODEL] [--shards auto|N] [--report-only]
//! ```
//!
//! `sweep` is resumable: results are journaled per scenario, so a
//! killed sweep re-run with `--resume` executes only the missing
//! scenarios — and the finalized store is byte-identical to a clean
//! single-threaded run regardless of `--threads`. The budget is
//! two-level: threads left over by a narrow grid are handed to the
//! in-flight simulators (analytic cell shards / exact word shards)
//! instead of idling. `--shards` controls the exact backend's word
//! sharding: deterministic policies are bit-identical at any value,
//! while DNN-Life deals one seed-derived TRBG stream per shard, so the
//! default `auto` (a machine-independent function of the sampled word
//! count) keeps every store reproducible.
//!
//! `validate` fans scenario pairs across `--threads` workers and runs
//! each pair's exact side at `--shards`; it reports per-cell duty
//! divergence. Under the default uniform dwell it enforces the
//! documented tolerances and fails loudly on disagreement; with a
//! non-uniform `--dwell` the reported divergence measures how much the
//! paper's equal-residency assumption (b) distorts each scenario, and
//! no tolerance applies.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use dnnlife_campaign::aggregate;
use dnnlife_campaign::grid::SweepOptions;
use dnnlife_campaign::{
    accuracy_vs_age_table, ecc_comparison_table, run_campaign_cancellable, run_injection_campaign,
    validate_scenarios_cancellable, CampaignGrid, CampaignOptions, InjectCampaignOptions,
    InjectionGrid, InjectionParams, InjectionStore, ResultStore, ShardPolicy,
};
use dnnlife_core::experiment::{NetworkKind, Platform, PolicySpec};
use dnnlife_core::{DwellModel, RepairPolicy, SimulatorBackend};
use dnnlife_quant::NumberFormat;

/// Raised by the SIGINT handler; every long-running subcommand polls
/// it through the campaign cancellation plumbing, so Ctrl-C aborts
/// in-flight scenarios / cross-validation pairs / injection trials
/// mid-scenario instead of killing the process with a half-written
/// journal line.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint_handler() {
    unsafe extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: one atomic store. The handler stays
        // installed, so repeated Ctrl-C just re-raises the flag while
        // the graceful abort (one block of the exact simulator, one
        // SGD step, one injection trial) finishes.
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

fn main() -> ExitCode {
    install_sigint_handler();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let outcome = match command.as_str() {
        "sweep" => sweep(rest),
        "report" => report(rest),
        "compare" => compare(rest),
        "validate" => validate(rest),
        "inject" => inject(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dnnlife: {message}");
            if INTERRUPTED.load(Ordering::SeqCst) {
                return ExitCode::from(130); // conventional SIGINT exit
            }
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  dnnlife sweep --grid <fig9|fig11|bias|mbits|full> [--threads N] [--out FILE]
                [--resume] [--seed N] [--stride N] [--inferences N]
                [--backend analytic|exact]
                [--dwell uniform|layer|zipf[:EXP]|custom:F1,F2,...]
                [--ecc none|secded[:INTERLEAVE]|both] [--shards auto|N] [--verbose]
  dnnlife report --store FILE [--table fig9|fig11|bias|mbits|detail|all]
  dnnlife compare --store-a FILE --store-b FILE
  dnnlife validate --grid <fig9|fig11|bias|mbits|full> [--threads N] [--seed N]
                   [--stride N] [--inferences N] [--dwell MODEL]
                   [--shards auto|N] [--report-only]
  dnnlife inject [--platform baseline|npu] [--format fp32|int8|int8-asym]
                 [--policy SUBSTRING] [--ecc none|secded[:INTERLEAVE]|both]
                 [--ages Y1,Y2,...] [--trials N] [--eval-images N]
                 [--train-steps N] [--noise-mv F] [--inferences N] [--seed N]
                 [--threads N] [--out FILE] [--resume] [--verbose]
  dnnlife inject --report --store FILE";

/// Minimal `--flag [value]` argument cursor.
struct Args<'a> {
    argv: &'a [String],
    index: usize,
}

impl<'a> Args<'a> {
    fn new(argv: &'a [String]) -> Self {
        Self { argv, index: 0 }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        let arg = self.argv.get(self.index)?;
        self.index += 1;
        Some(arg.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        let value = self
            .argv
            .get(self.index)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        self.index += 1;
        Ok(value.as_str())
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        self.value(flag)?
            .parse()
            .map_err(|_| format!("{flag}: invalid value"))
    }
}

fn sweep(argv: &[String]) -> Result<(), String> {
    let mut grid_name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut options = CampaignOptions::default();
    let mut sweep_options = SweepOptions::default();
    let mut ecc = EccAxis::One(RepairPolicy::None);

    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--grid" => grid_name = Some(args.value("--grid")?.to_string()),
            "--out" => out = Some(args.value("--out")?.to_string()),
            "--threads" => options.threads = args.parsed("--threads")?,
            "--resume" => options.resume = true,
            "--verbose" => options.verbose = true,
            "--seed" => sweep_options.base_seed = args.parsed("--seed")?,
            "--stride" => sweep_options.sample_stride = args.parsed("--stride")?,
            "--inferences" => sweep_options.inferences = args.parsed("--inferences")?,
            "--backend" => sweep_options.backend = parse_backend(args.value("--backend")?)?,
            "--dwell" => sweep_options.dwell = parse_dwell(args.value("--dwell")?)?,
            "--ecc" => ecc = parse_ecc(args.value("--ecc")?)?,
            "--shards" => options.shards = parse_shards(args.value("--shards")?)?,
            other => return Err(format!("sweep: unexpected argument `{other}`")),
        }
    }
    let grid_name = grid_name.ok_or("sweep: --grid is required")?;
    if sweep_options.sample_stride == 0 {
        return Err("sweep: --stride must be >= 1".to_string());
    }
    if sweep_options.inferences == 0 {
        return Err("sweep: --inferences must be >= 1".to_string());
    }
    if !sweep_options.dwell.is_uniform() && sweep_options.backend != SimulatorBackend::Exact {
        return Err(format!(
            "sweep: --dwell {} needs --backend exact (the analytic closed forms \
             assume equal residency — paper assumption (b))",
            sweep_options.dwell.display_name()
        ));
    }
    let repairs = ecc.values();
    let grid = CampaignGrid::named_with_repairs(&grid_name, sweep_options.clone(), &repairs)
        .ok_or_else(|| format!("sweep: unknown grid `{grid_name}` (fig9|fig11|bias|mbits|full)"))?;
    if grid.is_empty() {
        return Err(format!(
            "sweep: grid `{grid_name}` has no valid scenarios for these axes \
             (check --backend/--dwell: custom factors must match the network's layer \
             count; check --ecc: the SECDED interleave must be coprime with the \
             codeword width — 13 for 8-bit words, 39 for fp32)"
        ));
    }
    // The like-for-like reference for repair-drop diagnostics: the
    // same grid under no repair (everything else equal).
    let no_repair_cells =
        CampaignGrid::named_with_repairs(&grid_name, sweep_options.clone(), &[RepairPolicy::None])
            .map_or(0, |g| g.len());
    check_repair_coverage("sweep", &repairs, no_repair_cells, |repair| {
        grid.scenarios.iter().filter(|s| s.repair == repair).count()
    })?;
    warn_on_dwell_dropped_scenarios("sweep", &grid_name, &grid, &sweep_options, &repairs);
    let store_path = out.unwrap_or_else(|| format!("campaign-results/{grid_name}.jsonl"));

    let started = std::time::Instant::now();
    let outcome = run_campaign_cancellable(&grid, &store_path, &options, Some(&INTERRUPTED))
        .map_err(|e| e.to_string())?;
    println!(
        "campaign `{grid_name}`: {} executed, {} skipped, {} thread(s), {:.1}s -> {store_path}",
        outcome.executed,
        outcome.skipped,
        outcome.threads,
        started.elapsed().as_secs_f64(),
    );
    Ok(())
}

fn report(argv: &[String]) -> Result<(), String> {
    let mut store_path: Option<String> = None;
    let mut table = "all".to_string();
    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--store" => store_path = Some(args.value("--store")?.to_string()),
            "--table" => table = args.value("--table")?.to_string(),
            other => return Err(format!("report: unexpected argument `{other}`")),
        }
    }
    let store_path = store_path.ok_or("report: --store is required")?;
    let store = ResultStore::open(&store_path).map_err(|e| e.to_string())?;
    if store.is_empty() {
        return Err(format!("report: `{store_path}` holds no scenarios"));
    }

    // Tables render empty when the store has no matching scenarios;
    // for an explicitly requested table, say so instead of printing
    // nothing.
    let require = |text: String| -> Result<String, String> {
        if text.is_empty() {
            Err(format!(
                "report: `{store_path}` holds no scenarios matching table `{table}`"
            ))
        } else {
            Ok(text)
        }
    };
    match table.as_str() {
        "fig9" => print!("{}", require(aggregate::fig9_table(&store))?),
        "fig11" => print!("{}", require(aggregate::fig11_table(&store))?),
        "bias" => {
            let (text, csv) = aggregate::bias_sensitivity(&store);
            print!("{}\n{csv}", require(text)?);
        }
        "mbits" => {
            let (text, csv) = aggregate::mbits_sensitivity(&store);
            print!("{}\n{csv}", require(text)?);
        }
        "detail" => print!("{}", aggregate::detail(&store)),
        "all" => {
            print!("{}", aggregate::fig9_table(&store));
            print!("{}", aggregate::fig11_table(&store));
            let (bias, _) = aggregate::bias_sensitivity(&store);
            print!("{bias}");
            let (mbits, _) = aggregate::mbits_sensitivity(&store);
            print!("{mbits}");
        }
        other => {
            return Err(format!(
                "report: unknown table `{other}` (fig9|fig11|bias|mbits|detail|all)"
            ))
        }
    }
    Ok(())
}

/// A non-uniform dwell model can invalidate a *subset* of a grid's
/// scenarios (custom per-layer factors only fit networks with that
/// layer count), which the builder silently filters. Rebuilding the
/// same grid under uniform dwell gives the full scenario count, so a
/// partial drop can be reported instead of masquerading as a complete
/// sweep. A fully-empty grid is a hard error at the call site; this
/// covers the partial case.
fn warn_on_dwell_dropped_scenarios(
    command: &str,
    grid_name: &str,
    grid: &CampaignGrid,
    options: &SweepOptions,
    repairs: &[RepairPolicy],
) {
    if options.dwell.is_uniform() {
        return;
    }
    // The reference grid must cross the same repair axis, or an
    // `--ecc both` grid out-counts the single-repair reference and
    // masks the drop.
    let full = CampaignGrid::named_with_repairs(
        grid_name,
        SweepOptions {
            dwell: DwellModel::Uniform,
            ..options.clone()
        },
        repairs,
    )
    .map_or(0, |g| g.len());
    if grid.len() < full {
        eprintln!(
            "{command}: warning: dwell model `{}` fits only {} of the {full} scenario(s) \
             of grid `{grid_name}` — the rest were dropped (custom factors must match \
             each network's layer count)",
            options.dwell.display_name(),
            grid.len(),
        );
    }
}

fn parse_backend(name: &str) -> Result<SimulatorBackend, String> {
    SimulatorBackend::parse(name)
        .ok_or_else(|| format!("--backend: unknown backend `{name}` (analytic|exact)"))
}

fn parse_dwell(name: &str) -> Result<DwellModel, String> {
    DwellModel::parse(name).ok_or_else(|| {
        format!("--dwell: unknown dwell model `{name}` (uniform|layer|zipf[:EXP]|custom:F1,F2,...)")
    })
}

/// The `--ecc` axis: a single repair policy, or `both` = the plain and
/// SECDED variants of every cell in one campaign (what the
/// corrected-vs-uncorrected table pairs up).
enum EccAxis {
    One(RepairPolicy),
    Both(RepairPolicy),
}

impl EccAxis {
    /// The repair values to cross the grid with, in canonical order.
    fn values(&self) -> Vec<RepairPolicy> {
        match *self {
            EccAxis::One(repair) => vec![repair],
            EccAxis::Both(repair) => vec![RepairPolicy::None, repair],
        }
    }
}

/// An `--ecc` value must not *silently* lose cells to validity
/// filtering. Every requested repair value is compared against
/// `reference` — the same grid built under `RepairPolicy::None`, so
/// the comparison is like-for-like: a value with zero surviving cells
/// (e.g. `--ecc secded:13` on 8-bit words, where stride 13 shares a
/// factor with the 13-bit codeword) is a hard error, and a partial
/// drop (e.g. `secded:3` on a grid mixing int8 and fp32 — 3 divides
/// the 39-bit fp32 codeword) gets a warning, matching the dwell axis's
/// partial-drop diagnostics.
fn check_repair_coverage(
    command: &str,
    repairs: &[RepairPolicy],
    reference: usize,
    count: impl Fn(RepairPolicy) -> usize,
) -> Result<(), String> {
    for &repair in repairs {
        if repair.is_none() {
            continue;
        }
        let cells = count(repair);
        if cells == 0 && reference > 0 {
            return Err(format!(
                "{command}: --ecc {}: every cell of this repair value is invalid \
                 (the SECDED interleave must be coprime with the codeword width — \
                 13 for 8-bit words, 39 for fp32)",
                repair.display_name()
            ));
        }
        if cells < reference {
            eprintln!(
                "{command}: warning: --ecc {}: only {cells} of {reference} cell(s) are \
                 valid under this repair value — the rest were dropped (interleave \
                 not coprime with that word width's codeword)",
                repair.display_name()
            );
        }
    }
    Ok(())
}

fn parse_ecc(name: &str) -> Result<EccAxis, String> {
    if name == "both" {
        return Ok(EccAxis::Both(RepairPolicy::Secded { interleave: 1 }));
    }
    if let Some(stride) = name.strip_prefix("both:") {
        return RepairPolicy::parse(&format!("secded:{stride}"))
            .map(EccAxis::Both)
            .ok_or_else(|| format!("--ecc: invalid interleave `{stride}`"));
    }
    RepairPolicy::parse(name).map(EccAxis::One).ok_or_else(|| {
        format!(
            "--ecc: unknown repair policy `{name}` (none|secded[:INTERLEAVE]|both[:INTERLEAVE])"
        )
    })
}

fn parse_shards(name: &str) -> Result<ShardPolicy, String> {
    ShardPolicy::parse(name)
        .ok_or_else(|| format!("--shards: expected `auto` or a positive count, got `{name}`"))
}

fn validate(argv: &[String]) -> Result<(), String> {
    let mut grid_name: Option<String> = None;
    let mut threads = 0usize;
    let mut shards = ShardPolicy::Auto;
    let mut report_only = false;
    let mut sweep_options = SweepOptions {
        backend: SimulatorBackend::Exact,
        ..SweepOptions::default()
    };

    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--grid" => grid_name = Some(args.value("--grid")?.to_string()),
            "--threads" => threads = args.parsed("--threads")?,
            "--seed" => sweep_options.base_seed = args.parsed("--seed")?,
            "--stride" => sweep_options.sample_stride = args.parsed("--stride")?,
            "--inferences" => sweep_options.inferences = args.parsed("--inferences")?,
            "--dwell" => sweep_options.dwell = parse_dwell(args.value("--dwell")?)?,
            "--shards" => shards = parse_shards(args.value("--shards")?)?,
            "--report-only" => report_only = true,
            other => return Err(format!("validate: unexpected argument `{other}`")),
        }
    }
    let grid_name = grid_name.ok_or("validate: --grid is required")?;
    if sweep_options.sample_stride == 0 {
        return Err("validate: --stride must be >= 1".to_string());
    }
    if sweep_options.inferences == 0 {
        return Err("validate: --inferences must be >= 1".to_string());
    }
    let uniform = sweep_options.dwell.is_uniform();
    let grid = CampaignGrid::named(&grid_name, sweep_options.clone()).ok_or_else(|| {
        format!("validate: unknown grid `{grid_name}` (fig9|fig11|bias|mbits|full)")
    })?;
    if grid.is_empty() {
        return Err(format!(
            "validate: grid `{grid_name}` has no valid scenarios for this dwell model"
        ));
    }
    warn_on_dwell_dropped_scenarios(
        "validate",
        &grid_name,
        &grid,
        &sweep_options,
        &[sweep_options.repair],
    );

    let started = std::time::Instant::now();
    let results =
        validate_scenarios_cancellable(&grid.scenarios, threads, shards, Some(&INTERRUPTED))
            .ok_or_else(|| {
                format!(
                    "validate `{grid_name}` interrupted mid-scenario; \
                     completed pairs were discarded"
                )
            })?;
    print!("{}", aggregate::crossval_table(&results));
    let worst = results
        .iter()
        .map(|cv| cv.max_abs_duty)
        .fold(0.0f64, f64::max);
    println!(
        "validate `{grid_name}`: {} scenario pair(s), max per-cell duty divergence {worst:.3e}, {:.1}s",
        results.len(),
        started.elapsed().as_secs_f64(),
    );
    if uniform && !report_only {
        let failures: Vec<&str> = results
            .iter()
            .filter(|cv| !cv.within_tolerance())
            .map(|cv| cv.label.as_str())
            .collect();
        if !failures.is_empty() {
            return Err(format!(
                "validate: {} scenario pair(s) exceeded the documented tolerance:\n  {}",
                failures.len(),
                failures.join("\n  ")
            ));
        }
    }
    Ok(())
}

fn parse_platform(name: &str) -> Result<Platform, String> {
    match name {
        "baseline" => Ok(Platform::Baseline),
        "npu" | "tpu" | "tpu-like" => Ok(Platform::TpuLike),
        other => Err(format!(
            "--platform: unknown platform `{other}` (baseline|npu)"
        )),
    }
}

fn parse_format(name: &str) -> Result<NumberFormat, String> {
    match name {
        "fp32" => Ok(NumberFormat::Fp32),
        "int8" | "int8-sym" | "int8-symmetric" => Ok(NumberFormat::Int8Symmetric),
        "int8-asym" | "int8-asymmetric" => Ok(NumberFormat::Int8Asymmetric),
        other => Err(format!(
            "--format: unknown format `{other}` (fp32|int8|int8-asym)"
        )),
    }
}

fn parse_ages(list: &str) -> Result<Vec<f64>, String> {
    let ages: Option<Vec<f64>> = list.split(',').map(|a| a.parse().ok()).collect();
    let ages = ages.ok_or_else(|| format!("--ages: invalid age list `{list}`"))?;
    if ages.is_empty() || ages.iter().any(|a| !a.is_finite() || *a < 0.0) {
        return Err(format!(
            "--ages: ages must be finite and >= 0, got `{list}`"
        ));
    }
    Ok(ages)
}

/// `dnnlife inject`: the fault-injection campaign — accuracy vs age
/// per mitigation policy, resumable like `sweep`.
fn inject(argv: &[String]) -> Result<(), String> {
    let mut platform = Platform::Baseline;
    let mut format = NumberFormat::Int8Symmetric;
    let mut policy_filter: Option<String> = None;
    let mut params = InjectionParams::default();
    let mut ecc = EccAxis::One(RepairPolicy::None);
    let mut options = InjectCampaignOptions::default();
    let mut out: Option<String> = None;
    let mut report_only = false;
    let mut report_store: Option<String> = None;

    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--platform" => platform = parse_platform(args.value("--platform")?)?,
            "--format" => format = parse_format(args.value("--format")?)?,
            "--policy" => policy_filter = Some(args.value("--policy")?.to_lowercase()),
            "--ecc" => ecc = parse_ecc(args.value("--ecc")?)?,
            "--ages" => params.ages_years = parse_ages(args.value("--ages")?)?,
            "--trials" => params.trials = args.parsed("--trials")?,
            "--eval-images" => params.eval_images = args.parsed("--eval-images")?,
            "--train-steps" => params.train_steps = args.parsed("--train-steps")?,
            "--noise-mv" => params.noise_sigma_mv = args.parsed("--noise-mv")?,
            "--inferences" => params.inferences = args.parsed("--inferences")?,
            "--seed" => params.base_seed = args.parsed("--seed")?,
            "--threads" => options.threads = args.parsed("--threads")?,
            "--out" => out = Some(args.value("--out")?.to_string()),
            "--resume" => options.resume = true,
            "--verbose" => options.verbose = true,
            "--report" => report_only = true,
            "--store" => report_store = Some(args.value("--store")?.to_string()),
            other => return Err(format!("inject: unexpected argument `{other}`")),
        }
    }

    if report_only {
        let store_path = report_store.ok_or("inject --report: --store is required")?;
        let store = InjectionStore::open(&store_path).map_err(|e| e.to_string())?;
        if store.is_empty() {
            return Err(format!("inject: `{store_path}` holds no injection records"));
        }
        print!("{}", accuracy_vs_age_table(&store));
        print!("{}", ecc_comparison_table(&store));
        return Ok(());
    }
    if params.trials == 0 {
        return Err("inject: --trials must be >= 1".to_string());
    }
    if params.eval_images == 0 {
        return Err("inject: --eval-images must be >= 1".to_string());
    }
    if params.inferences == 0 {
        return Err("inject: --inferences must be >= 1".to_string());
    }
    if !(params.noise_sigma_mv.is_finite() && params.noise_sigma_mv > 0.0) {
        return Err("inject: --noise-mv must be > 0".to_string());
    }

    // The runnable zoo network crossed with the paper's Fig. 11 policy
    // set (optionally filtered by `--policy` substring).
    let mut policies = dnnlife_core::experiment::fig11_policies();
    if let Some(filter) = &policy_filter {
        policies.retain(|p: &PolicySpec| p.display_name().to_lowercase().contains(filter));
        if policies.is_empty() {
            return Err(format!(
                "inject: --policy `{filter}` matches no policy of the Fig. 11 set"
            ));
        }
    }
    let repairs = ecc.values();
    let grid = InjectionGrid::build_with_repairs(
        "inject",
        platform,
        NetworkKind::CustomMnist,
        format,
        &policies,
        &params,
        &repairs,
    );
    if grid.is_empty() {
        return Err(
            "inject: no valid cells for these axes (fp32 needs --platform baseline; \
             the SECDED interleave must be coprime with the codeword width — \
             13 for 8-bit words, 39 for fp32)"
                .to_string(),
        );
    }
    let no_repair_cells = InjectionGrid::build_with_repairs(
        "inject",
        platform,
        NetworkKind::CustomMnist,
        format,
        &policies,
        &params,
        &[RepairPolicy::None],
    )
    .len();
    check_repair_coverage("inject", &repairs, no_repair_cells, |repair| {
        grid.specs
            .iter()
            .filter(|s| s.scenario.repair == repair)
            .count()
    })?;
    let store_path = out.unwrap_or_else(|| "campaign-results/inject.jsonl".to_string());

    let started = std::time::Instant::now();
    let outcome = run_injection_campaign(&grid, &store_path, &options, Some(&INTERRUPTED))
        .map_err(|e| e.to_string())?;
    let store = InjectionStore::open(&store_path).map_err(|e| e.to_string())?;
    print!("{}", accuracy_vs_age_table(&store));
    print!("{}", ecc_comparison_table(&store));
    println!(
        "inject: {} executed, {} skipped, {} thread(s), {:.1}s -> {store_path}",
        outcome.executed,
        outcome.skipped,
        outcome.threads,
        started.elapsed().as_secs_f64(),
    );
    Ok(())
}

fn compare(argv: &[String]) -> Result<(), String> {
    let mut store_a: Option<String> = None;
    let mut store_b: Option<String> = None;
    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--store-a" => store_a = Some(args.value("--store-a")?.to_string()),
            "--store-b" => store_b = Some(args.value("--store-b")?.to_string()),
            other => return Err(format!("compare: unexpected argument `{other}`")),
        }
    }
    let store_a = store_a.ok_or("compare: --store-a is required")?;
    let store_b = store_b.ok_or("compare: --store-b is required")?;
    let a = ResultStore::open(&store_a).map_err(|e| e.to_string())?;
    let b = ResultStore::open(&store_b).map_err(|e| e.to_string())?;
    print!("{}", aggregate::compare_stores(&a, &b));
    Ok(())
}
