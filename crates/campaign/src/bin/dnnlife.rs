//! `dnnlife` — campaign CLI: sweep scenario grids in parallel, report
//! aggregated tables, compare result stores, cross-validate the
//! analytic and exact simulators.
//!
//! ```text
//! dnnlife sweep --grid <fig9|fig11|bias|mbits|full> [--threads N]
//!               [--out FILE] [--resume] [--seed N] [--stride N]
//!               [--inferences N] [--backend analytic|exact]
//!               [--dwell uniform|layer|zipf[:EXP]|custom:F1,F2,...]
//!               [--ecc none|secded[:INTERLEAVE]|both]
//!               [--tech sram|reram|both]
//!               [--shards auto|N] [--verbose]
//! dnnlife report --store FILE [--table fig9|fig11|bias|mbits|detail|all]
//! dnnlife compare --store-a FILE --store-b FILE
//! dnnlife validate --grid <fig9|fig11|bias|mbits|full> [--threads N]
//!                  [--seed N] [--stride N] [--inferences N]
//!                  [--dwell MODEL] [--tech sram|reram|both]
//!                  [--shards auto|N] [--report-only]
//! ```
//!
//! `sweep` is resumable: results are journaled per scenario, so a
//! killed sweep re-run with `--resume` executes only the missing
//! scenarios — and the finalized store is byte-identical to a clean
//! single-threaded run regardless of `--threads`. The budget is
//! two-level: threads left over by a narrow grid are handed to the
//! in-flight simulators (analytic cell shards / exact word shards)
//! instead of idling. `--shards` controls the exact backend's word
//! sharding: deterministic policies are bit-identical at any value,
//! while DNN-Life deals one seed-derived TRBG stream per shard, so the
//! default `auto` (a machine-independent function of the sampled word
//! count) keeps every store reproducible.
//!
//! `validate` fans scenario pairs across `--threads` workers and runs
//! each pair's exact side at `--shards`; it reports per-cell duty
//! divergence. Under the default uniform dwell it enforces the
//! documented tolerances and fails loudly on disagreement; with a
//! non-uniform `--dwell` the reported divergence measures how much the
//! paper's equal-residency assumption (b) distorts each scenario, and
//! no tolerance applies.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use dnnlife_campaign::aggregate;
use dnnlife_campaign::grid::SweepOptions;
use dnnlife_campaign::perf;
use dnnlife_campaign::{
    accuracy_vs_age_table, ecc_comparison_table, run_campaign_instrumented,
    run_injection_campaign_instrumented, validate_scenarios_instrumented, CampaignGrid,
    CampaignOptions, InjectCampaignOptions, InjectionGrid, InjectionParams, InjectionStore,
    Instrumentation, Progress, ResultStore, ShardPolicy, Telemetry,
};
use dnnlife_core::experiment::{NetworkKind, Platform, PolicySpec};
use dnnlife_core::{DwellModel, MemoryTech, RepairPolicy, SimulatorBackend};
use dnnlife_quant::NumberFormat;
use serde::Serialize;

/// Raised by the SIGINT handler; every long-running subcommand polls
/// it through the campaign cancellation plumbing, so Ctrl-C aborts
/// in-flight scenarios / cross-validation pairs / injection trials
/// mid-scenario instead of killing the process with a half-written
/// journal line.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint_handler() {
    unsafe extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: one atomic store. The handler stays
        // installed, so repeated Ctrl-C just re-raises the flag while
        // the graceful abort (one block of the exact simulator, one
        // SGD step, one injection trial) finishes.
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

/// Exit code for a missing or empty result/events store — distinct
/// from general errors (2) so scripts and CI can branch on "nothing to
/// report yet" without string-matching stderr.
const EXIT_NO_STORE: u8 = 3;

/// A subcommand failure: exit code plus message. `From<String>` maps
/// plain errors to the general code 2; [`CliError::store`] marks the
/// missing/empty-store outcome (3). A raised SIGINT flag overrides
/// either with the conventional 130.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn store(message: impl Into<String>) -> Self {
        Self {
            code: EXIT_NO_STORE,
            message: message.into(),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self { code: 2, message }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self::from(message.to_string())
    }
}

fn main() -> ExitCode {
    install_sigint_handler();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let outcome = match command.as_str() {
        "sweep" => sweep(rest),
        "report" => report(rest),
        "compare" => compare(rest),
        "validate" => validate(rest),
        "inject" => inject(rest),
        "perf" => perf_command(rest),
        "trace" => trace_command(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("dnnlife: {}", error.message);
            if INTERRUPTED.load(Ordering::SeqCst) {
                return ExitCode::from(130); // conventional SIGINT exit
            }
            ExitCode::from(error.code)
        }
    }
}

const USAGE: &str = "\
usage:
  dnnlife sweep --grid <fig9|fig11|bias|mbits|full> [--threads N] [--out FILE]
                [--resume] [--seed N] [--stride N] [--inferences N]
                [--backend analytic|exact]
                [--dwell uniform|layer|zipf[:EXP]|custom:F1,F2,...]
                [--ecc none|secded[:INTERLEAVE]|both] [--tech sram|reram|both]
                [--shards auto|N] [--telemetry] [--progress]
                [--metrics-out FILE] [--verbose]
  dnnlife report --store FILE [--table fig9|fig11|bias|mbits|detail|all] [--json]
  dnnlife compare --store-a FILE --store-b FILE [--json]
  dnnlife validate --grid <fig9|fig11|bias|mbits|full> [--threads N] [--seed N]
                   [--stride N] [--inferences N] [--dwell MODEL]
                   [--tech sram|reram|both] [--shards auto|N]
                   [--telemetry] [--progress] [--metrics-out FILE]
                   [--report-only]
  dnnlife inject [--platform baseline|npu] [--network alexnet|vgg16|custom-mnist]
                 [--format fp32|int8|int8-asym]
                 [--policy SUB[,SUB,...]] [--ecc none|secded[:INTERLEAVE]|both]
                 [--tech sram|reram|both]
                 [--ages Y1,Y2,...] [--trials N] [--eval-images N]
                 [--train-steps N] [--noise-mv F] [--inferences N] [--seed N]
                 [--threads N] [--shards auto|N] [--out FILE] [--resume]
                 [--telemetry] [--progress] [--metrics-out FILE] [--verbose]
  dnnlife inject --report --store FILE [--json]
  dnnlife perf --events FILE [--diff FILE] [--json] [--top N]
               [--baseline FILE --max-regression F]
  dnnlife trace --events FILE [--json]

exit codes: 0 ok; 2 error; 3 store/journal missing or empty; 130 interrupted
`--telemetry` journals machine-readable events next to the store
(STORE.events.jsonl — the input of `dnnlife perf` and `dnnlife trace`);
`--progress` draws a live done/total/ETA line on a stderr TTY and
degrades to periodic plain lines when stderr is redirected;
`--metrics-out FILE` (sweep/validate/inject) writes a Prometheus text
exposition of the run's metrics registry plus a `.json` twin. None of
them ever changes results: stores stay byte-identical with telemetry on
or off.";

/// Minimal `--flag [value]` argument cursor.
struct Args<'a> {
    argv: &'a [String],
    index: usize,
}

impl<'a> Args<'a> {
    fn new(argv: &'a [String]) -> Self {
        Self { argv, index: 0 }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        let arg = self.argv.get(self.index)?;
        self.index += 1;
        Some(arg.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        let value = self
            .argv
            .get(self.index)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        self.index += 1;
        Ok(value.as_str())
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        self.value(flag)?
            .parse()
            .map_err(|_| format!("{flag}: invalid value"))
    }
}

/// The telemetry journal path derived from a result-store path:
/// `campaign-results/fig9.jsonl` → `campaign-results/fig9.events.jsonl`
/// (non-`.jsonl` stores just gain the suffix).
fn events_path_for(store_path: &str) -> String {
    match store_path.strip_suffix(".jsonl") {
        Some(stem) => format!("{stem}.events.jsonl"),
        None => format!("{store_path}.events.jsonl"),
    }
}

/// The owning halves of an [`Instrumentation`] handle, built from the
/// `--telemetry` / `--progress` / `--metrics-out` flags (the subcommand
/// keeps them alive for the campaign's duration and borrows them into
/// the executor). `--metrics-out` without `--telemetry` still needs a
/// live registry, so it gets an in-memory telemetry with no journal.
fn build_sinks(
    telemetry_on: bool,
    progress_on: bool,
    metrics_on: bool,
    events_path: &str,
    label: &str,
) -> Result<(Option<Telemetry>, Option<Progress>), CliError> {
    let telemetry = if telemetry_on {
        Some(
            Telemetry::with_journal(events_path)
                .map_err(|e| format!("--telemetry: cannot open `{events_path}`: {e}"))?,
        )
    } else if metrics_on {
        Some(Telemetry::in_memory())
    } else {
        None
    };
    let progress = progress_on.then(|| Progress::stderr(label, 0));
    Ok((telemetry, progress))
}

/// The JSON twin path of a Prometheus exposition file:
/// `metrics.prom` → `metrics.json` (other extensions just gain `.json`).
fn metrics_json_twin(path: &str) -> String {
    match path.strip_suffix(".prom") {
        Some(stem) => format!("{stem}.json"),
        None => format!("{path}.json"),
    }
}

/// Writes the run's metrics registry as Prometheus text exposition at
/// `path` plus a JSON twin next to it. A no-op without a telemetry
/// sink (the flag parser always builds one when `--metrics-out` is
/// set).
fn write_metrics_out(telemetry: Option<&Telemetry>, path: Option<&str>) -> Result<(), CliError> {
    let (Some(telemetry), Some(path)) = (telemetry, path) else {
        return Ok(());
    };
    let snapshot = telemetry.metrics_snapshot();
    std::fs::write(path, snapshot.render_prometheus())
        .map_err(|e| format!("--metrics-out: cannot write `{path}`: {e}"))?;
    let twin = metrics_json_twin(path);
    let json = serde_json::to_string(&snapshot.to_value()).expect("metrics serialize");
    std::fs::write(&twin, json)
        .map_err(|e| format!("--metrics-out: cannot write `{twin}`: {e}"))?;
    println!("metrics -> {path} + {twin}");
    Ok(())
}

fn sweep(argv: &[String]) -> Result<(), CliError> {
    let mut grid_name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut options = CampaignOptions::default();
    let mut sweep_options = SweepOptions::default();
    let mut repairs = vec![RepairPolicy::None];
    let mut techs: Vec<MemoryTech> = Vec::new();
    let mut telemetry_on = false;
    let mut progress_on = false;
    let mut metrics_out: Option<String> = None;

    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--grid" => grid_name = Some(args.value("--grid")?.to_string()),
            "--out" => out = Some(args.value("--out")?.to_string()),
            "--threads" => options.threads = args.parsed("--threads")?,
            "--resume" => options.resume = true,
            "--verbose" => options.verbose = true,
            "--telemetry" => telemetry_on = true,
            "--progress" => progress_on = true,
            "--metrics-out" => metrics_out = Some(args.value("--metrics-out")?.to_string()),
            "--seed" => sweep_options.base_seed = args.parsed("--seed")?,
            "--stride" => sweep_options.sample_stride = args.parsed("--stride")?,
            "--inferences" => sweep_options.inferences = args.parsed("--inferences")?,
            "--backend" => sweep_options.backend = parse_backend(args.value("--backend")?)?,
            "--dwell" => sweep_options.dwell = parse_dwell(args.value("--dwell")?)?,
            "--ecc" => repairs = parse_ecc(args.value("--ecc")?)?,
            "--tech" => techs = parse_tech(args.value("--tech")?)?,
            "--shards" => options.shards = parse_shards(args.value("--shards")?)?,
            other => return Err(format!("sweep: unexpected argument `{other}`").into()),
        }
    }
    let grid_name = grid_name.ok_or("sweep: --grid is required")?;
    if sweep_options.sample_stride == 0 {
        return Err("sweep: --stride must be >= 1".into());
    }
    if sweep_options.inferences == 0 {
        return Err("sweep: --inferences must be >= 1".into());
    }
    if !sweep_options.dwell.is_uniform() && sweep_options.backend != SimulatorBackend::Exact {
        return Err(format!(
            "sweep: --dwell {} needs --backend exact (the analytic closed forms \
             assume equal residency — paper assumption (b))",
            sweep_options.dwell.display_name()
        )
        .into());
    }
    let grid = CampaignGrid::named_with_axes(&grid_name, sweep_options.clone(), &repairs, &techs)
        .ok_or_else(|| {
        format!("sweep: unknown grid `{grid_name}` (fig9|fig11|bias|mbits|full)")
    })?;
    if grid.is_empty() {
        return Err(format!(
            "sweep: grid `{grid_name}` has no valid scenarios for these axes \
             (check --backend/--dwell: custom factors must match the network's layer \
             count; check --ecc: the SECDED interleave must be coprime with the \
             codeword width — 13 for 8-bit words, 39 for fp32)"
        )
        .into());
    }
    // The like-for-like reference for repair-drop diagnostics: the
    // same grid under no repair (everything else equal, including the
    // technology axis).
    let no_repair_cells = CampaignGrid::named_with_axes(
        &grid_name,
        sweep_options.clone(),
        &[RepairPolicy::None],
        &techs,
    )
    .map_or(0, |g| g.len());
    check_repair_coverage("sweep", &repairs, no_repair_cells, |repair| {
        grid.scenarios.iter().filter(|s| s.repair == repair).count()
    })?;
    warn_on_dwell_dropped_scenarios("sweep", &grid_name, &grid, &sweep_options, &repairs, &techs);
    let store_path = out.unwrap_or_else(|| format!("campaign-results/{grid_name}.jsonl"));
    let events = events_path_for(&store_path);
    let (telemetry, progress) = build_sinks(
        telemetry_on,
        progress_on,
        metrics_out.is_some(),
        &events,
        &format!("sweep {grid_name}"),
    )?;
    let instr = Instrumentation {
        telemetry: telemetry.as_ref(),
        progress: progress.as_ref(),
    };

    let started = std::time::Instant::now();
    let outcome =
        run_campaign_instrumented(&grid, &store_path, &options, Some(&INTERRUPTED), instr)
            .map_err(|e| e.to_string())?;
    println!(
        "campaign `{grid_name}`: {} executed, {} skipped, {} thread(s), {:.1}s -> {store_path}",
        outcome.executed,
        outcome.skipped,
        outcome.threads,
        started.elapsed().as_secs_f64(),
    );
    if telemetry_on {
        println!("telemetry -> {events}");
    }
    write_metrics_out(telemetry.as_ref(), metrics_out.as_deref())?;
    Ok(())
}

/// Opens a result/injection-style store path for a read-only command,
/// mapping "file does not exist" to the distinct [`EXIT_NO_STORE`]
/// outcome *before* `open` (which would create an empty file) runs.
fn require_store_file(command: &str, store_path: &str) -> Result<(), CliError> {
    if !std::path::Path::new(store_path).exists() {
        return Err(CliError::store(format!(
            "{command}: no store at `{store_path}`"
        )));
    }
    Ok(())
}

fn report(argv: &[String]) -> Result<(), CliError> {
    let mut store_path: Option<String> = None;
    let mut table = "all".to_string();
    let mut json = false;
    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--store" => store_path = Some(args.value("--store")?.to_string()),
            "--table" => table = args.value("--table")?.to_string(),
            "--json" => json = true,
            other => return Err(format!("report: unexpected argument `{other}`").into()),
        }
    }
    let store_path = store_path.ok_or("report: --store is required")?;
    require_store_file("report", &store_path)?;
    let store = ResultStore::open(&store_path).map_err(|e| e.to_string())?;
    if store.is_empty() {
        return Err(CliError::store(format!(
            "report: `{store_path}` holds no scenarios"
        )));
    }
    if json {
        let records: Vec<serde::Value> = store.records().map(|r| r.to_value()).collect();
        let value = serde::Value::Object(vec![
            ("store".to_string(), store_path.to_value()),
            ("scenarios".to_string(), serde::Value::Array(records)),
        ]);
        println!(
            "{}",
            serde_json::to_string(&value).expect("records serialize")
        );
        return Ok(());
    }

    // Tables render empty when the store has no matching scenarios;
    // for an explicitly requested table, say so instead of printing
    // nothing.
    let require = |text: String| -> Result<String, String> {
        if text.is_empty() {
            Err(format!(
                "report: `{store_path}` holds no scenarios matching table `{table}`"
            ))
        } else {
            Ok(text)
        }
    };
    match table.as_str() {
        "fig9" => print!("{}", require(aggregate::fig9_table(&store))?),
        "fig11" => print!("{}", require(aggregate::fig11_table(&store))?),
        "bias" => {
            let (text, csv) = aggregate::bias_sensitivity(&store);
            print!("{}\n{csv}", require(text)?);
        }
        "mbits" => {
            let (text, csv) = aggregate::mbits_sensitivity(&store);
            print!("{}\n{csv}", require(text)?);
        }
        "detail" => print!("{}", aggregate::detail(&store)),
        "all" => {
            print!("{}", aggregate::fig9_table(&store));
            print!("{}", aggregate::fig11_table(&store));
            let (bias, _) = aggregate::bias_sensitivity(&store);
            print!("{bias}");
            let (mbits, _) = aggregate::mbits_sensitivity(&store);
            print!("{mbits}");
        }
        other => {
            return Err(format!(
                "report: unknown table `{other}` (fig9|fig11|bias|mbits|detail|all)"
            )
            .into())
        }
    }
    Ok(())
}

/// A non-uniform dwell model can invalidate a *subset* of a grid's
/// scenarios (custom per-layer factors only fit networks with that
/// layer count), which the builder silently filters. Rebuilding the
/// same grid under uniform dwell gives the full scenario count, so a
/// partial drop can be reported instead of masquerading as a complete
/// sweep. A fully-empty grid is a hard error at the call site; this
/// covers the partial case.
fn warn_on_dwell_dropped_scenarios(
    command: &str,
    grid_name: &str,
    grid: &CampaignGrid,
    options: &SweepOptions,
    repairs: &[RepairPolicy],
    techs: &[MemoryTech],
) {
    if options.dwell.is_uniform() {
        return;
    }
    // The reference grid must cross the same repair and technology
    // axes, or an `--ecc both` / `--tech both` grid out-counts the
    // single-value reference and masks the drop.
    let full = CampaignGrid::named_with_axes(
        grid_name,
        SweepOptions {
            dwell: DwellModel::Uniform,
            ..options.clone()
        },
        repairs,
        techs,
    )
    .map_or(0, |g| g.len());
    if grid.len() < full {
        eprintln!(
            "{command}: warning: dwell model `{}` fits only {} of the {full} scenario(s) \
             of grid `{grid_name}` — the rest were dropped (custom factors must match \
             each network's layer count)",
            options.dwell.display_name(),
            grid.len(),
        );
    }
}

fn parse_backend(name: &str) -> Result<SimulatorBackend, String> {
    SimulatorBackend::parse(name)
        .ok_or_else(|| format!("--backend: unknown backend `{name}` (analytic|exact)"))
}

fn parse_dwell(name: &str) -> Result<DwellModel, String> {
    DwellModel::parse(name).ok_or_else(|| {
        format!("--dwell: unknown dwell model `{name}` (uniform|layer|zipf[:EXP]|custom:F1,F2,...)")
    })
}

/// Shared `--flag VALUE[,VALUE,...]` axis parser: every list-valued
/// axis (`--ecc`, `--tech`) funnels through here, so the comma-list
/// splitting, the `both` keyword, order-preserving dedup, and the
/// enumerate-the-valid-values error shape are written once. `both`
/// expands to `both_expansion` (the axis's canonical value set) and
/// composes with explicit items: `--tech both` ≡ `--tech sram,reram`.
fn parse_axis_list<T: Copy + PartialEq>(
    flag: &str,
    raw: &str,
    both_expansion: &[T],
    parse_one: impl Fn(&str) -> Option<T>,
    valid_values: &str,
) -> Result<Vec<T>, String> {
    let mut out: Vec<T> = Vec::new();
    let mut push = |v: T| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    for item in raw.split(',').map(str::trim) {
        if item == "both" || item == "all" {
            both_expansion.iter().copied().for_each(&mut push);
            continue;
        }
        match parse_one(item) {
            Some(v) => push(v),
            None => {
                return Err(format!(
                    "{flag}: unknown value `{item}` — valid values: {valid_values}, \
                     `both`, or a comma list"
                ))
            }
        }
    }
    if out.is_empty() {
        return Err(format!(
            "{flag}: expected at least one value ({valid_values})"
        ));
    }
    Ok(out)
}

/// The `--tech` axis: which lifetime technology ages the weight
/// memory. `both` sweeps SRAM/NBTI and ReRAM-endurance variants of
/// every cell in one campaign.
fn parse_tech(raw: &str) -> Result<Vec<MemoryTech>, String> {
    parse_axis_list(
        "--tech",
        raw,
        &MemoryTech::ALL,
        MemoryTech::parse,
        "`sram` (NBTI duty-cycle aging), `reram` (write-endurance wear-out)",
    )
}

/// An `--ecc` value must not *silently* lose cells to validity
/// filtering. Every requested repair value is compared against
/// `reference` — the same grid built under `RepairPolicy::None`, so
/// the comparison is like-for-like: a value with zero surviving cells
/// (e.g. `--ecc secded:13` on 8-bit words, where stride 13 shares a
/// factor with the 13-bit codeword) is a hard error, and a partial
/// drop (e.g. `secded:3` on a grid mixing int8 and fp32 — 3 divides
/// the 39-bit fp32 codeword) gets a warning, matching the dwell axis's
/// partial-drop diagnostics.
fn check_repair_coverage(
    command: &str,
    repairs: &[RepairPolicy],
    reference: usize,
    count: impl Fn(RepairPolicy) -> usize,
) -> Result<(), String> {
    for &repair in repairs {
        if repair.is_none() {
            continue;
        }
        let cells = count(repair);
        if cells == 0 && reference > 0 {
            return Err(format!(
                "{command}: --ecc {}: every cell of this repair value is invalid \
                 (the SECDED interleave must be coprime with the codeword width — \
                 13 for 8-bit words, 39 for fp32)",
                repair.display_name()
            ));
        }
        if cells < reference {
            eprintln!(
                "{command}: warning: --ecc {}: only {cells} of {reference} cell(s) are \
                 valid under this repair value — the rest were dropped (interleave \
                 not coprime with that word width's codeword)",
                repair.display_name()
            );
        }
    }
    Ok(())
}

/// The `--ecc` axis: repair policies to cross the grid with.
/// `both[:INTERLEAVE]` pairs the plain and SECDED variants of every
/// cell in one campaign (what the corrected-vs-uncorrected table
/// lines up); everything else is the shared comma-list grammar.
fn parse_ecc(name: &str) -> Result<Vec<RepairPolicy>, String> {
    if let Some(stride) = name.strip_prefix("both:") {
        let secded = RepairPolicy::parse(&format!("secded:{stride}")).ok_or_else(|| {
            format!(
                "--ecc: invalid interleave `{stride}` — valid values: \
                 `none`, `secded` (interleave 1), `secded:INTERLEAVE` \
                 (a positive column stride)"
            )
        })?;
        return Ok(vec![RepairPolicy::None, secded]);
    }
    parse_axis_list(
        "--ecc",
        name,
        &[RepairPolicy::None, RepairPolicy::Secded { interleave: 1 }],
        RepairPolicy::parse,
        "`none`, `secded` (interleave 1), `secded:INTERLEAVE` (a positive column stride)",
    )
}

fn parse_shards(name: &str) -> Result<ShardPolicy, String> {
    ShardPolicy::parse(name)
        .ok_or_else(|| format!("--shards: expected `auto` or a positive count, got `{name}`"))
}

fn validate(argv: &[String]) -> Result<(), CliError> {
    let mut grid_name: Option<String> = None;
    let mut threads = 0usize;
    let mut shards = ShardPolicy::Auto;
    let mut report_only = false;
    let mut telemetry_on = false;
    let mut progress_on = false;
    let mut metrics_out: Option<String> = None;
    let mut techs: Vec<MemoryTech> = Vec::new();
    let mut sweep_options = SweepOptions {
        backend: SimulatorBackend::Exact,
        ..SweepOptions::default()
    };

    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--grid" => grid_name = Some(args.value("--grid")?.to_string()),
            "--threads" => threads = args.parsed("--threads")?,
            "--seed" => sweep_options.base_seed = args.parsed("--seed")?,
            "--stride" => sweep_options.sample_stride = args.parsed("--stride")?,
            "--inferences" => sweep_options.inferences = args.parsed("--inferences")?,
            "--dwell" => sweep_options.dwell = parse_dwell(args.value("--dwell")?)?,
            "--tech" => techs = parse_tech(args.value("--tech")?)?,
            "--shards" => shards = parse_shards(args.value("--shards")?)?,
            "--report-only" => report_only = true,
            "--telemetry" => telemetry_on = true,
            "--progress" => progress_on = true,
            "--metrics-out" => metrics_out = Some(args.value("--metrics-out")?.to_string()),
            other => return Err(format!("validate: unexpected argument `{other}`").into()),
        }
    }
    let grid_name = grid_name.ok_or("validate: --grid is required")?;
    if sweep_options.sample_stride == 0 {
        return Err("validate: --stride must be >= 1".into());
    }
    if sweep_options.inferences == 0 {
        return Err("validate: --inferences must be >= 1".into());
    }
    let uniform = sweep_options.dwell.is_uniform();
    let grid = CampaignGrid::named_with_axes(
        &grid_name,
        sweep_options.clone(),
        &[sweep_options.repair],
        &techs,
    )
    .ok_or_else(|| format!("validate: unknown grid `{grid_name}` (fig9|fig11|bias|mbits|full)"))?;
    if grid.is_empty() {
        return Err(format!(
            "validate: grid `{grid_name}` has no valid scenarios for this dwell model"
        )
        .into());
    }
    warn_on_dwell_dropped_scenarios(
        "validate",
        &grid_name,
        &grid,
        &sweep_options,
        &[sweep_options.repair],
        &techs,
    );

    // validate has no result store to sit next to, so its journal gets
    // a grid-derived path under the default results directory.
    let events = format!("campaign-results/validate-{grid_name}.events.jsonl");
    let (telemetry, progress) = build_sinks(
        telemetry_on,
        progress_on,
        metrics_out.is_some(),
        &events,
        &format!("validate {grid_name}"),
    )?;
    let instr = Instrumentation {
        telemetry: telemetry.as_ref(),
        progress: progress.as_ref(),
    };

    let started = std::time::Instant::now();
    let results = validate_scenarios_instrumented(
        &grid.scenarios,
        threads,
        shards,
        Some(&INTERRUPTED),
        instr,
    )
    .ok_or_else(|| {
        format!(
            "validate `{grid_name}` interrupted mid-scenario; \
             completed pairs were discarded"
        )
    })?;
    if let Some(telemetry) = &telemetry {
        telemetry.emit_counters();
        telemetry.emit_histograms();
        if telemetry_on {
            eprintln!("telemetry -> {events}");
        }
    }
    write_metrics_out(telemetry.as_ref(), metrics_out.as_deref())?;
    print!("{}", aggregate::crossval_table(&results));
    let worst = results
        .iter()
        .map(|cv| cv.max_abs_duty)
        .fold(0.0f64, f64::max);
    println!(
        "validate `{grid_name}`: {} scenario pair(s), max per-cell duty divergence {worst:.3e}, {:.1}s",
        results.len(),
        started.elapsed().as_secs_f64(),
    );
    if uniform && !report_only {
        let failures: Vec<&str> = results
            .iter()
            .filter(|cv| !cv.within_tolerance())
            .map(|cv| cv.label.as_str())
            .collect();
        if !failures.is_empty() {
            return Err(format!(
                "validate: {} scenario pair(s) exceeded the documented tolerance:\n  {}",
                failures.len(),
                failures.join("\n  ")
            )
            .into());
        }
    }
    Ok(())
}

fn parse_platform(name: &str) -> Result<Platform, String> {
    match name {
        "baseline" => Ok(Platform::Baseline),
        "npu" | "tpu" | "tpu-like" => Ok(Platform::TpuLike),
        other => Err(format!(
            "--platform: unknown platform `{other}` (baseline|npu)"
        )),
    }
}

fn parse_format(name: &str) -> Result<NumberFormat, String> {
    match name {
        "fp32" => Ok(NumberFormat::Fp32),
        "int8" | "int8-sym" | "int8-symmetric" => Ok(NumberFormat::Int8Symmetric),
        "int8-asym" | "int8-asymmetric" => Ok(NumberFormat::Int8Asymmetric),
        other => Err(format!(
            "--format: unknown format `{other}` (fp32|int8|int8-asym)"
        )),
    }
}

fn platform_cli_name(platform: Platform) -> &'static str {
    match platform {
        Platform::Baseline => "baseline",
        Platform::TpuLike => "npu",
        Platform::Crossbar => "crossbar",
    }
}

fn format_cli_name(format: NumberFormat) -> &'static str {
    match format {
        NumberFormat::Fp32 => "fp32",
        NumberFormat::Int8Symmetric => "int8",
        NumberFormat::Int8Asymmetric => "int8-asym",
    }
}

fn parse_ages(list: &str) -> Result<Vec<f64>, String> {
    let ages: Option<Vec<f64>> = list.split(',').map(|a| a.parse().ok()).collect();
    let ages = ages.ok_or_else(|| format!("--ages: invalid age list `{list}`"))?;
    if ages.is_empty() || ages.iter().any(|a| !a.is_finite() || *a < 0.0) {
        return Err(format!(
            "--ages: ages must be finite and >= 0, got `{list}`"
        ));
    }
    Ok(ages)
}

/// `dnnlife inject`: the fault-injection campaign — accuracy vs age
/// per mitigation policy, resumable like `sweep`.
fn inject(argv: &[String]) -> Result<(), CliError> {
    let mut platform = Platform::Baseline;
    let mut network = NetworkKind::CustomMnist;
    let mut format = NumberFormat::Int8Symmetric;
    let mut policy_filter: Option<String> = None;
    let mut params = InjectionParams::default();
    let mut repairs = vec![RepairPolicy::None];
    let mut techs: Vec<MemoryTech> = Vec::new();
    let mut options = InjectCampaignOptions::default();
    let mut out: Option<String> = None;
    let mut report_only = false;
    let mut report_store: Option<String> = None;
    let mut telemetry_on = false;
    let mut progress_on = false;
    let mut metrics_out: Option<String> = None;
    let mut json = false;

    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--platform" => platform = parse_platform(args.value("--platform")?)?,
            "--network" => {
                network = NetworkKind::parse(args.value("--network")?)
                    .map_err(|e| format!("--network: {e}"))?;
            }
            "--format" => format = parse_format(args.value("--format")?)?,
            "--policy" => policy_filter = Some(args.value("--policy")?.to_lowercase()),
            "--ecc" => repairs = parse_ecc(args.value("--ecc")?)?,
            "--tech" => techs = parse_tech(args.value("--tech")?)?,
            "--ages" => params.ages_years = parse_ages(args.value("--ages")?)?,
            "--trials" => params.trials = args.parsed("--trials")?,
            "--eval-images" => params.eval_images = args.parsed("--eval-images")?,
            "--train-steps" => params.train_steps = args.parsed("--train-steps")?,
            "--noise-mv" => params.noise_sigma_mv = args.parsed("--noise-mv")?,
            "--inferences" => params.inferences = args.parsed("--inferences")?,
            "--seed" => params.base_seed = args.parsed("--seed")?,
            "--threads" => options.threads = args.parsed("--threads")?,
            "--shards" => {
                options.shards = match parse_shards(args.value("--shards")?)? {
                    ShardPolicy::Auto => 0,
                    ShardPolicy::Fixed(n) => n,
                };
            }
            "--out" => out = Some(args.value("--out")?.to_string()),
            "--resume" => options.resume = true,
            "--verbose" => options.verbose = true,
            "--telemetry" => telemetry_on = true,
            "--progress" => progress_on = true,
            "--metrics-out" => metrics_out = Some(args.value("--metrics-out")?.to_string()),
            "--report" => report_only = true,
            "--json" => json = true,
            "--store" => report_store = Some(args.value("--store")?.to_string()),
            other => return Err(format!("inject: unexpected argument `{other}`").into()),
        }
    }

    if report_only {
        let store_path = report_store.ok_or("inject --report: --store is required")?;
        require_store_file("inject", &store_path)?;
        let store = InjectionStore::open(&store_path).map_err(|e| e.to_string())?;
        if store.is_empty() {
            return Err(CliError::store(format!(
                "inject: `{store_path}` holds no injection records"
            )));
        }
        if json {
            let records: Vec<serde::Value> = store.records().map(|r| r.to_value()).collect();
            let value = serde::Value::Object(vec![
                ("store".to_string(), store_path.to_value()),
                ("cells".to_string(), serde::Value::Array(records)),
            ]);
            println!(
                "{}",
                serde_json::to_string(&value).expect("records serialize")
            );
            return Ok(());
        }
        print!("{}", accuracy_vs_age_table(&store));
        print!("{}", ecc_comparison_table(&store));
        return Ok(());
    }
    if params.trials == 0 {
        return Err("inject: --trials must be >= 1".into());
    }
    if params.eval_images == 0 {
        return Err("inject: --eval-images must be >= 1".into());
    }
    if params.inferences == 0 {
        return Err("inject: --inferences must be >= 1".into());
    }
    if !(params.noise_sigma_mv.is_finite() && params.noise_sigma_mv > 0.0) {
        return Err("inject: --noise-mv must be > 0".into());
    }
    if techs.is_empty() {
        // No --tech flag: the single default-technology axis value.
        techs.push(params.tech);
    }

    // The requested zoo network crossed with the paper's Fig. 11 policy
    // set (optionally filtered by `--policy` substrings). A requested
    // ReRAM technology adds the endurance-native mitigation — the
    // epoch-rotating wear-leveling remap — to the pool.
    let mut policies = dnnlife_core::experiment::fig11_policies();
    if techs.contains(&MemoryTech::ReramEndurance) {
        policies.push(PolicySpec::WearLevel { epochs: 4 });
    }
    if let Some(filter) = &policy_filter {
        let needles: Vec<&str> = filter.split(',').map(str::trim).collect();
        let valid = policies
            .iter()
            .map(|p: &PolicySpec| p.display_name().to_lowercase())
            .collect::<Vec<_>>()
            .join(", ");
        policies.retain(|p: &PolicySpec| {
            let name = p.display_name().to_lowercase();
            needles.iter().any(|needle| name.contains(needle))
        });
        if policies.is_empty() {
            return Err(format!(
                "inject: --policy `{filter}` matches no policy of the injectable \
                 set — valid values: {valid}"
            )
            .into());
        }
    }
    let grid = InjectionGrid::build_with_axes(
        "inject", platform, network, format, &policies, &params, &repairs, &techs,
    );
    if grid.is_empty() {
        // Never silently write an empty store: an explicitly requested
        // combination with zero valid cells is an error, named in full.
        return Err(format!(
            "inject: no valid cells for --network {} --platform {} --format {} \
             (fp32 needs --platform baseline; the SECDED interleave must be \
             coprime with the codeword width — 13 for 8-bit words, 39 for fp32)",
            network.cli_name(),
            platform_cli_name(platform),
            format_cli_name(format),
        )
        .into());
    }
    let no_repair_cells = InjectionGrid::build_with_axes(
        "inject",
        platform,
        network,
        format,
        &policies,
        &params,
        &[RepairPolicy::None],
        &techs,
    )
    .len();
    check_repair_coverage("inject", &repairs, no_repair_cells, |repair| {
        grid.specs
            .iter()
            .filter(|s| s.scenario.repair == repair)
            .count()
    })?;
    let store_path = out.unwrap_or_else(|| "campaign-results/inject.jsonl".to_string());
    let events = events_path_for(&store_path);
    let (telemetry, progress) = build_sinks(
        telemetry_on,
        progress_on,
        metrics_out.is_some(),
        &events,
        "inject",
    )?;
    let instr = Instrumentation {
        telemetry: telemetry.as_ref(),
        progress: progress.as_ref(),
    };

    let started = std::time::Instant::now();
    let outcome = run_injection_campaign_instrumented(
        &grid,
        &store_path,
        &options,
        Some(&INTERRUPTED),
        instr,
    )
    .map_err(|e| e.to_string())?;
    let store = InjectionStore::open(&store_path).map_err(|e| e.to_string())?;
    print!("{}", accuracy_vs_age_table(&store));
    print!("{}", ecc_comparison_table(&store));
    println!(
        "inject: {} executed, {} skipped, {} thread(s), {:.1}s -> {store_path}",
        outcome.executed,
        outcome.skipped,
        outcome.threads,
        started.elapsed().as_secs_f64(),
    );
    if telemetry_on {
        println!("telemetry -> {events}");
    }
    write_metrics_out(telemetry.as_ref(), metrics_out.as_deref())?;
    Ok(())
}

fn compare(argv: &[String]) -> Result<(), CliError> {
    let mut store_a: Option<String> = None;
    let mut store_b: Option<String> = None;
    let mut json = false;
    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--store-a" => store_a = Some(args.value("--store-a")?.to_string()),
            "--store-b" => store_b = Some(args.value("--store-b")?.to_string()),
            "--json" => json = true,
            other => return Err(format!("compare: unexpected argument `{other}`").into()),
        }
    }
    let store_a = store_a.ok_or("compare: --store-a is required")?;
    let store_b = store_b.ok_or("compare: --store-b is required")?;
    require_store_file("compare", &store_a)?;
    require_store_file("compare", &store_b)?;
    let a = ResultStore::open(&store_a).map_err(|e| e.to_string())?;
    let b = ResultStore::open(&store_b).map_err(|e| e.to_string())?;
    if a.is_empty() {
        return Err(CliError::store(format!(
            "compare: `{store_a}` holds no scenarios"
        )));
    }
    if b.is_empty() {
        return Err(CliError::store(format!(
            "compare: `{store_b}` holds no scenarios"
        )));
    }
    if json {
        let value = aggregate::compare_stores_json(&a, &b);
        println!(
            "{}",
            serde_json::to_string(&value).expect("comparison serializes")
        );
        return Ok(());
    }
    print!("{}", aggregate::compare_stores(&a, &b));
    Ok(())
}

/// `dnnlife perf`: render performance tables from one telemetry events
/// journal, diff two journals, and (for CI) gate the exact-backend
/// throughput against a committed baseline.
fn perf_command(argv: &[String]) -> Result<(), CliError> {
    let mut events: Option<String> = None;
    let mut diff_path: Option<String> = None;
    let mut json = false;
    let mut baseline_path: Option<String> = None;
    let mut max_regression = 2.0f64;
    let mut threshold = perf::DIFF_THRESHOLD;
    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--events" => events = Some(args.value("--events")?.to_string()),
            "--diff" => diff_path = Some(args.value("--diff")?.to_string()),
            "--json" => json = true,
            "--baseline" => baseline_path = Some(args.value("--baseline")?.to_string()),
            "--max-regression" => max_regression = args.parsed("--max-regression")?,
            "--threshold" => threshold = args.parsed("--threshold")?,
            other => return Err(format!("perf: unexpected argument `{other}`").into()),
        }
    }
    let events = events.ok_or("perf: --events is required (a STORE.events.jsonl journal)")?;
    if !(max_regression.is_finite() && max_regression >= 1.0) {
        return Err("perf: --max-regression must be >= 1".into());
    }
    if !(threshold.is_finite() && threshold >= 1.0) {
        return Err("perf: --threshold must be >= 1".into());
    }

    let load = |path: &str| -> Result<perf::PerfSummary, CliError> {
        require_store_file("perf", path)?;
        let summary = perf::load_events(std::path::Path::new(path))
            .map_err(|e| format!("perf: cannot read `{path}`: {e}"))?;
        if summary.campaigns.is_empty()
            && summary.scenarios.is_empty()
            && summary.counters.is_empty()
        {
            return Err(CliError::store(format!(
                "perf: `{path}` holds no telemetry events (was the run started with --telemetry?)"
            )));
        }
        Ok(summary)
    };
    let summary = load(&events)?;

    if let Some(diff_path) = diff_path {
        let after = load(&diff_path)?;
        let diff = perf::diff(&summary, &after, threshold);
        if json {
            println!(
                "{}",
                serde_json::to_string(&diff.to_value()).expect("diff serializes")
            );
        } else {
            print!("{}", diff.render_text());
        }
        if diff.has_missing() {
            return Err(format!(
                "perf: `{diff_path}` is missing metric(s) that `{events}` reports \
                 — the diff cannot demonstrate the baseline's performance"
            )
            .into());
        }
        return Ok(());
    }

    if json {
        println!(
            "{}",
            serde_json::to_string(&summary.to_value()).expect("summary serializes")
        );
    } else {
        print!("{}", summary.render_text());
    }

    if let Some(baseline_path) = baseline_path {
        let contents = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("perf: cannot read baseline `{baseline_path}`: {e}"))?;
        let value: serde::Value = serde_json::from_str(contents.trim())
            .map_err(|e| format!("perf: baseline `{baseline_path}`: {e}"))?;
        let Some(serde::Value::Number(n)) = value.get("exact_words_per_sec") else {
            return Err(format!(
                "perf: baseline `{baseline_path}` lacks a numeric `exact_words_per_sec` field"
            )
            .into());
        };
        let baseline = (*n).as_f64();
        let measured = perf::check_baseline(&summary, baseline, max_regression)
            .map_err(|e| format!("perf: {e}"))?;
        eprintln!(
            "perf: exact backend {measured:.0} words/s vs baseline {baseline:.0} \
             (allowed regression {max_regression:.1}x) — ok"
        );
        // Optional latency gate: a baseline that commits to a
        // `scenario_wall_p99_ms` ceiling fails hard when the journal
        // can't prove the p99 (no histogram events), instead of
        // silently passing an unmeasured run.
        if let Some(serde::Value::Number(n)) = value.get("scenario_wall_p99_ms") {
            let ceiling = (*n).as_f64();
            let p99 = perf::check_wall_p99(&summary, ceiling, max_regression)
                .map_err(|e| format!("perf: {e}"))?;
            eprintln!(
                "perf: scenario wall p99 {p99:.1} ms vs ceiling {ceiling:.1} \
                 (allowed regression {max_regression:.1}x) — ok"
            );
        }
    }
    Ok(())
}

/// `dnnlife trace`: rebuild the hierarchical span forest from one
/// telemetry events journal and render the flame-style hot-path table
/// plus each campaign's critical path.
fn trace_command(argv: &[String]) -> Result<(), CliError> {
    let mut events: Option<String> = None;
    let mut json = false;
    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--events" => events = Some(args.value("--events")?.to_string()),
            "--json" => json = true,
            other => return Err(format!("trace: unexpected argument `{other}`").into()),
        }
    }
    let events = events.ok_or("trace: --events is required (a STORE.events.jsonl journal)")?;
    require_store_file("trace", &events)?;
    let trace = dnnlife_campaign::trace::load_trace(std::path::Path::new(&events))
        .map_err(|e| format!("trace: cannot read `{events}`: {e}"))?;
    if trace.spans.is_empty() {
        return Err(CliError::store(format!(
            "trace: `{events}` holds no span events (was the run started with --telemetry?)"
        )));
    }
    if json {
        println!(
            "{}",
            serde_json::to_string(&trace.to_value()).expect("trace serializes")
        );
    } else {
        print!("{}", trace.render_text());
    }
    Ok(())
}
