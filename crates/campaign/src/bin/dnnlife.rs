//! `dnnlife` — campaign CLI: sweep scenario grids in parallel, report
//! aggregated tables, compare result stores.
//!
//! ```text
//! dnnlife sweep --grid <fig9|fig11|bias|mbits|full> [--threads N]
//!               [--out FILE] [--resume] [--seed N] [--stride N]
//!               [--inferences N] [--verbose]
//! dnnlife report --store FILE [--table fig9|fig11|bias|mbits|detail|all]
//! dnnlife compare --store-a FILE --store-b FILE
//! ```
//!
//! `sweep` is resumable: results are journaled per scenario, so a
//! killed sweep re-run with `--resume` executes only the missing
//! scenarios — and the finalized store is byte-identical to a clean
//! single-threaded run regardless of `--threads`.

use std::process::ExitCode;

use dnnlife_campaign::aggregate;
use dnnlife_campaign::grid::SweepOptions;
use dnnlife_campaign::{run_campaign, CampaignGrid, CampaignOptions, ResultStore};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let outcome = match command.as_str() {
        "sweep" => sweep(rest),
        "report" => report(rest),
        "compare" => compare(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dnnlife: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  dnnlife sweep --grid <fig9|fig11|bias|mbits|full> [--threads N] [--out FILE]
                [--resume] [--seed N] [--stride N] [--inferences N] [--verbose]
  dnnlife report --store FILE [--table fig9|fig11|bias|mbits|detail|all]
  dnnlife compare --store-a FILE --store-b FILE";

/// Minimal `--flag [value]` argument cursor.
struct Args<'a> {
    argv: &'a [String],
    index: usize,
}

impl<'a> Args<'a> {
    fn new(argv: &'a [String]) -> Self {
        Self { argv, index: 0 }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        let arg = self.argv.get(self.index)?;
        self.index += 1;
        Some(arg.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        let value = self
            .argv
            .get(self.index)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        self.index += 1;
        Ok(value.as_str())
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        self.value(flag)?
            .parse()
            .map_err(|_| format!("{flag}: invalid value"))
    }
}

fn sweep(argv: &[String]) -> Result<(), String> {
    let mut grid_name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut options = CampaignOptions::default();
    let mut sweep_options = SweepOptions::default();

    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--grid" => grid_name = Some(args.value("--grid")?.to_string()),
            "--out" => out = Some(args.value("--out")?.to_string()),
            "--threads" => options.threads = args.parsed("--threads")?,
            "--resume" => options.resume = true,
            "--verbose" => options.verbose = true,
            "--seed" => sweep_options.base_seed = args.parsed("--seed")?,
            "--stride" => sweep_options.sample_stride = args.parsed("--stride")?,
            "--inferences" => sweep_options.inferences = args.parsed("--inferences")?,
            other => return Err(format!("sweep: unexpected argument `{other}`")),
        }
    }
    let grid_name = grid_name.ok_or("sweep: --grid is required")?;
    if sweep_options.sample_stride == 0 {
        return Err("sweep: --stride must be >= 1".to_string());
    }
    if sweep_options.inferences == 0 {
        return Err("sweep: --inferences must be >= 1".to_string());
    }
    let grid = CampaignGrid::named(&grid_name, sweep_options)
        .ok_or_else(|| format!("sweep: unknown grid `{grid_name}` (fig9|fig11|bias|mbits|full)"))?;
    let store_path = out.unwrap_or_else(|| format!("campaign-results/{grid_name}.jsonl"));

    let started = std::time::Instant::now();
    let outcome = run_campaign(&grid, &store_path, &options).map_err(|e| e.to_string())?;
    println!(
        "campaign `{grid_name}`: {} executed, {} skipped, {} thread(s), {:.1}s -> {store_path}",
        outcome.executed,
        outcome.skipped,
        outcome.threads,
        started.elapsed().as_secs_f64(),
    );
    Ok(())
}

fn report(argv: &[String]) -> Result<(), String> {
    let mut store_path: Option<String> = None;
    let mut table = "all".to_string();
    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--store" => store_path = Some(args.value("--store")?.to_string()),
            "--table" => table = args.value("--table")?.to_string(),
            other => return Err(format!("report: unexpected argument `{other}`")),
        }
    }
    let store_path = store_path.ok_or("report: --store is required")?;
    let store = ResultStore::open(&store_path).map_err(|e| e.to_string())?;
    if store.is_empty() {
        return Err(format!("report: `{store_path}` holds no scenarios"));
    }

    // Tables render empty when the store has no matching scenarios;
    // for an explicitly requested table, say so instead of printing
    // nothing.
    let require = |text: String| -> Result<String, String> {
        if text.is_empty() {
            Err(format!(
                "report: `{store_path}` holds no scenarios matching table `{table}`"
            ))
        } else {
            Ok(text)
        }
    };
    match table.as_str() {
        "fig9" => print!("{}", require(aggregate::fig9_table(&store))?),
        "fig11" => print!("{}", require(aggregate::fig11_table(&store))?),
        "bias" => {
            let (text, csv) = aggregate::bias_sensitivity(&store);
            print!("{}\n{csv}", require(text)?);
        }
        "mbits" => {
            let (text, csv) = aggregate::mbits_sensitivity(&store);
            print!("{}\n{csv}", require(text)?);
        }
        "detail" => print!("{}", aggregate::detail(&store)),
        "all" => {
            print!("{}", aggregate::fig9_table(&store));
            print!("{}", aggregate::fig11_table(&store));
            let (bias, _) = aggregate::bias_sensitivity(&store);
            print!("{bias}");
            let (mbits, _) = aggregate::mbits_sensitivity(&store);
            print!("{mbits}");
        }
        other => {
            return Err(format!(
                "report: unknown table `{other}` (fig9|fig11|bias|mbits|detail|all)"
            ))
        }
    }
    Ok(())
}

fn compare(argv: &[String]) -> Result<(), String> {
    let mut store_a: Option<String> = None;
    let mut store_b: Option<String> = None;
    let mut args = Args::new(argv);
    while let Some(flag) = args.next_flag() {
        match flag {
            "--store-a" => store_a = Some(args.value("--store-a")?.to_string()),
            "--store-b" => store_b = Some(args.value("--store-b")?.to_string()),
            other => return Err(format!("compare: unexpected argument `{other}`")),
        }
    }
    let store_a = store_a.ok_or("compare: --store-a is required")?;
    let store_b = store_b.ok_or("compare: --store-b is required")?;
    let a = ResultStore::open(&store_a).map_err(|e| e.to_string())?;
    let b = ResultStore::open(&store_b).map_err(|e| e.to_string())?;
    print!("{}", aggregate::compare_stores(&a, &b));
    Ok(())
}
