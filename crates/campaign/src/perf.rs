//! The `dnnlife perf` profiler: renders performance tables from one
//! telemetry `events.jsonl` journal and diffs two journals to flag
//! regressions.
//!
//! The journal is read tolerantly — unparsable lines (a torn tail from
//! a killed run, a hand-edited file) are skipped, never fatal — and
//! may span several campaign invocations (resume runs append to the
//! same file): per-invocation `counters` roll-ups sum, scenario events
//! concatenate, and the campaign wall clock is the sum over
//! invocations.

use std::io::Read;
use std::path::Path;

use dnnlife_telemetry::HistogramSnapshot;
use serde::{Serialize, Value};

/// One `scenario_done` event: a completed item's identity and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPerf {
    /// Pending-set index within its campaign invocation.
    pub index: u64,
    /// Record label (network/policy/backend descriptor).
    pub label: String,
    /// Throughput bucket (the mitigation policy's display name).
    pub group: String,
    /// Run wall time, milliseconds.
    pub wall_ms: f64,
    /// Time from pool start until a worker claimed the item,
    /// milliseconds.
    pub queue_ms: f64,
    /// Simulator threads the item ran on (1 + spare-pool share).
    pub threads: u64,
}

/// Everything `dnnlife perf` aggregates out of one events journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfSummary {
    /// Campaign names seen (`campaign_start` events), in order.
    pub campaigns: Vec<String>,
    /// Every completed scenario, in journal (completion) order.
    pub scenarios: Vec<ScenarioPerf>,
    /// Items whose in-flight partials were discarded by an abort.
    pub discarded: u64,
    /// Summed counter roll-ups, keyed by `Counter::name`.
    pub counters: Vec<(String, u64)>,
    /// Total campaign wall time (start → done/abort), summed over the
    /// journal's invocations, milliseconds.
    pub campaign_wall_ms: f64,
    /// Thread budget of the widest invocation.
    pub budget: u64,
    /// Journal lines skipped as unparsable (torn tail, corruption).
    pub skipped_lines: u64,
    /// Absolute wall-clock anchor: the `unix_ms` field of the first
    /// `campaign_start` event that carries one (milliseconds since the
    /// Unix epoch). Every other journal timestamp is the relative
    /// `t_ms` offset; this is the only absolute time, so tooling can
    /// order journals from different runs. `None` for journals written
    /// before the field existed — its absence is never an error.
    pub anchor_unix_ms: Option<u64>,
    /// Latency histograms from `hist` roll-up events, keyed by metric
    /// name (`scenario_wall_us`, `scenario_queue_us`, ...), merged
    /// across the journal's invocations.
    pub hists: Vec<(String, HistogramSnapshot)>,
}

/// Percentile view of a microsecond latency histogram, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyMs {
    /// Samples recorded into the histogram.
    pub count: u64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Exact maximum latency, milliseconds.
    pub max_ms: f64,
}

fn str_field<'v>(v: &'v Value, key: &str) -> Option<&'v str> {
    match v.get(key) {
        Some(Value::String(s)) => Some(s),
        _ => None,
    }
}

fn num_field(v: &Value, key: &str) -> Option<f64> {
    match v.get(key) {
        Some(Value::Number(n)) => Some((*n).as_f64()),
        _ => None,
    }
}

fn u64_field(v: &Value, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Value::Number(n)) => (*n).as_u64(),
        _ => None,
    }
}

/// Loads and aggregates one events journal.
///
/// # Errors
///
/// Only I/O errors opening or reading the file; malformed *content* is
/// tolerated line by line (counted in
/// [`skipped_lines`](PerfSummary::skipped_lines)).
pub fn load_events(path: &Path) -> std::io::Result<PerfSummary> {
    let mut contents = String::new();
    std::fs::File::open(path)?.read_to_string(&mut contents)?;
    Ok(summarize(&contents))
}

/// [`load_events`] over in-memory journal text (exposed for tests and
/// the diff path).
pub fn summarize(journal: &str) -> PerfSummary {
    let mut out = PerfSummary::default();
    // `t_ms` is relative to each invocation's Telemetry handle, so the
    // wall clock closes per invocation: a campaign_done/abort pairs
    // with the latest campaign_start.
    let mut open_start_ms: Option<f64> = None;
    for line in journal.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(event) = serde_json::from_str::<Value>(line) else {
            out.skipped_lines += 1;
            continue;
        };
        let Some(kind) = str_field(&event, "ev") else {
            out.skipped_lines += 1;
            continue;
        };
        match kind {
            "campaign_start" => {
                if let Some(name) = str_field(&event, "name") {
                    out.campaigns.push(name.to_string());
                }
                out.budget = out.budget.max(u64_field(&event, "budget").unwrap_or(0));
                if out.anchor_unix_ms.is_none() {
                    out.anchor_unix_ms = u64_field(&event, "unix_ms");
                }
                open_start_ms = num_field(&event, "t_ms");
            }
            "campaign_done" | "campaign_abort" => {
                if let (Some(start), Some(end)) = (open_start_ms.take(), num_field(&event, "t_ms"))
                {
                    out.campaign_wall_ms += (end - start).max(0.0);
                }
            }
            "scenario_done" => {
                out.scenarios.push(ScenarioPerf {
                    index: u64_field(&event, "i").unwrap_or(0),
                    label: str_field(&event, "label").unwrap_or("?").to_string(),
                    group: str_field(&event, "group").unwrap_or("?").to_string(),
                    wall_ms: num_field(&event, "wall_ms").unwrap_or(0.0),
                    queue_ms: num_field(&event, "queue_ms").unwrap_or(0.0),
                    threads: u64_field(&event, "threads").unwrap_or(1),
                });
            }
            "scenario_discarded" => out.discarded += 1,
            "hist" => {
                let Some(name) = str_field(&event, "name") else {
                    out.skipped_lines += 1;
                    continue;
                };
                let mut pairs: Vec<(usize, u64)> = Vec::new();
                if let Some(Value::Array(buckets)) = event.get("buckets") {
                    for bucket in buckets {
                        let Value::Array(pair) = bucket else { continue };
                        let (Some(Value::Number(i)), Some(Value::Number(c))) =
                            (pair.first(), pair.get(1))
                        else {
                            continue;
                        };
                        if let (Some(i), Some(c)) = ((*i).as_u64(), (*c).as_u64()) {
                            pairs.push((i as usize, c));
                        }
                    }
                }
                let snap = HistogramSnapshot::from_sparse(
                    &pairs,
                    u64_field(&event, "sum").unwrap_or(0),
                    u64_field(&event, "max").unwrap_or(0),
                );
                match out.hists.iter_mut().find(|(k, _)| k == name) {
                    Some((_, total)) => total.merge(&snap),
                    None => out.hists.push((name.to_string(), snap)),
                }
            }
            "counters" => {
                let Ok(pairs) = event.as_object_named("counters event") else {
                    out.skipped_lines += 1;
                    continue;
                };
                for (name, value) in pairs {
                    if name == "ev" || name == "t_ms" || name == "v" {
                        continue;
                    }
                    let Value::Number(n) = value else { continue };
                    let Some(n) = (*n).as_u64() else { continue };
                    match out.counters.iter_mut().find(|(k, _)| k == name) {
                        Some((_, total)) => *total += n,
                        None => out.counters.push((name.clone(), n)),
                    }
                }
            }
            _ => {} // forward compatibility: unknown events are fine
        }
    }
    out
}

impl PerfSummary {
    /// A summed counter by `Counter::name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Exact-backend simulation throughput: word writes per second of
    /// scenario wall time. `None` when the journal holds no exact work
    /// (or no timing). This is the number the CI smoke check guards.
    pub fn exact_words_per_sec(&self) -> Option<f64> {
        let words = self.counter("exact_word_writes");
        let wall_secs = self.counter("scenario_wall_nanos") as f64 / 1e9;
        (words > 0 && wall_secs > 0.0).then(|| words as f64 / wall_secs)
    }

    /// Mean worker-pool occupancy: scenario wall time divided by
    /// campaign wall time × thread budget. 1.0 = every budgeted thread
    /// busy for the whole campaign. `None` without a closed campaign
    /// span.
    pub fn thread_utilization(&self) -> Option<f64> {
        let busy_ms = self.counter("scenario_wall_nanos") as f64 / 1e6;
        let capacity_ms = self.campaign_wall_ms * self.budget.max(1) as f64;
        (capacity_ms > 0.0).then(|| busy_ms / capacity_ms)
    }

    /// Per-group (policy) roll-up: `(group, completed, total wall ms,
    /// mean wall ms)`, sorted by total wall descending.
    pub fn group_rollup(&self) -> Vec<(String, usize, f64, f64)> {
        let mut rows: Vec<(String, usize, f64)> = Vec::new();
        for s in &self.scenarios {
            match rows.iter_mut().find(|(g, _, _)| *g == s.group) {
                Some((_, n, wall)) => {
                    *n += 1;
                    *wall += s.wall_ms;
                }
                None => rows.push((s.group.clone(), 1, s.wall_ms)),
            }
        }
        let mut rows: Vec<(String, usize, f64, f64)> = rows
            .into_iter()
            .map(|(g, n, wall)| (g, n, wall, wall / n.max(1) as f64))
            .collect();
        rows.sort_by(|a, b| b.2.total_cmp(&a.2));
        rows
    }

    /// A merged latency histogram by metric name, `None` when the
    /// journal carries no `hist` events for it.
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
            .filter(|h| h.count() > 0)
    }

    /// p50/p90/p99/max of a microsecond latency histogram, reported in
    /// milliseconds.
    pub fn latency_ms(&self, name: &str) -> Option<LatencyMs> {
        let hist = self.hist(name)?;
        Some(LatencyMs {
            count: hist.count(),
            p50_ms: hist.quantile(0.50) as f64 / 1e3,
            p90_ms: hist.quantile(0.90) as f64 / 1e3,
            p99_ms: hist.quantile(0.99) as f64 / 1e3,
            max_ms: hist.max() as f64 / 1e3,
        })
    }

    /// The `top` slowest completed scenarios, wall-time descending.
    pub fn slowest(&self, top: usize) -> Vec<&ScenarioPerf> {
        let mut sorted: Vec<&ScenarioPerf> = self.scenarios.iter().collect();
        sorted.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        sorted.truncate(top);
        sorted
    }

    /// The human-readable `dnnlife perf` report: slowest cells,
    /// per-policy throughput, thread utilization, counter totals.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== Perf: {} — {} completed, {} discarded, {} skipped line(s) ===\n",
            if self.campaigns.is_empty() {
                "<no campaign events>".to_string()
            } else {
                self.campaigns.join(", ")
            },
            self.scenarios.len(),
            self.discarded,
            self.skipped_lines,
        ));
        if let Some(anchor) = self.anchor_unix_ms {
            out.push_str(&format!("journal anchor: unix epoch {anchor} ms\n"));
        }
        if self.campaign_wall_ms > 0.0 {
            out.push_str(&format!(
                "campaign wall {:.2}s on a {}-thread budget",
                self.campaign_wall_ms / 1e3,
                self.budget
            ));
            if let Some(util) = self.thread_utilization() {
                out.push_str(&format!(", {:.0}% thread utilization", util * 100.0));
            }
            out.push('\n');
        }
        if let Some(wps) = self.exact_words_per_sec() {
            out.push_str(&format!("exact backend: {wps:.0} word writes/s\n"));
        }

        let latency: Vec<(&str, LatencyMs)> = [
            ("scenario wall", "scenario_wall_us"),
            ("scenario queue", "scenario_queue_us"),
        ]
        .into_iter()
        .filter_map(|(label, name)| self.latency_ms(name).map(|l| (label, l)))
        .collect();
        if !latency.is_empty() {
            out.push_str("\n--- Latency percentiles (ms) ---\n");
            out.push_str(&format!(
                "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                "metric", "count", "p50", "p90", "p99", "max"
            ));
            for (label, l) in latency {
                out.push_str(&format!(
                    "{label:<16} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                    l.count, l.p50_ms, l.p90_ms, l.p99_ms, l.max_ms
                ));
            }
        }

        let slowest = self.slowest(10);
        if !slowest.is_empty() {
            out.push_str("\n--- Slowest cells ---\n");
            out.push_str(&format!(
                "{:>4}  {:>10}  {:>9}  {:>7}  label\n",
                "#", "wall ms", "queue ms", "threads"
            ));
            for (rank, s) in slowest.iter().enumerate() {
                out.push_str(&format!(
                    "{:>4}  {:>10.1}  {:>9.1}  {:>7}  {}\n",
                    rank + 1,
                    s.wall_ms,
                    s.queue_ms,
                    s.threads,
                    s.label
                ));
            }
        }

        let groups = self.group_rollup();
        if !groups.is_empty() {
            let width = groups
                .iter()
                .map(|(g, ..)| g.chars().count())
                .max()
                .unwrap_or(0)
                .max("policy".len());
            out.push_str("\n--- Per-policy throughput ---\n");
            out.push_str(&format!(
                "{:<width$} {:>6} {:>12} {:>12}\n",
                "policy", "done", "total ms", "mean ms"
            ));
            for (group, n, total, mean) in &groups {
                out.push_str(&format!(
                    "{group:<width$} {n:>6} {total:>12.1} {mean:>12.1}\n"
                ));
            }
        }

        if !self.counters.is_empty() {
            out.push_str("\n--- Counters ---\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<28} {value}\n"));
            }
        }
        out
    }
}

impl Serialize for PerfSummary {
    fn to_value(&self) -> Value {
        let scenarios: Vec<Value> = self
            .scenarios
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("i".to_string(), s.index.to_value()),
                    ("label".to_string(), s.label.to_value()),
                    ("group".to_string(), s.group.to_value()),
                    ("wall_ms".to_string(), s.wall_ms.to_value()),
                    ("queue_ms".to_string(), s.queue_ms.to_value()),
                    ("threads".to_string(), s.threads.to_value()),
                ])
            })
            .collect();
        let counters: Vec<(String, Value)> = self
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), value.to_value()))
            .collect();
        let mut pairs = vec![
            ("campaigns".to_string(), self.campaigns.to_value()),
            (
                "completed".to_string(),
                (self.scenarios.len() as u64).to_value(),
            ),
            ("discarded".to_string(), self.discarded.to_value()),
            (
                "campaign_wall_ms".to_string(),
                self.campaign_wall_ms.to_value(),
            ),
            ("budget".to_string(), self.budget.to_value()),
            ("skipped_lines".to_string(), self.skipped_lines.to_value()),
            ("counters".to_string(), Value::Object(counters)),
            ("scenarios".to_string(), Value::Array(scenarios)),
        ];
        let latency: Vec<(String, Value)> = self
            .hists
            .iter()
            .filter_map(|(name, _)| {
                let l = self.latency_ms(name)?;
                Some((
                    name.clone(),
                    Value::Object(vec![
                        ("count".to_string(), l.count.to_value()),
                        ("p50_ms".to_string(), l.p50_ms.to_value()),
                        ("p90_ms".to_string(), l.p90_ms.to_value()),
                        ("p99_ms".to_string(), l.p99_ms.to_value()),
                        ("max_ms".to_string(), l.max_ms.to_value()),
                    ]),
                ))
            })
            .collect();
        if !latency.is_empty() {
            pairs.push(("latency".to_string(), Value::Object(latency)));
        }
        if let Some(wps) = self.exact_words_per_sec() {
            pairs.insert(6, ("exact_words_per_sec".to_string(), wps.to_value()));
        }
        if let Some(util) = self.thread_utilization() {
            pairs.insert(6, ("thread_utilization".to_string(), util.to_value()));
        }
        if let Some(anchor) = self.anchor_unix_ms {
            pairs.insert(1, ("anchor_unix_ms".to_string(), anchor.to_value()));
        }
        Value::Object(pairs)
    }
}

/// Wall-time change of one metric between two journals.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Metric name.
    pub metric: String,
    /// Value in journal A (the "before").
    pub before: f64,
    /// Value in journal B (the "after").
    pub after: f64,
    /// `after / before` (∞ when before is 0, 0 when B lacks the
    /// metric).
    pub ratio: f64,
    /// Whether the change crosses the regression threshold in the
    /// slow direction.
    pub regressed: bool,
    /// True when journal A reports this metric but journal B doesn't —
    /// rendered as an explicit `MISSING` row and always treated as a
    /// regression (a silently vanished metric must fail the gate, not
    /// pass it).
    pub missing: bool,
}

/// A↔B journal comparison: per-metric ratios plus the regression
/// verdicts `dnnlife perf --diff` renders.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDiff {
    /// One row per comparable metric.
    pub rows: Vec<DiffRow>,
    /// Ratio past which a slow-direction change is flagged.
    pub threshold: f64,
}

/// Default slow-direction ratio before a diff row is flagged: 25%.
pub const DIFF_THRESHOLD: f64 = 1.25;

/// Compares two journals. `threshold` is the slow-direction ratio that
/// flags a row (e.g. 1.25 = 25% slower); lower-is-better metrics
/// (wall, queue) regress when `after/before > threshold`,
/// higher-is-better metrics (throughput) when
/// `before/after > threshold`.
pub fn diff(a: &PerfSummary, b: &PerfSummary, threshold: f64) -> PerfDiff {
    let mut rows = Vec::new();
    let mut lower_is_better = |metric: &str, before: f64, after: f64| {
        if before <= 0.0 && after <= 0.0 {
            return;
        }
        if before > 0.0 && after <= 0.0 {
            // The metric vanished from B (no scenarios, no closed
            // campaign span) — that must flag, not read as "0 ms".
            rows.push(DiffRow {
                metric: metric.to_string(),
                before,
                after: 0.0,
                ratio: 0.0,
                regressed: true,
                missing: true,
            });
            return;
        }
        let ratio = if before > 0.0 {
            after / before
        } else {
            f64::INFINITY
        };
        rows.push(DiffRow {
            metric: metric.to_string(),
            before,
            after,
            ratio,
            regressed: ratio > threshold,
            missing: false,
        });
    };
    lower_is_better("campaign_wall_ms", a.campaign_wall_ms, b.campaign_wall_ms);
    let mean_wall = |s: &PerfSummary| {
        if s.scenarios.is_empty() {
            0.0
        } else {
            s.scenarios.iter().map(|x| x.wall_ms).sum::<f64>() / s.scenarios.len() as f64
        }
    };
    lower_is_better("mean_scenario_wall_ms", mean_wall(a), mean_wall(b));
    let mean_queue = |s: &PerfSummary| {
        if s.scenarios.is_empty() {
            0.0
        } else {
            s.scenarios.iter().map(|x| x.queue_ms).sum::<f64>() / s.scenarios.len() as f64
        }
    };
    lower_is_better("mean_queue_wait_ms", mean_queue(a), mean_queue(b));
    match (a.exact_words_per_sec(), b.exact_words_per_sec()) {
        (Some(before), Some(after)) => rows.push(DiffRow {
            metric: "exact_words_per_sec".to_string(),
            before,
            after,
            ratio: if before > 0.0 {
                after / before
            } else {
                f64::INFINITY
            },
            regressed: after > 0.0 && before / after > threshold,
            missing: false,
        }),
        // A measured exact throughput, B has none: the journal that was
        // supposed to prove throughput can't — an explicit MISSING row
        // that fails the gate (previously this arm emitted nothing and
        // the diff silently passed).
        (Some(before), None) => rows.push(DiffRow {
            metric: "exact_words_per_sec".to_string(),
            before,
            after: 0.0,
            ratio: 0.0,
            regressed: true,
            missing: true,
        }),
        // A metric newly appearing in B is informational, not a
        // regression.
        (None, Some(after)) => rows.push(DiffRow {
            metric: "exact_words_per_sec".to_string(),
            before: 0.0,
            after,
            ratio: f64::INFINITY,
            regressed: false,
            missing: false,
        }),
        (None, None) => {}
    }
    PerfDiff { rows, threshold }
}

impl PerfDiff {
    /// Whether any row crossed the threshold in the slow direction
    /// (includes [`DiffRow::missing`] rows).
    pub fn has_regression(&self) -> bool {
        self.rows.iter().any(|row| row.regressed)
    }

    /// Whether journal A reports a metric that journal B lacks — the
    /// condition `dnnlife perf --diff` must fail on (exit non-zero),
    /// since a vanished metric means B cannot demonstrate the
    /// performance A did.
    pub fn has_missing(&self) -> bool {
        self.rows.iter().any(|row| row.missing)
    }

    /// The human-readable diff table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== Perf diff (B vs A, flag past {:.2}x) ===\n",
            self.threshold
        ));
        out.push_str(&format!(
            "{:<24} {:>14} {:>14} {:>8}\n",
            "metric", "A", "B", "B/A"
        ));
        for row in &self.rows {
            if row.missing {
                out.push_str(&format!(
                    "{:<24} {:>14.1} {:>14} {:>8}  << MISSING IN B\n",
                    row.metric, row.before, "MISSING", "-"
                ));
                continue;
            }
            out.push_str(&format!(
                "{:<24} {:>14.1} {:>14.1} {:>8.3}{}\n",
                row.metric,
                row.before,
                row.after,
                row.ratio,
                if row.regressed { "  << REGRESSED" } else { "" }
            ));
        }
        if self.rows.is_empty() {
            out.push_str("(no comparable metrics)\n");
        }
        out
    }
}

impl Serialize for PerfDiff {
    fn to_value(&self) -> Value {
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|row| {
                Value::Object(vec![
                    ("metric".to_string(), row.metric.to_value()),
                    ("before".to_string(), row.before.to_value()),
                    ("after".to_string(), row.after.to_value()),
                    ("ratio".to_string(), row.ratio.to_value()),
                    ("regressed".to_string(), row.regressed.to_value()),
                    ("missing".to_string(), row.missing.to_value()),
                ])
            })
            .collect();
        Value::Object(vec![
            ("threshold".to_string(), self.threshold.to_value()),
            ("regressed".to_string(), self.has_regression().to_value()),
            ("missing_metrics".to_string(), self.has_missing().to_value()),
            ("rows".to_string(), Value::Array(rows)),
        ])
    }
}

/// The CI smoke check: compares the journal's exact-backend throughput
/// against a committed baseline. Returns the measured words/sec, or an
/// error describing the regression (or why the journal can't be
/// checked).
///
/// # Errors
///
/// When the journal has no exact-backend work, or throughput fell
/// below `baseline / max_regression`.
pub fn check_baseline(
    summary: &PerfSummary,
    baseline_words_per_sec: f64,
    max_regression: f64,
) -> Result<f64, String> {
    let measured = summary
        .exact_words_per_sec()
        .ok_or("journal holds no exact-backend scenario work to check")?;
    let floor = baseline_words_per_sec / max_regression;
    if measured < floor {
        return Err(format!(
            "exact backend regressed: {measured:.0} words/s < floor {floor:.0} \
             (baseline {baseline_words_per_sec:.0} / {max_regression:.1}x)"
        ));
    }
    Ok(measured)
}

/// The CI latency gate: compares the journal's scenario-wall p99 (from
/// `hist` events) against a committed ceiling in milliseconds. Returns
/// the measured p99 in ms, or an error when it exceeds
/// `ceiling * max_regression` — or when the gate is configured but the
/// journal carries no histogram to measure.
///
/// # Errors
///
/// When the journal has no `scenario_wall_us` histogram events, or the
/// measured p99 exceeds the allowed ceiling.
pub fn check_wall_p99(
    summary: &PerfSummary,
    ceiling_ms: f64,
    max_regression: f64,
) -> Result<f64, String> {
    let latency = summary.latency_ms("scenario_wall_us").ok_or(
        "scenario_wall_p99_ms gate is set but the journal holds no \
         scenario_wall_us histogram events — run with telemetry enabled",
    )?;
    let allowed = ceiling_ms * max_regression;
    if latency.p99_ms > allowed {
        return Err(format!(
            "scenario wall p99 regressed: {:.1} ms > ceiling {allowed:.1} \
             (baseline {ceiling_ms:.1} x {max_regression:.1})",
            latency.p99_ms
        ));
    }
    Ok(latency.p99_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnlife_telemetry::Histogram;

    fn journal() -> String {
        [
            r#"{"ev":"campaign_start","t_ms":0,"name":"fig9","noun":"scenario","pending":3,"workers":2,"budget":4}"#,
            r#"{"ev":"scenario_start","t_ms":1,"i":0,"threads":2}"#,
            r#"{"ev":"scenario_done","t_ms":120,"i":0,"label":"lenet/none","group":"none","wall_ms":100.0,"queue_ms":2.0,"threads":2}"#,
            r#"{"ev":"scenario_done","t_ms":250,"i":1,"label":"lenet/dnnlife","group":"dnn-life","wall_ms":200.0,"queue_ms":4.0,"threads":2}"#,
            r#"{"ev":"scenario_discarded","t_ms":260,"i":2,"wall_ms":10.0}"#,
            r#"{"ev":"counters","t_ms":270,"scenarios_completed":2,"exact_word_writes":3000000,"scenario_wall_nanos":300000000}"#,
            r#"{"ev":"campaign_abort","t_ms":280,"name":"fig9","completed":2,"discarded":1,"remaining":0}"#,
            r#"{"ev":"future_event_kind","t_ms":281,"whatever":true}"#,
            "this line is torn and does not par",
        ]
        .join("\n")
    }

    #[test]
    fn summarize_aggregates_and_tolerates_garbage() {
        let s = summarize(&journal());
        assert_eq!(s.campaigns, vec!["fig9".to_string()]);
        assert_eq!(s.scenarios.len(), 2);
        assert_eq!(s.discarded, 1);
        assert_eq!(s.skipped_lines, 1, "only the torn line is skipped");
        assert_eq!(s.budget, 4);
        assert_eq!(s.counter("exact_word_writes"), 3_000_000);
        assert!((s.campaign_wall_ms - 280.0).abs() < 1e-9);
        // 3e6 words over 0.3s of scenario wall.
        let wps = s.exact_words_per_sec().expect("has exact work");
        assert!((wps - 10_000_000.0).abs() < 1.0, "{wps}");
    }

    #[test]
    fn unix_ms_anchor_is_captured_and_tolerated_when_absent() {
        // Pre-anchor journals (no unix_ms on campaign_start) summarize
        // exactly as before, with no anchor.
        let old = summarize(&journal());
        assert_eq!(old.anchor_unix_ms, None);
        assert!(!old.render_text().contains("journal anchor"));

        // An anchored journal surfaces the first campaign_start's
        // unix_ms in the summary, text render and JSON output.
        let anchored = journal().replace(
            r#"{"ev":"campaign_start","t_ms":0,"#,
            r#"{"ev":"campaign_start","t_ms":0,"unix_ms":1754650000123,"#,
        );
        let s = summarize(&anchored);
        assert_eq!(s.anchor_unix_ms, Some(1_754_650_000_123));
        assert!(s
            .render_text()
            .contains("journal anchor: unix epoch 1754650000123 ms"));
        let json = s.to_value();
        assert_eq!(
            u64_field(&json, "anchor_unix_ms"),
            Some(1_754_650_000_123),
            "anchor must appear in --json output"
        );
        assert_eq!(
            u64_field(&old.to_value(), "anchor_unix_ms"),
            None,
            "unanchored journals must not invent the field"
        );

        // The anchor identifies the journal's first invocation; later
        // invocations (e.g. --resume appends) don't overwrite it.
        let second = journal().replace(
            r#"{"ev":"campaign_start","t_ms":0,"#,
            r#"{"ev":"campaign_start","t_ms":0,"unix_ms":1754650999999,"#,
        );
        let resumed = summarize(&format!("{anchored}\n{second}"));
        assert_eq!(resumed.anchor_unix_ms, Some(1_754_650_000_123));

        // Diffing an anchored journal against an unanchored one is not
        // a regression — the anchor is metadata, not a metric.
        let d = diff(&s, &old, DIFF_THRESHOLD);
        assert!(!d.has_regression() && !d.has_missing());
    }

    #[test]
    fn render_text_names_the_slowest_cell_first() {
        let s = summarize(&journal());
        let text = s.render_text();
        let slow = text.find("lenet/dnnlife").expect("slow cell listed");
        let fast = text.find("lenet/none").expect("fast cell listed");
        assert!(slow < fast, "slowest first:\n{text}");
        assert!(text.contains("Per-policy throughput"));
        assert!(text.contains("exact backend"));
    }

    #[test]
    fn counters_sum_across_invocations() {
        let two_runs = format!("{}\n{}", journal(), journal());
        let s = summarize(&two_runs);
        assert_eq!(s.counter("exact_word_writes"), 6_000_000);
        assert_eq!(s.scenarios.len(), 4);
        assert!((s.campaign_wall_ms - 560.0).abs() < 1e-9);
    }

    #[test]
    fn diff_flags_slow_direction_only() {
        let a = summarize(&journal());
        let mut b = a.clone();
        for s in &mut b.scenarios {
            s.wall_ms *= 2.0; // B is 2x slower
        }
        let d = diff(&a, &b, DIFF_THRESHOLD);
        assert!(d.has_regression());
        let improved = diff(&b, &a, DIFF_THRESHOLD);
        assert!(
            !improved
                .rows
                .iter()
                .filter(|r| r.metric == "mean_scenario_wall_ms")
                .any(|r| r.regressed),
            "a speedup must not be flagged"
        );
        assert!(d.render_text().contains("REGRESSED"));
    }

    /// The same journal minus its `counters` roll-up: scenarios ran but
    /// no exact throughput can be computed.
    fn journal_without_counters() -> String {
        journal()
            .lines()
            .filter(|l| !l.contains(r#""ev":"counters""#))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn diff_emits_missing_row_when_b_lacks_exact_throughput() {
        let a = summarize(&journal());
        let b = summarize(&journal_without_counters());
        let d = diff(&a, &b, DIFF_THRESHOLD);
        let row = d
            .rows
            .iter()
            .find(|r| r.metric == "exact_words_per_sec")
            .expect("a MISSING row must be emitted, not silence");
        assert!(row.missing && row.regressed);
        assert!(d.has_missing() && d.has_regression());
        let text = d.render_text();
        assert!(text.contains("MISSING"), "{text}");
    }

    #[test]
    fn diff_metric_appearing_in_b_is_not_a_regression() {
        let a = summarize(&journal_without_counters());
        let b = summarize(&journal());
        let d = diff(&a, &b, DIFF_THRESHOLD);
        let row = d
            .rows
            .iter()
            .find(|r| r.metric == "exact_words_per_sec")
            .expect("new metric is still shown");
        assert!(!row.missing && !row.regressed);
        assert!(!d.has_missing());
    }

    #[test]
    fn diff_flags_vanished_wall_metrics() {
        let a = summarize(&journal());
        let b = PerfSummary::default(); // empty journal: no scenarios at all
        let d = diff(&a, &b, DIFF_THRESHOLD);
        assert!(d.has_missing(), "an empty B journal must fail the gate");
        for metric in ["campaign_wall_ms", "mean_scenario_wall_ms"] {
            let row = d.rows.iter().find(|r| r.metric == metric).expect(metric);
            assert!(row.missing && row.regressed, "{metric} must flag");
        }
    }

    #[test]
    fn diff_json_carries_missing_flags() {
        let a = summarize(&journal());
        let d = diff(&a, &PerfSummary::default(), DIFF_THRESHOLD);
        let json = serde_json::to_string(&d.to_value()).expect("serializes");
        let back: Value = serde_json::from_str(&json).expect("round trips");
        assert_eq!(back.get("missing_metrics"), Some(&Value::Bool(true)));
    }

    #[test]
    fn baseline_check_floors_at_the_allowed_regression() {
        let s = summarize(&journal()); // 10M words/s
        assert!(check_baseline(&s, 10_000_000.0, 2.0).is_ok());
        assert!(
            check_baseline(&s, 10_000_000.0, 1.01).is_ok(),
            "equal is ok"
        );
        let err = check_baseline(&s, 50_000_000.0, 2.0).expect_err("regressed");
        assert!(err.contains("regressed"), "{err}");
        assert!(
            check_baseline(&PerfSummary::default(), 1.0, 2.0).is_err(),
            "empty journal cannot pass the smoke check"
        );
    }

    #[test]
    fn json_rendering_is_parseable_and_carries_the_headline_numbers() {
        let s = summarize(&journal());
        let json = serde_json::to_string(&s.to_value()).expect("serializes");
        let back: Value = serde_json::from_str(&json).expect("round trips");
        assert_eq!(u64_field(&back, "completed"), Some(2));
        assert_eq!(u64_field(&back, "discarded"), Some(1));
        assert!(num_field(&back, "exact_words_per_sec").is_some());
    }

    /// A `hist` event line exactly as `Telemetry::emit_histograms`
    /// writes it, built from real `Histogram` recordings so the sparse
    /// bucket pairs match production output.
    fn hist_line(name: &str, values: &[u64]) -> String {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        let snap = h.snapshot();
        let pairs: Vec<String> = snap
            .sparse()
            .iter()
            .map(|(i, c)| format!("[{i},{c}]"))
            .collect();
        format!(
            r#"{{"ev":"hist","v":1,"t_ms":275,"name":"{name}","buckets":[{}],"count":{},"sum":{},"max":{}}}"#,
            pairs.join(","),
            snap.count(),
            snap.sum(),
            snap.max()
        )
    }

    #[test]
    fn hist_events_merge_and_reconstruct_percentiles() {
        // Two invocations each flush their own hist roll-up; the
        // summary merges them and its percentiles stay within one
        // bucket of the scalar-sorted reference over both streams.
        let a: Vec<u64> = (1..=60).map(|i| i * 1_000).collect(); // 1..60 ms
        let b: Vec<u64> = vec![250_000, 500_000, 900_000]; // heavy tail
        let text = format!(
            "{}\n{}\n{}",
            journal(),
            hist_line("scenario_wall_us", &a),
            hist_line("scenario_wall_us", &b)
        );
        let s = summarize(&text);
        let hist = s.hist("scenario_wall_us").expect("hist merged");
        assert_eq!(hist.count(), 63);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.sort_unstable();
        for (q, l) in [(0.5, None), (0.9, None), (0.99, None), (1.0, Some(()))] {
            let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
            let truth = all[rank - 1];
            let est = hist.quantile(q);
            if l.is_some() {
                assert_eq!(est, truth, "q=1.0 must be the exact max");
            } else {
                let (eb, tb) = (
                    Histogram::bucket_index(est) as i64,
                    Histogram::bucket_index(truth) as i64,
                );
                assert!((eb - tb).abs() <= 1, "q={q}: {est} vs {truth}");
            }
        }

        // The latency view, text render and JSON all surface it.
        let lat = s.latency_ms("scenario_wall_us").expect("latency view");
        assert!((lat.max_ms - 900.0).abs() < 1e-9);
        let rendered = s.render_text();
        assert!(rendered.contains("Latency percentiles"), "{rendered}");
        assert!(rendered.contains("scenario wall"), "{rendered}");
        let json = s.to_value();
        let latency = json.get("latency").expect("latency in json");
        let wall = latency.get("scenario_wall_us").expect("wall entry");
        assert_eq!(u64_field(wall, "count"), Some(63));
        assert!(num_field(wall, "p99_ms").is_some());
    }

    #[test]
    fn mixed_version_journals_summarize_without_skips() {
        // Satellite 1: a journal mixing pre-"v" lines (the fixture),
        // "v":1 lines, an unknown future kind with "v":2, and hist
        // events must all summarize; only the torn line is skipped,
        // and "v" never leaks into the counter table.
        let text = format!(
            "{}\n{}\n{}",
            journal(),
            r#"{"ev":"counters","v":1,"t_ms":300,"exact_word_writes":500}"#,
            r#"{"ev":"hologram","v":2,"t_ms":301,"payload":[1,2,3]}"#,
        );
        let s = summarize(&text);
        assert_eq!(s.skipped_lines, 1, "only the torn line");
        assert_eq!(s.counter("exact_word_writes"), 3_000_500);
        assert_eq!(s.counter("v"), 0, "schema version is not a counter");
    }

    #[test]
    fn wall_p99_gate_floors_and_demands_histograms() {
        let text = format!(
            "{}\n{}",
            journal(),
            hist_line("scenario_wall_us", &[40_000, 50_000, 60_000])
        );
        let s = summarize(&text);
        // p99 lands in the 60ms bucket; a 100ms ceiling passes.
        let p99 = check_wall_p99(&s, 100.0, 1.5).expect("within ceiling");
        assert!((40.0..=100.0).contains(&p99), "{p99}");
        let err = check_wall_p99(&s, 10.0, 1.5).expect_err("over ceiling");
        assert!(err.contains("p99 regressed"), "{err}");
        // Gate configured but no histograms in the journal: hard error,
        // not a silent pass.
        let bare = summarize(&journal());
        let err = check_wall_p99(&bare, 100.0, 1.5).expect_err("no hist");
        assert!(err.contains("no "), "{err}");
    }
}
