//! Grid builder: enumerates experiment scenarios from axis lists.
//!
//! A [`GridAxes`] names the values to sweep on every axis of the
//! paper's evaluation space — platform, network, number format,
//! mitigation policy, lifetime, simulator backend, block-dwell model —
//! plus shared run parameters. Building it produces a
//! [`CampaignGrid`]: a deduplicated, validity-filtered scenario list
//! in a canonical order, with a deterministic per-scenario seed
//! derived from `(base_seed, scenario coordinates)` so a scenario
//! keeps its seed (and therefore its result bits) no matter which grid
//! it appears in or where. Coordinates normalise the backend away, so
//! a scenario's analytic and exact variants share one seed — that is
//! what makes matched cross-validation pairs comparable.

use dnnlife_core::experiment::{fig11_policies, fig9_policies, NetworkKind, Platform, PolicySpec};
use dnnlife_core::{DwellModel, ExperimentSpec, MemoryTech, RepairPolicy, SimulatorBackend};
use dnnlife_quant::NumberFormat;

/// Shared run parameters for every scenario of a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Campaign master seed; per-scenario seeds are derived from it.
    pub base_seed: u64,
    /// Simulate every n-th memory word (1 = paper-exact).
    pub sample_stride: usize,
    /// Inferences used to estimate duty cycles (the paper uses 100).
    pub inferences: u64,
    /// Simulator backend, used when [`GridAxes::backends`] is empty —
    /// which is how the named grids thread `--backend` through; a
    /// non-empty axis vector overrides it (to cross both backends in
    /// one grid).
    pub backend: SimulatorBackend,
    /// Block-dwell model, used when [`GridAxes::dwells`] is empty
    /// (non-uniform models require the exact backend).
    pub dwell: DwellModel,
    /// Repair (ECC) axis, used when [`GridAxes::repairs`] is empty.
    pub repair: RepairPolicy,
    /// Memory technology, used when [`GridAxes::techs`] is empty.
    pub tech: MemoryTech,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            base_seed: 42,
            sample_stride: 64,
            inferences: 100,
            backend: SimulatorBackend::Analytic,
            dwell: DwellModel::Uniform,
            repair: RepairPolicy::None,
            tech: MemoryTech::SramNbti,
        }
    }
}

/// Axis lists spanning a scenario space.
#[derive(Debug, Clone, PartialEq)]
pub struct GridAxes {
    /// Hardware platforms.
    pub platforms: Vec<Platform>,
    /// Weight-providing networks.
    pub networks: Vec<NetworkKind>,
    /// Weight storage formats.
    pub formats: Vec<NumberFormat>,
    /// Mitigation policies (including DnnLife bias / counter-width
    /// sweep points).
    pub policies: Vec<PolicySpec>,
    /// Device lifetimes in years.
    pub lifetimes_years: Vec<f64>,
    /// Simulator backends (the builder filters analytic × non-uniform
    /// dwell combinations, which the analytic closed forms cannot
    /// simulate). Leave **empty** to use the single
    /// `options.backend` value — the axis vectors, when non-empty,
    /// are the only source the builder reads.
    pub backends: Vec<SimulatorBackend>,
    /// Block-dwell models. Leave **empty** to use the single
    /// `options.dwell` value (same rule as `backends`).
    pub dwells: Vec<DwellModel>,
    /// Repair (ECC) policies over the stored weight words. Leave
    /// **empty** to use the single `options.repair` value (same rule
    /// as `backends`) — a two-element axis crosses every policy with
    /// ECC on and off in one grid.
    pub repairs: Vec<RepairPolicy>,
    /// Memory technologies ([`MemoryTech`]) whose lifetime model ages
    /// the weight cells. Leave **empty** to use the single
    /// `options.tech` value (same rule as `backends`) — a two-element
    /// axis crosses every cell with the SRAM/NBTI and ReRAM/endurance
    /// models in one grid.
    pub techs: Vec<MemoryTech>,
    /// Shared run parameters.
    pub options: SweepOptions,
}

impl GridAxes {
    /// Enumerates the cross product in canonical order (platform →
    /// network → format → policy → lifetime → backend → dwell →
    /// repair → tech), dropping invalid combinations (fp32 on the
    /// 8-bit NPU, analytic backend with non-uniform dwell, non-coprime
    /// ECC interleave) and duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `options.sample_stride == 0` or
    /// `options.inferences == 0` — catching the invariant here, at
    /// grid construction, instead of as an assert deep inside a
    /// simulator worker thread after the store file was already
    /// created.
    pub fn build(&self, name: impl Into<String>) -> CampaignGrid {
        assert!(
            self.options.sample_stride > 0,
            "GridAxes::build: sample_stride must be >= 1"
        );
        assert!(
            self.options.inferences > 0,
            "GridAxes::build: inferences must be >= 1"
        );
        let backends = if self.backends.is_empty() {
            vec![self.options.backend]
        } else {
            self.backends.clone()
        };
        let dwells = if self.dwells.is_empty() {
            vec![self.options.dwell.clone()]
        } else {
            self.dwells.clone()
        };
        let repairs = if self.repairs.is_empty() {
            vec![self.options.repair]
        } else {
            self.repairs.clone()
        };
        let techs = if self.techs.is_empty() {
            vec![self.options.tech]
        } else {
            self.techs.clone()
        };
        let mut scenarios = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for &platform in &self.platforms {
            for &network in &self.networks {
                for &format in &self.formats {
                    for &policy in &self.policies {
                        for &years in &self.lifetimes_years {
                            for &backend in &backends {
                                for dwell in &dwells {
                                    for &repair in &repairs {
                                        for &tech in &techs {
                                            let mut spec = ExperimentSpec {
                                                platform,
                                                network,
                                                format,
                                                policy,
                                                inferences: self.options.inferences,
                                                years,
                                                seed: 0,
                                                sample_stride: self.options.sample_stride,
                                                backend,
                                                dwell: dwell.clone(),
                                                repair,
                                                tech,
                                            };
                                            if !spec.is_valid() {
                                                continue;
                                            }
                                            spec.seed =
                                                scenario_seed(self.options.base_seed, &spec);
                                            if seen.insert(spec.content_key()) {
                                                scenarios.push(spec);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        CampaignGrid {
            name: name.into(),
            scenarios,
        }
    }
}

/// Derives a scenario's seed from the campaign seed and the scenario's
/// coordinates (its seed-independent coordinate hash), finished with a
/// SplitMix64 mix so nearby hashes decorrelate. Shared with the
/// fault-injection grid builder so an injection scenario and its sweep
/// twin derive identical seeds.
pub(crate) fn scenario_seed(base_seed: u64, spec: &ExperimentSpec) -> u64 {
    let mut z = base_seed ^ spec.coordinate_hash();
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A built scenario set: what the executor runs and the store keys.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignGrid {
    /// Campaign name (used for default store file names and reports).
    pub name: String,
    /// Scenarios in canonical order, deduplicated, all valid.
    pub scenarios: Vec<ExperimentSpec>,
}

impl CampaignGrid {
    /// Store keys in scenario order.
    pub fn keys(&self) -> Vec<String> {
        self.scenarios.iter().map(|s| s.content_key()).collect()
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The Fig. 9 grid: baseline accelerator, AlexNet, all three
    /// formats, the paper's six policies, 7-year lifetime.
    pub fn fig9(options: SweepOptions) -> Self {
        Self::fig9_axes(options).build("fig9")
    }

    fn fig9_axes(options: SweepOptions) -> GridAxes {
        GridAxes {
            platforms: vec![Platform::Baseline],
            networks: vec![NetworkKind::Alexnet],
            formats: NumberFormat::all().to_vec(),
            policies: fig9_policies(),
            lifetimes_years: vec![7.0],
            backends: Vec::new(), // use options.backend
            dwells: Vec::new(),   // use options.dwell
            repairs: Vec::new(),  // use options.repair
            techs: Vec::new(),    // use options.tech
            options,
        }
    }

    /// The Fig. 11 grid: TPU-like NPU, all three networks, 8-bit
    /// symmetric weights, the paper's four policies, 7-year lifetime.
    pub fn fig11(options: SweepOptions) -> Self {
        Self::fig11_axes(options).build("fig11")
    }

    fn fig11_axes(options: SweepOptions) -> GridAxes {
        GridAxes {
            platforms: vec![Platform::TpuLike],
            networks: vec![
                NetworkKind::Alexnet,
                NetworkKind::Vgg16,
                NetworkKind::CustomMnist,
            ],
            formats: vec![NumberFormat::Int8Symmetric],
            policies: fig11_policies(),
            lifetimes_years: vec![7.0],
            backends: Vec::new(), // use options.backend
            dwells: Vec::new(),   // use options.dwell
            repairs: Vec::new(),  // use options.repair
            techs: Vec::new(),    // use options.tech
            options,
        }
    }

    /// TRBG bias-sensitivity sweep (beyond the paper): DNN-Life with
    /// bias 0.50..0.90 in 0.05 steps, with and without bias balancing,
    /// on the NPU running the custom network.
    pub fn bias_sweep(options: SweepOptions) -> Self {
        Self::bias_axes(options).build("bias")
    }

    fn bias_axes(options: SweepOptions) -> GridAxes {
        let mut policies = Vec::new();
        for step in 0..=8 {
            let bias = 0.5 + 0.05 * f64::from(step);
            for bias_balancing in [false, true] {
                policies.push(PolicySpec::DnnLife {
                    bias,
                    bias_balancing,
                    m_bits: 4,
                });
            }
        }
        GridAxes {
            platforms: vec![Platform::TpuLike],
            networks: vec![NetworkKind::CustomMnist],
            formats: vec![NumberFormat::Int8Symmetric],
            policies,
            lifetimes_years: vec![7.0],
            backends: Vec::new(), // use options.backend
            dwells: Vec::new(),   // use options.dwell
            repairs: Vec::new(),  // use options.repair
            techs: Vec::new(),    // use options.tech
            options,
        }
    }

    /// Counter-width sensitivity sweep (beyond the paper): the M-bit
    /// bias-balancing register from 1 to 8 bits at the paper's 0.7
    /// bias, on the NPU running the custom network.
    pub fn mbits_sweep(options: SweepOptions) -> Self {
        Self::mbits_axes(options).build("mbits")
    }

    fn mbits_axes(options: SweepOptions) -> GridAxes {
        let policies = (1..=8)
            .map(|m_bits| PolicySpec::DnnLife {
                bias: 0.7,
                bias_balancing: true,
                m_bits,
            })
            .collect();
        GridAxes {
            platforms: vec![Platform::TpuLike],
            networks: vec![NetworkKind::CustomMnist],
            formats: vec![NumberFormat::Int8Symmetric],
            policies,
            lifetimes_years: vec![7.0],
            backends: Vec::new(), // use options.backend
            dwells: Vec::new(),   // use options.dwell
            repairs: Vec::new(),  // use options.repair
            techs: Vec::new(),    // use options.tech
            options,
        }
    }

    /// The full design space: both platforms, all networks and formats,
    /// the six Fig. 9 policies, three lifetimes. Invalid combinations
    /// (fp32 on the NPU) are filtered by the builder.
    pub fn full(options: SweepOptions) -> Self {
        Self::full_axes(options).build("full")
    }

    fn full_axes(options: SweepOptions) -> GridAxes {
        GridAxes {
            platforms: vec![Platform::Baseline, Platform::TpuLike],
            networks: vec![
                NetworkKind::Alexnet,
                NetworkKind::Vgg16,
                NetworkKind::CustomMnist,
            ],
            formats: NumberFormat::all().to_vec(),
            policies: fig9_policies(),
            lifetimes_years: vec![2.0, 7.0, 10.0],
            backends: Vec::new(), // use options.backend
            dwells: Vec::new(),   // use options.dwell
            repairs: Vec::new(),  // use options.repair
            techs: Vec::new(),    // use options.tech
            options,
        }
    }

    /// Builds a named grid: `fig9`, `fig11`, `bias`, `mbits` or `full`.
    pub fn named(name: &str, options: SweepOptions) -> Option<Self> {
        Some(Self::named_axes(name, options)?.build(name))
    }

    /// [`CampaignGrid::named`] with an explicit repair-axis list
    /// (`dnnlife sweep --ecc both`): the grid crosses every cell with
    /// each repair value through [`GridAxes::repairs`], in canonical
    /// order (repair is the innermost axis). Values invalid for a
    /// cell's word width (non-coprime interleave) are filtered like
    /// any other invalid combination — callers that need to diagnose a
    /// partial drop can count scenarios per repair value.
    pub fn named_with_repairs(
        name: &str,
        options: SweepOptions,
        repairs: &[RepairPolicy],
    ) -> Option<Self> {
        let mut axes = Self::named_axes(name, options)?;
        axes.repairs = repairs.to_vec();
        Some(axes.build(name))
    }

    /// [`CampaignGrid::named_with_repairs`] with an explicit memory
    /// technology axis on top (`dnnlife sweep --tech both`): every
    /// cell is crossed with each [`MemoryTech`] value through
    /// [`GridAxes::techs`], tech innermost after repair.
    pub fn named_with_axes(
        name: &str,
        options: SweepOptions,
        repairs: &[RepairPolicy],
        techs: &[MemoryTech],
    ) -> Option<Self> {
        let mut axes = Self::named_axes(name, options)?;
        axes.repairs = repairs.to_vec();
        axes.techs = techs.to_vec();
        Some(axes.build(name))
    }

    fn named_axes(name: &str, options: SweepOptions) -> Option<GridAxes> {
        match name {
            "fig9" => Some(Self::fig9_axes(options)),
            "fig11" => Some(Self::fig11_axes(options)),
            "bias" => Some(Self::bias_axes(options)),
            "mbits" => Some(Self::mbits_axes(options)),
            "full" => Some(Self::full_axes(options)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_grid_shape() {
        let grid = CampaignGrid::fig9(SweepOptions::default());
        // 3 formats × 6 policies, all valid on the baseline platform.
        assert_eq!(grid.len(), 18);
    }

    #[test]
    fn fig11_grid_shape() {
        let grid = CampaignGrid::fig11(SweepOptions::default());
        assert_eq!(grid.len(), 12);
    }

    #[test]
    fn full_grid_filters_fp32_on_npu() {
        let grid = CampaignGrid::full(SweepOptions::default());
        // Baseline: 3 networks × 3 formats × 6 policies × 3 lifetimes;
        // NPU: 3 networks × 2 formats × 6 policies × 3 lifetimes.
        assert_eq!(grid.len(), 162 + 108);
        assert!(grid
            .scenarios
            .iter()
            .all(dnnlife_core::ExperimentSpec::is_valid));
    }

    #[test]
    fn duplicate_axis_values_dedup() {
        let axes = GridAxes {
            platforms: vec![Platform::Baseline, Platform::Baseline],
            networks: vec![NetworkKind::CustomMnist],
            formats: vec![NumberFormat::Int8Symmetric, NumberFormat::Int8Symmetric],
            policies: vec![PolicySpec::None],
            lifetimes_years: vec![7.0],
            backends: vec![SimulatorBackend::Analytic, SimulatorBackend::Analytic],
            dwells: vec![DwellModel::Uniform, DwellModel::Uniform],
            repairs: Vec::new(),
            techs: Vec::new(),
            options: SweepOptions::default(),
        };
        assert_eq!(axes.build("dup").len(), 1);
    }

    #[test]
    fn backend_axis_crosses_and_drops_analytic_nonuniform() {
        let axes = GridAxes {
            platforms: vec![Platform::TpuLike],
            networks: vec![NetworkKind::CustomMnist],
            formats: vec![NumberFormat::Int8Symmetric],
            policies: vec![PolicySpec::None, PolicySpec::Inversion],
            lifetimes_years: vec![7.0],
            backends: vec![SimulatorBackend::Analytic, SimulatorBackend::Exact],
            dwells: vec![DwellModel::Uniform, DwellModel::Zipf { exponent: 1.0 }],
            repairs: Vec::new(),
            techs: Vec::new(),
            options: SweepOptions::default(),
        };
        let grid = axes.build("backend-cross");
        // 2 policies × (analytic-uniform, exact-uniform, exact-zipf):
        // the analytic × zipf cell is invalid and filtered.
        assert_eq!(grid.len(), 6);
        assert!(grid.scenarios.iter().all(ExperimentSpec::is_valid));
    }

    #[test]
    fn matched_backend_pairs_share_seeds() {
        let axes = GridAxes {
            platforms: vec![Platform::TpuLike],
            networks: vec![NetworkKind::CustomMnist],
            formats: vec![NumberFormat::Int8Symmetric],
            policies: fig11_policies(),
            lifetimes_years: vec![7.0],
            backends: vec![SimulatorBackend::Analytic, SimulatorBackend::Exact],
            dwells: vec![DwellModel::Uniform],
            repairs: Vec::new(),
            techs: Vec::new(),
            options: SweepOptions::default(),
        };
        let grid = axes.build("pairs");
        assert_eq!(grid.len(), 8);
        for spec in &grid.scenarios {
            let twin = grid
                .scenarios
                .iter()
                .find(|s| s.backend != spec.backend && s.coordinate_key() == spec.coordinate_key())
                .expect("every scenario has a matched twin on the other backend");
            assert_eq!(spec.seed, twin.seed, "matched pair seeds must agree");
            assert_ne!(spec.content_key(), twin.content_key());
        }
    }

    #[test]
    fn named_grids_thread_backend_and_dwell_from_options() {
        let grid = CampaignGrid::fig11(SweepOptions {
            backend: SimulatorBackend::Exact,
            dwell: DwellModel::LayerProportional,
            ..SweepOptions::default()
        });
        assert_eq!(grid.len(), 12);
        assert!(grid
            .scenarios
            .iter()
            .all(|s| s.backend == SimulatorBackend::Exact
                && s.dwell == DwellModel::LayerProportional));
    }

    #[test]
    fn scenario_seeds_are_stable_across_grids() {
        let fig11 = CampaignGrid::fig11(SweepOptions::default());
        let full = CampaignGrid::full(SweepOptions::default());
        // Scenarios shared between grids (matched on seed-independent
        // coordinates) get the same derived seed, so their results are
        // interchangeable. Every fig11 scenario appears in the full
        // grid (its policies are a subset of fig9's and 7.0 is among
        // the full grid's lifetimes), so this must match 12 times.
        let mut matched = 0;
        for spec in &fig11.scenarios {
            if let Some(other) = full
                .scenarios
                .iter()
                .find(|s| s.coordinate_key() == spec.coordinate_key())
            {
                assert_eq!(spec.seed, other.seed, "seed differs for {:?}", spec);
                assert_eq!(spec, other);
                matched += 1;
            }
        }
        assert_eq!(matched, fig11.len());
    }

    #[test]
    fn repair_axis_crosses_and_filters_bad_interleave() {
        let axes = GridAxes {
            platforms: vec![Platform::TpuLike],
            networks: vec![NetworkKind::CustomMnist],
            formats: vec![NumberFormat::Int8Symmetric],
            policies: vec![PolicySpec::None, PolicySpec::Inversion],
            lifetimes_years: vec![7.0],
            backends: Vec::new(),
            dwells: Vec::new(),
            repairs: vec![
                RepairPolicy::None,
                RepairPolicy::Secded { interleave: 1 },
                RepairPolicy::Secded { interleave: 13 }, // 13 | 13: invalid
            ],
            techs: Vec::new(),
            options: SweepOptions::default(),
        };
        let grid = axes.build("repair-cross");
        // 2 policies × (none, secded); the non-coprime interleave is
        // dropped by validity filtering.
        assert_eq!(grid.len(), 4);
        assert!(grid.scenarios.iter().all(ExperimentSpec::is_valid));
        // Twins differ in seed (repair is a physical coordinate) and
        // content key.
        let keys: std::collections::BTreeSet<String> =
            grid.scenarios.iter().map(|s| s.content_key()).collect();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn tech_axis_crosses_with_coordinate_separated_seeds() {
        let axes = GridAxes {
            platforms: vec![Platform::TpuLike],
            networks: vec![NetworkKind::CustomMnist],
            formats: vec![NumberFormat::Int8Symmetric],
            policies: vec![PolicySpec::None, PolicySpec::Inversion],
            lifetimes_years: vec![7.0],
            backends: Vec::new(),
            dwells: Vec::new(),
            repairs: Vec::new(),
            techs: vec![MemoryTech::SramNbti, MemoryTech::ReramEndurance],
            options: SweepOptions::default(),
        };
        let grid = axes.build("tech-cross");
        assert_eq!(grid.len(), 4);
        let keys: std::collections::BTreeSet<String> =
            grid.scenarios.iter().map(|s| s.content_key()).collect();
        assert_eq!(keys.len(), 4);
        // Tech is a physical coordinate, so the reram twin of a cell
        // draws a different derived seed than its sram sibling.
        for spec in &grid.scenarios {
            let twin = grid
                .scenarios
                .iter()
                .find(|s| s.tech != spec.tech && s.policy == spec.policy)
                .expect("every scenario has a twin on the other tech");
            assert_ne!(spec.seed, twin.seed);
        }
        // And the sram half is byte-identical to a grid that never
        // heard of the axis (pre-axis stores keep their keys).
        let plain = CampaignGrid::named("fig11", SweepOptions::default())
            .expect("fig11 is a built-in campaign name");
        for spec in grid
            .scenarios
            .iter()
            .filter(|s| s.tech == MemoryTech::SramNbti)
        {
            if let Some(other) = plain
                .scenarios
                .iter()
                .find(|s| s.policy == spec.policy && s.network == spec.network)
            {
                assert_eq!(spec.content_key(), other.content_key());
            }
        }
    }

    #[test]
    fn base_seed_changes_every_scenario_seed() {
        let a = CampaignGrid::fig11(SweepOptions::default());
        let b = CampaignGrid::fig11(SweepOptions {
            base_seed: 43,
            ..SweepOptions::default()
        });
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_ne!(x.seed, y.seed);
        }
    }
}
