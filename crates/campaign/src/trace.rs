//! Trace reconstruction: rebuild the hierarchical span forest a
//! campaign journaled (`span_start` / `span_end` events) and render it
//! as a flame-style hot-path table plus a per-campaign critical path.
//!
//! The executor opens one `campaign:{name}` root span per campaign,
//! a `scenario` span per work item, and the backends nest their own
//! work under it (`exact_shard` / `exact_merge` / `analytic_shard` for
//! the simulators, `trial_decode` / `trial_score` for the injector).
//! Every event carries the span's id and its parent's id, so the whole
//! forest reconstructs from the journal alone — including journals
//! appended across `--resume` invocations, because span ids are seeded
//! from the invocation's wall clock.
//!
//! Parsing follows the journal's tolerance contract: unknown event
//! kinds and a missing `"v"` schema-version field are ignored, torn
//! lines are counted in [`Trace::skipped_lines`], and a `span_start`
//! whose parent id never appears is counted as an orphan rather than
//! discarded (it renders as a root).

use std::io::Read;
use std::path::Path;

use serde::{Serialize, Value};

/// One reconstructed span: a labelled interval with an optional parent.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// The journal's span id.
    pub id: u64,
    /// Parent span id; `None` for roots.
    pub parent: Option<u64>,
    /// The span's label (`campaign:fig9`, `scenario`, `exact_shard`, ...).
    pub label: String,
    /// Start time, microseconds since the journal's epoch.
    pub start_us: u64,
    /// End time in microseconds; `None` when the journal holds no
    /// matching `span_end` (crash, or an abort between emit points).
    pub end_us: Option<u64>,
}

impl TraceSpan {
    /// Duration in microseconds; zero-width until ended.
    pub fn duration_us(&self) -> u64 {
        self.end_us
            .map_or(0, |end| end.saturating_sub(self.start_us))
    }
}

/// One row of the aggregated flame table: all spans sharing a label.
#[derive(Debug, Clone, PartialEq)]
pub struct FlameRow {
    /// Span label.
    pub label: String,
    /// How many spans carried it.
    pub count: u64,
    /// Total wall time inside these spans, children included (µs).
    pub cum_us: u64,
    /// Wall time inside these spans minus their children's (µs).
    pub self_us: u64,
}

/// The reconstructed span forest of one journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Every span, in journal order.
    pub spans: Vec<TraceSpan>,
    /// Spans whose `parent` id never appears as a defined span. They
    /// render as roots; a complete journal has zero.
    pub orphans: u64,
    /// Spans with no `span_end` event.
    pub unended: u64,
    /// Journal lines skipped as unparsable.
    pub skipped_lines: u64,
}

fn u64_field(v: &Value, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Value::Number(n)) => (*n).as_u64(),
        _ => None,
    }
}

fn str_field<'v>(v: &'v Value, key: &str) -> Option<&'v str> {
    match v.get(key) {
        Some(Value::String(s)) => Some(s),
        _ => None,
    }
}

/// Parses a journal's text into a [`Trace`], tolerating torn lines and
/// unknown event kinds exactly like `perf::summarize`.
pub fn reconstruct(text: &str) -> Trace {
    let mut out = Trace::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(event) = serde_json::from_str::<Value>(line) else {
            out.skipped_lines += 1;
            continue;
        };
        let Some(kind) = str_field(&event, "ev") else {
            out.skipped_lines += 1;
            continue;
        };
        match kind {
            "span_start" => {
                let (Some(id), Some(label), Some(start_us)) = (
                    u64_field(&event, "span"),
                    str_field(&event, "label"),
                    u64_field(&event, "t_us").or_else(|| {
                        // Fallback for coarser clocks: millisecond
                        // timestamps promote to microseconds.
                        u64_field(&event, "t_ms").map(|ms| ms * 1_000)
                    }),
                ) else {
                    out.skipped_lines += 1;
                    continue;
                };
                out.spans.push(TraceSpan {
                    id,
                    parent: u64_field(&event, "parent"),
                    label: label.to_string(),
                    start_us,
                    end_us: None,
                });
            }
            "span_end" => {
                let (Some(id), Some(end_us)) = (
                    u64_field(&event, "span"),
                    u64_field(&event, "t_us")
                        .or_else(|| u64_field(&event, "t_ms").map(|ms| ms * 1_000)),
                ) else {
                    out.skipped_lines += 1;
                    continue;
                };
                // Ids are unique per invocation; scan from the back so
                // appended re-runs close their own spans first.
                if let Some(span) = out
                    .spans
                    .iter_mut()
                    .rev()
                    .find(|s| s.id == id && s.end_us.is_none())
                {
                    span.end_us = Some(end_us);
                }
            }
            _ => {} // foreign kinds (counters, hist, scenario_done, ...)
        }
    }
    let defined: std::collections::HashSet<u64> = out.spans.iter().map(|s| s.id).collect();
    out.orphans = out
        .spans
        .iter()
        .filter(|s| s.parent.is_some_and(|p| !defined.contains(&p)))
        .count() as u64;
    out.unended = out.spans.iter().filter(|s| s.end_us.is_none()).count() as u64;
    out
}

/// Reads and reconstructs a journal file.
///
/// # Errors
///
/// Propagates I/O errors opening or reading `path`.
pub fn load_trace(path: &Path) -> std::io::Result<Trace> {
    let mut text = String::new();
    std::fs::File::open(path)?.read_to_string(&mut text)?;
    Ok(reconstruct(&text))
}

impl Trace {
    /// Whether the journal defined every referenced parent — the
    /// "complete forest" acceptance criterion.
    pub fn is_complete_forest(&self) -> bool {
        self.orphans == 0
    }

    /// Spans treated as roots: explicit roots plus orphans.
    pub fn roots(&self) -> Vec<&TraceSpan> {
        let defined: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.id).collect();
        self.spans
            .iter()
            .filter(|s| s.parent.is_none_or(|p| !defined.contains(&p)))
            .collect()
    }

    /// The aggregated flame table: per label, span count, cumulative
    /// and self wall time, sorted hottest self-time first.
    pub fn flame_table(&self) -> Vec<FlameRow> {
        // Children's cumulative time charged against each parent id.
        let mut child_us: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for span in &self.spans {
            if let Some(parent) = span.parent {
                *child_us.entry(parent).or_insert(0) += span.duration_us();
            }
        }
        let mut rows: Vec<FlameRow> = Vec::new();
        for span in &self.spans {
            let cum = span.duration_us();
            // A span can report less time than its children sum to
            // (threaded children overlap); self time floors at zero.
            let own = cum.saturating_sub(child_us.get(&span.id).copied().unwrap_or(0));
            match rows.iter_mut().find(|r| r.label == span.label) {
                Some(row) => {
                    row.count += 1;
                    row.cum_us += cum;
                    row.self_us += own;
                }
                None => rows.push(FlameRow {
                    label: span.label.clone(),
                    count: 1,
                    cum_us: cum,
                    self_us: own,
                }),
            }
        }
        rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.label.cmp(&b.label)));
        rows
    }

    /// The critical path of each `campaign:*` root: from the root,
    /// repeatedly descend into the child that finished last, collecting
    /// `(label, duration_us)` hops.
    pub fn critical_paths(&self) -> Vec<(String, Vec<(String, u64)>)> {
        let mut paths = Vec::new();
        for root in self.roots() {
            if !root.label.starts_with("campaign:") {
                continue;
            }
            let mut path = vec![(root.label.clone(), root.duration_us())];
            let mut cursor = root.id;
            loop {
                let last_child = self
                    .spans
                    .iter()
                    .filter(|s| s.parent == Some(cursor))
                    .max_by_key(|s| s.end_us.unwrap_or(s.start_us));
                match last_child {
                    Some(child) => {
                        path.push((child.label.clone(), child.duration_us()));
                        cursor = child.id;
                    }
                    None => break,
                }
            }
            paths.push((root.label.clone(), path));
        }
        paths
    }

    /// Human-readable report: forest health, flame table, critical
    /// paths.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("--- Span forest ---\n");
        out.push_str(&format!(
            "{} span(s), {} root(s), {} orphan(s), {} unended, {} line(s) skipped\n",
            self.spans.len(),
            self.roots().len(),
            self.orphans,
            self.unended,
            self.skipped_lines
        ));

        let flame = self.flame_table();
        if !flame.is_empty() {
            out.push_str("\n--- Hot paths (self time) ---\n");
            out.push_str(&format!(
                "{:<20} {:>8} {:>14} {:>14}\n",
                "label", "count", "self ms", "cum ms"
            ));
            for row in &flame {
                out.push_str(&format!(
                    "{:<20} {:>8} {:>14.1} {:>14.1}\n",
                    row.label,
                    row.count,
                    row.self_us as f64 / 1e3,
                    row.cum_us as f64 / 1e3
                ));
            }
        }

        for (campaign, path) in self.critical_paths() {
            out.push_str(&format!("\n--- Critical path: {campaign} ---\n"));
            for (depth, (label, dur)) in path.iter().enumerate() {
                out.push_str(&format!(
                    "{}{label}  {:.1} ms\n",
                    "  ".repeat(depth),
                    *dur as f64 / 1e3
                ));
            }
        }
        out
    }
}

impl Serialize for Trace {
    fn to_value(&self) -> Value {
        let spans: Vec<Value> = self
            .spans
            .iter()
            .map(|s| {
                let mut pairs = vec![
                    ("id".to_string(), s.id.to_value()),
                    ("label".to_string(), s.label.to_value()),
                    ("start_us".to_string(), s.start_us.to_value()),
                ];
                if let Some(parent) = s.parent {
                    pairs.insert(1, ("parent".to_string(), parent.to_value()));
                }
                if let Some(end) = s.end_us {
                    pairs.push(("end_us".to_string(), end.to_value()));
                }
                Value::Object(pairs)
            })
            .collect();
        let flame: Vec<Value> = self
            .flame_table()
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("label".to_string(), r.label.to_value()),
                    ("count".to_string(), r.count.to_value()),
                    ("self_us".to_string(), r.self_us.to_value()),
                    ("cum_us".to_string(), r.cum_us.to_value()),
                ])
            })
            .collect();
        let critical: Vec<Value> = self
            .critical_paths()
            .iter()
            .map(|(campaign, path)| {
                let hops: Vec<Value> = path
                    .iter()
                    .map(|(label, dur)| {
                        Value::Object(vec![
                            ("label".to_string(), label.to_value()),
                            ("duration_us".to_string(), dur.to_value()),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("campaign".to_string(), campaign.to_value()),
                    ("path".to_string(), Value::Array(hops)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("spans".to_string(), Value::Array(spans)),
            ("orphans".to_string(), self.orphans.to_value()),
            ("unended".to_string(), self.unended.to_value()),
            ("skipped_lines".to_string(), self.skipped_lines.to_value()),
            ("flame".to_string(), Value::Array(flame)),
            ("critical_paths".to_string(), Value::Array(critical)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal() -> String {
        [
            // A campaign with two scenarios; one scenario shards twice
            // and merges, the other never ends (abort). Ids are
            // realistic high-bit values from the wall-clock seed.
            r#"{"ev":"campaign_start","t_ms":0,"name":"fig9","noun":"scenario","pending":2,"workers":2,"budget":2}"#,
            r#"{"ev":"span_start","v":1,"t_ms":0,"span":9000,"label":"campaign:fig9","t_us":100}"#,
            r#"{"ev":"span_start","v":1,"t_ms":1,"span":9001,"parent":9000,"label":"scenario","t_us":200}"#,
            r#"{"ev":"span_start","v":1,"t_ms":1,"span":9002,"parent":9001,"label":"exact_shard","t_us":300}"#,
            r#"{"ev":"span_end","v":1,"t_ms":2,"span":9002,"t_us":1300}"#,
            r#"{"ev":"span_start","v":1,"t_ms":2,"span":9003,"parent":9001,"label":"exact_shard","t_us":1400}"#,
            r#"{"ev":"span_end","v":1,"t_ms":3,"span":9003,"t_us":2400}"#,
            r#"{"ev":"span_start","v":1,"t_ms":3,"span":9004,"parent":9001,"label":"exact_merge","t_us":2500}"#,
            r#"{"ev":"span_end","v":1,"t_ms":3,"span":9004,"t_us":2600}"#,
            r#"{"ev":"span_end","v":1,"t_ms":4,"span":9001,"t_us":2700}"#,
            r#"{"ev":"span_start","v":1,"t_ms":4,"span":9005,"parent":9000,"label":"scenario","t_us":2800}"#,
            r#"{"ev":"span_end","v":1,"t_ms":5,"span":9005,"t_us":5000}"#,
            r#"{"ev":"span_end","v":1,"t_ms":5,"span":9000,"t_us":5100}"#,
            // Journal noise the reconstructor must shrug off.
            r#"{"ev":"counters","t_ms":6,"exact_word_writes":5}"#,
            r#"{"ev":"hologram","v":2,"t_ms":7,"payload":true}"#,
            "torn line that does not pars",
        ]
        .join("\n")
    }

    #[test]
    fn reconstructs_a_complete_forest() {
        let t = reconstruct(&journal());
        assert_eq!(t.spans.len(), 6);
        assert_eq!(t.orphans, 0);
        assert!(t.is_complete_forest());
        assert_eq!(t.unended, 0);
        assert_eq!(t.skipped_lines, 1, "only the torn line");
        assert_eq!(t.roots().len(), 1);
        assert_eq!(t.roots()[0].label, "campaign:fig9");
    }

    #[test]
    fn flame_table_charges_children_against_parents() {
        let t = reconstruct(&journal());
        let flame = t.flame_table();
        let row = |label: &str| flame.iter().find(|r| r.label == label).expect(label);

        // Two shards of 1000us each: all self time.
        assert_eq!(row("exact_shard").count, 2);
        assert_eq!(row("exact_shard").cum_us, 2_000);
        assert_eq!(row("exact_shard").self_us, 2_000);
        // Scenario 9001: 2500us cum, minus 2000 shard + 100 merge.
        // Scenario 9005: 2200us cum, leaf. Totals: 4700 cum, 2600 self.
        assert_eq!(row("scenario").cum_us, 4_700);
        assert_eq!(row("scenario").self_us, 2_600);
        // The campaign root: 5000us cum minus its scenarios' 4700.
        assert_eq!(row("campaign:fig9").self_us, 300);

        // Hottest self-time first.
        assert_eq!(flame[0].label, "scenario");
    }

    #[test]
    fn critical_path_follows_the_last_finisher() {
        let t = reconstruct(&journal());
        let paths = t.critical_paths();
        assert_eq!(paths.len(), 1);
        let (campaign, path) = &paths[0];
        assert_eq!(campaign, "campaign:fig9");
        let labels: Vec<&str> = path.iter().map(|(l, _)| l.as_str()).collect();
        // Scenario 9005 ends last (5000us) → the path descends there.
        assert_eq!(labels, ["campaign:fig9", "scenario"]);
        assert_eq!(path[1].1, 2_200);
    }

    #[test]
    fn orphans_and_unended_spans_are_counted_not_dropped() {
        let text = [
            r#"{"ev":"span_start","v":1,"span":1,"parent":999,"label":"scenario","t_us":10}"#,
            r#"{"ev":"span_start","v":1,"span":2,"label":"campaign:x","t_us":20}"#,
        ]
        .join("\n");
        let t = reconstruct(&text);
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.orphans, 1);
        assert!(!t.is_complete_forest());
        assert_eq!(t.unended, 2);
        // The orphan renders as a root next to the explicit one.
        assert_eq!(t.roots().len(), 2);
        let text = t.render_text();
        assert!(text.contains("1 orphan(s)"), "{text}");
    }

    #[test]
    fn span_end_without_t_us_falls_back_to_t_ms() {
        let text = [
            r#"{"ev":"span_start","span":5,"label":"campaign:y","t_ms":1}"#,
            r#"{"ev":"span_end","span":5,"t_ms":3}"#,
        ]
        .join("\n");
        let t = reconstruct(&text);
        assert_eq!(t.spans[0].start_us, 1_000);
        assert_eq!(t.spans[0].end_us, Some(3_000));
        assert_eq!(t.skipped_lines, 0);
    }

    #[test]
    fn json_rendering_round_trips_and_carries_the_forest() {
        let t = reconstruct(&journal());
        let text = serde_json::to_string(&t.to_value()).expect("serializes");
        let back: Value = serde_json::from_str(&text).expect("round trips");
        assert_eq!(u64_field(&back, "orphans"), Some(0));
        let Some(Value::Array(spans)) = back.get("spans") else {
            panic!("spans array");
        };
        assert_eq!(spans.len(), 6);
        assert_eq!(str_field(&spans[1], "label"), Some("scenario"));
        assert_eq!(u64_field(&spans[1], "parent"), Some(9_000));
        assert!(matches!(back.get("flame"), Some(Value::Array(_))));
        assert!(matches!(back.get("critical_paths"), Some(Value::Array(_))));
    }
}
