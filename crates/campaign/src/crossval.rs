//! Matched analytic↔exact cross-validation over a campaign grid.
//!
//! For every scenario, [`dnnlife_core::cross_validate`] runs the
//! closed-form analytic simulator (uniform dwell — paper assumption
//! (b)) and the event-driven exact simulator (the scenario's dwell
//! model) on the same memory plan with the same derived seed, and
//! reports per-cell duty divergence. Under uniform dwell this is a
//! correctness check of the closed forms; under a non-uniform dwell
//! model the divergence quantifies how much assumption (b) distorts
//! that scenario. This module fans the pairs out across the shared
//! campaign worker pool, keeping results in scenario order.
//!
//! The fan-out honours the campaign cancellation token: a raised token
//! (the CLI's Ctrl-C handler) aborts in-flight pairs *mid-scenario* —
//! the exact side polls the flag at block granularity — instead of
//! letting a minutes-long pair run to completion first.

use std::sync::atomic::{AtomicBool, Ordering};

use dnnlife_core::{cross_validate_with, CrossValidation, ExperimentSpec, RunOptions, ShardPolicy};
use dnnlife_telemetry::Instrumentation;

use crate::executor::{execute_shared_pool, requested_threads};

/// Runs [`dnnlife_core::cross_validate`] for every scenario on
/// `threads` workers (0 = all cores), returning results in scenario
/// order.
pub fn validate_scenarios(scenarios: &[ExperimentSpec], threads: usize) -> Vec<CrossValidation> {
    validate_scenarios_sharded(scenarios, threads, ShardPolicy::Auto)
}

/// [`validate_scenarios`] with an explicit exact-backend shard policy
/// (`dnnlife validate --shards`). The documented tolerances hold for
/// every shard count, so the nightly tier runs this at `--shards 4` to
/// keep the sharded exact path under the same contract as the serial
/// one.
pub fn validate_scenarios_sharded(
    scenarios: &[ExperimentSpec],
    threads: usize,
    shards: ShardPolicy,
) -> Vec<CrossValidation> {
    validate_scenarios_cancellable(scenarios, threads, shards, None)
        .expect("run without a cancel token cannot be cancelled")
}

/// [`validate_scenarios_sharded`] under an external cancellation
/// token: returns `None` iff `cancel` was raised before every pair
/// finished. Completed pairs are discarded in that case — a
/// cross-validation report is only meaningful over the whole grid.
pub fn validate_scenarios_cancellable(
    scenarios: &[ExperimentSpec],
    threads: usize,
    shards: ShardPolicy,
    cancel: Option<&AtomicBool>,
) -> Option<Vec<CrossValidation>> {
    validate_scenarios_instrumented(
        scenarios,
        threads,
        shards,
        cancel,
        Instrumentation::default(),
    )
}

/// [`validate_scenarios_cancellable`] with an observability sink: the
/// analytic/exact simulator counters of every pair accumulate into
/// `instr.telemetry`, and each finished pair ticks `instr.progress`.
/// Never semantic.
pub fn validate_scenarios_instrumented(
    scenarios: &[ExperimentSpec],
    threads: usize,
    shards: ShardPolicy,
    cancel: Option<&AtomicBool>,
    instr: Instrumentation<'_>,
) -> Option<Vec<CrossValidation>> {
    let budget = requested_threads(threads);
    if let Some(progress) = instr.progress {
        progress.set_total(scenarios.len());
    }
    let mut slots: Vec<Option<CrossValidation>> = vec![None; scenarios.len()];
    execute_shared_pool(
        scenarios,
        budget,
        cancel,
        // Each pair runs single-threaded internally (matched pairs are
        // plentiful on real grids); the pool-level fan-out is the
        // parallelism. The shared flag still reaches the exact
        // simulator through `cross_validate_with`'s cancel option.
        |spec, _index, _threads, cancel| {
            let opts = RunOptions {
                threads: 1,
                shards,
                cancel: Some(cancel),
                telemetry: instr.telemetry,
                ..RunOptions::default()
            };
            cross_validate_with(spec, &opts)
        },
        |index, cv| {
            slots[index] = Some(cv);
            instr.tick();
            true
        },
    );
    if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
        return None;
    }
    Some(
        slots
            .into_iter()
            .map(|slot| slot.expect("every scenario validated"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{CampaignGrid, SweepOptions};
    use dnnlife_core::SimulatorBackend;

    #[test]
    fn validate_preserves_scenario_order_and_tolerances() {
        let grid = CampaignGrid::fig11(SweepOptions {
            sample_stride: 1024,
            inferences: 8,
            backend: SimulatorBackend::Exact,
            ..SweepOptions::default()
        });
        let subset: Vec<_> = grid.scenarios.into_iter().take(4).collect();
        let results = validate_scenarios(&subset, 2);
        assert_eq!(results.len(), subset.len());
        for (spec, cv) in subset.iter().zip(&results) {
            assert!(cv.label.contains(spec.network.display_name()));
            assert!(cv.within_tolerance(), "{}: {cv:?}", cv.label);
        }
    }

    #[test]
    fn pre_raised_cancel_aborts_validation_promptly() {
        // Scenario pairs whose exact side would run for minutes; a
        // pre-raised token must return None near-instantly.
        let grid = CampaignGrid::fig11(SweepOptions {
            sample_stride: 4,
            inferences: 50_000,
            backend: SimulatorBackend::Exact,
            ..SweepOptions::default()
        });
        let flag = AtomicBool::new(true);
        let started = std::time::Instant::now();
        let result =
            validate_scenarios_cancellable(&grid.scenarios, 2, ShardPolicy::Auto, Some(&flag));
        assert!(result.is_none());
        assert!(
            started.elapsed().as_secs() < 30,
            "cancelled validation took {:?}",
            started.elapsed()
        );
    }
}
