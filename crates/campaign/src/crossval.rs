//! Matched analytic↔exact cross-validation over a campaign grid.
//!
//! For every scenario, [`dnnlife_core::cross_validate`] runs the
//! closed-form analytic simulator (uniform dwell — paper assumption
//! (b)) and the event-driven exact simulator (the scenario's dwell
//! model) on the same memory plan with the same derived seed, and
//! reports per-cell duty divergence. Under uniform dwell this is a
//! correctness check of the closed forms; under a non-uniform dwell
//! model the divergence quantifies how much assumption (b) distorts
//! that scenario. This module fans the pairs out across a worker pool
//! (same shape as the sweep executor) while keeping results in
//! scenario order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use dnnlife_core::{cross_validate_sharded, CrossValidation, ExperimentSpec, ShardPolicy};

/// Runs [`dnnlife_core::cross_validate`] for every scenario on
/// `threads` workers (0 = all cores), returning results in scenario
/// order.
pub fn validate_scenarios(scenarios: &[ExperimentSpec], threads: usize) -> Vec<CrossValidation> {
    validate_scenarios_sharded(scenarios, threads, ShardPolicy::Auto)
}

/// [`validate_scenarios`] with an explicit exact-backend shard policy
/// (`dnnlife validate --shards`). The documented tolerances hold for
/// every shard count, so the nightly tier runs this at `--shards 4` to
/// keep the sharded exact path under the same contract as the serial
/// one.
pub fn validate_scenarios_sharded(
    scenarios: &[ExperimentSpec],
    threads: usize,
    shards: ShardPolicy,
) -> Vec<CrossValidation> {
    let threads = crate::executor::effective_threads(threads, scenarios.len());

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, CrossValidation)>();
    let mut slots: Vec<Option<CrossValidation>> = vec![None; scenarios.len()];
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = scenarios.get(slot) else {
                    break;
                };
                if tx
                    .send((slot, cross_validate_sharded(spec, shards)))
                    .is_err()
                {
                    break;
                }
            });
        }
        drop(tx);
        for (index, cv) in rx {
            slots[index] = Some(cv);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every scenario validated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{CampaignGrid, SweepOptions};
    use dnnlife_core::SimulatorBackend;

    #[test]
    fn validate_preserves_scenario_order_and_tolerances() {
        let grid = CampaignGrid::fig11(SweepOptions {
            sample_stride: 1024,
            inferences: 8,
            backend: SimulatorBackend::Exact,
            ..SweepOptions::default()
        });
        let subset: Vec<_> = grid.scenarios.into_iter().take(4).collect();
        let results = validate_scenarios(&subset, 2);
        assert_eq!(results.len(), subset.len());
        for (spec, cv) in subset.iter().zip(&results) {
            assert!(cv.label.contains(spec.network.display_name()));
            assert!(cv.within_tolerance(), "{}: {cv:?}", cv.label);
        }
    }
}
