//! Resumable on-disk result stores.
//!
//! One campaign = one JSONL file: each line is a record keyed by its
//! spec's content hash. The store machinery is generic over the record
//! type ([`JsonlStore`]): the scenario sweep engine stores
//! [`ScenarioRecord`]s ([`ResultStore`]) and the fault-injection
//! engine stores `InjectionRecord`s, both under the same journaling,
//! crash-recovery and finalize-ordering contract. A store is written
//! twice over a campaign's life:
//!
//! 1. **Journal phase** — the executor appends each record as it
//!    completes (and flushes), so an interrupted sweep loses at most
//!    the in-flight scenarios. A torn final line from a crash is
//!    detected on open and truncated away before the next append.
//! 2. **Finalize phase** — once every scenario is done the file is
//!    rewritten atomically (temp file + rename) in canonical grid
//!    order. Scenario results are themselves deterministic, so the
//!    finalized store is byte-identical no matter how many worker
//!    threads ran or how work interleaved — and identical between a
//!    clean run and an interrupted-then-resumed one.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dnnlife_core::experiment::PolicySpec;
use dnnlife_core::{ExperimentResult, ExperimentSpec, ShardPolicy, SimulatorBackend};
use serde::{Deserialize, Serialize};

/// What a record type must provide to live in a [`JsonlStore`]: a
/// stored key and a way to recompute it from the record's content, so
/// a record whose spec was edited (or written by a binary with a
/// different hash scheme) can't silently satisfy a pending scenario.
pub trait StoreRecord: Serialize + Deserialize + Clone {
    /// The key the record was stored under.
    fn key(&self) -> &str;
    /// The key recomputed from the record's content.
    fn computed_key(&self) -> String;
}

/// One completed scenario: the spec, its store key, and the result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// [`ExperimentSpec::content_key`] of `spec` (stored redundantly so
    /// tools can filter lines without re-hashing).
    pub key: String,
    /// The scenario that ran.
    pub spec: ExperimentSpec,
    /// What it produced.
    pub result: ExperimentResult,
    /// The word-shard policy the result was computed under — recorded
    /// **only** for shard-sensitive scenarios (exact backend ×
    /// stochastic DNN-Life policy, where the shard count selects the
    /// TRBG stream assignment), `None` everywhere else. Resume compares
    /// this against the running sweep's policy and re-runs mismatches
    /// instead of silently mixing two stream-deals in one store.
    pub shards: Option<String>,
}

impl ScenarioRecord {
    /// Builds a record, deriving the key from the spec (no shard
    /// annotation — see [`ScenarioRecord::annotated`]).
    pub fn new(spec: ExperimentSpec, result: ExperimentResult) -> Self {
        Self {
            key: spec.content_key(),
            spec,
            result,
            shards: None,
        }
    }

    /// [`ScenarioRecord::new`] with the shard annotation the executor
    /// stores: [`shard_annotation`] of the spec under `shards`.
    pub fn annotated(spec: ExperimentSpec, result: ExperimentResult, shards: ShardPolicy) -> Self {
        let annotation = shard_annotation(&spec, shards);
        Self {
            shards: annotation,
            ..Self::new(spec, result)
        }
    }
}

impl StoreRecord for ScenarioRecord {
    fn key(&self) -> &str {
        &self.key
    }

    fn computed_key(&self) -> String {
        self.spec.content_key()
    }
}

/// The shard annotation a record of `spec` carries when swept under
/// `shards`: the policy's display name iff the scenario is
/// shard-sensitive (exact backend × DNN-Life — different shard counts
/// deal different TRBG streams), `None` otherwise (deterministic
/// policies and the analytic backend are bit-identical at every shard
/// count, so annotating them would only break store byte-identity
/// across `--shards` values).
pub fn shard_annotation(spec: &ExperimentSpec, shards: ShardPolicy) -> Option<String> {
    (spec.backend == SimulatorBackend::Exact && matches!(spec.policy, PolicySpec::DnnLife { .. }))
        .then(|| shards.display_name())
}

// Hand-rolled (de)serialization, mirroring `ExperimentSpec`'s pattern:
// the `shards` annotation is omitted when `None`, so records of
// shard-insensitive scenarios keep the exact bytes (and parseability)
// they had before the field existed.
impl Serialize for ScenarioRecord {
    fn to_value(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("key".to_string(), self.key.to_value()),
            ("spec".to_string(), self.spec.to_value()),
            ("result".to_string(), self.result.to_value()),
        ];
        if let Some(shards) = &self.shards {
            fields.push(("shards".to_string(), shards.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ScenarioRecord {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let pairs = value.as_object_named("ScenarioRecord")?;
        let shards = pairs
            .iter()
            .find(|(key, _)| key == "shards")
            .map(|(_, v)| String::from_value(v))
            .transpose()?;
        Ok(ScenarioRecord {
            key: serde::field(pairs, "key")?,
            spec: serde::field(pairs, "spec")?,
            result: serde::field(pairs, "result")?,
            shards,
        })
    }
}

/// A JSONL record store bound to one file path, generic over the
/// record type.
#[derive(Debug)]
pub struct JsonlStore<R> {
    path: PathBuf,
    records: BTreeMap<String, R>,
    /// Byte length of the valid prefix of the file on open (a torn
    /// final line is cut off before the first append).
    valid_len: u64,
    writer: Option<BufWriter<File>>,
}

/// The scenario-sweep store (`dnnlife sweep` / `report` / `compare`).
pub type ResultStore = JsonlStore<ScenarioRecord>;

impl<R: StoreRecord> JsonlStore<R> {
    /// Opens (or creates the notion of) a store at `path`, loading any
    /// records already on disk. A torn final line — the signature of a
    /// killed journal append — is ignored and later truncated; corrupt
    /// content anywhere else is an error.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let mut records = BTreeMap::new();
        let mut valid_len = 0u64;
        if path.exists() {
            let mut text = String::new();
            File::open(&path)?.read_to_string(&mut text)?;
            let mut offset = 0usize;
            for (i, line) in text.split_inclusive('\n').enumerate() {
                let trimmed = line.trim_end_matches('\n');
                match serde_json::from_str::<R>(trimmed) {
                    Ok(record) if line.ends_with('\n') => {
                        // The key is stored redundantly; verify it so a
                        // record whose spec was edited (or written by a
                        // binary with a different hash scheme) can't
                        // silently satisfy a pending scenario.
                        if record.key() != record.computed_key() {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!(
                                    "{}: record on line {} has key {} but its spec hashes to {}",
                                    path.display(),
                                    i + 1,
                                    record.key(),
                                    record.computed_key()
                                ),
                            ));
                        }
                        offset += line.len();
                        records.insert(record.key().to_string(), record);
                    }
                    Ok(_) | Err(_) if offset + line.len() == text.len() => {
                        // Unterminated or unparsable final line: torn
                        // journal append. Drop it.
                        break;
                    }
                    Ok(_) => unreachable!("split_inclusive: only the last line lacks \\n"),
                    Err(e) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("{}: corrupt record on line {}: {e}", path.display(), i + 1),
                        ));
                    }
                }
            }
            valid_len = offset as u64;
        }
        Ok(Self {
            path,
            records,
            valid_len,
            writer: None,
        })
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of stored scenarios.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether a scenario is already stored.
    pub fn contains(&self, key: &str) -> bool {
        self.records.contains_key(key)
    }

    /// Looks up a scenario by key.
    pub fn get(&self, key: &str) -> Option<&R> {
        self.records.get(key)
    }

    /// All records, in key order.
    pub fn records(&self) -> impl Iterator<Item = &R> {
        self.records.values()
    }

    /// Appends one record to the journal and flushes it to disk.
    pub fn append(&mut self, record: R) -> std::io::Result<()> {
        if self.writer.is_none() {
            if let Some(parent) = self.path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            // Not `truncate(true)`: existing journaled records must
            // survive. `set_len` below cuts only a torn final line.
            let file = OpenOptions::new()
                .create(true)
                .truncate(false)
                .write(true)
                .open(&self.path)?;
            file.set_len(self.valid_len)?;
            let mut writer = BufWriter::new(file);
            writer.seek(SeekFrom::End(0))?;
            self.writer = Some(writer);
        }
        let writer = self.writer.as_mut().expect("writer just initialised");
        let line = serde_json::to_string(&record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        self.valid_len += line.len() as u64 + 1;
        self.records.insert(record.key().to_string(), record);
        Ok(())
    }

    /// Keys held by the store that are not in `keys` — records left
    /// over from a sweep with different parameters (seed, stride,
    /// grid). The executor reports these before [`JsonlStore::finalize`]
    /// drops them.
    pub fn stale_keys(&self, keys: &[String]) -> Vec<String> {
        let keep: std::collections::BTreeSet<&String> = keys.iter().collect();
        self.records
            .keys()
            .filter(|k| !keep.contains(k))
            .cloned()
            .collect()
    }

    /// Atomically rewrites the file with exactly the stored records
    /// named by `order`, in that order; everything else (stale records
    /// from a sweep with different parameters) is dropped from both
    /// the file and memory. This is what makes a finished store a pure
    /// function of the grid — byte-identical across thread counts,
    /// interruptions and parameter changes.
    pub fn finalize(&mut self, order: &[String]) -> std::io::Result<()> {
        self.writer = None;
        let tmp_path = self.path.with_extension("jsonl.tmp");
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        {
            let mut writer = BufWriter::new(File::create(&tmp_path)?);
            let mut written = std::collections::BTreeSet::new();
            for key in order {
                if let Some(record) = self.records.get(key) {
                    if written.insert(key.clone()) {
                        write_line(&mut writer, record)?;
                    }
                }
            }
            writer.flush()?;
            self.records.retain(|key, _| written.contains(key));
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.valid_len = std::fs::metadata(&self.path)?.len();
        Ok(())
    }
}

/// Advisory inter-process lock guarding a store file's write phase.
///
/// Two sweeps journaling into the same path would interleave positioned
/// writes and corrupt the file mid-line — an unrecoverable state (only
/// torn *tails* are recoverable). The lock is an OS advisory lock
/// (`File::try_lock`) on a `<store>.lock` sibling file, so the kernel
/// releases it the instant the holder exits — a sweep killed with
/// SIGKILL leaves no stale lock and the documented kill-then-`--resume`
/// flow needs no manual cleanup, and there is no check-then-remove
/// window for two processes to race through. The holder's PID is
/// written into the file purely for the contention error message; the
/// (unlocked) file itself is deliberately left on disk on drop, since
/// unlinking it would detach the inode future contenders lock against.
#[derive(Debug)]
pub struct StoreLock {
    /// Held open for the lock's lifetime; the OS lock dies with it.
    _file: File,
}

impl StoreLock {
    /// Acquires the lock for `store_path`, erroring if another live
    /// process holds it.
    pub fn acquire(store_path: &Path) -> std::io::Result<Self> {
        let path = PathBuf::from(format!("{}.lock", store_path.display()));
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => {
                file.set_len(0)?;
                let _ = write!(file, "{}", std::process::id());
                let _ = file.flush();
                Ok(Self { _file: file })
            }
            Err(std::fs::TryLockError::WouldBlock) => {
                let mut holder = String::new();
                let _ = file.read_to_string(&mut holder);
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    format!(
                        "store {} is locked by a running sweep (pid {}); wait for it to finish",
                        store_path.display(),
                        holder.trim()
                    ),
                ))
            }
            Err(std::fs::TryLockError::Error(e)) => Err(e),
        }
    }
}

fn write_line<R: Serialize>(writer: &mut BufWriter<File>, record: &R) -> std::io::Result<()> {
    let line = serde_json::to_string(record)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")
}
