//! Aggregation: folds per-scenario records into paper-figure tables.
//!
//! Consumes a [`ResultStore`] and renders the Fig. 9 / Fig. 11 summary
//! grids, the beyond-paper bias- and counter-width-sensitivity tables
//! (as text and as `core::report::to_csv` CSV), per-scenario detail via
//! [`dnnlife_core::report::render_experiment`], and store-vs-store
//! comparisons.

use dnnlife_core::experiment::{fig11_policies, fig9_policies, NetworkKind, Platform, PolicySpec};
use dnnlife_core::report::{render_experiment, to_csv};
use dnnlife_quant::NumberFormat;
use serde::Serialize;

use crate::store::{ResultStore, ScenarioRecord};

/// Tolerance (percentage points of SNM degradation) for the
/// "near-optimal cells" column, matching §V-B's "all cells at 10.8 %".
pub const NEAR_OPTIMAL_TOL: f64 = 0.5;

fn policy_rank(policies: &[PolicySpec], policy: &PolicySpec) -> usize {
    policies
        .iter()
        .position(|p| p == policy)
        .unwrap_or(policies.len())
}

/// Policy label plus a lifetime qualifier when the scenario deviates
/// from the paper's 7-year horizon (full-grid stores mix lifetimes),
/// plus the backend/dwell qualifier for off-default axes — so a store
/// mixing analytic and exact records never renders two identical rows
/// with different numbers.
fn policy_label(record: &ScenarioRecord) -> String {
    let mut label = record.spec.policy.display_name();
    if record.spec.years != 7.0 {
        label.push_str(&format!(" @ {} years", record.spec.years));
    }
    label.push_str(&record.spec.variant_suffix());
    label
}

fn row(label: &str, record: &ScenarioRecord) -> String {
    format!(
        "  {label:<44} mean={:>6.2}%  worst={:>6.2}%  near-opt={:>6.2}%  cells={}\n",
        record.result.snm.mean(),
        record.result.snm.max(),
        record.result.percent_near_optimal(NEAR_OPTIMAL_TOL),
        record.result.cells,
    )
}

/// Renders the Fig. 9 summary grid (baseline accelerator, AlexNet:
/// format × policy) from stored records. Empty when the store holds no
/// matching scenarios, so `report --table all` doesn't print a header
/// implying the figure was computed and came out blank.
pub fn fig9_table(store: &ResultStore) -> String {
    let mut out = String::new();
    let policies = fig9_policies();
    for format in NumberFormat::all() {
        let mut records: Vec<&ScenarioRecord> = store
            .records()
            .filter(|r| {
                r.spec.platform == Platform::Baseline
                    && r.spec.network == NetworkKind::Alexnet
                    && r.spec.format == format
            })
            .collect();
        if records.is_empty() {
            continue;
        }
        records.sort_by(|a, b| {
            policy_rank(&policies, &a.spec.policy)
                .cmp(&policy_rank(&policies, &b.spec.policy))
                .then(a.spec.years.total_cmp(&b.spec.years))
        });
        if out.is_empty() {
            out.push_str("=== Fig. 9: baseline accelerator, AlexNet, 7 years ===\n");
        }
        out.push_str(&format!("-- {format} --\n"));
        for record in records {
            out.push_str(&row(&policy_label(record), record));
        }
    }
    out
}

/// Renders the Fig. 11 summary grid (TPU-like NPU: network × policy)
/// from stored records. Empty when nothing matches (see
/// [`fig9_table`]).
pub fn fig11_table(store: &ResultStore) -> String {
    let mut out = String::new();
    let policies = fig11_policies();
    // The figure is defined on 8-bit *symmetric* weights; asymmetric
    // NPU records from a full-grid store would render as duplicate
    // identically-labeled rows, so they are excluded (use `detail` or
    // `compare` to inspect them).
    let in_figure = |r: &&ScenarioRecord| {
        r.spec.platform == Platform::TpuLike && r.spec.format == NumberFormat::Int8Symmetric
    };
    let mut networks: Vec<_> = store
        .records()
        .filter(in_figure)
        .map(|r| r.spec.network)
        .collect();
    networks.sort_by_key(|n| n.display_name().to_string());
    networks.dedup();
    for network in networks {
        let mut records: Vec<&ScenarioRecord> = store
            .records()
            .filter(|r| in_figure(r) && r.spec.network == network)
            .collect();
        records.sort_by(|a, b| {
            policy_rank(&policies, &a.spec.policy)
                .cmp(&policy_rank(&policies, &b.spec.policy))
                .then(a.spec.years.total_cmp(&b.spec.years))
        });
        if records.is_empty() {
            continue;
        }
        if out.is_empty() {
            out.push_str("=== Fig. 11: TPU-like NPU, 8-bit symmetric, 7 years ===\n");
        }
        out.push_str(&format!("-- {} --\n", network.display_name()));
        for record in records {
            out.push_str(&row(&policy_label(record), record));
        }
    }
    out
}

/// Scenario context beyond the swept policy axis. Sensitivity tables
/// qualify their row labels with this when a store mixes contexts
/// (e.g. `report --table all` over a fig9 store, where the same
/// DnnLife policy ran on three number formats), so rows that differ
/// by platform/network/format/lifetime are never rendered identical.
fn context_label(record: &ScenarioRecord) -> String {
    format!(
        "{:?}/{}/{}/{}y{}",
        record.spec.platform,
        record.spec.network.display_name(),
        record.spec.format,
        record.spec.years,
        record.spec.variant_suffix()
    )
}

fn contexts_are_mixed(records: &[&ScenarioRecord]) -> bool {
    let mut contexts = records.iter().map(|r| context_label(r));
    match contexts.next() {
        Some(first) => contexts.any(|c| c != first),
        None => false,
    }
}

/// Bias-sensitivity table (beyond the paper): mean and worst SNM
/// degradation vs TRBG bias, with and without bias balancing. Returns
/// `(text table, CSV)`.
pub fn bias_sensitivity(store: &ResultStore) -> (String, String) {
    let mut points: Vec<(f64, bool, u32, &ScenarioRecord)> = store
        .records()
        .filter_map(|r| match r.spec.policy {
            PolicySpec::DnnLife {
                bias,
                bias_balancing,
                m_bits,
            } => Some((bias, bias_balancing, m_bits, r)),
            _ => None,
        })
        .collect();
    if points.is_empty() {
        return (String::new(), String::new());
    }
    points.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
            .then_with(|| context_label(a.3).cmp(&context_label(b.3)))
    });
    let mixed = contexts_are_mixed(&points.iter().map(|(_, _, _, r)| *r).collect::<Vec<_>>());
    // The non-swept policy parameter: qualify rows with it when the
    // store varies it (e.g. `--table bias` over an mbits-sweep store),
    // so rows never render identical with different numbers.
    let m_mixed = points.iter().any(|(_, _, m, _)| *m != points[0].2);

    let mut out = String::from("=== Bias sensitivity: SNM degradation vs TRBG bias ===\n");
    let mut rows = Vec::new();
    for (bias, balancing, m_bits, record) in &points {
        let mut label = format!(
            "bias={bias:.2} {}",
            if *balancing {
                "with balancing"
            } else {
                "without balancing"
            }
        );
        if m_mixed {
            label.push_str(&format!(", M={m_bits}"));
        }
        if mixed {
            label.push_str(&format!(" [{}]", context_label(record)));
        }
        out.push_str(&row(&label, record));
        rows.push(vec![
            *bias,
            f64::from(u8::from(*balancing)),
            f64::from(*m_bits),
            record.result.snm.mean(),
            record.result.snm.max(),
            record.result.percent_near_optimal(NEAR_OPTIMAL_TOL),
        ]);
    }
    let csv = to_csv(
        &[
            "bias",
            "bias_balancing",
            "m_bits",
            "mean_snm_pct",
            "worst_snm_pct",
            "near_optimal_pct",
        ],
        &rows,
    );
    (out, csv)
}

/// Counter-width sensitivity table (beyond the paper): SNM degradation
/// vs the M-bit bias-balancing register width. Returns `(text, CSV)`.
pub fn mbits_sensitivity(store: &ResultStore) -> (String, String) {
    let mut points: Vec<(u32, f64, &ScenarioRecord)> = store
        .records()
        .filter_map(|r| match r.spec.policy {
            PolicySpec::DnnLife {
                m_bits,
                bias,
                bias_balancing: true,
            } => Some((m_bits, bias, r)),
            _ => None,
        })
        .collect();
    if points.is_empty() {
        return (String::new(), String::new());
    }
    points.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.1.total_cmp(&b.1))
            .then_with(|| context_label(a.2).cmp(&context_label(b.2)))
    });
    let mixed = contexts_are_mixed(&points.iter().map(|(_, _, r)| *r).collect::<Vec<_>>());
    // Non-swept policy parameter (see bias_sensitivity).
    let bias_mixed = points.iter().any(|(_, b, _)| *b != points[0].1);

    let mut out =
        String::from("=== Counter-width sensitivity: SNM degradation vs M-bit register ===\n");
    let mut rows = Vec::new();
    for (m_bits, bias, record) in &points {
        let mut label = format!("M = {m_bits} bits");
        if bias_mixed {
            label.push_str(&format!(", bias={bias:.2}"));
        }
        if mixed {
            label.push_str(&format!(" [{}]", context_label(record)));
        }
        out.push_str(&row(&label, record));
        rows.push(vec![
            f64::from(*m_bits),
            *bias,
            record.result.snm.mean(),
            record.result.snm.max(),
            record.result.percent_near_optimal(NEAR_OPTIMAL_TOL),
        ]);
    }
    let csv = to_csv(
        &[
            "m_bits",
            "bias",
            "mean_snm_pct",
            "worst_snm_pct",
            "near_optimal_pct",
        ],
        &rows,
    );
    (out, csv)
}

/// Full per-scenario detail: every stored record rendered with the
/// core report (label, duty/SNM summaries, degradation histogram).
pub fn detail(store: &ResultStore) -> String {
    let mut out = String::new();
    for record in store.records() {
        out.push_str(&render_experiment(&record.result));
        out.push('\n');
    }
    out
}

/// Renders the per-scenario cross-validation report of
/// `dnnlife validate`: max/mean per-cell duty divergence between the
/// matched analytic (uniform-dwell) and exact (requested-dwell) runs,
/// with a verdict column. Under uniform dwell the verdict applies the
/// documented tolerances
/// ([`dnnlife_core::experiment::CROSSVAL_DETERMINISTIC_TOL`] per cell
/// for deterministic policies,
/// [`dnnlife_core::experiment::CROSSVAL_STOCHASTIC_MEAN_TOL`] on the
/// mean for DNN-Life); under a non-uniform dwell model the divergence
/// *measures* paper assumption (b)'s error, so rows are informational.
pub fn crossval_table(results: &[dnnlife_core::CrossValidation]) -> String {
    let mut out =
        String::from("=== Cross-validation: per-cell duty divergence, exact vs analytic ===\n");
    for cv in results {
        let verdict = if !cv.uniform_dwell {
            "assumption-(b) gap"
        } else if cv.within_tolerance() {
            "OK"
        } else {
            "FAIL"
        };
        out.push_str(&format!(
            "  {:<64} max|Δ|={:.3e}  mean|Δ|={:.3e}  mean(a)={:.4}  mean(e)={:.4}  cells={}  [{}{}]\n",
            cv.label,
            cv.max_abs_duty,
            cv.mean_abs_duty,
            cv.mean_duty_analytic,
            cv.mean_duty_exact,
            cv.cells,
            if cv.stochastic { "stochastic, " } else { "" },
            verdict,
        ));
    }
    out
}

/// Compares two stores scenario-by-scenario, matched on the seed-
/// independent coordinate key (so sweeps differing only in `--seed`
/// line up, and an exact-backend store lines up against its analytic
/// twin): reports the mean-SNM delta for shared scenarios and counts
/// the scenarios unique to either side.
///
/// A coordinate can hold *two* records in one store — the analytic and
/// exact twins of a mixed-backend grid — so matching prefers the
/// same-backend record and falls back to a cross-backend match only
/// when it is unambiguous; each B record is consumed by at most one A
/// record.
pub fn compare_stores(a: &ResultStore, b: &ResultStore) -> String {
    let cmp = compare_store_records(a, b);
    let mut out = String::from("=== Store comparison (B − A, mean SNM degradation) ===\n");
    for (label, delta) in &cmp.rows {
        out.push_str(&format!("  {label:<60} {delta:>+8.3} pp\n"));
    }
    out.push_str(&format!(
        "  shared={} only-in-A={} only-in-B={}\n",
        cmp.shared, cmp.only_a, cmp.only_b
    ));
    out
}

/// The machine-readable [`compare_stores`] (`dnnlife compare --json`).
pub fn compare_stores_json(a: &ResultStore, b: &ResultStore) -> serde::Value {
    let cmp = compare_store_records(a, b);
    let rows: Vec<serde::Value> = cmp
        .rows
        .iter()
        .map(|(label, delta)| {
            serde::Value::Object(vec![
                ("label".to_string(), label.to_value()),
                ("delta_pp".to_string(), delta.to_value()),
            ])
        })
        .collect();
    serde::Value::Object(vec![
        ("shared".to_string(), (cmp.shared as u64).to_value()),
        ("only_in_a".to_string(), (cmp.only_a as u64).to_value()),
        ("only_in_b".to_string(), (cmp.only_b as u64).to_value()),
        ("rows".to_string(), serde::Value::Array(rows)),
    ])
}

/// The matched-pair deltas behind [`compare_stores`] /
/// [`compare_stores_json`].
pub struct StoreComparison {
    /// `(label, B − A mean SNM degradation in percentage points)` per
    /// matched pair, in A's store order.
    pub rows: Vec<(String, f64)>,
    /// Matched pairs.
    pub shared: usize,
    /// A records with no B match.
    pub only_a: usize,
    /// B records with no A match.
    pub only_b: usize,
}

/// Matches each A record against B (same-backend pairs first, then
/// unambiguous cross-backend fallbacks) and computes the per-pair
/// degradation deltas.
pub fn compare_store_records(a: &ResultStore, b: &ResultStore) -> StoreComparison {
    let mut by_coords: std::collections::BTreeMap<String, Vec<&ScenarioRecord>> =
        std::collections::BTreeMap::new();
    for record in b.records() {
        by_coords
            .entry(record.spec.coordinate_key())
            .or_default()
            .push(record);
    }
    // Two matching passes so a cross-backend fallback can never steal
    // the B record that another A record matches exactly: first claim
    // every same-backend pair, then let still-unmatched A records take
    // a remaining candidate when it is unambiguous.
    let mut matched_b: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut picks: std::collections::BTreeMap<String, &ScenarioRecord> =
        std::collections::BTreeMap::new();
    for record in a.records() {
        let candidates = by_coords
            .get(&record.spec.coordinate_key())
            .map(Vec::as_slice)
            .unwrap_or_default();
        if let Some(other) = candidates
            .iter()
            .copied()
            .find(|r| r.spec.backend == record.spec.backend && !matched_b.contains(&r.key))
        {
            matched_b.insert(other.key.clone());
            picks.insert(record.key.clone(), other);
        }
    }
    for record in a.records() {
        if picks.contains_key(&record.key) {
            continue;
        }
        let available: Vec<&ScenarioRecord> = by_coords
            .get(&record.spec.coordinate_key())
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .copied()
            .filter(|r| !matched_b.contains(&r.key))
            .collect();
        if let [other] = available[..] {
            matched_b.insert(other.key.clone());
            picks.insert(record.key.clone(), other);
        }
    }

    let mut rows = Vec::new();
    let mut only_a = 0usize;
    for record in a.records() {
        match picks.get(&record.key) {
            Some(other) => {
                let delta = other.result.snm.mean() - record.result.snm.mean();
                rows.push((record.result.label.clone(), delta));
            }
            None => only_a += 1,
        }
    }
    let only_b = b.records().filter(|r| !matched_b.contains(&r.key)).count();
    StoreComparison {
        shared: rows.len(),
        rows,
        only_a,
        only_b,
    }
}
