//! Fault-injection campaigns: accuracy-vs-age sweeps over mitigation
//! policies.
//!
//! A [`InjectionGrid`] is the companion grid to a scenario sweep: one
//! platform × network × format cell crossed with a policy list, each
//! cell carrying the shared injection parameters (age checkpoints,
//! trials, training recipe, read-noise operating point). The campaign
//! executor fans the cells over the shared two-level worker pool —
//! spare threads go to each in-flight injection's duty simulation and
//! trial fan-out — journals every completed cell to a resumable
//! [`InjectionStore`] keyed by the spec's content hash, and finalizes
//! the store in grid order, so finished stores are byte-identical for
//! any thread count, exactly like scenario sweeps.

use std::sync::atomic::AtomicBool;

use dnnlife_core::experiment::{NetworkKind, Platform, PolicySpec};
use dnnlife_core::{
    DwellModel, ExperimentSpec, FaultInjectionSpec, MemoryTech, RepairPolicy, SimulatorBackend,
};
use dnnlife_faultsim::{run_injection, InjectOptions, InjectionResult};
use dnnlife_quant::NumberFormat;
use dnnlife_telemetry::Instrumentation;
use serde::{Deserialize, Serialize};

use crate::executor::{effective_threads, journal_into_store, requested_threads};
use crate::store::{JsonlStore, StoreLock, StoreRecord};

/// One completed injection cell: the spec, its store key, the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// [`FaultInjectionSpec::content_key`] of `spec`.
    pub key: String,
    /// The injection experiment that ran.
    pub spec: FaultInjectionSpec,
    /// What it produced.
    pub result: InjectionResult,
}

impl InjectionRecord {
    /// Builds a record, deriving the key from the spec.
    pub fn new(spec: FaultInjectionSpec, result: InjectionResult) -> Self {
        Self {
            key: spec.content_key(),
            spec,
            result,
        }
    }
}

impl StoreRecord for InjectionRecord {
    fn key(&self) -> &str {
        &self.key
    }

    fn computed_key(&self) -> String {
        self.spec.content_key()
    }
}

/// The fault-injection result store (`dnnlife inject`).
pub type InjectionStore = JsonlStore<InjectionRecord>;

/// Shared parameters of every cell of an injection grid.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionParams {
    /// Campaign master seed (scenario seeds derive from it exactly
    /// like sweep grids, so an injection cell and its sweep twin
    /// share seeds).
    pub base_seed: u64,
    /// Inferences for the duty-cycle estimate.
    pub inferences: u64,
    /// Age checkpoints in years.
    pub ages_years: Vec<f64>,
    /// Seeded trials per age.
    pub trials: u32,
    /// Held-out evaluation images.
    pub eval_images: u32,
    /// SGD steps of the training recipe (0 = untrained).
    pub train_steps: u32,
    /// Read-noise operating point in mV.
    pub noise_sigma_mv: f64,
    /// Repair (ECC) axis over the stored weight words
    /// (`dnnlife inject --ecc`).
    pub repair: RepairPolicy,
    /// Memory technology whose lifetime model ages the weight cells
    /// (`dnnlife inject --tech`).
    pub tech: MemoryTech,
}

impl Default for InjectionParams {
    fn default() -> Self {
        let proto = FaultInjectionSpec::paper_default(ExperimentSpec::fig11(
            NetworkKind::CustomMnist,
            PolicySpec::None,
            0,
        ));
        Self {
            base_seed: 42,
            inferences: 100,
            ages_years: proto.ages_years,
            trials: proto.trials,
            eval_images: proto.eval_images,
            train_steps: proto.train_steps,
            noise_sigma_mv: proto.noise_sigma_mv,
            repair: RepairPolicy::None,
            tech: MemoryTech::SramNbti,
        }
    }
}

/// A built injection campaign: the cells the executor runs.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionGrid {
    /// Campaign name (used for default store file names).
    pub name: String,
    /// Cells in canonical (policy-list) order, all valid.
    pub specs: Vec<FaultInjectionSpec>,
}

impl InjectionGrid {
    /// Builds the campaign for one platform × network × format cell
    /// crossed with `policies`. Invalid combinations (fp32 on the NPU,
    /// a non-coprime SECDED interleave) are dropped; policies appear
    /// in list order. Callers that let the user request the cell
    /// explicitly must treat an empty grid as an error (the `dnnlife
    /// inject` CLI exits nonzero naming the combination) instead of
    /// writing an empty store.
    pub fn build(
        name: impl Into<String>,
        platform: Platform,
        network: NetworkKind,
        format: NumberFormat,
        policies: &[PolicySpec],
        params: &InjectionParams,
    ) -> Self {
        Self::build_with_axes(
            name,
            platform,
            network,
            format,
            policies,
            params,
            &[params.repair],
            &[params.tech],
        )
    }

    /// [`InjectionGrid::build`] with an explicit repair-axis list
    /// (`dnnlife inject --ecc both`): every policy is crossed with
    /// each repair value, repair innermost, overriding
    /// `params.repair`. Invalid cells (a non-coprime interleave) are
    /// dropped like any other invalid combination — callers that need
    /// to diagnose a partial drop can count cells per repair value.
    pub fn build_with_repairs(
        name: impl Into<String>,
        platform: Platform,
        network: NetworkKind,
        format: NumberFormat,
        policies: &[PolicySpec],
        params: &InjectionParams,
        repairs: &[RepairPolicy],
    ) -> Self {
        Self::build_with_axes(
            name,
            platform,
            network,
            format,
            policies,
            params,
            repairs,
            &[params.tech],
        )
    }

    /// [`InjectionGrid::build_with_repairs`] with an explicit memory
    /// technology axis on top (`dnnlife inject --tech both`): every
    /// policy × repair cell is crossed with each [`MemoryTech`] value,
    /// tech innermost, overriding `params.tech`.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_axes(
        name: impl Into<String>,
        platform: Platform,
        network: NetworkKind,
        format: NumberFormat,
        policies: &[PolicySpec],
        params: &InjectionParams,
        repairs: &[RepairPolicy],
        techs: &[MemoryTech],
    ) -> Self {
        let mut specs = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for &policy in policies {
            for &repair in repairs {
                for &tech in techs {
                    let mut scenario = ExperimentSpec {
                        platform,
                        network,
                        format,
                        policy,
                        inferences: params.inferences,
                        years: 7.0,
                        seed: 0,
                        sample_stride: 1,
                        backend: SimulatorBackend::Analytic,
                        dwell: DwellModel::Uniform,
                        repair,
                        tech,
                    };
                    if !scenario.is_valid() {
                        continue;
                    }
                    scenario.seed = crate::grid::scenario_seed(params.base_seed, &scenario);
                    let spec = FaultInjectionSpec {
                        scenario,
                        ages_years: params.ages_years.clone(),
                        trials: params.trials,
                        eval_images: params.eval_images,
                        train_steps: params.train_steps,
                        noise_sigma_mv: params.noise_sigma_mv,
                        data_seed: params.base_seed,
                    };
                    if spec.is_valid() && seen.insert(spec.content_key()) {
                        specs.push(spec);
                    }
                }
            }
        }
        Self {
            name: name.into(),
            specs,
        }
    }

    /// Store keys in cell order.
    pub fn keys(&self) -> Vec<String> {
        self.specs.iter().map(|s| s.content_key()).collect()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Executor knobs for [`run_injection_campaign`] (mirrors
/// `CampaignOptions`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectCampaignOptions {
    /// Total thread budget (0 = all available cores).
    pub threads: usize,
    /// Work-shard override for each cell's analytic duty simulation
    /// (0 = derive from the thread budget). Never semantic.
    pub shards: usize,
    /// Skip cells already present in the store.
    pub resume: bool,
    /// Print per-cell progress lines to stderr.
    pub verbose: bool,
}

/// What an injection campaign run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionOutcome {
    /// Cells executed by this invocation.
    pub executed: usize,
    /// Cells skipped because the store already held them.
    pub skipped: usize,
    /// Worker threads used.
    pub threads: usize,
}

/// Runs every cell of `grid`, journaling into (and finalizing) the
/// injection store at `store_path`. Honors the campaign cancellation
/// token exactly like the scenario executor: a raised token keeps
/// journaled cells, aborts in-flight ones between trials, and returns
/// [`std::io::ErrorKind::Interrupted`].
///
/// # Errors
///
/// Propagates store I/O errors.
pub fn run_injection_campaign(
    grid: &InjectionGrid,
    store_path: impl Into<std::path::PathBuf>,
    options: &InjectCampaignOptions,
    cancel: Option<&AtomicBool>,
) -> std::io::Result<InjectionOutcome> {
    run_injection_campaign_instrumented(grid, store_path, options, cancel, Default::default())
}

/// [`run_injection_campaign`] with an observability sink (mirrors
/// `run_campaign_instrumented`): trial throughput and SECDED verdict
/// roll-ups flow through `instr.telemetry`, journaled cells tick
/// `instr.progress`. Never semantic.
pub fn run_injection_campaign_instrumented(
    grid: &InjectionGrid,
    store_path: impl Into<std::path::PathBuf>,
    options: &InjectCampaignOptions,
    cancel: Option<&AtomicBool>,
    instr: Instrumentation<'_>,
) -> std::io::Result<InjectionOutcome> {
    let store_path = store_path.into();
    let _lock = StoreLock::acquire(&store_path)?;
    if !options.resume && store_path.exists() {
        std::fs::remove_file(&store_path)?;
    }
    let mut store = InjectionStore::open(&store_path)?;

    let keys = grid.keys();
    let stale = store.stale_keys(&keys);
    if !stale.is_empty() {
        eprintln!(
            "inject `{}`: dropping {} stale record(s) from {} — they were produced by a \
             campaign with different parameters",
            grid.name,
            stale.len(),
            store.path().display()
        );
    }
    let pending: Vec<usize> = (0..grid.specs.len())
        .filter(|&i| !store.contains(&keys[i]))
        .collect();
    let skipped = grid.specs.len() - pending.len();

    let budget = requested_threads(options.threads);
    let threads = effective_threads(options.threads, pending.len());
    if options.verbose {
        eprintln!(
            "inject `{}`: {} cell(s) ({} pending, {} already stored), {} worker(s), \
             {} thread(s) total",
            grid.name,
            grid.specs.len(),
            pending.len(),
            skipped,
            threads,
            budget
        );
    }

    let specs: Vec<&FaultInjectionSpec> = pending.iter().map(|&i| &grid.specs[i]).collect();
    let done = journal_into_store(
        &grid.name,
        "cell",
        &mut store,
        &keys,
        &specs,
        budget,
        cancel,
        options.verbose,
        instr,
        |record| record.result.label.clone(),
        |record| record.spec.scenario.policy.display_name().to_string(),
        |spec, threads, cancel, span| {
            let opts = InjectOptions {
                threads,
                shards: options.shards,
                cancel: Some(cancel),
                telemetry: instr.telemetry,
                parent_span: span,
            };
            run_injection(spec, &opts).map(|result| InjectionRecord::new((*spec).clone(), result))
        },
    )?;
    Ok(InjectionOutcome {
        executed: done,
        skipped,
        threads,
    })
}

/// Renders the accuracy-vs-age table of an injection store: one block
/// per platform × network × format × operating-point group, one row
/// per policy, one column per age checkpoint, plus the flipped-bit
/// counts behind each mean.
pub fn accuracy_vs_age_table(store: &InjectionStore) -> String {
    // Group records by everything except the policy. The age list is
    // part of the key (rendered only when off-default), so a store
    // mixing record generations (an interrupted resume under different
    // `--ages`) renders separate, correctly-aligned blocks instead of
    // attributing one generation's accuracies to the other's columns.
    let default_ages = FaultInjectionSpec::paper_default(ExperimentSpec::fig11(
        NetworkKind::CustomMnist,
        PolicySpec::None,
        0,
    ))
    .ages_years;
    let mut groups: std::collections::BTreeMap<String, Vec<&InjectionRecord>> =
        std::collections::BTreeMap::new();
    for record in store.records() {
        let s = &record.spec;
        let mut group = format!(
            "{:?} / {} / {} — σ={} mV, {} trials × {} images, {} train steps",
            s.scenario.platform,
            s.scenario.network.display_name(),
            s.scenario.format,
            s.noise_sigma_mv,
            s.trials,
            s.eval_images,
            s.train_steps,
        );
        if !s.scenario.tech.is_default() {
            group.push_str(&format!(", tech {}", s.scenario.tech.display_name()));
        }
        if !s.scenario.repair.is_none() {
            group.push_str(&format!(", ecc {}", s.scenario.repair.display_name()));
        }
        if s.ages_years != default_ages {
            let list: Vec<String> = s.ages_years.iter().map(|a| format_age(*a)).collect();
            group.push_str(&format!(", ages {}", list.join("/")));
        }
        groups.entry(group).or_default().push(record);
    }

    let fig9 = dnnlife_core::experiment::fig9_policies();
    let rank = |policy: &PolicySpec| fig9.iter().position(|p| p == policy).unwrap_or(fig9.len());
    let mut out = String::new();
    for (group, mut records) in groups {
        records.sort_by_key(|r| rank(&r.spec.scenario.policy));
        out.push_str(&format!("=== Accuracy vs age: {group} ===\n"));
        let ages = &records[0].spec.ages_years;
        let mut header = format!("  {:<44} {:>8}", "policy", "clean");
        for age in ages {
            header.push_str(&format!(" {:>7}y", format_age(*age)));
        }
        out.push_str(&header);
        out.push('\n');
        for record in &records {
            let mut row = format!(
                "  {:<44} {:>8.4}",
                record.spec.scenario.policy.display_name(),
                record.result.clean_accuracy
            );
            for age in &record.result.ages {
                row.push_str(&format!(" {:>8.4}", age.mean_accuracy));
            }
            out.push_str(&row);
            out.push('\n');
        }
        out.push_str(&format!("  {:<44} {:>8}", "mean flipped bits / trial", ""));
        out.push('\n');
        for record in &records {
            let mut row = format!(
                "  {:<44} {:>8}",
                format!("  {}", record.spec.scenario.policy.display_name()),
                ""
            );
            for age in &record.result.ages {
                row.push_str(&format!(" {:>8.1}", age.mean_flipped_bits));
            }
            out.push_str(&row);
            out.push('\n');
        }
    }
    out
}

fn format_age(age: f64) -> String {
    if age.fract() == 0.0 {
        format!("{age:.0}")
    } else {
        format!("{age:.1}")
    }
}

/// The twin-pairing key of the corrected-vs-uncorrected table: every
/// spec field except the repair axis and the (repair-derived) scenario
/// seed, so an `--ecc` cell lines up with the plain cell it repairs.
fn repair_twin_key(spec: &FaultInjectionSpec) -> String {
    let mut twin = spec.clone();
    twin.scenario.repair = RepairPolicy::None;
    twin.scenario.seed = 0;
    twin.content_key()
}

/// Renders the corrected-vs-uncorrected table of an injection store:
/// for every policy cell present both with and without a repair
/// policy, the accuracy at each age side by side, the accuracy delta
/// SECDED buys, and the decoder's corrected / detected / escaped word
/// tallies. Cells lacking a twin are skipped (run the same campaign
/// once with and once without `--ecc` into one store to populate it).
pub fn ecc_comparison_table(store: &InjectionStore) -> String {
    let mut twins: std::collections::BTreeMap<
        String,
        (Option<&InjectionRecord>, Vec<&InjectionRecord>),
    > = std::collections::BTreeMap::new();
    for record in store.records() {
        let entry = twins.entry(repair_twin_key(&record.spec)).or_default();
        if record.spec.scenario.repair.is_none() {
            entry.0 = Some(record);
        } else {
            entry.1.push(record);
        }
    }

    let fig9 = dnnlife_core::experiment::fig9_policies();
    let rank = |policy: &PolicySpec| fig9.iter().position(|p| p == policy).unwrap_or(fig9.len());
    let mut pairs: Vec<(&InjectionRecord, &InjectionRecord)> = twins
        .values()
        .filter_map(|(plain, ecc)| plain.map(|p| (p, ecc)))
        .flat_map(|(plain, ecc)| ecc.iter().map(move |e| (plain, *e)))
        .collect();
    pairs.sort_by(|(a, ae), (b, be)| {
        rank(&a.spec.scenario.policy)
            .cmp(&rank(&b.spec.scenario.policy))
            .then_with(|| {
                ae.spec
                    .scenario
                    .repair
                    .display_name()
                    .cmp(&be.spec.scenario.repair.display_name())
            })
            .then_with(|| a.result.label.cmp(&b.result.label))
    });
    if pairs.is_empty() {
        return String::new();
    }

    let mut out = String::new();
    for (plain, ecc) in pairs {
        let s = &ecc.spec;
        out.push_str(&format!(
            "=== SECDED corrected vs uncorrected: {:?} / {} / {} / {} — ecc {}, σ={} mV, {} trials ===\n",
            s.scenario.platform,
            s.scenario.network.display_name(),
            s.scenario.format,
            s.scenario.policy.display_name(),
            s.scenario.repair.display_name(),
            s.noise_sigma_mv,
            s.trials,
        ));
        let mut header = format!("  {:<28} {:>8}", "", "clean");
        for age in &s.ages_years {
            header.push_str(&format!(" {:>9}y", format_age(*age)));
        }
        out.push_str(&header);
        out.push('\n');
        let acc_row = |label: &str, record: &InjectionRecord| {
            let mut row = format!("  {:<28} {:>8.4}", label, record.result.clean_accuracy);
            for age in &record.result.ages {
                row.push_str(&format!(" {:>10.4}", age.mean_accuracy));
            }
            row
        };
        out.push_str(&acc_row("uncorrected", plain));
        out.push('\n');
        out.push_str(&acc_row("corrected", ecc));
        out.push('\n');
        let mut delta = format!("  {:<28} {:>8}", "Δ accuracy", "");
        for (p, e) in plain.result.ages.iter().zip(&ecc.result.ages) {
            delta.push_str(&format!(" {:>+10.4}", e.mean_accuracy - p.mean_accuracy));
        }
        out.push_str(&delta);
        out.push('\n');
        let mut verdicts = format!("  {:<28} {:>8}", "corr/det/esc words", "");
        for age in &ecc.result.ages {
            match &age.ecc {
                Some(stats) => verdicts.push_str(&format!(
                    " {:>10}",
                    format!(
                        "{:.0}/{:.0}/{:.0}",
                        stats.mean_corrected_words,
                        stats.mean_detected_words,
                        stats.mean_escaped_words
                    )
                )),
                None => verdicts.push_str(&format!(" {:>10}", "-")),
            }
        }
        out.push_str(&verdicts);
        out.push('\n');
        let mut residual = format!("  {:<28} {:>8}", "raw → residual flips", "");
        for age in &ecc.result.ages {
            let residual_flips = age
                .ecc
                .as_ref()
                .map_or(0.0, |stats| stats.mean_residual_flips);
            residual.push_str(&format!(
                " {:>10}",
                format!("{:.0}→{:.0}", age.mean_flipped_bits, residual_flips)
            ));
        }
        out.push_str(&residual);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> InjectionParams {
        InjectionParams {
            base_seed: 9,
            inferences: 2,
            ages_years: vec![0.0, 7.0],
            trials: 1,
            eval_images: 4,
            train_steps: 0,
            noise_sigma_mv: 65.0,
            repair: RepairPolicy::None,
            tech: MemoryTech::SramNbti,
        }
    }

    #[test]
    fn grid_builder_filters_invalid_cells_and_derives_seeds() {
        let params = tiny_params();
        let grid = InjectionGrid::build(
            "t",
            Platform::TpuLike,
            NetworkKind::CustomMnist,
            NumberFormat::Int8Symmetric,
            &[PolicySpec::None, PolicySpec::Inversion, PolicySpec::None],
            &params,
        );
        assert_eq!(grid.len(), 2, "duplicates dedup");
        assert_ne!(grid.specs[0].scenario.seed, grid.specs[1].scenario.seed);
        // fp32 on the NPU is invalid and filtered.
        let fp32 = InjectionGrid::build(
            "t",
            Platform::TpuLike,
            NetworkKind::CustomMnist,
            NumberFormat::Fp32,
            &[PolicySpec::None],
            &params,
        );
        assert!(fp32.is_empty());
        // The whole zoo is injectable now — the big networks build
        // real grid cells with campaign-derived seeds.
        let alex = InjectionGrid::build(
            "t",
            Platform::Baseline,
            NetworkKind::Alexnet,
            NumberFormat::Int8Symmetric,
            &[PolicySpec::None],
            &params,
        );
        assert_eq!(alex.len(), 1, "AlexNet must yield a runnable cell");
        assert_eq!(alex.specs[0].scenario.network, NetworkKind::Alexnet);
        assert_ne!(alex.specs[0].scenario.seed, 0, "seed derives from the grid");
    }

    #[test]
    fn injection_seeds_match_sweep_twins() {
        // The injection scenario's derived seed equals the seed the
        // sweep grid derives for the same coordinates, so duty cycles
        // line up between the two campaign kinds.
        let params = tiny_params();
        let grid = InjectionGrid::build(
            "t",
            Platform::TpuLike,
            NetworkKind::CustomMnist,
            NumberFormat::Int8Symmetric,
            &[PolicySpec::None],
            &params,
        );
        let sweep = crate::grid::CampaignGrid::fig11(crate::grid::SweepOptions {
            base_seed: params.base_seed,
            sample_stride: 1,
            inferences: params.inferences,
            ..crate::grid::SweepOptions::default()
        });
        let twin = sweep
            .scenarios
            .iter()
            .find(|s| s.coordinate_key() == grid.specs[0].scenario.coordinate_key())
            .expect("the fig11 grid contains the same cell");
        assert_eq!(twin.seed, grid.specs[0].scenario.seed);
    }
}
