#![warn(missing_docs)]

//! Campaign engine: parallel scenario sweeps over the paper's
//! experiment space, with a resumable on-disk result store.
//!
//! The paper's headline results (Fig. 9, Fig. 11) are *grids* of
//! experiments — platform × network × number format × mitigation
//! policy × lifetime — and the interesting questions beyond the paper
//! (how sensitive is DNN-Life to TRBG bias? how wide must the
//! bias-balancing counter be?) add more axes. This crate turns
//! `dnnlife_core::run_experiment` from a one-at-a-time call into a
//! sweep engine:
//!
//! | module | contents |
//! |--------|----------|
//! | [`grid`] | axis lists → deduplicated, validity-filtered scenario sets with deterministic per-scenario seeds |
//! | [`executor`] | std-only work-stealing thread pool; byte-identical results for any worker count |
//! | [`store`] | JSONL result store keyed by spec content hash; journaled, crash-tolerant, resumable |
//! | [`aggregate`] | folds stored records into Fig. 9/11 tables and bias / counter-width sensitivity tables |
//! | [`crossval`] | matched analytic↔exact scenario pairs with per-cell duty divergence |
//!
//! Two scenario axes go beyond the paper's grids: the **simulator
//! backend** (closed-form analytic vs event-driven exact) and the
//! **block-dwell model** (uniform — paper assumption (b) — vs
//! layer-proportional / Zipf / custom per-layer residency, which only
//! the exact backend can simulate). Matched analytic/exact pairs share
//! derived seeds (the backend is normalised out of scenario
//! coordinates), so their stores line up under `compare` and the
//! `validate` subcommand can quantify their divergence per cell.
//!
//! The `dnnlife` binary (this crate's `src/bin/dnnlife.rs`) exposes the
//! engine as `sweep` / `report` / `compare` / `validate` subcommands.
//!
//! # Determinism contract
//!
//! Three layers cooperate so that a finished store is **byte-identical**
//! no matter how it was produced:
//!
//! 1. every scenario's result is a pure function of its spec (per-cell
//!    counter-seeded RNG streams in the analytic simulator);
//! 2. each scenario's seed is derived from the campaign seed and the
//!    scenario's seed-independent coordinate hash, not from enumeration
//!    order;
//! 3. the store journals completions in whatever order workers finish,
//!    then finalizes atomically in canonical grid order.
//!
//! Re-running a finished campaign with `resume` therefore executes
//! nothing, and an interrupted sweep resumes to the same bytes a clean
//! run produces.
//!
//! # Example
//!
//! ```
//! use dnnlife_campaign::grid::{CampaignGrid, SweepOptions};
//! use dnnlife_campaign::run_scenarios;
//!
//! let grid = CampaignGrid::fig11(SweepOptions {
//!     base_seed: 42,
//!     sample_stride: 512, // heavy subsample: doc-test speed
//!     inferences: 20,
//!     ..SweepOptions::default() // analytic backend, uniform dwell
//! });
//! let records = run_scenarios(&grid, 2);
//! assert_eq!(records.len(), grid.len());
//! // DNN-Life beats no-mitigation on every network.
//! let mean = |k: &str| {
//!     records
//!         .iter()
//!         .filter(|r| r.result.label.contains(k))
//!         .map(|r| r.result.snm.mean())
//!         .sum::<f64>()
//! };
//! assert!(mean("DNN-Life with Bias Balancing") < mean("Without Aging Mitigation"));
//! ```

pub mod aggregate;
pub mod crossval;
pub mod executor;
pub mod grid;
pub mod inject;
pub mod perf;
pub mod store;
pub mod trace;

pub use crossval::{
    validate_scenarios, validate_scenarios_cancellable, validate_scenarios_instrumented,
    validate_scenarios_sharded,
};
pub use dnnlife_core::ShardPolicy;
pub use dnnlife_telemetry::{Counter, Instrumentation, Progress, ProgressStyle, Telemetry};
pub use executor::{
    run_campaign, run_campaign_cancellable, run_campaign_instrumented, run_scenarios,
    CampaignOptions, CampaignOutcome,
};
pub use grid::{CampaignGrid, GridAxes};
pub use inject::{
    accuracy_vs_age_table, ecc_comparison_table, run_injection_campaign,
    run_injection_campaign_instrumented, InjectCampaignOptions, InjectionGrid, InjectionOutcome,
    InjectionParams, InjectionRecord, InjectionStore,
};
pub use perf::{load_events, PerfDiff, PerfSummary};
pub use store::{JsonlStore, ResultStore, ScenarioRecord, StoreLock, StoreRecord};
pub use trace::{load_trace, Trace, TraceSpan};
