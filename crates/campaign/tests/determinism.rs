//! Campaign determinism property: the finalized result store is
//! byte-identical regardless of worker thread count — and, for the
//! deterministic mitigation policies, regardless of the exact
//! backend's word-shard count.

use std::path::PathBuf;

use dnnlife_campaign::grid::{CampaignGrid, GridAxes, SweepOptions};
use dnnlife_campaign::{run_campaign, run_scenarios, CampaignOptions, ShardPolicy};
use dnnlife_core::experiment::{DwellModel, NetworkKind, Platform, PolicySpec, SimulatorBackend};
use dnnlife_quant::NumberFormat;

mod util;

/// A grid cheap enough for debug-mode CI: the custom network on the
/// NPU, four policies × two lifetimes × both simulator backends,
/// heavily strided — so the determinism contract covers the exact
/// backend's store records too.
fn test_grid() -> CampaignGrid {
    GridAxes {
        platforms: vec![Platform::TpuLike],
        networks: vec![NetworkKind::CustomMnist],
        formats: vec![NumberFormat::Int8Symmetric],
        policies: vec![
            PolicySpec::None,
            PolicySpec::BarrelShifter,
            PolicySpec::DnnLife {
                bias: 0.7,
                bias_balancing: true,
                m_bits: 4,
            },
            PolicySpec::DnnLife {
                bias: 0.5,
                bias_balancing: false,
                m_bits: 2,
            },
        ],
        lifetimes_years: vec![2.0, 7.0],
        backends: vec![SimulatorBackend::Analytic, SimulatorBackend::Exact],
        dwells: vec![DwellModel::Uniform],
        repairs: Vec::new(),
        techs: Vec::new(),
        options: SweepOptions {
            base_seed: 42,
            sample_stride: 256,
            inferences: 20,
            ..SweepOptions::default()
        },
    }
    .build("determinism-test")
}

fn sweep_bytes(dir: &std::path::Path, threads: usize) -> Vec<u8> {
    let path: PathBuf = dir.join(format!("threads{threads}.jsonl"));
    let outcome = run_campaign(
        &test_grid(),
        &path,
        &CampaignOptions {
            threads,
            resume: false,
            verbose: false,
            ..CampaignOptions::default()
        },
    )
    .expect("campaign run");
    assert_eq!(outcome.executed, test_grid().len());
    assert_eq!(outcome.skipped, 0);
    std::fs::read(&path).expect("read store")
}

#[test]
fn store_bytes_identical_across_1_2_8_threads() {
    let dir = util::scratch_dir("determinism");
    let bytes_1 = sweep_bytes(&dir, 1);
    let bytes_2 = sweep_bytes(&dir, 2);
    let bytes_8 = sweep_bytes(&dir, 8);
    assert!(!bytes_1.is_empty());
    assert_eq!(bytes_1, bytes_2, "1-thread vs 2-thread stores differ");
    assert_eq!(bytes_1, bytes_8, "1-thread vs 8-thread stores differ");
}

/// Every deterministic policy × number-format cell the paper's grids
/// span, under the exact backend: the baseline accelerator covers all
/// three formats, the NPU its 8-bit one. DNN-Life is deliberately
/// absent — its per-shard TRBG streams make the shard count semantic.
fn deterministic_exact_grid() -> CampaignGrid {
    GridAxes {
        platforms: vec![Platform::Baseline, Platform::TpuLike],
        networks: vec![NetworkKind::CustomMnist],
        formats: NumberFormat::all().to_vec(),
        policies: vec![
            PolicySpec::None,
            PolicySpec::Inversion,
            PolicySpec::BarrelShifter,
        ],
        lifetimes_years: vec![7.0],
        backends: vec![SimulatorBackend::Exact],
        dwells: vec![DwellModel::Uniform],
        repairs: Vec::new(),
        techs: Vec::new(),
        options: SweepOptions {
            base_seed: 42,
            sample_stride: 256,
            inferences: 10,
            ..SweepOptions::default()
        },
    }
    .build("shard-determinism-test")
}

/// The tentpole's merge guard, end to end: a word-sharded exact sweep
/// journals byte-identical stores for `--shards 1` and `--shards 8`
/// (per-shard duty vectors concatenate in shard-index order, and the
/// deterministic policies' per-address state makes the partition
/// invisible), at every deterministic policy × format cell.
#[test]
fn store_bytes_identical_across_shard_counts_for_deterministic_policies() {
    let dir = util::scratch_dir("shard-determinism");
    let grid = deterministic_exact_grid();
    assert_eq!(
        grid.len(),
        3 * 3 + 2 * 3,
        "baseline 3 formats × 3 policies + NPU 2 eight-bit formats × 3 policies"
    );
    let sweep = |shards: ShardPolicy, tag: &str| -> Vec<u8> {
        let path = dir.join(format!("{tag}.jsonl"));
        run_campaign(
            &grid,
            &path,
            &CampaignOptions {
                threads: 2,
                shards,
                ..CampaignOptions::default()
            },
        )
        .expect("campaign run");
        std::fs::read(&path).expect("read store")
    };
    let unsharded = sweep(ShardPolicy::Fixed(1), "shards1");
    let sharded = sweep(ShardPolicy::Fixed(8), "shards8");
    let auto = sweep(ShardPolicy::Auto, "auto");
    assert!(!unsharded.is_empty());
    assert_eq!(unsharded, sharded, "1-shard vs 8-shard stores differ");
    assert_eq!(unsharded, auto, "1-shard vs auto-shard stores differ");
}

#[test]
fn in_memory_records_match_store_order_and_content() {
    let dir = util::scratch_dir("determinism-mem");
    let grid = test_grid();
    let path = dir.join("store.jsonl");
    run_campaign(&grid, &path, &CampaignOptions::default()).expect("campaign run");

    let store = dnnlife_campaign::ResultStore::open(&path).expect("reopen store");
    let in_memory = run_scenarios(&grid, 3);
    assert_eq!(in_memory.len(), store.len());
    for (spec, record) in grid.scenarios.iter().zip(&in_memory) {
        let stored = store.get(&spec.content_key()).expect("scenario stored");
        assert_eq!(stored, record);
    }
}

#[test]
fn rerun_over_existing_store_skips_everything() {
    let dir = util::scratch_dir("determinism-skip");
    let grid = test_grid();
    let path = dir.join("store.jsonl");
    run_campaign(&grid, &path, &CampaignOptions::default()).expect("first run");
    let second = run_campaign(
        &grid,
        &path,
        &CampaignOptions {
            threads: 0,
            resume: true,
            verbose: false,
            ..CampaignOptions::default()
        },
    )
    .expect("second run");
    assert_eq!(second.executed, 0, "resume re-executed stored scenarios");
    assert_eq!(second.skipped, grid.len());
}
