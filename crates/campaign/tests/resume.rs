//! Campaign resume property: an interrupted sweep, resumed, produces a
//! store byte-identical to a clean uninterrupted run — including when
//! the interruption tore the journal mid-line.

use dnnlife_campaign::grid::{CampaignGrid, GridAxes, SweepOptions};
use dnnlife_campaign::{run_campaign, CampaignOptions, ResultStore};
use dnnlife_core::experiment::{NetworkKind, Platform, PolicySpec, SimulatorBackend};
use dnnlife_quant::NumberFormat;

mod util;

fn test_grid() -> CampaignGrid {
    GridAxes {
        platforms: vec![Platform::TpuLike],
        networks: vec![NetworkKind::CustomMnist],
        formats: vec![NumberFormat::Int8Symmetric],
        policies: vec![
            PolicySpec::None,
            PolicySpec::Inversion,
            PolicySpec::BarrelShifter,
            PolicySpec::DnnLife {
                bias: 0.7,
                bias_balancing: true,
                m_bits: 4,
            },
        ],
        lifetimes_years: vec![7.0],
        backends: vec![SimulatorBackend::Analytic],
        dwells: vec![dnnlife_core::DwellModel::Uniform],
        repairs: Vec::new(),
        techs: Vec::new(),
        options: SweepOptions {
            base_seed: 99,
            sample_stride: 256,
            inferences: 20,
            ..SweepOptions::default()
        },
    }
    .build("resume-test")
}

/// Simulates a sweep killed after `keep` journaled scenarios (plus an
/// optional torn half-written line) by truncating a clean store.
fn interrupted_store(clean: &str, keep: usize, torn_tail: bool) -> String {
    let lines: Vec<&str> = clean.lines().collect();
    assert!(keep + 1 < lines.len(), "test needs work left to resume");
    let mut partial: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    if torn_tail {
        let next = lines[keep];
        partial.push_str(&next[..next.len() / 2]);
    }
    partial
}

#[test]
fn resume_after_interruption_equals_clean_run() {
    let dir = util::scratch_dir("resume");
    let grid = test_grid();

    let clean_path = dir.join("clean.jsonl");
    run_campaign(&grid, &clean_path, &CampaignOptions::default()).expect("clean run");
    let clean = std::fs::read_to_string(&clean_path).expect("read clean store");

    for (keep, torn_tail) in [(1, false), (2, true), (0, true)] {
        let resumed_path = dir.join(format!("resumed-{keep}-{torn_tail}.jsonl"));
        std::fs::write(&resumed_path, interrupted_store(&clean, keep, torn_tail))
            .expect("write interrupted store");

        let outcome = run_campaign(
            &grid,
            &resumed_path,
            &CampaignOptions {
                threads: 2,
                resume: true,
                verbose: false,
                ..CampaignOptions::default()
            },
        )
        .expect("resumed run");
        assert_eq!(
            outcome.skipped, keep,
            "resume must skip exactly the journaled scenarios"
        );
        assert_eq!(outcome.executed, grid.len() - keep);

        let resumed = std::fs::read_to_string(&resumed_path).expect("read resumed store");
        assert_eq!(
            resumed, clean,
            "resumed store differs from clean run (keep={keep}, torn={torn_tail})"
        );
    }
}

#[test]
fn resume_false_discards_existing_store() {
    let dir = util::scratch_dir("resume-discard");
    let grid = test_grid();
    let path = dir.join("store.jsonl");
    run_campaign(&grid, &path, &CampaignOptions::default()).expect("first run");
    let outcome = run_campaign(&grid, &path, &CampaignOptions::default()).expect("second run");
    assert_eq!(outcome.executed, grid.len(), "resume=false must re-run all");
    assert_eq!(outcome.skipped, 0);
}

#[test]
fn resume_with_changed_seed_prunes_stale_records() {
    // A resumed sweep whose parameters changed (here: the master seed)
    // shares no keys with the stored records; the stale ones must be
    // dropped at finalize so the store still equals a clean run.
    let dir = util::scratch_dir("resume-stale");
    let grid_a = test_grid();
    let grid_b = GridAxes {
        platforms: vec![Platform::TpuLike],
        networks: vec![NetworkKind::CustomMnist],
        formats: vec![NumberFormat::Int8Symmetric],
        policies: vec![
            PolicySpec::None,
            PolicySpec::Inversion,
            PolicySpec::BarrelShifter,
            PolicySpec::DnnLife {
                bias: 0.7,
                bias_balancing: true,
                m_bits: 4,
            },
        ],
        lifetimes_years: vec![7.0],
        backends: vec![SimulatorBackend::Analytic],
        dwells: vec![dnnlife_core::DwellModel::Uniform],
        repairs: Vec::new(),
        techs: Vec::new(),
        options: SweepOptions {
            base_seed: 100,
            sample_stride: 256,
            inferences: 20,
            ..SweepOptions::default()
        },
    }
    .build("resume-test");

    let clean_b = dir.join("clean-b.jsonl");
    run_campaign(&grid_b, &clean_b, &CampaignOptions::default()).expect("clean B run");

    let mixed = dir.join("mixed.jsonl");
    run_campaign(&grid_a, &mixed, &CampaignOptions::default()).expect("A run");
    let outcome = run_campaign(
        &grid_b,
        &mixed,
        &CampaignOptions {
            threads: 1,
            resume: true,
            verbose: false,
            ..CampaignOptions::default()
        },
    )
    .expect("B over A with resume");
    assert_eq!(
        outcome.executed,
        grid_b.len(),
        "no B scenario was stored yet"
    );
    assert_eq!(outcome.skipped, 0);

    let mixed_bytes = std::fs::read(&mixed).expect("read mixed store");
    let clean_bytes = std::fs::read(&clean_b).expect("read clean store");
    assert_eq!(
        mixed_bytes, clean_bytes,
        "stale seed-99 records leaked into the finalized seed-100 store"
    );
}

#[test]
fn store_rejects_mid_file_corruption() {
    let dir = util::scratch_dir("resume-corrupt");
    let grid = test_grid();
    let path = dir.join("store.jsonl");
    run_campaign(&grid, &path, &CampaignOptions::default()).expect("clean run");

    let clean = std::fs::read_to_string(&path).expect("read store");
    let lines: Vec<&str> = clean.lines().collect();
    let corrupted = format!("{}\nnot json at all\n{}\n", lines[0], lines[2]);
    std::fs::write(&path, corrupted).expect("write corrupted store");
    let error = ResultStore::open(&path).expect_err("mid-file corruption must not pass silently");
    assert!(error.to_string().contains("line 2"), "error was: {error}");
}

#[test]
fn resume_reruns_only_the_scenario_with_a_corrupt_trailing_line() {
    // The crash signature `--resume` is designed for: the journal's
    // final line was torn mid-write (here: its second half replaced by
    // garbage bytes, not merely truncated). The resumed sweep must
    // treat every intact line as done, re-run exactly the one damaged
    // scenario, and finalize to the clean store's bytes.
    let dir = util::scratch_dir("resume-corrupt-tail");
    let grid = test_grid();
    let path = dir.join("store.jsonl");
    run_campaign(&grid, &path, &CampaignOptions::default()).expect("clean run");
    let clean = std::fs::read_to_string(&path).expect("read clean store");

    let lines: Vec<&str> = clean.lines().collect();
    let last = lines[lines.len() - 1];
    let mut damaged: String = lines[..lines.len() - 1]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    damaged.push_str(&last[..last.len() / 2]);
    damaged.push_str("\u{0}\u{0}garbage-not-json"); // torn + corrupt, no newline
    std::fs::write(&path, &damaged).expect("write damaged store");

    let outcome = run_campaign(
        &grid,
        &path,
        &CampaignOptions {
            threads: 1,
            resume: true,
            verbose: false,
            ..CampaignOptions::default()
        },
    )
    .expect("resumed run over damaged store");
    assert_eq!(
        outcome.executed, 1,
        "only the damaged scenario may be re-run"
    );
    assert_eq!(outcome.skipped, grid.len() - 1);

    let resumed = std::fs::read_to_string(&path).expect("read resumed store");
    assert_eq!(resumed, clean, "resume did not reconstruct the clean store");
}

#[test]
fn store_drops_only_the_torn_tail() {
    let dir = util::scratch_dir("resume-tail");
    let grid = test_grid();
    let path = dir.join("store.jsonl");
    run_campaign(&grid, &path, &CampaignOptions::default()).expect("clean run");

    let clean = std::fs::read_to_string(&path).expect("read store");
    let torn = &clean[..clean.len() - 10];
    std::fs::write(&path, torn).expect("write torn store");
    let store = ResultStore::open(&path).expect("torn tail is recoverable");
    assert_eq!(store.len(), grid.len() - 1);
}
