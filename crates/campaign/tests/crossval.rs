//! Analytic↔exact cross-validation at the campaign layer — the
//! contract that makes the exact backend a drop-in scenario axis:
//!
//! * under the uniform dwell model the two simulators agree within the
//!   documented tolerances for **every mitigation policy × number
//!   format combination** in the grid (exactly for deterministic
//!   policies, statistically for DNN-Life);
//! * store content hashes change **iff** the backend/dwell axes
//!   change, while scenario *coordinates* (and hence derived seeds and
//!   `compare` matching) normalise the backend away;
//! * an exact-backend sweep journals and resumes like any other.

use dnnlife_campaign::grid::{CampaignGrid, GridAxes, SweepOptions};
use dnnlife_campaign::{
    run_campaign, validate_scenarios, validate_scenarios_sharded, CampaignOptions, ResultStore,
};
use dnnlife_core::experiment::{
    fig11_policies, fig9_policies, NetworkKind, Platform, PolicySpec, RunOptions,
    CROSSVAL_STOCHASTIC_MEAN_TOL,
};
use dnnlife_core::{
    run_experiment_with, DwellModel, ExperimentSpec, ShardPolicy, SimulatorBackend,
};
use dnnlife_quant::NumberFormat;

mod util;

/// Documented mean-SNM agreement tolerance (percentage points) between
/// the finished analytic and exact aggregation tables for the
/// stochastic DNN-Life policy; deterministic policies must match to
/// floating-point noise. Mirrors the README's "documented tolerance".
const TABLE_SNM_TOL_PP: f64 = 0.25;
const TABLE_SNM_DETERMINISTIC_TOL_PP: f64 = 1e-9;

fn run_options(base_seed: u64, backend: SimulatorBackend) -> SweepOptions {
    SweepOptions {
        base_seed,
        sample_stride: 256,
        inferences: 20,
        backend,
        ..SweepOptions::default()
    }
}

/// Every policy × format combination the paper's grids span, on memory
/// units small enough for the event-driven simulator in debug CI: the
/// custom network on the baseline accelerator (all three formats ×
/// the six Fig. 9 policies) and on the NPU (the four Fig. 11
/// policies).
fn crossval_axes(backend: SimulatorBackend, base_seed: u64) -> (GridAxes, GridAxes) {
    let baseline = GridAxes {
        platforms: vec![Platform::Baseline],
        networks: vec![NetworkKind::CustomMnist],
        formats: NumberFormat::all().to_vec(),
        policies: fig9_policies(),
        lifetimes_years: vec![7.0],
        backends: vec![backend],
        dwells: vec![DwellModel::Uniform],
        repairs: Vec::new(),
        techs: Vec::new(),
        options: run_options(base_seed, backend),
    };
    let npu = GridAxes {
        platforms: vec![Platform::TpuLike],
        networks: vec![NetworkKind::CustomMnist],
        formats: vec![NumberFormat::Int8Symmetric],
        policies: fig11_policies(),
        lifetimes_years: vec![7.0],
        backends: vec![backend],
        dwells: vec![DwellModel::Uniform],
        repairs: Vec::new(),
        techs: Vec::new(),
        options: run_options(base_seed, backend),
    };
    (baseline, npu)
}

fn sweep_to_store(grid: &CampaignGrid, dir: &std::path::Path, name: &str) -> ResultStore {
    let path = dir.join(format!("{name}.jsonl"));
    run_campaign(grid, &path, &CampaignOptions::default()).expect("campaign run");
    ResultStore::open(&path).expect("reopen store")
}

/// The acceptance contract: an exact-backend sweep's aggregation
/// numbers match the analytic backend's within the documented
/// tolerance for every policy × format cell, matched on
/// backend-normalised coordinates.
#[test]
fn exact_store_tables_match_analytic_within_tolerance() {
    let dir = util::scratch_dir("crossval-tables");
    for (which, analytic_axes, exact_axes) in [
        (
            "baseline",
            crossval_axes(SimulatorBackend::Analytic, 7).0,
            { crossval_axes(SimulatorBackend::Exact, 7).0 },
        ),
        ("npu", crossval_axes(SimulatorBackend::Analytic, 7).1, {
            crossval_axes(SimulatorBackend::Exact, 7).1
        }),
    ] {
        let analytic_grid = analytic_axes.build(format!("crossval-{which}-analytic"));
        let exact_grid = exact_axes.build(format!("crossval-{which}-exact"));
        assert_eq!(analytic_grid.len(), exact_grid.len());
        let analytic = sweep_to_store(&analytic_grid, &dir, &format!("{which}-analytic"));
        let exact = sweep_to_store(&exact_grid, &dir, &format!("{which}-exact"));

        let mut matched = 0usize;
        for a in analytic.records() {
            let twin = exact
                .records()
                .find(|e| e.spec.coordinate_key() == a.spec.coordinate_key())
                .unwrap_or_else(|| panic!("no exact twin for {}", a.result.label));
            assert_eq!(a.spec.seed, twin.spec.seed, "matched pairs share seeds");
            let delta = (twin.result.snm.mean() - a.result.snm.mean()).abs();
            let tol = if matches!(a.spec.policy, PolicySpec::DnnLife { .. }) {
                TABLE_SNM_TOL_PP
            } else {
                TABLE_SNM_DETERMINISTIC_TOL_PP
            };
            assert!(
                delta < tol,
                "{}: mean SNM differs by {delta:.4} pp (tol {tol})",
                a.result.label
            );
            assert_eq!(a.result.cells, twin.result.cells);
            matched += 1;
        }
        assert_eq!(matched, analytic_grid.len());
    }
}

/// Per-cell cross-validation over every policy × format combination:
/// deterministic policies agree cell-for-cell, DNN-Life agrees on the
/// mean within the documented tolerance.
#[test]
fn per_cell_duties_agree_for_every_policy_and_format() {
    let (baseline, npu) = crossval_axes(SimulatorBackend::Exact, 11);
    let mut scenarios: Vec<ExperimentSpec> = baseline.build("cv-baseline").scenarios;
    scenarios.extend(npu.build("cv-npu").scenarios);
    assert_eq!(scenarios.len(), 3 * 6 + 4);

    let results = validate_scenarios(&scenarios, 0);
    for cv in &results {
        assert!(cv.uniform_dwell);
        assert!(
            cv.within_tolerance(),
            "{}: max|Δ|={:.3e}, mean(a)={:.4}, mean(e)={:.4}",
            cv.label,
            cv.max_abs_duty,
            cv.mean_duty_analytic,
            cv.mean_duty_exact
        );
        if cv.stochastic {
            assert!(
                (cv.mean_duty_exact - cv.mean_duty_analytic).abs() < CROSSVAL_STOCHASTIC_MEAN_TOL
            );
        } else {
            assert!(
                cv.max_abs_duty < 1e-12,
                "{}: closed forms are exact, got {:.3e}",
                cv.label,
                cv.max_abs_duty
            );
        }
    }
}

/// Non-uniform dwell models produce a *measured* divergence from the
/// uniform closed forms — the assumption-(b) gap the validate
/// subcommand reports — and different dwell models are distinct
/// scenarios.
#[test]
fn nonuniform_dwell_reports_assumption_b_gap() {
    let mut spec = ExperimentSpec::fig11(NetworkKind::CustomMnist, PolicySpec::None, 3);
    spec.sample_stride = 256;
    spec.inferences = 10;
    spec.backend = SimulatorBackend::Exact;
    for dwell in [
        DwellModel::LayerProportional,
        DwellModel::Zipf { exponent: 1.0 },
        DwellModel::Custom {
            factors: vec![8.0, 4.0, 1.0, 1.0],
        },
    ] {
        spec.dwell = dwell.clone();
        let cv = dnnlife_core::cross_validate(&spec);
        assert!(!cv.uniform_dwell);
        assert!(
            cv.max_abs_duty > 1e-3,
            "{}: dwell model {} produced no divergence",
            cv.label,
            dwell.display_name()
        );
    }
}

/// Store content hashes (and therefore store keys) change iff the
/// backend or dwell axis changes; coordinates and derived seeds ignore
/// the backend but track the dwell model.
#[test]
fn store_keys_change_iff_backend_or_dwell_changes() {
    let base_options = run_options(21, SimulatorBackend::Analytic);
    let analytic = CampaignGrid::fig11(base_options.clone());
    let analytic_again = CampaignGrid::fig11(base_options);
    let exact = CampaignGrid::fig11(run_options(21, SimulatorBackend::Exact));
    let zipf = CampaignGrid::fig11(SweepOptions {
        dwell: DwellModel::Zipf { exponent: 1.0 },
        ..run_options(21, SimulatorBackend::Exact)
    });

    // Same axes → same keys (hash is a pure function of the spec).
    assert_eq!(analytic.keys(), analytic_again.keys());
    // Backend axis changes every key, but not the coordinates/seeds.
    for (a, e) in analytic.scenarios.iter().zip(&exact.scenarios) {
        assert_ne!(a.content_key(), e.content_key());
        assert_eq!(a.coordinate_key(), e.coordinate_key());
        assert_eq!(a.seed, e.seed);
    }
    // Dwell axis changes keys *and* coordinates (it is physical).
    for (e, z) in exact.scenarios.iter().zip(&zipf.scenarios) {
        assert_ne!(e.content_key(), z.content_key());
        assert_ne!(e.coordinate_key(), z.coordinate_key());
    }
}

/// A mixed-backend store holds analytic/exact twins at the *same*
/// coordinate; `compare` must pair each record with its same-backend
/// counterpart instead of collapsing the twins (regression test for
/// the coordinate-normalisation change).
#[test]
fn compare_pairs_backend_twins_in_mixed_stores() {
    let dir = util::scratch_dir("crossval-compare-mixed");
    let mixed_axes = GridAxes {
        platforms: vec![Platform::TpuLike],
        networks: vec![NetworkKind::CustomMnist],
        formats: vec![NumberFormat::Int8Symmetric],
        policies: vec![
            PolicySpec::None,
            PolicySpec::DnnLife {
                bias: 0.7,
                bias_balancing: true,
                m_bits: 4,
            },
        ],
        lifetimes_years: vec![7.0],
        backends: vec![SimulatorBackend::Analytic, SimulatorBackend::Exact],
        dwells: vec![DwellModel::Uniform],
        repairs: Vec::new(),
        techs: Vec::new(),
        options: run_options(13, SimulatorBackend::Analytic),
    };
    let grid = mixed_axes.build("mixed");
    assert_eq!(grid.len(), 4, "2 policies × 2 backends");
    let store = sweep_to_store(&grid, &dir, "mixed");

    // Self-comparison: every record must pair with *itself* (delta
    // +0.000), including the stochastic DNN-Life rows whose analytic
    // and exact twins hold different numbers.
    let report = dnnlife_campaign::aggregate::compare_stores(&store, &store);
    assert!(
        report.contains("shared=4 only-in-A=0 only-in-B=0"),
        "twin collapse: {report}"
    );
    for line in report.lines().filter(|l| l.contains(" pp")) {
        assert!(
            line.contains("+0.000 pp") || line.contains("-0.000 pp"),
            "self-comparison row must be zero: {line}"
        );
    }
    // The exact rows keep their qualifier, so both twins are visible.
    assert_eq!(report.matches("[exact]").count(), 2, "{report}");

    // Asymmetric case: mixed store vs an exact-only store. The exact
    // twins must claim the exact records (same backend wins regardless
    // of iteration order); the analytic twins are then unmatched —
    // never silently paired cross-backend while a same-backend match
    // existed.
    let exact_grid = GridAxes {
        backends: vec![SimulatorBackend::Exact],
        ..mixed_axes
    }
    .build("exact-only");
    let exact_store = sweep_to_store(&exact_grid, &dir, "exact-only");
    let report = dnnlife_campaign::aggregate::compare_stores(&store, &exact_store);
    assert!(
        report.contains("shared=2 only-in-A=2 only-in-B=0"),
        "cross-backend fallback stole a same-backend match: {report}"
    );
    for line in report.lines().filter(|l| l.contains(" pp")) {
        assert!(
            line.contains("[exact]") && (line.contains("+0.000") || line.contains("-0.000")),
            "only exact-exact self-pairs may match here: {line}"
        );
    }
}

/// An exact-backend sweep journals per scenario and resumes to the
/// same bytes as a clean run — the resumable-store contract holds on
/// the new axis.
#[test]
fn exact_sweep_is_resumable() {
    let dir = util::scratch_dir("crossval-resume");
    let (_, npu) = crossval_axes(SimulatorBackend::Exact, 31);
    let grid = npu.build("exact-resume");

    let clean_path = dir.join("clean.jsonl");
    run_campaign(&grid, &clean_path, &CampaignOptions::default()).expect("clean run");
    let clean = std::fs::read_to_string(&clean_path).expect("read clean store");

    let keep = 2usize;
    let partial: String = clean.lines().take(keep).map(|l| format!("{l}\n")).collect();
    let resumed_path = dir.join("resumed.jsonl");
    std::fs::write(&resumed_path, partial).expect("write partial store");
    let outcome = run_campaign(
        &grid,
        &resumed_path,
        &CampaignOptions {
            threads: 2,
            resume: true,
            verbose: false,
            ..CampaignOptions::default()
        },
    )
    .expect("resumed run");
    assert_eq!(outcome.skipped, keep);
    assert_eq!(outcome.executed, grid.len() - keep);
    let resumed = std::fs::read_to_string(&resumed_path).expect("read resumed store");
    assert_eq!(resumed, clean, "resumed exact store differs from clean run");
}

/// Resuming an exact sweep under a different `--shards` value must
/// not mix two TRBG stream-deals in one store: shard-sensitive
/// DNN-Life records journaled under the old policy are re-run, the
/// shard-insensitive rest are skipped, and the finalized store is
/// byte-identical to a clean run at the new policy.
#[test]
fn resume_with_different_shards_reruns_dnn_life_records() {
    let dir = util::scratch_dir("crossval-shards-resume");
    let (_, npu) = crossval_axes(SimulatorBackend::Exact, 37);
    let grid = npu.build("shards-resume");
    let dnn_life = grid
        .scenarios
        .iter()
        .filter(|s| matches!(s.policy, PolicySpec::DnnLife { .. }))
        .count();
    assert!(dnn_life >= 1, "grid must hold a shard-sensitive scenario");

    let sweep = |path: &std::path::Path, shards: ShardPolicy, resume: bool| {
        run_campaign(
            &grid,
            path,
            &CampaignOptions {
                resume,
                shards,
                ..CampaignOptions::default()
            },
        )
        .expect("campaign run")
    };
    let clean2 = dir.join("clean-shards2.jsonl");
    sweep(&clean2, ShardPolicy::Fixed(2), false);

    let mixed = dir.join("mixed.jsonl");
    sweep(&mixed, ShardPolicy::Fixed(8), false);
    let outcome = sweep(&mixed, ShardPolicy::Fixed(2), true);
    assert_eq!(
        outcome.executed, dnn_life,
        "exactly the shard-sensitive records must re-run"
    );
    assert_eq!(outcome.skipped, grid.len() - dnn_life);
    assert_eq!(
        std::fs::read(&mixed).expect("read resumed store"),
        std::fs::read(&clean2).expect("read clean store"),
        "resumed store must match a clean run at the new shard policy"
    );

    // Same policy resumed: nothing re-runs.
    let again = sweep(&mixed, ShardPolicy::Fixed(2), true);
    assert_eq!(again.executed, 0);
}

/// Sharded DNN-Life stays inside the cross-validation contract: for
/// every shard count, the mean duty of a word-sharded exact run agrees
/// with the unsharded run within the documented stochastic tolerance
/// (each shard's seed-derived TRBG stream is identically distributed),
/// while the per-cell draws genuinely change — sharding is a stream
/// re-deal, not a no-op.
#[test]
fn sharded_dnn_life_agrees_with_unsharded_within_tolerance() {
    let mut spec = ExperimentSpec::fig11(
        NetworkKind::CustomMnist,
        PolicySpec::DnnLife {
            bias: 0.7,
            bias_balancing: true,
            m_bits: 4,
        },
        9,
    );
    spec.backend = SimulatorBackend::Exact;
    spec.sample_stride = 64;
    spec.inferences = 20;

    let run = |shards: ShardPolicy| {
        run_experiment_with(
            &spec,
            &RunOptions {
                threads: 1,
                shards,
                cancel: None,
                ..RunOptions::default()
            },
        )
        .expect("not cancelled")
    };
    let unsharded = run(ShardPolicy::Fixed(1));
    for shards in [2usize, 4, 8] {
        let sharded = run(ShardPolicy::Fixed(shards));
        assert_eq!(sharded.cells, unsharded.cells);
        assert_ne!(
            sharded.duty, unsharded.duty,
            "{shards} shards must re-deal the TRBG streams"
        );
        let delta = (sharded.duty.mean() - unsharded.duty.mean()).abs();
        assert!(
            delta < CROSSVAL_STOCHASTIC_MEAN_TOL,
            "{shards} shards: mean duty moved by {delta:.4}"
        );
    }
}

/// The analytic↔exact contract holds when the exact side runs
/// word-sharded: every policy × format cell of the fast-tier grids
/// cross-validates at `--shards 3` within the same tolerances as the
/// serial exact simulator.
#[test]
fn per_cell_duties_agree_under_sharded_exact_backend() {
    let (_, npu) = crossval_axes(SimulatorBackend::Exact, 11);
    let scenarios = npu.build("cv-npu-sharded").scenarios;
    let results = validate_scenarios_sharded(&scenarios, 0, ShardPolicy::Fixed(3));
    for cv in &results {
        assert!(
            cv.within_tolerance(),
            "{}: max|Δ|={:.3e}, mean(a)={:.4}, mean(e)={:.4}",
            cv.label,
            cv.max_abs_duty,
            cv.mean_duty_analytic,
            cv.mean_duty_exact
        );
        if !cv.stochastic {
            assert!(cv.max_abs_duty < 1e-12, "{}", cv.label);
        }
    }
}

/// Slow tier (`cargo test -- --ignored`): the full cross-validation at
/// a finer stride and more inferences, plus the AlexNet baseline
/// memory (117 fills) through the exact simulator — the configuration
/// the fast tier is too small to exercise.
#[test]
#[ignore = "slow cross-validation tier: run with `cargo test -- --ignored` (CI nightly job)"]
fn slow_crossval_finer_stride_and_alexnet_baseline() {
    let (mut baseline, mut npu) = crossval_axes(SimulatorBackend::Exact, 47);
    baseline.options.sample_stride = 64;
    baseline.options.inferences = 40;
    npu.options.sample_stride = 64;
    npu.options.inferences = 40;
    let mut scenarios = baseline.build("slow-baseline").scenarios;
    scenarios.extend(npu.build("slow-npu").scenarios);

    // AlexNet on the 512 KB baseline: K = 117 fills per inference.
    let mut alex = ExperimentSpec::fig9(NumberFormat::Int8Symmetric, PolicySpec::Inversion, 5);
    alex.sample_stride = 4096;
    alex.inferences = 10;
    alex.backend = SimulatorBackend::Exact;
    scenarios.push(alex);

    let results = validate_scenarios(&scenarios, 0);
    for cv in &results {
        assert!(
            cv.within_tolerance(),
            "{}: max|Δ|={:.3e}, mean(a)={:.4}, mean(e)={:.4}",
            cv.label,
            cv.max_abs_duty,
            cv.mean_duty_analytic,
            cv.mean_duty_exact
        );
    }
}

/// Slow tier (`cargo test -- --ignored`, CI nightly): the same
/// cross-validation suite with the exact side split across four word
/// shards — the sharded simulator must satisfy the documented
/// tolerances at finer strides too, including on the AlexNet-scale
/// baseline memory where the shards are thousands of words wide.
#[test]
#[ignore = "slow cross-validation tier: run with `cargo test -- --ignored` (CI nightly job)"]
fn slow_crossval_with_four_shards() {
    let (mut baseline, mut npu) = crossval_axes(SimulatorBackend::Exact, 53);
    baseline.options.sample_stride = 64;
    baseline.options.inferences = 40;
    npu.options.sample_stride = 64;
    npu.options.inferences = 40;
    let mut scenarios = baseline.build("slow-baseline-4s").scenarios;
    scenarios.extend(npu.build("slow-npu-4s").scenarios);

    let mut alex = ExperimentSpec::fig9(NumberFormat::Int8Symmetric, PolicySpec::Inversion, 5);
    alex.sample_stride = 4096;
    alex.inferences = 10;
    alex.backend = SimulatorBackend::Exact;
    scenarios.push(alex);

    let results = validate_scenarios_sharded(&scenarios, 0, ShardPolicy::Fixed(4));
    for cv in &results {
        assert!(
            cv.within_tolerance(),
            "{} [4 shards]: max|Δ|={:.3e}, mean(a)={:.4}, mean(e)={:.4}",
            cv.label,
            cv.max_abs_duty,
            cv.mean_duty_analytic,
            cv.mean_duty_exact
        );
    }
}
