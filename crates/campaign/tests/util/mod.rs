//! Shared scratch-directory helper for campaign integration tests.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh per-test scratch directory under the system temp dir,
/// cleaned up lazily by later runs (recreated empty when reused).
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dnnlife-campaign-test-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
