//! Telemetry observability contract: instrumentation never changes a
//! single store byte, the events journal tolerates torn tails across
//! resume, the perf profiler renders from real journals, and progress
//! output degrades when stderr is not a terminal.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use dnnlife_campaign::grid::{CampaignGrid, GridAxes, SweepOptions};
use dnnlife_campaign::{perf, trace};
use dnnlife_campaign::{
    run_campaign_instrumented, run_injection_campaign_instrumented, CampaignOptions,
    InjectCampaignOptions, InjectionGrid, InjectionParams, Instrumentation, ShardPolicy, Telemetry,
};
use dnnlife_core::experiment::{DwellModel, NetworkKind, Platform, PolicySpec, SimulatorBackend};
use dnnlife_core::RepairPolicy;
use dnnlife_quant::NumberFormat;
use dnnlife_telemetry::Histogram;

mod util;

/// Deterministic-policy grid over both backends: every cell's result
/// is independent of the thread *and* word-shard count, so one
/// uninstrumented reference pins the bytes for the whole
/// threads × shards × telemetry matrix.
fn sweep_grid(policies: Vec<PolicySpec>) -> CampaignGrid {
    GridAxes {
        platforms: vec![Platform::TpuLike],
        networks: vec![NetworkKind::CustomMnist],
        formats: vec![NumberFormat::Int8Symmetric],
        policies,
        lifetimes_years: vec![7.0],
        backends: vec![SimulatorBackend::Analytic, SimulatorBackend::Exact],
        dwells: vec![DwellModel::Uniform],
        repairs: Vec::new(),
        techs: Vec::new(),
        options: SweepOptions {
            base_seed: 42,
            sample_stride: 256,
            inferences: 8,
            ..SweepOptions::default()
        },
    }
    .build("telemetry-test")
}

fn deterministic_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::None,
        PolicySpec::Inversion,
        PolicySpec::BarrelShifter,
    ]
}

fn sweep_with(
    grid: &CampaignGrid,
    path: &Path,
    threads: usize,
    shards: ShardPolicy,
    resume: bool,
    telemetry: Option<&Telemetry>,
) -> Vec<u8> {
    let options = CampaignOptions {
        threads,
        resume,
        verbose: false,
        shards,
    };
    run_campaign_instrumented(
        grid,
        path,
        &options,
        None,
        Instrumentation {
            telemetry,
            progress: None,
        },
    )
    .expect("campaign run");
    std::fs::read(path).expect("read store")
}

/// The tentpole's hard invariant: the finished store is byte-identical
/// with telemetry on or off, at any thread and word-shard count.
#[test]
fn sweep_store_bytes_identical_with_telemetry_on_or_off() {
    let dir = util::scratch_dir("telemetry-sweep-identity");
    let grid = sweep_grid(deterministic_policies());

    let reference = sweep_with(
        &grid,
        &dir.join("plain.jsonl"),
        1,
        ShardPolicy::Fixed(1),
        false,
        None,
    );
    assert!(!reference.is_empty());

    let matrix = [
        (1usize, ShardPolicy::Fixed(1)),
        (8, ShardPolicy::Fixed(1)),
        (1, ShardPolicy::Fixed(8)),
        (8, ShardPolicy::Fixed(8)),
        (8, ShardPolicy::Auto),
    ];
    for (i, (threads, shards)) in matrix.iter().enumerate() {
        let events = dir.join(format!("cell{i}.events.jsonl"));
        let telemetry = Telemetry::with_journal(&events).expect("open journal");
        let bytes = sweep_with(
            &grid,
            &dir.join(format!("cell{i}.jsonl")),
            *threads,
            *shards,
            false,
            Some(&telemetry),
        );
        assert_eq!(
            reference, bytes,
            "telemetry changed store bytes at threads={threads} shards={shards:?}"
        );
        let summary = perf::load_events(&events).expect("load journal");
        assert_eq!(summary.scenarios.len(), grid.len());
        assert_eq!(summary.skipped_lines, 0);
    }
}

/// `campaign_start` carries an absolute `unix_ms` anchor alongside the
/// relative `t_ms` stream, and `perf` surfaces it.
#[test]
fn campaign_start_carries_absolute_unix_anchor() {
    let dir = util::scratch_dir("telemetry-unix-anchor");
    let grid = sweep_grid(deterministic_policies());
    let events = dir.join("anchored.events.jsonl");
    let telemetry = Telemetry::with_journal(&events).expect("open journal");
    let before = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_millis() as u64;
    sweep_with(
        &grid,
        &dir.join("anchored.jsonl"),
        1,
        ShardPolicy::Fixed(1),
        false,
        Some(&telemetry),
    );
    let after = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .as_millis() as u64;

    let journal = std::fs::read_to_string(&events).expect("read journal");
    let start_line = journal
        .lines()
        .find(|l| l.contains(r#""ev":"campaign_start""#))
        .expect("journal has a campaign_start event");
    assert!(
        start_line.contains(r#""unix_ms":"#),
        "campaign_start must carry the absolute anchor: {start_line}"
    );

    let summary = perf::load_events(&events).expect("load journal");
    let anchor = summary.anchor_unix_ms.expect("perf surfaces the anchor");
    assert!(
        (before..=after).contains(&anchor),
        "anchor {anchor} outside run window [{before}, {after}]"
    );
}

fn tiny_params() -> InjectionParams {
    InjectionParams {
        base_seed: 7,
        inferences: 2,
        ages_years: vec![0.0, 7.0],
        trials: 1,
        eval_images: 4,
        train_steps: 0,
        noise_sigma_mv: 65.0,
        repair: RepairPolicy::Secded { interleave: 4 },
        tech: dnnlife_core::MemoryTech::SramNbti,
    }
}

fn inject_grid() -> InjectionGrid {
    InjectionGrid::build(
        "telemetry-inject-test",
        Platform::TpuLike,
        NetworkKind::CustomMnist,
        NumberFormat::Int8Symmetric,
        &[PolicySpec::None, PolicySpec::Inversion],
        &tiny_params(),
    )
}

/// Same invariant for the fault-injection store, plus the SECDED
/// roll-up counters the journal is expected to carry.
#[test]
fn inject_store_bytes_identical_with_telemetry_on_or_off() {
    let dir = util::scratch_dir("telemetry-inject-identity");
    let grid = inject_grid();

    let run = |path: &Path, threads: usize, telemetry: Option<&Telemetry>| -> Vec<u8> {
        let options = InjectCampaignOptions {
            threads,
            shards: 0,
            resume: false,
            verbose: false,
        };
        run_injection_campaign_instrumented(
            &grid,
            path,
            &options,
            None,
            Instrumentation {
                telemetry,
                progress: None,
            },
        )
        .expect("injection campaign");
        std::fs::read(path).expect("read store")
    };

    let reference = run(&dir.join("plain.jsonl"), 1, None);
    assert!(!reference.is_empty());

    let events = dir.join("instrumented.events.jsonl");
    let telemetry = Telemetry::with_journal(&events).expect("open journal");
    let instrumented = run(&dir.join("instrumented.jsonl"), 4, Some(&telemetry));
    assert_eq!(
        reference, instrumented,
        "telemetry changed injection store bytes"
    );

    let summary = perf::load_events(&events).expect("load journal");
    assert_eq!(summary.scenarios.len(), grid.len());
    assert!(summary.counter("injection_trials") > 0);
    // SECDED interleave=4 at 7 years corrects at least some words in
    // these cells; the roll-up must surface that.
    assert!(summary.counter("ecc_corrected_words") > 0);
}

/// The journal shares `JsonlStore`'s crash posture: a torn trailing
/// line (power cut mid-append) is truncated on reopen, and a resumed
/// campaign appends a second invocation that the profiler folds in.
#[test]
fn events_journal_survives_torn_trailing_line_on_resume() {
    let dir = util::scratch_dir("telemetry-torn-tail");
    let store = dir.join("store.jsonl");
    let events = dir.join("store.events.jsonl");
    let partial = sweep_grid(vec![PolicySpec::None]);
    let full = sweep_grid(deterministic_policies());

    let telemetry = Telemetry::with_journal(&events).expect("open journal");
    sweep_with(
        &partial,
        &store,
        2,
        ShardPolicy::Auto,
        false,
        Some(&telemetry),
    );
    drop(telemetry);

    // Tear the tail: a partial event line with no terminating newline.
    let mut journal = std::fs::read(&events).expect("read journal");
    assert!(journal.ends_with(b"\n"));
    journal.extend_from_slice(br#"{"ev":"scenario_done","i":9"#);
    std::fs::write(&events, &journal).expect("tear journal");

    // Reopen on the same path and resume the rest of the grid.
    let telemetry = Telemetry::with_journal(&events).expect("reopen journal");
    let resumed = sweep_with(&full, &store, 2, ShardPolicy::Auto, true, Some(&telemetry));
    drop(telemetry);

    // Resume + telemetry still lands on the clean single-shot bytes.
    let clean = sweep_with(
        &full,
        &dir.join("clean.jsonl"),
        1,
        ShardPolicy::Auto,
        false,
        None,
    );
    assert_eq!(clean, resumed, "resumed store diverged from clean run");

    // The torn line is gone, both invocations parse, and the profiler
    // sums them: every scenario appears exactly once per execution.
    let summary = perf::load_events(&events).expect("load journal");
    assert_eq!(
        summary.skipped_lines, 0,
        "torn tail leaked into the journal"
    );
    assert_eq!(summary.campaigns.len(), 2, "expected two invocations");
    assert_eq!(
        summary.scenarios.len(),
        partial.len() + (full.len() - partial.len())
    );
}

/// `dnnlife perf` renders its tables from a real sweep journal, and a
/// self-diff never flags a regression.
#[test]
fn perf_profiler_renders_tables_and_self_diff_is_flat() {
    let dir = util::scratch_dir("telemetry-perf-render");
    let grid = sweep_grid(deterministic_policies());
    let events = dir.join("sweep.events.jsonl");
    let telemetry = Telemetry::with_journal(&events).expect("open journal");
    sweep_with(
        &grid,
        &dir.join("sweep.jsonl"),
        4,
        ShardPolicy::Auto,
        false,
        Some(&telemetry),
    );
    drop(telemetry);

    let summary = perf::load_events(&events).expect("load journal");
    let text = summary.render_text();
    for needle in [
        "Slowest cells",
        "Per-policy throughput",
        "Counters",
        "scenarios_completed",
        "exact_word_writes",
        "Without Aging Mitigation",
    ] {
        assert!(
            text.contains(needle),
            "perf text missing `{needle}`:\n{text}"
        );
    }
    assert!(summary.exact_words_per_sec().unwrap_or(0.0) > 0.0);
    assert!(summary.thread_utilization().unwrap_or(0.0) > 0.0);

    let diff = perf::diff(&summary, &summary, perf::DIFF_THRESHOLD);
    assert!(!diff.has_regression(), "self-diff flagged a regression");
    assert!(diff.render_text().contains("campaign_wall_ms"));
}

/// `dnnlife perf --diff` must exit non-zero when the compared journal
/// lacks a metric the baseline journal reports (a vanished
/// `exact_words_per_sec` used to silently pass the gate).
#[test]
fn perf_diff_fails_when_current_journal_lacks_baseline_metric() {
    let dir = util::scratch_dir("telemetry-perf-missing");
    let with_exact = dir.join("baseline.events.jsonl");
    let without_exact = dir.join("current.events.jsonl");
    std::fs::write(
        &with_exact,
        concat!(
            r#"{"ev":"campaign_start","t_ms":0,"name":"fig11","budget":2}"#,
            "\n",
            r#"{"ev":"scenario_done","t_ms":50,"i":0,"label":"a","group":"none","wall_ms":50.0,"queue_ms":1.0,"threads":1}"#,
            "\n",
            r#"{"ev":"counters","t_ms":60,"exact_word_writes":1000000,"scenario_wall_nanos":50000000}"#,
            "\n",
            r#"{"ev":"campaign_done","t_ms":61}"#,
            "\n",
        ),
    )
    .expect("write baseline journal");
    std::fs::write(
        &without_exact,
        concat!(
            r#"{"ev":"campaign_start","t_ms":0,"name":"fig11","budget":2}"#,
            "\n",
            r#"{"ev":"scenario_done","t_ms":50,"i":0,"label":"a","group":"none","wall_ms":50.0,"queue_ms":1.0,"threads":1}"#,
            "\n",
            r#"{"ev":"campaign_done","t_ms":61}"#,
            "\n",
        ),
    )
    .expect("write current journal");

    let run = |a: &Path, b: &Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_dnnlife"))
            .args(["perf", "--events"])
            .arg(a)
            .arg("--diff")
            .arg(b)
            .output()
            .expect("run dnnlife perf")
    };

    let failing = run(&with_exact, &without_exact);
    assert!(
        !failing.status.success(),
        "perf --diff must fail when the current journal lacks exact \
         throughput, got: {}",
        String::from_utf8_lossy(&failing.stdout)
    );
    assert!(
        String::from_utf8_lossy(&failing.stdout).contains("MISSING"),
        "diff table must carry an explicit MISSING row: {}",
        String::from_utf8_lossy(&failing.stdout)
    );

    let passing = run(&with_exact, &with_exact);
    assert!(
        passing.status.success(),
        "self-diff must pass: {}",
        String::from_utf8_lossy(&passing.stderr)
    );
}

/// Satellite 1: a cancelled campaign reports what completed, what was
/// discarded in flight, and what never started — in the error the CLI
/// prints on the SIGINT path — and journals a `campaign_abort` event.
#[test]
fn cancelled_campaign_reports_completion_summary() {
    let dir = util::scratch_dir("telemetry-cancel");
    let grid = sweep_grid(deterministic_policies());
    let events = dir.join("aborted.events.jsonl");
    let telemetry = Telemetry::with_journal(&events).expect("open journal");
    let cancel = AtomicBool::new(true); // raised before the first claim
    let err = run_campaign_instrumented(
        &grid,
        dir.join("aborted.jsonl"),
        &CampaignOptions::default(),
        Some(&cancel),
        Instrumentation {
            telemetry: Some(&telemetry),
            progress: None,
        },
    )
    .expect_err("pre-raised cancel token must abort the campaign");
    drop(telemetry);
    assert!(cancel.load(Ordering::Relaxed));
    assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
    let message = err.to_string();
    for needle in [
        "never started",
        "in-flight discarded",
        "rerun with --resume",
    ] {
        assert!(
            message.contains(needle),
            "summary missing `{needle}`: {message}"
        );
    }

    let journal = std::fs::read_to_string(&events).expect("read journal");
    assert!(
        journal.contains(r#""ev":"campaign_abort""#),
        "abort not journaled:\n{journal}"
    );
}

/// The span layer journals a reconstructable forest: every span's
/// parent resolves (zero orphans), every span ends, and the expected
/// label taxonomy appears — campaign root, per-item scenarios, and the
/// per-shard simulator spans of both backends.
#[test]
fn sweep_journal_reconstructs_a_complete_span_forest() {
    let dir = util::scratch_dir("telemetry-span-forest");
    let grid = sweep_grid(deterministic_policies());
    let events = dir.join("spans.events.jsonl");
    let telemetry = Telemetry::with_journal(&events).expect("open journal");
    sweep_with(
        &grid,
        &dir.join("spans.jsonl"),
        4,
        ShardPolicy::Fixed(2),
        false,
        Some(&telemetry),
    );
    drop(telemetry);

    let forest = trace::load_trace(&events).expect("load journal");
    assert!(
        forest.is_complete_forest(),
        "{} orphan span(s) in the forest",
        forest.orphans
    );
    assert_eq!(forest.unended, 0, "all spans must end");
    assert_eq!(forest.skipped_lines, 0);
    assert_eq!(forest.roots().len(), 1, "one campaign root");

    let labels: Vec<&str> = forest.spans.iter().map(|s| s.label.as_str()).collect();
    assert!(labels.iter().any(|l| l.starts_with("campaign:")));
    let count = |needle: &str| labels.iter().filter(|l| **l == needle).count();
    assert_eq!(count("scenario"), grid.len(), "one span per scenario");
    // Both backends shard their work under the scenario spans; the
    // exact backend also journals its merge step.
    assert!(count("exact_shard") > 0, "labels: {labels:?}");
    assert!(count("exact_merge") > 0, "labels: {labels:?}");
    assert!(count("analytic_shard") > 0, "labels: {labels:?}");

    // The flame table and critical path render from the same forest.
    let text = forest.render_text();
    assert!(text.contains("Hot paths"), "{text}");
    assert!(text.contains("Critical path: campaign:"), "{text}");
    let paths = forest.critical_paths();
    assert_eq!(paths.len(), 1);
    assert!(paths[0].1.len() >= 2, "path descends into scenarios");
}

/// The injector nests per-trial decode and score spans under the
/// executor's scenario spans.
#[test]
fn injection_journal_carries_per_trial_spans() {
    let dir = util::scratch_dir("telemetry-inject-spans");
    let grid = inject_grid();
    let events = dir.join("inject.events.jsonl");
    let telemetry = Telemetry::with_journal(&events).expect("open journal");
    let options = InjectCampaignOptions {
        threads: 2,
        shards: 0,
        resume: false,
        verbose: false,
    };
    run_injection_campaign_instrumented(
        &grid,
        dir.join("inject.jsonl"),
        &options,
        None,
        Instrumentation {
            telemetry: Some(&telemetry),
            progress: None,
        },
    )
    .expect("injection campaign");
    drop(telemetry);

    let forest = trace::load_trace(&events).expect("load journal");
    assert!(forest.is_complete_forest());
    assert_eq!(forest.unended, 0);
    let count = |needle: &str| forest.spans.iter().filter(|s| s.label == needle).count();
    assert!(count("trial_decode") > 0);
    assert!(count("trial_score") > 0);
    // Every trial span's parent is a scenario span.
    for span in &forest.spans {
        if span.label == "trial_decode" || span.label == "trial_score" {
            let parent = span.parent.expect("trial spans are nested");
            let parent = forest
                .spans
                .iter()
                .find(|s| s.id == parent)
                .expect("parent defined");
            assert_eq!(parent.label, "scenario");
        }
    }
}

/// The journal's `hist` roll-ups reconstruct scenario wall-time
/// percentiles within one log bucket of the exact per-scenario walls
/// the same journal records.
#[test]
fn perf_percentiles_match_recorded_scenario_walls() {
    let dir = util::scratch_dir("telemetry-percentiles");
    let grid = sweep_grid(deterministic_policies());
    let events = dir.join("hist.events.jsonl");
    let telemetry = Telemetry::with_journal(&events).expect("open journal");
    sweep_with(
        &grid,
        &dir.join("hist.jsonl"),
        4,
        ShardPolicy::Auto,
        false,
        Some(&telemetry),
    );
    drop(telemetry);

    let summary = perf::load_events(&events).expect("load journal");
    let hist = summary
        .hist("scenario_wall_us")
        .expect("journal carries the wall histogram");
    assert_eq!(hist.count(), grid.len() as u64);

    let mut walls_us: Vec<u64> = summary
        .scenarios
        .iter()
        .map(|s| (s.wall_ms * 1_000.0) as u64)
        .collect();
    walls_us.sort_unstable();
    for q in [0.5, 0.9, 0.99] {
        let rank = ((q * walls_us.len() as f64).ceil() as usize).clamp(1, walls_us.len());
        let truth = walls_us[rank - 1];
        let est = hist.quantile(q);
        let (eb, tb) = (
            Histogram::bucket_index(est) as i64,
            Histogram::bucket_index(truth) as i64,
        );
        assert!(
            (eb - tb).abs() <= 1,
            "q={q}: histogram {est}us (bucket {eb}) vs recorded {truth}us (bucket {tb})"
        );
    }
    // And the summary renders them.
    assert!(summary.render_text().contains("Latency percentiles"));
}

/// `--metrics-out` writes a Prometheus exposition plus a JSON twin —
/// even without `--telemetry`, and without inventing an events journal.
#[test]
fn metrics_out_writes_prometheus_and_json_twin() {
    let dir = util::scratch_dir("telemetry-metrics-out");
    let out = dir.join("fig11.jsonl");
    let prom = dir.join("metrics.prom");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_dnnlife"))
        .args([
            "sweep",
            "--grid",
            "fig11",
            "--stride",
            "4096",
            "--inferences",
            "2",
            "--threads",
            "2",
        ])
        .arg("--out")
        .arg(&out)
        .arg("--metrics-out")
        .arg(&prom)
        .output()
        .expect("run dnnlife sweep");
    assert!(
        output.status.success(),
        "sweep failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let text = std::fs::read_to_string(&prom).expect("exposition written");
    for needle in [
        "# HELP dnnlife_scenarios_completed",
        "# TYPE dnnlife_scenarios_completed counter",
        "# TYPE dnnlife_scenario_wall_us histogram",
        "dnnlife_scenario_wall_us_bucket{le=\"+Inf\"}",
        "dnnlife_scenario_wall_us_count",
        "# TYPE dnnlife_campaign_workers gauge",
    ] {
        assert!(text.contains(needle), "missing `{needle}`:\n{text}");
    }

    let twin = dir.join("metrics.json");
    let json = std::fs::read_to_string(&twin).expect("json twin written");
    let value: serde::Value = serde_json::from_str(&json).expect("twin parses");
    assert!(
        matches!(
            value.get("scenarios_completed"),
            Some(serde::Value::Object(_))
        ),
        "twin must carry the counter: {json}"
    );
    assert!(
        !dir.join("fig11.events.jsonl").exists(),
        "--metrics-out alone must not create an events journal"
    );
}

/// `dnnlife trace` renders the forest from a CLI-produced journal and
/// `--json` round-trips with zero orphans; an eventless journal exits
/// with the no-store code 3.
#[test]
fn trace_cli_reports_the_forest_and_json_parses() {
    let dir = util::scratch_dir("telemetry-trace-cli");
    let out = dir.join("fig11.jsonl");
    let sweep = std::process::Command::new(env!("CARGO_BIN_EXE_dnnlife"))
        .args([
            "sweep",
            "--grid",
            "fig11",
            "--stride",
            "4096",
            "--inferences",
            "2",
            "--threads",
            "2",
            "--telemetry",
        ])
        .arg("--out")
        .arg(&out)
        .output()
        .expect("run dnnlife sweep");
    assert!(
        sweep.status.success(),
        "sweep failed: {}",
        String::from_utf8_lossy(&sweep.stderr)
    );
    let events = dir.join("fig11.events.jsonl");

    let text = std::process::Command::new(env!("CARGO_BIN_EXE_dnnlife"))
        .args(["trace", "--events"])
        .arg(&events)
        .output()
        .expect("run dnnlife trace");
    assert!(text.status.success());
    let stdout = String::from_utf8_lossy(&text.stdout);
    assert!(stdout.contains("0 orphan(s)"), "{stdout}");
    assert!(stdout.contains("Hot paths"), "{stdout}");

    let json = std::process::Command::new(env!("CARGO_BIN_EXE_dnnlife"))
        .args(["trace", "--json", "--events"])
        .arg(&events)
        .output()
        .expect("run dnnlife trace --json");
    assert!(json.status.success());
    let value: serde::Value =
        serde_json::from_str(String::from_utf8_lossy(&json.stdout).trim()).expect("json parses");
    let Some(serde::Value::Number(orphans)) = value.get("orphans") else {
        panic!("orphans field");
    };
    assert_eq!((*orphans).as_u64(), Some(0));

    // A journal with no span events is "nothing to report yet": exit 3.
    let empty = dir.join("empty.events.jsonl");
    std::fs::write(&empty, "{\"ev\":\"campaign_done\",\"t_ms\":1}\n").expect("write journal");
    let missing = std::process::Command::new(env!("CARGO_BIN_EXE_dnnlife"))
        .args(["trace", "--events"])
        .arg(&empty)
        .output()
        .expect("run dnnlife trace");
    assert_eq!(missing.status.code(), Some(3));
}

/// Satellite 3: with stderr piped (not a tty), `--progress` degrades
/// to plain periodic lines — no `\r` cursor rewrites in the stream.
#[test]
fn progress_degrades_to_plain_lines_when_stderr_is_not_a_tty() {
    let dir = util::scratch_dir("telemetry-no-tty");
    let out = dir.join("fig11.jsonl");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_dnnlife"))
        .args([
            "sweep",
            "--grid",
            "fig11",
            "--stride",
            "4096",
            "--inferences",
            "2",
            "--threads",
            "2",
            "--progress",
            "--out",
        ])
        .arg(&out)
        .output()
        .expect("run dnnlife sweep");
    assert!(
        output.status.success(),
        "sweep failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        !output.stderr.contains(&b'\r'),
        "live \\r progress leaked to a non-tty stderr: {:?}",
        String::from_utf8_lossy(&output.stderr)
    );
}
