//! Integration tests for the fault-injection campaign: store-level
//! determinism, resume, table rendering, and (nightly tier) the
//! paper's accuracy claim.
//!
//! The tier-1 smoke test keeps debug-mode cost down by using the
//! cheap deterministic policies and an untrained network — the
//! stochastic DNN-Life policy and the trained-accuracy claim run in
//! the nightly `--ignored` release tier (and in `dnnlife-faultsim`'s
//! own unit tests at smaller scale).

use std::path::Path;

use dnnlife_campaign::{
    accuracy_vs_age_table, ecc_comparison_table, run_injection_campaign, InjectCampaignOptions,
    InjectionGrid, InjectionParams, InjectionStore,
};
use dnnlife_core::experiment::{fig11_policies, NetworkKind, Platform, PolicySpec};
use dnnlife_core::RepairPolicy;
use dnnlife_quant::NumberFormat;

mod util;

fn dnn_life() -> PolicySpec {
    PolicySpec::DnnLife {
        bias: 0.5,
        bias_balancing: true,
        m_bits: 4,
    }
}

/// Debug-CI sizing: untrained network, two checkpoints, tiny eval.
fn tiny_params() -> InjectionParams {
    InjectionParams {
        base_seed: 7,
        inferences: 2,
        ages_years: vec![0.0, 7.0],
        trials: 1,
        eval_images: 4,
        train_steps: 0,
        noise_sigma_mv: 65.0,
        repair: RepairPolicy::None,
        tech: dnnlife_core::MemoryTech::SramNbti,
    }
}

fn tiny_grid(policies: &[PolicySpec]) -> InjectionGrid {
    InjectionGrid::build(
        "inject-test",
        Platform::TpuLike,
        NetworkKind::CustomMnist,
        NumberFormat::Int8Symmetric,
        policies,
        &tiny_params(),
    )
}

fn run(grid: &InjectionGrid, path: &Path, threads: usize, resume: bool) {
    let options = InjectCampaignOptions {
        threads,
        shards: 0,
        resume,
        verbose: false,
    };
    run_injection_campaign(grid, path, &options, None).expect("injection campaign");
}

/// One end-to-end flow covering the store contract: byte-identity
/// across thread counts, interrupted-then-resumed equality, and the
/// rendered accuracy table.
#[test]
fn injection_store_is_deterministic_resumable_and_renders() {
    let dir = util::scratch_dir("inject-smoke");
    let full = tiny_grid(&[PolicySpec::None, PolicySpec::Inversion]);
    let partial = tiny_grid(&[PolicySpec::None]);

    // Clean single-shot reference at one thread...
    let path_1 = dir.join("t1.jsonl");
    run(&full, &path_1, 1, false);
    let bytes_1 = std::fs::read(&path_1).expect("read store 1");
    assert!(!bytes_1.is_empty());

    // ...must match a wide-budget run byte for byte.
    let path_8 = dir.join("t8.jsonl");
    run(&full, &path_8, 8, false);
    assert_eq!(
        bytes_1,
        std::fs::read(&path_8).expect("read store 8"),
        "injection stores must be byte-identical for --threads 1 vs 8"
    );

    // "Interrupted" flow: only the first cell completed, then a resume
    // run finishes the rest and finalizes to the clean bytes.
    let resumed = dir.join("resumed.jsonl");
    run(&partial, &resumed, 1, false);
    let options = InjectCampaignOptions {
        threads: 2,
        shards: 0,
        resume: true,
        verbose: false,
    };
    let outcome = run_injection_campaign(&full, &resumed, &options, None).expect("resume campaign");
    assert_eq!(outcome.skipped, 1, "the completed cell must be reused");
    assert_eq!(outcome.executed, 1);
    assert_eq!(
        bytes_1,
        std::fs::read(&resumed).unwrap(),
        "a resumed store must finalize to the clean run's bytes"
    );

    // Table rendering over the finished store.
    let store = InjectionStore::open(&path_1).expect("open store");
    assert_eq!(store.len(), 2);
    let table = accuracy_vs_age_table(&store);
    assert!(table.contains("Accuracy vs age"), "{table}");
    assert!(table.contains("Without Aging Mitigation"), "{table}");
    assert!(table.contains("Inversion-based"), "{table}");
    assert!(table.contains("0y") && table.contains("7y"), "{table}");
    assert!(table.contains("mean flipped bits"), "{table}");
    for record in store.records() {
        assert_eq!(record.key, record.spec.content_key());
        assert_eq!(record.result.ages.len(), 2);
    }
}

/// The exact parameter profile the committed pre-repair-axis golden
/// store (`tests/golden/inject_pre_ecc.jsonl`) was generated with:
/// `dnnlife inject --platform npu --format int8 --ages 0,7 --trials 1
/// --eval-images 4 --train-steps 0 --noise-mv 65 --inferences 2
/// --seed 7` — built by the binary at the commit *before* the repair
/// axis existed.
fn golden_params() -> InjectionParams {
    InjectionParams {
        base_seed: 7,
        inferences: 2,
        ages_years: vec![0.0, 7.0],
        trials: 1,
        eval_images: 4,
        train_steps: 0,
        noise_sigma_mv: 65.0,
        repair: RepairPolicy::None,
        tech: dnnlife_core::MemoryTech::SramNbti,
    }
}

fn golden_bytes() -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/inject_pre_ecc.jsonl");
    std::fs::read(path).expect("read committed golden store")
}

/// The repair-axis schema growth must not move a single byte of a
/// `RepairPolicy::None` store: re-running the deterministic policy
/// cells of the golden campaign reproduces the corresponding lines of
/// the pre-repair-axis golden file exactly. (The store finalizes in
/// grid order and scenario seeds are grid-composition-independent, so
/// the two-cell store equals the golden file's first two lines; the
/// nightly tier checks the full four-cell file.)
#[test]
fn none_axis_store_is_byte_identical_to_pre_repair_golden() {
    let dir = util::scratch_dir("inject-golden");
    let grid = InjectionGrid::build(
        "inject",
        Platform::TpuLike,
        NetworkKind::CustomMnist,
        NumberFormat::Int8Symmetric,
        &[PolicySpec::None, PolicySpec::Inversion],
        &golden_params(),
    );
    let path = dir.join("golden-check.jsonl");
    run(&grid, &path, 2, false);
    let produced = std::fs::read(&path).expect("read produced store");
    let golden = golden_bytes();
    let expected: Vec<u8> = golden
        .split_inclusive(|&b| b == b'\n')
        .take(2)
        .flatten()
        .copied()
        .collect();
    assert!(
        produced == expected,
        "RepairPolicy::None store bytes drifted from the pre-repair-axis golden file"
    );
}

/// Nightly tier: the *whole* golden campaign — including the
/// stochastic DNN-Life cell — reproduces the pre-repair-axis store
/// byte for byte.
#[test]
#[ignore = "stride-1 DNN-Life duty simulation; run in the nightly release tier"]
fn full_none_axis_store_matches_pre_repair_golden_bytes() {
    let dir = util::scratch_dir("inject-golden-full");
    let grid = InjectionGrid::build(
        "inject",
        Platform::TpuLike,
        NetworkKind::CustomMnist,
        NumberFormat::Int8Symmetric,
        &fig11_policies(),
        &golden_params(),
    );
    let path = dir.join("golden-full.jsonl");
    run(&grid, &path, 0, false);
    assert!(
        std::fs::read(&path).expect("read produced store") == golden_bytes(),
        "full RepairPolicy::None store drifted from the pre-repair-axis golden file"
    );
}

/// The committed golden stores pin the content-hash contract across
/// PRs: every record's stored key must still equal the hash the
/// current binary derives from its spec, and the key literals
/// themselves must not drift (opening the zoo — deleting the
/// runnable-network gate — must not move a single pre-existing key).
#[test]
fn committed_golden_stores_keep_their_content_keys() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let expected: [(&str, &[&str]); 2] = [
        (
            "inject_pre_ecc.jsonl",
            &[
                "bc5891dc25fcfcb7",
                "87033a87edbee88d",
                "8822a501fb4c36ee",
                "f87ee536324ae06a",
            ],
        ),
        (
            "inject_alexnet.jsonl",
            &["7582925149461669", "5728daf3853f9456"],
        ),
    ];
    for (file, keys) in expected {
        let store = InjectionStore::open(golden_dir.join(file)).expect(file);
        // `records()` iterates in key order, not file order.
        let mut stored: Vec<&str> = store.records().map(|r| r.key.as_str()).collect();
        stored.sort_unstable();
        let mut keys = keys.to_vec();
        keys.sort_unstable();
        assert_eq!(stored, keys, "{file}: content keys drifted");
        for record in store.records() {
            assert_eq!(
                record.key,
                record.spec.content_key(),
                "{file}: stored key no longer matches the spec's content hash"
            );
        }
    }
}

/// The exact parameter profile of the committed AlexNet golden store
/// (`tests/golden/inject_alexnet.jsonl`), generated with the CLI:
/// `dnnlife inject --network alexnet --platform npu --format int8
/// --policy without,inversion --ages 0,7 --trials 2 --eval-images 4
/// --train-steps 0 --noise-mv 65 --inferences 2 --seed 7`.
fn alexnet_golden_params() -> InjectionParams {
    InjectionParams {
        trials: 2,
        ..golden_params()
    }
}

/// Nightly tier: the im2col-executor-backed AlexNet injection store
/// reproduces the committed golden file byte for byte at both ends of
/// the thread budget. Two trials per cell make the worker split at
/// `--threads 8` real, so this pins both executor determinism (im2col
/// GEMM under a per-image thread budget) and store-order determinism.
#[test]
#[ignore = "runs the full AlexNet forward pass; run in the nightly release tier"]
fn alexnet_store_matches_committed_golden_across_threads() {
    let dir = util::scratch_dir("inject-alexnet-golden");
    let grid = InjectionGrid::build(
        "inject",
        Platform::TpuLike,
        NetworkKind::Alexnet,
        NumberFormat::Int8Symmetric,
        &[PolicySpec::None, PolicySpec::Inversion],
        &alexnet_golden_params(),
    );
    assert_eq!(grid.len(), 2);
    let golden = {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/inject_alexnet.jsonl");
        std::fs::read(path).expect("read committed alexnet golden store")
    };
    for threads in [1, 8] {
        let path = dir.join(format!("alexnet-t{threads}.jsonl"));
        run(&grid, &path, threads, false);
        assert!(
            std::fs::read(&path).expect("read produced store") == golden,
            "alexnet store at --threads {threads} drifted from the committed golden file"
        );
    }
}

/// The `--ecc` twin of the store contract: a SECDED campaign resumed
/// under a different thread count finalizes to the clean run's bytes,
/// and the rendered tables carry the decoder statistics.
#[test]
fn secded_campaign_resume_is_thread_byte_identical_and_renders() {
    let dir = util::scratch_dir("inject-secded");
    let secded = InjectionParams {
        repair: RepairPolicy::Secded { interleave: 1 },
        noise_sigma_mv: 80.0,
        ..tiny_params()
    };
    let policies = [PolicySpec::None, PolicySpec::Inversion];
    let build = |params: &InjectionParams, policies: &[PolicySpec]| {
        InjectionGrid::build(
            "inject-ecc",
            Platform::TpuLike,
            NetworkKind::CustomMnist,
            NumberFormat::Int8Symmetric,
            policies,
            params,
        )
    };
    let full = build(&secded, &policies);
    assert_eq!(full.len(), 2);

    // Clean single-threaded reference.
    let path_1 = dir.join("ecc-t1.jsonl");
    run(&full, &path_1, 1, false);
    let bytes_1 = std::fs::read(&path_1).expect("read store");

    // Interrupted-then-resumed under a different --threads: identical.
    let resumed = dir.join("ecc-resumed.jsonl");
    run(&build(&secded, &policies[..1]), &resumed, 1, false);
    let outcome = run_injection_campaign(
        &full,
        &resumed,
        &InjectCampaignOptions {
            threads: 8,
            shards: 0,
            resume: true,
            verbose: false,
        },
        None,
    )
    .expect("resume campaign");
    assert_eq!(outcome.skipped, 1);
    assert_eq!(
        bytes_1,
        std::fs::read(&resumed).unwrap(),
        "a resumed --ecc store must finalize to the clean run's bytes \
         regardless of --threads"
    );

    // A combined store (plain + SECDED twins) renders both tables.
    let mut combined = build(&tiny_params_at_80mv(), &policies);
    combined.specs.extend(full.specs.iter().cloned());
    let combined_path = dir.join("ecc-combined.jsonl");
    run(&combined, &combined_path, 2, false);
    let store = InjectionStore::open(&combined_path).expect("open store");
    assert_eq!(store.len(), 4);
    let ages = accuracy_vs_age_table(&store);
    assert!(ages.contains("ecc secded"), "{ages}");
    let ecc_table = ecc_comparison_table(&store);
    assert!(
        ecc_table.contains("SECDED corrected vs uncorrected"),
        "{ecc_table}"
    );
    assert!(ecc_table.contains("uncorrected"), "{ecc_table}");
    assert!(ecc_table.contains("corr/det/esc words"), "{ecc_table}");
    assert!(ecc_table.contains("raw → residual flips"), "{ecc_table}");
    // Both policies paired up.
    assert_eq!(ecc_table.matches("===").count(), 2 * 2, "{ecc_table}");
    // Decoder stats live on the ECC records only.
    for record in store.records() {
        let has_stats = record.result.ages.iter().all(|age| age.ecc.is_some());
        assert_eq!(has_stats, !record.spec.scenario.repair.is_none());
    }
}

fn tiny_params_at_80mv() -> InjectionParams {
    InjectionParams {
        noise_sigma_mv: 80.0,
        ..tiny_params()
    }
}

/// ReRAM-endurance injection at debug-CI scale: store byte-identity
/// across thread counts, hard-fault monotonicity (a fresh die has no
/// wear-outs; an aged one does), and the per-technology table label.
#[test]
fn reram_injection_store_is_deterministic_and_labels_the_tech() {
    let dir = util::scratch_dir("inject-reram");
    let params = InjectionParams {
        tech: dnnlife_core::MemoryTech::ReramEndurance,
        ..tiny_params()
    };
    let grid = InjectionGrid::build(
        "inject-reram",
        Platform::Baseline,
        NetworkKind::CustomMnist,
        NumberFormat::Int8Symmetric,
        &[PolicySpec::None, PolicySpec::WearLevel { epochs: 4 }],
        &params,
    );
    assert_eq!(grid.len(), 2);

    let path_1 = dir.join("t1.jsonl");
    run(&grid, &path_1, 1, false);
    let bytes_1 = std::fs::read(&path_1).expect("read store 1");
    let path_8 = dir.join("t8.jsonl");
    run(&grid, &path_8, 8, false);
    assert_eq!(
        bytes_1,
        std::fs::read(&path_8).expect("read store 8"),
        "reram injection stores must be byte-identical for --threads 1 vs 8"
    );

    let store = InjectionStore::open(&path_1).expect("open store");
    for record in store.records() {
        // The axis is a spec coordinate: keys round-trip and the
        // stored spec carries the technology.
        assert_eq!(record.key, record.spec.content_key());
        assert_eq!(
            record.spec.scenario.tech,
            dnnlife_core::MemoryTech::ReramEndurance
        );
        // Endurance faults are hard wear-outs, not read noise: a fresh
        // die (0 years, zero wear) flips nothing, an aged one does.
        let fresh = &record.result.ages[0];
        let aged = &record.result.ages[1];
        assert_eq!(fresh.years, 0.0);
        assert_eq!(fresh.mean_flipped_bits, 0.0, "no wear at age 0");
        assert!(
            aged.mean_flipped_bits > 0.0,
            "7-year-old reram must have stuck-at flips"
        );
    }
    let table = accuracy_vs_age_table(&store);
    assert!(table.contains("tech reram"), "{table}");
}

/// Nightly tier (acceptance claim of the repair axis): at the default
/// operating point on the trained network, SECDED-protected weight
/// words retain strictly higher accuracy at the 7-year checkpoint
/// than their unprotected twins under the same mitigation policy —
/// repair beats no-repair even *without* duty balancing, and the two
/// axes compose.
#[test]
#[ignore = "trains the CNN; run in the nightly release tier"]
fn trained_secded_strictly_improves_seven_year_accuracy() {
    let dir = util::scratch_dir("inject-secded-nightly");
    let plain_params = InjectionParams::default();
    let secded_params = InjectionParams {
        repair: RepairPolicy::Secded { interleave: 1 },
        ..InjectionParams::default()
    };
    let build = |params: &InjectionParams| {
        InjectionGrid::build(
            "secded-nightly",
            Platform::Baseline,
            NetworkKind::CustomMnist,
            NumberFormat::Int8Symmetric,
            &[PolicySpec::None],
            params,
        )
    };
    let mut grid = build(&plain_params);
    grid.specs.extend(build(&secded_params).specs);
    assert_eq!(grid.len(), 2);
    let path = dir.join("secded-nightly.jsonl");
    run(&grid, &path, 0, false);
    let store = InjectionStore::open(&path).expect("open store");
    let by_repair = |none: bool| {
        store
            .records()
            .find(|r| r.spec.scenario.repair.is_none() == none)
            .expect("both twins present")
    };
    let plain = by_repair(true);
    let ecc = by_repair(false);

    // Same trained network on both sides.
    assert_eq!(plain.result.clean_accuracy, ecc.result.clean_accuracy);
    assert!(plain.result.clean_accuracy > 0.5);

    // ages = [0, 2, 7, 10]; index 2 is the 7-year checkpoint.
    let plain_7y = &plain.result.ages[2];
    let ecc_7y = &ecc.result.ages[2];
    assert_eq!(plain_7y.years, 7.0);
    let stats = ecc_7y.ecc.as_ref().expect("decoder stats");
    // The decoder corrected real errors and let only a small residue
    // through...
    assert!(stats.mean_corrected_words > 0.0);
    assert!(
        stats.mean_residual_flips < 0.25 * plain_7y.mean_flipped_bits,
        "residual {} vs unprotected {}",
        stats.mean_residual_flips,
        plain_7y.mean_flipped_bits
    );
    // ...and the accuracy consequence is strict.
    assert!(
        ecc_7y.mean_accuracy > plain_7y.mean_accuracy,
        "7-year accuracy: secded {} vs unprotected {}",
        ecc_7y.mean_accuracy,
        plain_7y.mean_accuracy
    );
}

/// Nightly tier (acceptance claim of the memory-technology axis): on
/// ReRAM-endurance memory, epoch-rotating wear-leveling retains
/// strictly higher accuracy at the 7-year checkpoint than the
/// unprotected die. Leveling moves every cell's write stress toward
/// the mean duty, and the lognormal endurance CDF is convex over the
/// relevant wear range, so evening the stress strictly reduces the
/// expected dead-cell count — this asserts the accuracy consequence
/// end to end on the trained network.
#[test]
#[ignore = "trains the CNN; run in the nightly release tier"]
fn trained_wear_leveling_beats_unprotected_reram_at_seven_years() {
    let dir = util::scratch_dir("inject-reram-nightly");
    let params = InjectionParams {
        tech: dnnlife_core::MemoryTech::ReramEndurance,
        ..InjectionParams::default()
    };
    let grid = InjectionGrid::build(
        "reram-nightly",
        Platform::Baseline,
        NetworkKind::CustomMnist,
        NumberFormat::Int8Symmetric,
        &[PolicySpec::None, PolicySpec::WearLevel { epochs: 4 }],
        &params,
    );
    assert_eq!(grid.len(), 2);
    let path = dir.join("reram-nightly.jsonl");
    run(&grid, &path, 0, false);
    let store = InjectionStore::open(&path).expect("open store");
    let by_policy = |needle: &str| {
        store
            .records()
            .find(|r| r.spec.scenario.policy.display_name().contains(needle))
            .unwrap_or_else(|| panic!("no record for {needle}"))
    };
    let none = by_policy("Without Aging Mitigation");
    let wl = by_policy("Wear-Leveling");

    assert!(
        none.result.clean_accuracy > 0.5,
        "clean accuracy {}",
        none.result.clean_accuracy
    );
    // At 7 years (ages = [0, 2, 7, 10]) the leveled die has fewer
    // stuck-at flips...
    let none_7y = &none.result.ages[2];
    let wl_7y = &wl.result.ages[2];
    assert_eq!(none_7y.years, 7.0);
    assert!(
        wl_7y.mean_flipped_bits < none_7y.mean_flipped_bits,
        "flips: wear-level {} vs none {}",
        wl_7y.mean_flipped_bits,
        none_7y.mean_flipped_bits
    );
    // ...and the accuracy consequence is strict.
    assert!(
        wl_7y.mean_accuracy > none_7y.mean_accuracy,
        "7-year accuracy: wear-level {} vs none {}",
        wl_7y.mean_accuracy,
        none_7y.mean_accuracy
    );
}

/// The opened zoo's trained claim (nightly `--ignored` tier — trains
/// AlexNet through the im2col executor, ~10 minutes in release): at
/// the 7-year checkpoint DNN-Life retains strictly higher accuracy
/// than the unprotected baseline on the briefly-trained AlexNet.
/// The flip gap is asserted at 1.5× rather than the custom network's
/// 3×: AlexNet's ~61M weights stream through the 512 KB memory in
/// K ≈ 119 fills, which already averages per-word duty across ~119
/// weights and shrinks the unprotected/balanced imbalance.
#[test]
#[ignore = "trains AlexNet; run in the nightly release tier"]
fn trained_alexnet_dnn_life_beats_unprotected_at_seven_years() {
    let dir = util::scratch_dir("inject-alexnet-nightly");
    // The nightly CI profile: `dnnlife inject --network alexnet
    // --platform baseline --ages 0,7 --trials 1 --eval-images 32
    // --train-steps 12 --inferences 2 --noise-mv 65 --seed 7`.
    let params = InjectionParams {
        base_seed: 7,
        inferences: 2,
        ages_years: vec![0.0, 7.0],
        trials: 1,
        eval_images: 32,
        train_steps: 12,
        noise_sigma_mv: 65.0,
        repair: RepairPolicy::None,
        tech: dnnlife_core::MemoryTech::SramNbti,
    };
    let grid = InjectionGrid::build(
        "inject",
        Platform::Baseline,
        NetworkKind::Alexnet,
        NumberFormat::Int8Symmetric,
        &[
            PolicySpec::None,
            PolicySpec::DnnLife {
                bias: 0.7,
                bias_balancing: true,
                m_bits: 4,
            },
        ],
        &params,
    );
    assert_eq!(grid.len(), 2);
    let path = dir.join("alexnet-nightly.jsonl");
    run(&grid, &path, 0, false);
    let store = InjectionStore::open(&path).expect("open store");
    let by_policy = |needle: &str| {
        store
            .records()
            .find(|r| r.spec.scenario.policy.display_name().contains(needle))
            .unwrap_or_else(|| panic!("no record for {needle}"))
    };
    let none = by_policy("Without Aging Mitigation");
    let dnn = by_policy("DNN-Life");

    // 12 steps lift the 1000-way network to the 10-class label range —
    // well short of converged, but enough accuracy to lose.
    assert!(
        none.result.clean_accuracy > 0.0,
        "clean accuracy {}",
        none.result.clean_accuracy
    );
    let none_7y = &none.result.ages[1];
    let dnn_7y = &dnn.result.ages[1];
    assert_eq!(none_7y.years, 7.0);
    assert!(
        none_7y.mean_flipped_bits > 1.5 * dnn_7y.mean_flipped_bits,
        "flips: none {} vs dnn-life {}",
        none_7y.mean_flipped_bits,
        dnn_7y.mean_flipped_bits
    );
    assert!(
        dnn_7y.mean_accuracy > none_7y.mean_accuracy,
        "7-year accuracy: dnn-life {} vs none {}",
        dnn_7y.mean_accuracy,
        none_7y.mean_accuracy
    );
}

/// The paper's headline consequence, end to end (nightly `--ignored`
/// tier — trains the network, so it wants release mode): at the 7-year
/// checkpoint the DNN-Life policy retains strictly higher accuracy
/// than the unprotected baseline on the trained custom network.
#[test]
#[ignore = "trains the CNN; run in the nightly release tier"]
fn trained_dnn_life_beats_unprotected_baseline_at_seven_years() {
    let dir = util::scratch_dir("inject-nightly");
    // Exactly the `dnnlife inject --platform baseline` default profile
    // (InjectionParams::default()), so this asserts over the same
    // deterministic records the README table documents.
    let params = InjectionParams::default();
    let grid = InjectionGrid::build(
        "inject-nightly",
        Platform::Baseline,
        NetworkKind::CustomMnist,
        NumberFormat::Int8Symmetric,
        &[PolicySpec::None, dnn_life()],
        &params,
    );
    let path = dir.join("nightly.jsonl");
    run(&grid, &path, 0, false);
    let store = InjectionStore::open(&path).expect("open store");
    let by_policy = |needle: &str| {
        store
            .records()
            .find(|r| r.spec.scenario.policy.display_name().contains(needle))
            .unwrap_or_else(|| panic!("no record for {needle}"))
    };
    let none = by_policy("Without Aging Mitigation");
    let dnn = by_policy("DNN-Life");

    // The trained quantized network is well above chance.
    assert!(
        none.result.clean_accuracy > 0.5,
        "clean accuracy {}",
        none.result.clean_accuracy
    );
    // At 7 years (ages = [0, 2, 7, 10]) the unprotected memory has
    // flipped far more bits...
    let none_7y = &none.result.ages[2];
    let dnn_7y = &dnn.result.ages[2];
    assert_eq!(none_7y.years, 7.0);
    assert!(
        none_7y.mean_flipped_bits > 3.0 * dnn_7y.mean_flipped_bits,
        "flips: none {} vs dnn-life {}",
        none_7y.mean_flipped_bits,
        dnn_7y.mean_flipped_bits
    );
    // ...and the accuracy consequence is strict.
    assert!(
        dnn_7y.mean_accuracy > none_7y.mean_accuracy,
        "7-year accuracy: dnn-life {} vs none {}",
        dnn_7y.mean_accuracy,
        none_7y.mean_accuracy
    );
}
