//! Integration tests for the fault-injection campaign: store-level
//! determinism, resume, table rendering, and (nightly tier) the
//! paper's accuracy claim.
//!
//! The tier-1 smoke test keeps debug-mode cost down by using the
//! cheap deterministic policies and an untrained network — the
//! stochastic DNN-Life policy and the trained-accuracy claim run in
//! the nightly `--ignored` release tier (and in `dnnlife-faultsim`'s
//! own unit tests at smaller scale).

use std::path::Path;

use dnnlife_campaign::{
    accuracy_vs_age_table, run_injection_campaign, InjectCampaignOptions, InjectionGrid,
    InjectionParams, InjectionStore,
};
use dnnlife_core::experiment::{NetworkKind, Platform, PolicySpec};
use dnnlife_quant::NumberFormat;

mod util;

fn dnn_life() -> PolicySpec {
    PolicySpec::DnnLife {
        bias: 0.5,
        bias_balancing: true,
        m_bits: 4,
    }
}

/// Debug-CI sizing: untrained network, two checkpoints, tiny eval.
fn tiny_params() -> InjectionParams {
    InjectionParams {
        base_seed: 7,
        inferences: 2,
        ages_years: vec![0.0, 7.0],
        trials: 1,
        eval_images: 4,
        train_steps: 0,
        noise_sigma_mv: 65.0,
    }
}

fn tiny_grid(policies: &[PolicySpec]) -> InjectionGrid {
    InjectionGrid::build(
        "inject-test",
        Platform::TpuLike,
        NetworkKind::CustomMnist,
        NumberFormat::Int8Symmetric,
        policies,
        &tiny_params(),
    )
}

fn run(grid: &InjectionGrid, path: &Path, threads: usize, resume: bool) {
    let options = InjectCampaignOptions {
        threads,
        resume,
        verbose: false,
    };
    run_injection_campaign(grid, path, &options, None).expect("injection campaign");
}

/// One end-to-end flow covering the store contract: byte-identity
/// across thread counts, interrupted-then-resumed equality, and the
/// rendered accuracy table.
#[test]
fn injection_store_is_deterministic_resumable_and_renders() {
    let dir = util::scratch_dir("inject-smoke");
    let full = tiny_grid(&[PolicySpec::None, PolicySpec::Inversion]);
    let partial = tiny_grid(&[PolicySpec::None]);

    // Clean single-shot reference at one thread...
    let path_1 = dir.join("t1.jsonl");
    run(&full, &path_1, 1, false);
    let bytes_1 = std::fs::read(&path_1).expect("read store 1");
    assert!(!bytes_1.is_empty());

    // ...must match a wide-budget run byte for byte.
    let path_8 = dir.join("t8.jsonl");
    run(&full, &path_8, 8, false);
    assert_eq!(
        bytes_1,
        std::fs::read(&path_8).expect("read store 8"),
        "injection stores must be byte-identical for --threads 1 vs 8"
    );

    // "Interrupted" flow: only the first cell completed, then a resume
    // run finishes the rest and finalizes to the clean bytes.
    let resumed = dir.join("resumed.jsonl");
    run(&partial, &resumed, 1, false);
    let options = InjectCampaignOptions {
        threads: 2,
        resume: true,
        verbose: false,
    };
    let outcome = run_injection_campaign(&full, &resumed, &options, None).expect("resume campaign");
    assert_eq!(outcome.skipped, 1, "the completed cell must be reused");
    assert_eq!(outcome.executed, 1);
    assert_eq!(
        bytes_1,
        std::fs::read(&resumed).unwrap(),
        "a resumed store must finalize to the clean run's bytes"
    );

    // Table rendering over the finished store.
    let store = InjectionStore::open(&path_1).expect("open store");
    assert_eq!(store.len(), 2);
    let table = accuracy_vs_age_table(&store);
    assert!(table.contains("Accuracy vs age"), "{table}");
    assert!(table.contains("Without Aging Mitigation"), "{table}");
    assert!(table.contains("Inversion-based"), "{table}");
    assert!(table.contains("0y") && table.contains("7y"), "{table}");
    assert!(table.contains("mean flipped bits"), "{table}");
    for record in store.records() {
        assert_eq!(record.key, record.spec.content_key());
        assert_eq!(record.result.ages.len(), 2);
    }
}

/// The paper's headline consequence, end to end (nightly `--ignored`
/// tier — trains the network, so it wants release mode): at the 7-year
/// checkpoint the DNN-Life policy retains strictly higher accuracy
/// than the unprotected baseline on the trained custom network.
#[test]
#[ignore = "trains the CNN; run in the nightly release tier"]
fn trained_dnn_life_beats_unprotected_baseline_at_seven_years() {
    let dir = util::scratch_dir("inject-nightly");
    // Exactly the `dnnlife inject --platform baseline` default profile
    // (InjectionParams::default()), so this asserts over the same
    // deterministic records the README table documents.
    let params = InjectionParams::default();
    let grid = InjectionGrid::build(
        "inject-nightly",
        Platform::Baseline,
        NetworkKind::CustomMnist,
        NumberFormat::Int8Symmetric,
        &[PolicySpec::None, dnn_life()],
        &params,
    );
    let path = dir.join("nightly.jsonl");
    run(&grid, &path, 0, false);
    let store = InjectionStore::open(&path).expect("open store");
    let by_policy = |needle: &str| {
        store
            .records()
            .find(|r| r.spec.scenario.policy.display_name().contains(needle))
            .unwrap_or_else(|| panic!("no record for {needle}"))
    };
    let none = by_policy("Without Aging Mitigation");
    let dnn = by_policy("DNN-Life");

    // The trained quantized network is well above chance.
    assert!(
        none.result.clean_accuracy > 0.5,
        "clean accuracy {}",
        none.result.clean_accuracy
    );
    // At 7 years (ages = [0, 2, 7, 10]) the unprotected memory has
    // flipped far more bits...
    let none_7y = &none.result.ages[2];
    let dnn_7y = &dnn.result.ages[2];
    assert_eq!(none_7y.years, 7.0);
    assert!(
        none_7y.mean_flipped_bits > 3.0 * dnn_7y.mean_flipped_bits,
        "flips: none {} vs dnn-life {}",
        none_7y.mean_flipped_bits,
        dnn_7y.mean_flipped_bits
    );
    // ...and the accuracy consequence is strict.
    assert!(
        dnn_7y.mean_accuracy > none_7y.mean_accuracy,
        "7-year accuracy: dnn-life {} vs none {}",
        dnn_7y.mean_accuracy,
        none_7y.mean_accuracy
    );
}
