//! Golden-file tests for the `dnnlife` CLI's text output.
//!
//! A tiny fixed store (three policies on the NPU custom network,
//! heavily strided) is swept deterministically, then the *actual
//! binary* renders `report` and `compare` over it; stdout must match
//! the committed fixtures byte for byte, so any formatting regression
//! (column widths, headers, row ordering, qualifier suffixes) fails CI
//! with a diff instead of shipping silently.
//!
//! To bless intentional format changes:
//! `DNNLIFE_UPDATE_GOLDEN=1 cargo test -p dnnlife-campaign --test golden`

use std::path::{Path, PathBuf};
use std::process::Command;

use dnnlife_campaign::grid::{GridAxes, SweepOptions};
use dnnlife_campaign::{run_campaign, CampaignOptions};
use dnnlife_core::experiment::{NetworkKind, Platform, PolicySpec};
use dnnlife_core::{DwellModel, SimulatorBackend};
use dnnlife_quant::NumberFormat;

mod util;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The fixed grid behind every fixture: small enough for debug CI,
/// rich enough to exercise the fig11, bias and mbits tables.
fn golden_grid(base_seed: u64) -> dnnlife_campaign::CampaignGrid {
    GridAxes {
        platforms: vec![Platform::TpuLike],
        networks: vec![NetworkKind::CustomMnist],
        formats: vec![NumberFormat::Int8Symmetric],
        policies: vec![
            PolicySpec::None,
            PolicySpec::BarrelShifter,
            PolicySpec::DnnLife {
                bias: 0.7,
                bias_balancing: true,
                m_bits: 4,
            },
        ],
        lifetimes_years: vec![7.0],
        backends: vec![SimulatorBackend::Analytic],
        dwells: vec![DwellModel::Uniform],
        repairs: Vec::new(),
        techs: Vec::new(),
        options: SweepOptions {
            base_seed,
            sample_stride: 512,
            inferences: 10,
            ..SweepOptions::default()
        },
    }
    .build("golden")
}

fn sweep(dir: &Path, name: &str, base_seed: u64) -> PathBuf {
    let path = dir.join(format!("{name}.jsonl"));
    run_campaign(&golden_grid(base_seed), &path, &CampaignOptions::default())
        .expect("golden sweep");
    path
}

fn run_cli(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_dnnlife"))
        .args(args)
        .output()
        .expect("spawn dnnlife");
    assert!(
        output.status.success(),
        "dnnlife {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

/// Runs the binary expecting a nonzero exit; returns (code, stderr).
fn run_cli_err(args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_dnnlife"))
        .args(args)
        .output()
        .expect("spawn dnnlife");
    assert!(
        !output.status.success(),
        "dnnlife {args:?} unexpectedly succeeded"
    );
    (
        output.status.code().expect("exit code"),
        String::from_utf8(output.stderr).expect("utf-8 stderr"),
    )
}

/// The opened-zoo error contract: an unknown `--network` and an
/// explicitly requested combination with zero valid cells both exit
/// nonzero — enumerating the valid values, naming the combination —
/// instead of silently filtering down to an empty store.
#[test]
fn inject_network_errors_are_loud_and_enumerated() {
    let (code, stderr) = run_cli_err(&["inject", "--network", "lenet"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(
        stderr.contains("unknown network `lenet`")
            && stderr.contains("valid values: alexnet, vgg16, custom-mnist"),
        "--network error must enumerate the zoo: {stderr}"
    );

    // fp32 on the NPU is structurally invalid; requesting it by name
    // must name the dead combination, not write an empty store.
    let (code, stderr) = run_cli_err(&[
        "inject",
        "--network",
        "alexnet",
        "--platform",
        "npu",
        "--format",
        "fp32",
    ]);
    assert_eq!(code, 2, "{stderr}");
    assert!(
        stderr.contains("no valid cells for --network alexnet --platform npu --format fp32"),
        "empty-grid error must name the requested combination: {stderr}"
    );

    // A policy filter matching nothing enumerates the injectable pool.
    let (code, stderr) = run_cli_err(&["inject", "--policy", "nosuch"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(
        stderr.contains("matches no policy") && stderr.contains("valid values:"),
        "--policy error must enumerate the pool: {stderr}"
    );
}

fn assert_matches_golden(actual: &str, fixture: &str) {
    let path = golden_dir().join(fixture);
    if std::env::var_os("DNNLIFE_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("bless golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); bless with DNNLIFE_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "`{fixture}` drifted; if the change is intentional re-bless with \
         DNNLIFE_UPDATE_GOLDEN=1"
    );
}

#[test]
fn report_all_matches_golden() {
    let dir = util::scratch_dir("golden-report");
    let store = sweep(&dir, "store", 1234);
    let stdout = run_cli(&[
        "report",
        "--store",
        store.to_str().unwrap(),
        "--table",
        "all",
    ]);
    assert_matches_golden(&stdout, "report-all.txt");
}

#[test]
fn report_fig11_matches_golden() {
    let dir = util::scratch_dir("golden-report-fig11");
    let store = sweep(&dir, "store", 1234);
    let stdout = run_cli(&[
        "report",
        "--store",
        store.to_str().unwrap(),
        "--table",
        "fig11",
    ]);
    assert_matches_golden(&stdout, "report-fig11.txt");
}

#[test]
fn compare_matches_golden() {
    let dir = util::scratch_dir("golden-compare");
    let store_a = sweep(&dir, "a", 1234);
    let store_b = sweep(&dir, "b", 5678);
    let stdout = run_cli(&[
        "compare",
        "--store-a",
        store_a.to_str().unwrap(),
        "--store-b",
        store_b.to_str().unwrap(),
    ]);
    assert_matches_golden(&stdout, "compare.txt");
}
