//! Property tests on netlist generators, STA and power estimation.

use dnnlife_synth::library::{CellKind, TechLibrary};
use dnnlife_synth::power::estimate_power;
use dnnlife_synth::sta::critical_path;
use dnnlife_synth::{modules, Netlist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated design validates, regardless of width.
    #[test]
    fn generators_validate(width_log2 in 1u32..8, m_bits in 1usize..8) {
        let width = 1usize << width_log2;
        modules::xor_invert_wde(width).validate().unwrap();
        modules::inversion_wde(width).validate().unwrap();
        modules::dnnlife_wde(width, m_bits).validate().unwrap();
        modules::barrel_wde_log_stage(width).validate().unwrap();
        if width <= 64 {
            modules::barrel_wde_full_mux(width).validate().unwrap();
        }
    }

    /// The proposed WDE's area is affine in width: doubling the width
    /// roughly doubles the XOR-array area while the controller stays
    /// constant (the §IV scalability claim).
    #[test]
    fn dnnlife_area_is_affine_in_width(width_log2 in 3u32..8) {
        let lib = TechLibrary::tsmc65_like();
        let w = 1usize << width_log2;
        let a1 = modules::dnnlife_wde(w, 4).area(&lib);
        let a2 = modules::dnnlife_wde(2 * w, 4).area(&lib);
        let a4 = modules::dnnlife_wde(4 * w, 4).area(&lib);
        // Second differences of an affine function vanish; allow slack
        // for buffer-tree rounding.
        let d1 = a2 - a1;
        let d2 = a4 - a2;
        prop_assert!((d2 / d1 - 2.0).abs() < 0.35, "d1={} d2={}", d1, d2);
    }

    /// STA arrival times are monotone: adding a buffer to a primary
    /// output never shortens the critical path.
    #[test]
    fn sta_monotone_under_added_load(extra in 1usize..6) {
        let lib = TechLibrary::tsmc65_like();
        let base = modules::inversion_wde(16);
        let base_delay = critical_path(&base, &lib).critical_path_ps;

        let mut loaded = modules::inversion_wde(16);
        // Chain extra buffers off output 0's net.
        let out = loaded.outputs()[0];
        let mut prev = out;
        for i in 0..extra {
            let n = loaded.add_net(&format!("extra{i}"));
            loaded.add_cell(CellKind::Buf, &[prev], n);
            loaded.mark_output(n);
            prev = n;
        }
        let loaded_delay = critical_path(&loaded, &lib).critical_path_ps;
        prop_assert!(loaded_delay >= base_delay);
    }

    /// Power is positive and dynamic power scales with input activity.
    #[test]
    fn power_scales_with_activity(density_milli in 10u32..500) {
        let mut lib = TechLibrary::tsmc65_like();
        lib.input_density = f64::from(density_milli) / 1000.0;
        let design = modules::xor_invert_wde(32);
        let report = estimate_power(&design, &lib);
        prop_assert!(report.dynamic_nw > 0.0);
        prop_assert!(report.leakage_nw > 0.0);

        let mut lib2 = lib.clone();
        lib2.input_density *= 2.0;
        let report2 = estimate_power(&design, &lib2);
        // XOR trees propagate densities additively: doubling input
        // density doubles dynamic power (leakage unchanged).
        prop_assert!((report2.dynamic_nw / report.dynamic_nw - 2.0).abs() < 0.05);
        prop_assert!((report2.leakage_nw - report.leakage_nw).abs() < 1e-9);
    }

    /// Signal probabilities stay in [0, 1] through arbitrary gate chains.
    #[test]
    fn probabilities_stay_valid(kinds in prop::collection::vec(0usize..7, 1..20)) {
        let lib = TechLibrary::tsmc65_like();
        let mut n = Netlist::new("chain");
        let mut a = n.add_input("a");
        let b = n.add_input("b");
        for (i, k) in kinds.iter().enumerate() {
            let kind = [
                CellKind::Inv,
                CellKind::Buf,
                CellKind::Nand2,
                CellKind::Nor2,
                CellKind::And2,
                CellKind::Or2,
                CellKind::Xor2,
            ][*k];
            let y = n.add_net(&format!("n{i}"));
            if kind.input_count() == 1 {
                n.add_cell(kind, &[a], y);
            } else {
                n.add_cell(kind, &[a, b], y);
            }
            a = y;
        }
        n.mark_output(a);
        let report = estimate_power(&n, &lib);
        for act in &report.activity {
            prop_assert!((0.0..=1.0).contains(&act.probability));
            prop_assert!(act.density >= 0.0);
        }
    }
}
