#![warn(missing_docs)]

//! Gate-level synthesis cost model (the paper's Table II substrate).
//!
//! The paper characterises three 64-bit Write Data Encoders with Cadence
//! Genus on TSMC 65 nm. Neither tool nor library is available offline,
//! so this crate rebuilds the pipeline from scratch (DESIGN.md
//! substitution #3):
//!
//! * [`library`] — a 65 nm-class standard-cell library (area in
//!   NAND2-equivalent units, logical-effort-style delays, leakage and
//!   per-toggle switching energy),
//! * [`netlist`] — structural gate netlists with single-driver
//!   validation and explicit timing-loop cut points (for the ring
//!   oscillator),
//! * [`modules`] — generators for the three WDE variants: XOR-array
//!   inversion, full-mux barrel shifter, and the proposed WDE with its
//!   aging controller (ring-oscillator TRBG, M-bit bias counter),
//! * [`sta`] — topological static timing analysis (critical path),
//! * [`power`] — switching-activity propagation (signal probabilities
//!   and transition densities) with dynamic + leakage power roll-up,
//! * [`report`] — the `characterize` entry point producing Table II
//!   rows,
//! * [`verilog`] — structural Verilog export, for users who want to
//!   push the designs through a real synthesis flow as the paper did.
//!
//! Absolute picoseconds and nanowatts are library-dependent and not
//! expected to match Genus; the *ordering* — barrel shifter an order of
//! magnitude above both inversion-based designs, the proposed WDE only
//! marginally above plain inversion — is the Table II result this model
//! reproduces.
//!
//! # Example
//!
//! ```
//! use dnnlife_synth::library::TechLibrary;
//! use dnnlife_synth::modules;
//! use dnnlife_synth::report::characterize;
//!
//! let lib = TechLibrary::tsmc65_like();
//! let inversion = characterize(&modules::inversion_wde(64), &lib);
//! let barrel = characterize(&modules::barrel_wde_full_mux(64), &lib);
//! assert!(barrel.area_cells > 10.0 * inversion.area_cells);
//! ```

pub mod library;
pub mod modules;
pub mod netlist;
pub mod power;
pub mod report;
pub mod sta;
pub mod verilog;

pub use library::{CellKind, TechLibrary};
pub use netlist::{NetId, Netlist};
pub use report::{characterize, Characterization};
