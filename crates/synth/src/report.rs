//! Characterisation entry point producing Table II rows.

use crate::library::TechLibrary;
use crate::netlist::Netlist;
use crate::power::estimate_power;
use crate::sta::critical_path;

/// Delay / power / area characterisation of one design — one row of the
/// paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// Design name.
    pub name: String,
    /// Critical path delay, ps.
    pub delay_ps: f64,
    /// Total power (dynamic + leakage), nW.
    pub power_nw: f64,
    /// Dynamic power, nW.
    pub dynamic_nw: f64,
    /// Leakage power, nW.
    pub leakage_nw: f64,
    /// Area in NAND2-equivalent cell units.
    pub area_cells: f64,
    /// Number of cell instances.
    pub cell_count: usize,
}

impl std::fmt::Display for Characterization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<28} {:>10.1} {:>12.0} {:>12.0}",
            self.name, self.delay_ps, self.power_nw, self.area_cells
        )
    }
}

/// Runs STA and power estimation on a validated netlist.
///
/// # Panics
///
/// Panics if the netlist is invalid.
///
/// # Example
///
/// ```
/// use dnnlife_synth::library::TechLibrary;
/// use dnnlife_synth::{characterize, modules};
///
/// let lib = TechLibrary::tsmc65_like();
/// let row = characterize(&modules::dnnlife_wde(64, 4), &lib);
/// assert!(row.area_cells > 190.0); // at least the 64-XOR datapath
/// ```
pub fn characterize(netlist: &Netlist, lib: &TechLibrary) -> Characterization {
    let timing = critical_path(netlist, lib);
    let power = estimate_power(netlist, lib);
    Characterization {
        name: netlist.name().to_string(),
        delay_ps: timing.critical_path_ps,
        power_nw: power.total_nw(),
        dynamic_nw: power.dynamic_nw,
        leakage_nw: power.leakage_nw,
        area_cells: netlist.area(lib),
        cell_count: netlist.cell_count(),
    }
}

/// Characterises the three 64-bit WDEs of the paper's Table II (barrel
/// shifter, inversion, proposed) in that order.
pub fn table2(lib: &TechLibrary) -> Vec<Characterization> {
    vec![
        characterize(&crate::modules::barrel_wde_full_mux(64), lib),
        characterize(&crate::modules::inversion_wde(64), lib),
        characterize(&crate::modules::dnnlife_wde(64, 4), lib),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules;

    #[test]
    fn table2_preserves_paper_ordering() {
        let lib = TechLibrary::tsmc65_like();
        let rows = table2(&lib);
        let (barrel, inversion, proposed) = (&rows[0], &rows[1], &rows[2]);

        // Area: barrel is an order of magnitude above both; proposed is
        // slightly above inversion (the controller).
        assert!(barrel.area_cells > 10.0 * proposed.area_cells);
        assert!(proposed.area_cells > inversion.area_cells);
        assert!(proposed.area_cells < 2.5 * inversion.area_cells);

        // Power: same ordering.
        assert!(barrel.power_nw > 5.0 * proposed.power_nw);
        assert!(proposed.power_nw > inversion.power_nw);

        // Delay: the mux-tree barrel shifter is the slowest datapath.
        assert!(barrel.delay_ps > inversion.delay_ps);
        assert!(barrel.delay_ps > 300.0);
    }

    #[test]
    fn table2_absolute_scales_match_paper_order_of_magnitude() {
        // The paper reports 9035 / 195 / 295 cell-area units. Our library
        // normalises the same way (NAND2 = 1), so the counts should land
        // within a factor ~2 of those values.
        let lib = TechLibrary::tsmc65_like();
        let rows = table2(&lib);
        assert!(
            (4500.0..18000.0).contains(&rows[0].area_cells),
            "barrel {}",
            rows[0].area_cells
        );
        assert!(
            (100.0..400.0).contains(&rows[1].area_cells),
            "inversion {}",
            rows[1].area_cells
        );
        assert!(
            (150.0..600.0).contains(&rows[2].area_cells),
            "proposed {}",
            rows[2].area_cells
        );
    }

    #[test]
    fn log_stage_ablation_sits_between() {
        let lib = TechLibrary::tsmc65_like();
        let log_stage = characterize(&modules::barrel_wde_log_stage(64), &lib);
        let full = characterize(&modules::barrel_wde_full_mux(64), &lib);
        let inversion = characterize(&modules::inversion_wde(64), &lib);
        assert!(log_stage.area_cells < full.area_cells);
        assert!(log_stage.area_cells > inversion.area_cells);
    }

    #[test]
    fn characterization_display_is_tabular() {
        let lib = TechLibrary::tsmc65_like();
        let row = characterize(&modules::inversion_wde(8), &lib);
        let line = row.to_string();
        assert!(line.contains("inversion-wde-8"));
    }
}
