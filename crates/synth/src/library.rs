//! Standard-cell library model.

/// The gate/flop types the module generators emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer (inputs: select, a, b — output `b` when select).
    Mux2,
    /// D flip-flop (input: D — output Q; clock implicit).
    Dff,
}

impl CellKind {
    /// Number of input pins.
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf | CellKind::Dff => 1,
            CellKind::Nand2 | CellKind::Nor2 | CellKind::And2 | CellKind::Or2 | CellKind::Xor2 => 2,
            CellKind::Mux2 => 3,
        }
    }

    /// Whether the cell is sequential (breaks timing paths).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// All kinds, for iteration in reports.
    pub fn all() -> [CellKind; 9] {
        [
            CellKind::Inv,
            CellKind::Buf,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Mux2,
            CellKind::Dff,
        ]
    }
}

/// Electrical characterisation of one cell type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Area in NAND2-equivalent units.
    pub area: f64,
    /// Intrinsic propagation delay, ps.
    pub intrinsic_delay_ps: f64,
    /// Additional delay per fanout load, ps.
    pub load_delay_ps: f64,
    /// Leakage power, nW.
    pub leakage_nw: f64,
    /// Energy per output toggle, fJ.
    pub switch_energy_fj: f64,
}

/// A technology library: per-kind parameters plus global operating
/// conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct TechLibrary {
    params: [CellParams; 9],
    /// Clock frequency used for power roll-up, GHz.
    pub clock_ghz: f64,
    /// Default primary-input signal probability.
    pub input_probability: f64,
    /// Default primary-input transition density (toggles per cycle).
    pub input_density: f64,
}

impl TechLibrary {
    /// A 65 nm-class general-purpose library at a 250 MHz accelerator
    /// clock (typical for 65 nm embedded NPUs).
    ///
    /// Values are representative of published 65 nm standard-cell data
    /// (NAND2 ≈ 1.4 µm², ~20 ps loaded inverter stages, single-digit-nW
    /// gate leakage); they are not any foundry's actual numbers.
    pub fn tsmc65_like() -> Self {
        use CellKind::*;
        let mut lib = Self {
            params: [CellParams {
                area: 1.0,
                intrinsic_delay_ps: 20.0,
                load_delay_ps: 6.0,
                leakage_nw: 3.0,
                switch_energy_fj: 0.3,
            }; 9],
            clock_ghz: 0.25,
            input_probability: 0.5,
            input_density: 0.25,
        };
        let set = |lib: &mut Self, kind: CellKind, p: CellParams| {
            lib.params[kind as usize] = p;
        };
        set(
            &mut lib,
            Inv,
            CellParams {
                area: 0.75,
                intrinsic_delay_ps: 14.0,
                load_delay_ps: 4.0,
                leakage_nw: 1.8,
                switch_energy_fj: 0.175,
            },
        );
        set(
            &mut lib,
            Buf,
            CellParams {
                area: 1.0,
                intrinsic_delay_ps: 24.0,
                load_delay_ps: 3.0,
                leakage_nw: 2.4,
                switch_energy_fj: 0.275,
            },
        );
        set(
            &mut lib,
            Nand2,
            CellParams {
                area: 1.0,
                intrinsic_delay_ps: 20.0,
                load_delay_ps: 6.0,
                leakage_nw: 3.0,
                switch_energy_fj: 0.3,
            },
        );
        set(
            &mut lib,
            Nor2,
            CellParams {
                area: 1.0,
                intrinsic_delay_ps: 24.0,
                load_delay_ps: 7.0,
                leakage_nw: 3.0,
                switch_energy_fj: 0.325,
            },
        );
        set(
            &mut lib,
            And2,
            CellParams {
                area: 1.25,
                intrinsic_delay_ps: 32.0,
                load_delay_ps: 6.0,
                leakage_nw: 3.6,
                switch_energy_fj: 0.4,
            },
        );
        set(
            &mut lib,
            Or2,
            CellParams {
                area: 1.25,
                intrinsic_delay_ps: 34.0,
                load_delay_ps: 6.0,
                leakage_nw: 3.6,
                switch_energy_fj: 0.425,
            },
        );
        set(
            &mut lib,
            Xor2,
            CellParams {
                area: 3.0,
                intrinsic_delay_ps: 48.0,
                load_delay_ps: 8.0,
                leakage_nw: 7.5,
                switch_energy_fj: 0.7,
            },
        );
        set(
            &mut lib,
            Mux2,
            CellParams {
                area: 2.2,
                intrinsic_delay_ps: 40.0,
                load_delay_ps: 7.0,
                leakage_nw: 5.5,
                switch_energy_fj: 0.55,
            },
        );
        set(
            &mut lib,
            Dff,
            CellParams {
                area: 4.5,
                intrinsic_delay_ps: 90.0, // clk-to-Q
                load_delay_ps: 5.0,
                leakage_nw: 12.0,
                switch_energy_fj: 1.3,
            },
        );
        lib
    }

    /// Parameters of one cell kind.
    pub fn params(&self, kind: CellKind) -> &CellParams {
        &self.params[kind as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_counts() {
        assert_eq!(CellKind::Inv.input_count(), 1);
        assert_eq!(CellKind::Xor2.input_count(), 2);
        assert_eq!(CellKind::Mux2.input_count(), 3);
        assert_eq!(CellKind::Dff.input_count(), 1);
    }

    #[test]
    fn only_dff_is_sequential() {
        for kind in CellKind::all() {
            assert_eq!(kind.is_sequential(), matches!(kind, CellKind::Dff));
        }
    }

    #[test]
    fn library_relative_costs_are_sane() {
        let lib = TechLibrary::tsmc65_like();
        // XOR is the most expensive combinational gate; DFF dominates all.
        assert!(lib.params(CellKind::Xor2).area > lib.params(CellKind::Nand2).area);
        assert!(lib.params(CellKind::Dff).area > lib.params(CellKind::Xor2).area);
        assert!(lib.params(CellKind::Inv).area < 1.0);
        // A NAND2-equivalent unit is the area normalisation.
        assert_eq!(lib.params(CellKind::Nand2).area, 1.0);
    }
}
