//! Switching-activity propagation and power estimation.
//!
//! Signal probabilities and transition densities are propagated through
//! the combinational network in topological order (Najm-style density
//! propagation via Boolean differences, assuming input independence).
//! Dynamic power is the per-gate toggle energy times the output
//! transition density at the library clock; leakage is summed per cell;
//! sequential cells additionally pay a clock-pin toggle every cycle.

use crate::library::{CellKind, TechLibrary};
use crate::netlist::Netlist;

/// Per-net activity: signal probability and transition density
/// (toggles per clock cycle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activity {
    /// Probability the net is logic 1.
    pub probability: f64,
    /// Expected toggles per clock cycle.
    pub density: f64,
}

/// Result of a power run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Dynamic switching power, nW.
    pub dynamic_nw: f64,
    /// Leakage power, nW.
    pub leakage_nw: f64,
    /// Per-net activities.
    pub activity: Vec<Activity>,
}

impl PowerReport {
    /// Total power, nW.
    pub fn total_nw(&self) -> f64 {
        self.dynamic_nw + self.leakage_nw
    }
}

/// Estimates power for `netlist` under `lib` operating conditions.
///
/// # Panics
///
/// Panics if the netlist fails validation.
///
/// # Example
///
/// ```
/// use dnnlife_synth::library::TechLibrary;
/// use dnnlife_synth::modules;
/// use dnnlife_synth::power::estimate_power;
///
/// let lib = TechLibrary::tsmc65_like();
/// let report = estimate_power(&modules::xor_invert_wde(8), &lib);
/// assert!(report.total_nw() > 0.0);
/// ```
pub fn estimate_power(netlist: &Netlist, lib: &TechLibrary) -> PowerReport {
    netlist
        .validate()
        .unwrap_or_else(|e| panic!("estimate_power: invalid netlist: {e}"));
    let order = netlist
        .topological_cells()
        .expect("validated netlist has a topological order");

    let default = Activity {
        probability: lib.input_probability,
        density: lib.input_density,
    };
    let mut activity = vec![default; netlist.net_count()];

    // Sequential outputs: the flop resamples its input each cycle; at
    // steady state P(Q) = P(D) and the density is the resampling rate
    // 2·P(1-P) (independent samples). This is an upper-bound style
    // approximation appropriate for free-running counters and TRBGs.
    for cell in netlist.cells() {
        if cell.kind.is_sequential() {
            let p = lib.input_probability;
            activity[cell.output.0] = Activity {
                probability: p,
                density: 2.0 * p * (1.0 - p),
            };
        }
    }

    // First pass: propagate probabilities so sequential cells see a
    // better steady-state estimate, then refine flop outputs once.
    for refinement in 0..2 {
        for &ci in &order {
            let cell = &netlist.cells()[ci];
            let get = |n: crate::netlist::NetId| -> Activity {
                if netlist.is_feedback(n) {
                    default
                } else {
                    activity[n.0]
                }
            };
            activity[cell.output.0] = propagate(cell.kind, &cell.inputs, get);
        }
        if refinement == 0 {
            for cell in netlist.cells() {
                if cell.kind.is_sequential() {
                    let d = activity[cell.inputs[0].0];
                    activity[cell.output.0] = Activity {
                        probability: d.probability,
                        density: 2.0 * d.probability * (1.0 - d.probability),
                    };
                }
            }
        }
    }

    let mut dynamic = 0.0f64;
    let mut leakage = 0.0f64;
    for cell in netlist.cells() {
        let p = lib.params(cell.kind);
        leakage += p.leakage_nw;
        let density = if cell.kind.is_sequential() {
            // Q toggles plus an implicit clock-pin toggle per cycle.
            activity[cell.output.0].density + 1.0
        } else {
            activity[cell.output.0].density
        };
        // fJ × toggles/cycle × GHz = µW; ×1000 → nW.
        dynamic += p.switch_energy_fj * density * lib.clock_ghz * 1000.0;
    }

    PowerReport {
        dynamic_nw: dynamic,
        leakage_nw: leakage,
        activity,
    }
}

/// Propagates activity through one gate (independence assumption).
fn propagate(
    kind: CellKind,
    inputs: &[crate::netlist::NetId],
    get: impl Fn(crate::netlist::NetId) -> Activity,
) -> Activity {
    match kind {
        CellKind::Inv => {
            let a = get(inputs[0]);
            Activity {
                probability: 1.0 - a.probability,
                density: a.density,
            }
        }
        CellKind::Buf => get(inputs[0]),
        CellKind::Dff => get(inputs[0]), // refined separately
        CellKind::And2 | CellKind::Nand2 => {
            let (a, b) = (get(inputs[0]), get(inputs[1]));
            let p_and = a.probability * b.probability;
            // ∂F/∂a = b, ∂F/∂b = a.
            let density = a.density * b.probability + b.density * a.probability;
            Activity {
                probability: if kind == CellKind::And2 {
                    p_and
                } else {
                    1.0 - p_and
                },
                density,
            }
        }
        CellKind::Or2 | CellKind::Nor2 => {
            let (a, b) = (get(inputs[0]), get(inputs[1]));
            let p_or = a.probability + b.probability - a.probability * b.probability;
            // ∂F/∂a = ¬b, ∂F/∂b = ¬a.
            let density = a.density * (1.0 - b.probability) + b.density * (1.0 - a.probability);
            Activity {
                probability: if kind == CellKind::Or2 {
                    p_or
                } else {
                    1.0 - p_or
                },
                density,
            }
        }
        CellKind::Xor2 => {
            let (a, b) = (get(inputs[0]), get(inputs[1]));
            let p = a.probability * (1.0 - b.probability) + b.probability * (1.0 - a.probability);
            // ∂F/∂a = ∂F/∂b = 1.
            Activity {
                probability: p,
                density: a.density + b.density,
            }
        }
        CellKind::Mux2 => {
            let (s, a, b) = (get(inputs[0]), get(inputs[1]), get(inputs[2]));
            let p = (1.0 - s.probability) * a.probability + s.probability * b.probability;
            // ∂F/∂s = a⊕b, ∂F/∂a = ¬s, ∂F/∂b = s.
            let p_diff =
                a.probability * (1.0 - b.probability) + b.probability * (1.0 - a.probability);
            let density =
                s.density * p_diff + a.density * (1.0 - s.probability) + b.density * s.probability;
            Activity {
                probability: p,
                density,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn two_input(kind: CellKind) -> (Netlist, crate::netlist::NetId) {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_net("y");
        n.add_cell(kind, &[a, b], y);
        n.mark_output(y);
        (n, y)
    }

    #[test]
    fn xor_probability_of_independent_halves() {
        let lib = TechLibrary::tsmc65_like();
        let (n, y) = two_input(CellKind::Xor2);
        let report = estimate_power(&n, &lib);
        assert!((report.activity[y.0].probability - 0.5).abs() < 1e-12);
        // Density adds: 0.25 + 0.25.
        assert!((report.activity[y.0].density - 0.5).abs() < 1e-12);
    }

    #[test]
    fn and_attenuates_activity() {
        let lib = TechLibrary::tsmc65_like();
        let (n, y) = two_input(CellKind::And2);
        let report = estimate_power(&n, &lib);
        assert!((report.activity[y.0].probability - 0.25).abs() < 1e-12);
        // D = 0.25·0.5 + 0.25·0.5 = 0.25 < XOR's 0.5.
        assert!((report.activity[y.0].density - 0.25).abs() < 1e-12);
    }

    #[test]
    fn inverter_preserves_density() {
        let lib = TechLibrary::tsmc65_like();
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_net("y");
        n.add_cell(CellKind::Inv, &[a], y);
        n.mark_output(y);
        let report = estimate_power(&n, &lib);
        assert_eq!(report.activity[y.0].density, lib.input_density);
        assert!((report.activity[y.0].probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn power_scales_with_width() {
        let lib = TechLibrary::tsmc65_like();
        let narrow = estimate_power(&crate::modules::xor_invert_wde(8), &lib);
        let wide = estimate_power(&crate::modules::xor_invert_wde(64), &lib);
        let ratio = wide.total_nw() / narrow.total_nw();
        assert!(
            (ratio - 8.0).abs() < 1.0,
            "expected ~8x power for 8x width, got {ratio}"
        );
    }

    #[test]
    fn leakage_counted_even_for_idle_gates() {
        let mut lib = TechLibrary::tsmc65_like();
        lib.input_density = 0.0;
        let (n, _) = two_input(CellKind::Nand2);
        let report = estimate_power(&n, &lib);
        assert_eq!(report.dynamic_nw, 0.0);
        assert!(report.leakage_nw > 0.0);
    }
}
