//! Static timing analysis: longest combinational path.

use crate::library::TechLibrary;
use crate::netlist::Netlist;

/// Result of a timing run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Critical (longest) combinational path delay, ps.
    pub critical_path_ps: f64,
    /// Per-net arrival times, ps (0 for pure startpoints).
    pub arrival_ps: Vec<f64>,
}

/// Computes the critical path of `netlist` under `lib`.
///
/// Startpoints are primary inputs, DFF outputs (at their clk-to-Q
/// delay) and feedback cut nets; endpoints are DFF inputs and primary
/// outputs. Gate delay is `intrinsic + load_delay × fanout`.
///
/// # Panics
///
/// Panics if the netlist fails validation (callers should `validate()`
/// first for a recoverable error).
///
/// # Example
///
/// ```
/// use dnnlife_synth::library::TechLibrary;
/// use dnnlife_synth::modules;
/// use dnnlife_synth::sta::critical_path;
///
/// let lib = TechLibrary::tsmc65_like();
/// let report = critical_path(&modules::xor_invert_wde(64), &lib);
/// // One XOR level: tens of picoseconds, far below a barrel shifter.
/// assert!(report.critical_path_ps > 10.0 && report.critical_path_ps < 200.0);
/// ```
pub fn critical_path(netlist: &Netlist, lib: &TechLibrary) -> TimingReport {
    netlist
        .validate()
        .unwrap_or_else(|e| panic!("critical_path: invalid netlist: {e}"));
    let order = netlist
        .topological_cells()
        .expect("validated netlist has a topological order");
    let fanout = netlist.fanout_map();

    let mut arrival = vec![0.0f64; netlist.net_count()];
    // DFF outputs launch at clk-to-Q.
    for cell in netlist.cells() {
        if cell.kind.is_sequential() {
            let p = lib.params(cell.kind);
            arrival[cell.output.0] =
                p.intrinsic_delay_ps + p.load_delay_ps * fanout[cell.output.0] as f64;
        }
    }
    for &ci in &order {
        let cell = &netlist.cells()[ci];
        let p = lib.params(cell.kind);
        let input_arrival = cell
            .inputs
            .iter()
            .map(|n| {
                if netlist.is_feedback(*n) {
                    0.0
                } else {
                    arrival[n.0]
                }
            })
            .fold(0.0f64, f64::max);
        let delay = p.intrinsic_delay_ps + p.load_delay_ps * fanout[cell.output.0] as f64;
        arrival[cell.output.0] = arrival[cell.output.0].max(input_arrival + delay);
    }

    // Endpoints: DFF D-pins, primary outputs, and feedback-net drivers.
    let mut critical = 0.0f64;
    for cell in netlist.cells() {
        if cell.kind.is_sequential() {
            for input in &cell.inputs {
                critical = critical.max(arrival[input.0]);
            }
        }
        if netlist.is_feedback(cell.output) {
            critical = critical.max(arrival[cell.output.0]);
        }
    }
    for out in netlist.outputs() {
        critical = critical.max(arrival[out.0]);
    }

    TimingReport {
        critical_path_ps: critical,
        arrival_ps: arrival,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellKind;

    #[test]
    fn chain_delay_accumulates() {
        let lib = TechLibrary::tsmc65_like();
        let mut n = Netlist::new("chain");
        let mut prev = n.add_input("in");
        for i in 0..4 {
            let next = n.add_net(&format!("n{i}"));
            n.add_cell(CellKind::Inv, &[prev], next);
            prev = next;
        }
        n.mark_output(prev);
        let report = critical_path(&n, &lib);
        // 4 inverters, each with fanout 1: 4 × (14 + 4) = 72 ps.
        assert!((report.critical_path_ps - 72.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_take_max() {
        let lib = TechLibrary::tsmc65_like();
        let mut n = Netlist::new("par");
        let a = n.add_input("a");
        // Fast path: one inverter. Slow path: three inverters.
        let f1 = n.add_net("f1");
        n.add_cell(CellKind::Inv, &[a], f1);
        let s1 = n.add_net("s1");
        let s2 = n.add_net("s2");
        let s3 = n.add_net("s3");
        n.add_cell(CellKind::Inv, &[a], s1);
        n.add_cell(CellKind::Inv, &[s1], s2);
        n.add_cell(CellKind::Inv, &[s2], s3);
        let y = n.add_net("y");
        n.add_cell(CellKind::Xor2, &[f1, s3], y);
        n.mark_output(y);
        let report = critical_path(&n, &lib);
        // Slow arm: 3 × (14+4) = 54, plus XOR 48 + 8 = 56 → 110.
        assert!((report.critical_path_ps - 110.0).abs() < 1e-9);
    }

    #[test]
    fn dff_breaks_paths_and_launches() {
        let lib = TechLibrary::tsmc65_like();
        let mut n = Netlist::new("pipe");
        let a = n.add_input("a");
        let d = n.add_net("d");
        n.add_cell(CellKind::Inv, &[a], d);
        let q = n.add_net("q");
        n.add_cell(CellKind::Dff, &[d], q);
        let y = n.add_net("y");
        n.add_cell(CellKind::Inv, &[q], y);
        n.mark_output(y);
        let report = critical_path(&n, &lib);
        // Launch path: DFF clk-q (90 + 5·1) + INV (14+4) = 113 — longer
        // than the capture path into the DFF (18).
        assert!((report.critical_path_ps - 113.0).abs() < 1e-9);
    }

    #[test]
    fn fanout_increases_delay() {
        let lib = TechLibrary::tsmc65_like();
        let mut light = Netlist::new("light");
        let a = light.add_input("a");
        let y = light.add_net("y");
        light.add_cell(CellKind::Inv, &[a], y);
        light.mark_output(y);

        let mut heavy = Netlist::new("heavy");
        let a = heavy.add_input("a");
        let y = heavy.add_net("y");
        heavy.add_cell(CellKind::Inv, &[a], y);
        for i in 0..7 {
            let s = heavy.add_net(&format!("s{i}"));
            heavy.add_cell(CellKind::Buf, &[y], s);
            heavy.mark_output(s);
        }
        let l = critical_path(&light, &lib).critical_path_ps;
        let h = critical_path(&heavy, &lib).critical_path_ps;
        assert!(h > l, "fanout-loaded path {h} should exceed {l}");
    }
}
